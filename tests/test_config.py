"""Configuration: Table 2 defaults, validation, derived quantities."""

from dataclasses import replace

import pytest

from repro.config import (
    ConfigError,
    CostModel,
    GPMConfig,
    LinkConfig,
    SMConfig,
    SystemConfig,
    baseline_system,
    single_gpu_system,
)

KB = 1024
MB = 1024 * KB


class TestTable2Defaults:
    def test_four_gpms(self):
        assert baseline_system().num_gpms == 4

    def test_thirty_two_sms_total(self):
        assert baseline_system().total_sms == 32

    def test_eight_sms_per_gpm(self):
        assert baseline_system().gpm.num_sms == 8

    def test_sixty_four_cores_per_sm(self):
        assert baseline_system().gpm.sm.shader_cores == 64

    def test_l1_is_128kb(self):
        assert baseline_system().gpm.sm.l1_bytes == 128 * KB

    def test_four_texture_units_per_sm(self):
        assert baseline_system().gpm.sm.texture_units == 4

    def test_thirty_two_rops_total(self):
        assert baseline_system().total_rops == 32

    def test_l2_is_4mb_total_16_way(self):
        cfg = baseline_system()
        assert cfg.total_l2_bytes == 4 * MB
        assert cfg.gpm.l2_ways == 16

    def test_link_is_64_gbps(self):
        assert baseline_system().link.bytes_per_cycle == 64.0

    def test_dram_is_1_tbps(self):
        assert baseline_system().gpm.dram_bytes_per_cycle == 1000.0

    def test_clock_is_1ghz(self):
        assert baseline_system().clock_hz == 1_000_000_000

    def test_rop_throughput_4_pixels_each(self):
        gpm = baseline_system().gpm
        assert gpm.rop_throughput == gpm.num_rops * 4


class TestDerived:
    def test_shader_cores_per_gpm(self):
        assert baseline_system().gpm.shader_cores == 512

    def test_texture_units_per_gpm(self):
        assert baseline_system().gpm.texture_units == 32

    def test_single_gpu_system(self):
        assert single_gpu_system().num_gpms == 1


class TestConstructors:
    def test_with_link_bandwidth(self):
        cfg = baseline_system().with_link_bandwidth(128.0)
        assert cfg.link.bytes_per_cycle == 128.0
        # Everything else untouched.
        assert cfg.num_gpms == 4
        assert cfg.gpm == baseline_system().gpm

    def test_with_num_gpms_scales_ports(self):
        cfg = baseline_system().with_num_gpms(8)
        assert cfg.num_gpms == 8
        assert cfg.link.ports_per_gpm >= 7
        cfg.validate()

    def test_with_num_gpms_keeps_per_gpm_resources(self):
        cfg = baseline_system().with_num_gpms(2)
        assert cfg.gpm.num_sms == 8

    def test_baseline_system_validates(self):
        baseline_system().validate()


class TestValidation:
    def test_zero_gpms_rejected(self):
        with pytest.raises(ConfigError):
            replace(baseline_system(), num_gpms=0).validate()

    def test_bad_l1_geometry_rejected(self):
        sm = replace(SMConfig(), l1_bytes=100)
        with pytest.raises(ConfigError):
            sm.validate()

    def test_negative_link_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            replace(LinkConfig(), bytes_per_cycle=-1.0).validate()

    def test_non_power_of_two_page_rejected(self):
        with pytest.raises(ConfigError):
            replace(baseline_system(), page_bytes=3000).validate()

    def test_insufficient_ports_rejected(self):
        cfg = replace(
            baseline_system(),
            num_gpms=8,
        )
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_cull_survival_bounds(self):
        with pytest.raises(ConfigError):
            replace(CostModel(), cull_survival=0.0).validate()
        with pytest.raises(ConfigError):
            replace(CostModel(), cull_survival=1.5).validate()

    def test_negative_stage_factor_rejected(self):
        with pytest.raises(ConfigError):
            replace(CostModel(), tile_stage_factor=-1.0).validate()

    def test_driver_serial_fraction_bounds(self):
        with pytest.raises(ConfigError):
            replace(CostModel(), driver_serial_fraction=1.0).validate()

    def test_zero_pme_rejected(self):
        with pytest.raises(ConfigError):
            replace(GPMConfig(), num_pmes=0).validate()

    def test_cost_model_defaults_valid(self):
        CostModel().validate()

    def test_leak_bounds(self):
        with pytest.raises(ConfigError):
            replace(CostModel(), l1_texture_leak=0.0).validate()
