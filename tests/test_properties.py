"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.middleware import OOMiddleware
from repro.core.tsl import texture_sharing_level
from repro.memory.cache import SetAssociativeCache, miss_bytes, working_set_hit_rate
from repro.memory.link import LinkFabric, TrafficType
from repro.memory.placement import PagePlacement, PlacementPolicy
from repro.memory.address import texture_resource
from repro.scene.geometry import Mesh, Viewport, full_screen, vertical_strips
from repro.scene.objects import RenderObject
from repro.scene.texture import Texture
from repro.pipeline.raster import normalize_pixel_shares, strip_shares
from repro.stats.metrics import geomean

KB = 1024


# -- strategies -------------------------------------------------------------

texture_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(1, 64)),
    min_size=1,
    max_size=6,
    unique_by=lambda t: t[0],
).map(
    lambda pairs: tuple(Texture(tid, f"t{tid}", size * KB) for tid, size in pairs)
)

viewports = st.tuples(
    st.floats(0, 500), st.floats(0, 500),
    st.floats(1, 500), st.floats(1, 500),
).map(lambda t: Viewport(t[0], t[1], t[0] + t[2], t[1] + t[3]))


# -- TSL (Eq. 1) --------------------------------------------------------------


class TestTSLProperties:
    @given(texture_lists, texture_lists)
    def test_bounded_zero_one(self, a, b):
        tsl = texture_sharing_level(a, b)
        assert 0.0 <= tsl <= 1.0

    @given(texture_lists)
    def test_disjoint_is_zero(self, a):
        other = tuple(
            Texture(t.texture_id + 100, t.name + "x", t.size_bytes) for t in a
        )
        assert texture_sharing_level(a, other) == 0.0

    @given(texture_lists, texture_lists)
    def test_permutation_invariant(self, a, b):
        assert math.isclose(
            texture_sharing_level(a, b),
            texture_sharing_level(tuple(reversed(a)), tuple(reversed(b))),
            rel_tol=1e-9,
            abs_tol=1e-12,
        )

    @given(texture_lists)
    def test_single_dominant_texture_full(self, a):
        dominant = (a[0],)
        assert texture_sharing_level(dominant, dominant) == 1.0


# -- middleware batching -------------------------------------------------------


def _objects_from(data) -> list:
    objects = []
    for index, (tris, tex_ids) in enumerate(data):
        textures = tuple(Texture(t, f"t{t}", KB * (t + 1)) for t in tex_ids)
        vp = Viewport(0, 0, 64, 64)
        objects.append(
            RenderObject(
                object_id=index,
                name=f"o{index}",
                mesh=Mesh(max(3, tris // 2), tris),
                textures=textures,
                viewport_left=vp,
                viewport_right=vp.shifted(4),
            )
        )
    return objects


object_specs = st.lists(
    st.tuples(
        st.integers(10, 5000),
        st.lists(st.integers(0, 8), min_size=1, max_size=3, unique=True),
    ),
    min_size=1,
    max_size=30,
)


class TestMiddlewareProperties:
    @given(object_specs)
    @settings(max_examples=50, deadline=None)
    def test_partition_exact_cover(self, specs):
        objects = _objects_from(specs)
        batches = OOMiddleware().build_batches(objects)
        ids = sorted(oid for b in batches for oid in b.object_ids)
        assert ids == sorted(o.object_id for o in objects)

    @given(object_specs)
    @settings(max_examples=50, deadline=None)
    def test_triangles_conserved(self, specs):
        objects = _objects_from(specs)
        batches = OOMiddleware().build_batches(objects)
        assert sum(b.total_triangles for b in batches) == sum(
            o.mesh.num_triangles for o in objects
        )

    @given(object_specs)
    @settings(max_examples=50, deadline=None)
    def test_batch_ids_sequential(self, specs):
        batches = OOMiddleware().build_batches(_objects_from(specs))
        assert [b.batch_id for b in batches] == list(range(len(batches)))


# -- cache models ---------------------------------------------------------------


class TestCacheProperties:
    @given(
        st.floats(1.0, 1e9),
        st.floats(1.0, 1e9),
        st.floats(1.0, 64.0),
    )
    def test_hit_rate_bounded(self, unique, cache, reuse):
        hit = working_set_hit_rate(unique, cache, reuse)
        assert 0.0 <= hit <= 1.0

    @given(st.floats(1.0, 1e8), st.floats(1.0, 1e8))
    def test_miss_bytes_bounded_by_stream_and_unique(self, stream, unique):
        assume(unique <= stream)
        out = miss_bytes(stream, unique, 1e6)
        assert unique - 1e-6 <= out <= stream + 1e-6

    @given(st.floats(1e3, 1e8), st.floats(1e3, 1e8))
    def test_bigger_cache_never_more_misses(self, stream, unique):
        assume(unique <= stream)
        small = miss_bytes(stream, unique, 64 * KB)
        large = miss_bytes(stream, unique, 1024 * KB)
        assert large <= small + 1e-6

    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_exact_cache_hits_plus_misses(self, addresses):
        cache = SetAssociativeCache(4 * KB, 4, 64)
        for address in addresses:
            cache.access(address)
        assert cache.hits + cache.misses == len(addresses)

    @given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_exact_cache_resident_bounded(self, addresses):
        cache = SetAssociativeCache(2 * KB, 2, 64)
        for address in addresses:
            cache.access(address)
        assert cache.resident_lines <= cache.num_sets * cache.ways


# -- placement -------------------------------------------------------------------


class TestPlacementProperties:
    @given(
        st.integers(1, 8),
        st.integers(1, 40),
        st.integers(0, 7),
    )
    def test_owner_fractions_sum_to_one(self, num_gpms, pages, toucher):
        assume(toucher < num_gpms)
        placement = PagePlacement(num_gpms, 64 * KB, PlacementPolicy.INTERLEAVED)
        resource = texture_resource(0, pages * 64 * KB)
        fractions = placement.owner_fractions(resource, toucher)
        assert math.isclose(sum(fractions.values()), 1.0)

    @given(st.integers(2, 8), st.integers(1, 40))
    def test_preallocate_then_local(self, num_gpms, pages):
        placement = PagePlacement(num_gpms, 64 * KB)
        resource = texture_resource(0, pages * 64 * KB)
        placement.place_fixed(resource, 0)
        placement.preallocate(resource, 1)
        assert placement.local_fraction(resource, 1) == 1.0

    @given(st.integers(2, 6), st.lists(st.integers(1, 30), min_size=1, max_size=10))
    def test_resident_bytes_monotone(self, num_gpms, sizes):
        placement = PagePlacement(num_gpms, 64 * KB)
        last = 0.0
        for index, pages in enumerate(sizes):
            placement.place_fixed(
                texture_resource(index, pages * 64 * KB), index % num_gpms
            )
            assert placement.total_resident_bytes >= last
            last = placement.total_resident_bytes


# -- link fabric -------------------------------------------------------------------


class TestFabricProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3), st.integers(0, 3), st.floats(0.0, 1e6)
            ),
            max_size=50,
        )
    )
    def test_total_equals_sum_of_pairs(self, transfers):
        fabric = LinkFabric(4, 64.0)
        expected = 0.0
        for src, dst, nbytes in transfers:
            fabric.transfer(src, dst, nbytes, TrafficType.TEXTURE)
            if src != dst and nbytes > 0:
                expected += nbytes
        assert math.isclose(fabric.total_bytes, expected, abs_tol=1e-6)

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.floats(0.0, 1e6)),
            max_size=50,
        )
    )
    def test_by_type_partition(self, transfers):
        fabric = LinkFabric(4, 64.0)
        for index, (src, dst, nbytes) in enumerate(transfers):
            traffic = list(TrafficType)[index % len(TrafficType)]
            fabric.transfer(src, dst, nbytes, traffic)
        assert math.isclose(
            sum(fabric.bytes_by_type().values()), fabric.total_bytes, abs_tol=1e-6
        )


# -- geometry ----------------------------------------------------------------------


class TestGeometryProperties:
    @given(viewports, st.integers(1, 8))
    def test_strip_pixel_shares_normalised(self, viewport, count):
        screen = full_screen(1000, 1000)
        clipped = viewport.clamped(screen)
        assume(clipped is not None and clipped.area > 0)
        strips = vertical_strips(screen, count)
        shares = normalize_pixel_shares(strip_shares([clipped], strips))
        assert math.isclose(sum(s.pixel_share for s in shares), 1.0)

    @given(viewports, viewports)
    def test_overlap_fraction_bounded(self, a, b):
        assume(a.area > 0)
        fraction = a.overlap_fraction(b)
        assert 0.0 <= fraction <= 1.0 + 1e-9

    @given(viewports, st.floats(-100, 100), st.floats(-100, 100))
    def test_shift_preserves_area(self, viewport, dx, dy):
        assert math.isclose(viewport.shifted(dx, dy).area, viewport.area)


# -- stats ------------------------------------------------------------------------


class TestStatsProperties:
    @given(st.lists(st.floats(0.01, 1e6), min_size=1, max_size=20))
    def test_geomean_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) * (1 - 1e-9) <= g <= max(values) * (1 + 1e-9)

    @given(st.lists(st.floats(0.01, 100.0), min_size=2, max_size=10))
    def test_geomean_scale_invariant(self, values):
        scaled = [v * 7.0 for v in values]
        assert math.isclose(geomean(scaled), geomean(values) * 7.0, rel_tol=1e-9)
