"""Pipeline: SMP geometry, fragment demand, work units, stage pricing."""

import dataclasses

import pytest

from repro.config import CostModel, baseline_system
from repro.pipeline.characterize import DrawCharacterizer
from repro.pipeline.fragment import depth_and_color_demand, texture_touches_for_draw
from repro.pipeline.raster import TILE_EDGE, normalize_pixel_shares, strip_shares, tile_count
from repro.pipeline.rop import (
    crossing_fraction,
    distributed_composition,
    master_composition,
)
from repro.pipeline.smp import SMPEngine, SMPMode
from repro.pipeline.timing import price_work_unit
from repro.pipeline.workunit import merge_units
from repro.scene.geometry import Viewport, full_screen, vertical_strips
from repro.scene.objects import Eye
from tests.conftest import MB, make_object


@pytest.fixture
def characterizer(config):
    return DrawCharacterizer(config)


class TestSMPEngine:
    def test_sequential_stereo_doubles_geometry(self, config, pool):
        engine = SMPEngine(config.cost)
        draw = make_object(0, pool).multiview_draw()
        seq = engine.geometry_work(draw, SMPMode.SEQUENTIAL)
        smp = engine.geometry_work(draw, SMPMode.SIMULTANEOUS)
        assert seq.vertices == pytest.approx(2 * smp.vertices)

    def test_smp_setup_cheaper_than_two_passes(self, config, pool):
        engine = SMPEngine(config.cost)
        draw = make_object(0, pool).multiview_draw()
        seq = engine.geometry_work(draw, SMPMode.SEQUENTIAL)
        smp = engine.geometry_work(draw, SMPMode.SIMULTANEOUS)
        assert smp.triangles_setup < seq.triangles_setup
        # But both views still rasterise.
        assert smp.triangles_raster == pytest.approx(seq.triangles_raster)

    def test_single_eye_unaffected_by_mode(self, config, pool):
        engine = SMPEngine(config.cost)
        draw = make_object(0, pool).stereo_draws()[0]
        seq = engine.geometry_work(draw, SMPMode.SEQUENTIAL)
        smp = engine.geometry_work(draw, SMPMode.SIMULTANEOUS)
        assert seq == smp

    def test_cull_survival_applied(self, config, pool):
        engine = SMPEngine(config.cost)
        draw = make_object(0, pool).stereo_draws()[0]
        work = engine.geometry_work(draw, SMPMode.SIMULTANEOUS)
        expected = draw.mesh.num_triangles * config.cost.cull_survival
        assert work.triangles_raster == pytest.approx(expected)

    def test_project_viewports_shift_and_clip(self):
        bounds = full_screen(100, 100)
        original = Viewport(40, 10, 60, 30)
        left, right = SMPEngine.project_viewports(original, 10.0, bounds, bounds)
        assert left.x0 == pytest.approx(30.0)
        assert right.x0 == pytest.approx(50.0)

    def test_project_viewports_clip_at_edge(self):
        bounds = full_screen(100, 100)
        original = Viewport(0, 10, 20, 30)
        left, _right = SMPEngine.project_viewports(original, 30.0, bounds, bounds)
        # Fully shifted out: collapses to a zero-width sliver, stays valid.
        assert left.area == 0.0
        assert bounds.x0 <= left.x0 <= bounds.x1


class TestFragmentDemand:
    def test_texel_requests_formula(self):
        cost = CostModel()
        requests, _touches = texture_touches_for_draw((), 1000.0, cost)
        expected = 1000.0 * cost.samples_per_fragment * cost.anisotropic_texels_per_sample
        assert requests == pytest.approx(expected)

    def test_unique_bounded_by_texture_size(self, pool):
        cost = CostModel()
        texture = pool.get_or_create("tiny", 8192)
        _req, touches = texture_touches_for_draw((texture,), 1e7, cost)
        assert touches[0].unique_bytes <= texture.size_bytes

    def test_view_reuse_halves_unique(self, pool):
        cost = CostModel()
        texture = pool.get_or_create("big", 64 * MB)
        _r1, mono = texture_touches_for_draw((texture,), 1e5, cost, view_reuse=1.0)
        _r2, multi = texture_touches_for_draw((texture,), 1e5, cost, view_reuse=2.0)
        assert multi[0].unique_bytes == pytest.approx(mono[0].unique_bytes / 2)

    def test_view_reuse_reduces_stream(self, pool):
        cost = CostModel()
        texture = pool.get_or_create("big2", 64 * MB)
        _r1, mono = texture_touches_for_draw((texture,), 1e6, cost, view_reuse=1.0)
        _r2, multi = texture_touches_for_draw((texture,), 1e6, cost, view_reuse=2.0)
        assert multi[0].stream_bytes < mono[0].stream_bytes

    def test_touch_split_proportional_to_size(self, pool):
        cost = CostModel()
        big = pool.get_or_create("bigger", 4 * MB)
        small = pool.get_or_create("smaller", 1 * MB)
        _r, touches = texture_touches_for_draw((big, small), 1e5, cost)
        by_id = {t.resource.resource_id: t for t in touches}
        assert (
            by_id[("tex", big.texture_id)].stream_bytes
            > by_id[("tex", small.texture_id)].stream_bytes
        )

    def test_depth_and_color(self):
        cost = CostModel()
        z_stream, z_unique, fb = depth_and_color_demand(1000.0, 600.0, cost)
        assert z_stream == pytest.approx(1000.0 * cost.bytes_per_ztest)
        assert z_unique == pytest.approx(600.0 * cost.bytes_per_ztest)
        assert fb == pytest.approx(600.0 * cost.bytes_per_pixel_out)


class TestRasterHelpers:
    def test_tile_count(self):
        assert tile_count(Viewport(0, 0, TILE_EDGE * 2, TILE_EDGE * 3)) == 6

    def test_tile_count_rounds_up(self):
        assert tile_count(Viewport(0, 0, 17, 17)) == 4

    def test_strip_shares_sum_to_one(self):
        strips = vertical_strips(full_screen(100, 100), 4)
        shares = normalize_pixel_shares(
            strip_shares([Viewport(10, 10, 90, 90)], strips)
        )
        assert sum(s.pixel_share for s in shares) == pytest.approx(1.0)

    def test_geometry_broadcast_per_overlap(self):
        strips = vertical_strips(full_screen(100, 100), 4)
        shares = strip_shares([Viewport(10, 10, 90, 90)], strips)
        assert all(s.geometry_share == 1.0 for s in shares)
        assert len(shares) == 4

    def test_small_object_single_strip(self):
        strips = vertical_strips(full_screen(100, 100), 4)
        shares = strip_shares([Viewport(1, 1, 20, 20)], strips)
        assert len(shares) == 1
        assert shares[0].strip_index == 0


class TestCharacterizer:
    def test_multiview_shares_vertices(self, characterizer, pool):
        obj = make_object(0, pool)
        multi = characterizer.characterize(obj.multiview_draw(), SMPMode.SIMULTANEOUS)
        seq = characterizer.characterize(obj.multiview_draw(), SMPMode.SEQUENTIAL)
        assert multi.vertices == pytest.approx(seq.vertices / 2)
        assert multi.fragments == pytest.approx(seq.fragments)

    def test_stereo_pair_covers_both_eyes(self, characterizer, pool):
        obj = make_object(0, pool)
        pair = characterizer.characterize_stereo_pair(obj.stereo_draws()[0])
        assert len(pair) == 2
        total = sum(u.fragments for u in pair)
        assert total == pytest.approx(obj.fragments(Eye.BOTH))

    def test_command_bytes_attached(self, characterizer, pool):
        unit = characterizer.characterize(make_object(0, pool).multiview_draw())
        assert unit.command_bytes > 0

    def test_vertex_touch_resource_per_object(self, characterizer, pool):
        a = characterizer.characterize(make_object(0, pool).multiview_draw())
        b = characterizer.characterize(make_object(1, pool).multiview_draw())
        assert (
            a.vertex_touches[0].resource.resource_id
            != b.vertex_touches[0].resource.resource_id
        )


class TestWorkUnit:
    def test_split_scales_everything(self, characterizer, pool):
        unit = characterizer.characterize(make_object(0, pool).multiview_draw())
        half = unit.split(0.5)
        assert half.fragments == pytest.approx(unit.fragments / 2)
        assert half.vertices == pytest.approx(unit.vertices / 2)
        assert half.texture_stream_bytes == pytest.approx(
            unit.texture_stream_bytes / 2
        )
        assert half.fraction == pytest.approx(0.5)

    def test_split_bounds(self, characterizer, pool):
        unit = characterizer.characterize(make_object(0, pool).multiview_draw())
        with pytest.raises(ValueError):
            unit.split(0.0)
        with pytest.raises(ValueError):
            unit.split(1.5)

    def test_screen_share_keeps_geometry(self, characterizer, pool):
        unit = characterizer.characterize(make_object(0, pool).multiview_draw())
        slice_unit = unit.with_screen_share(
            pixel_share=0.25, geometry_share=1.0, unique_inflation=2.0,
            label_suffix="s0",
        )
        assert slice_unit.vertices == pytest.approx(unit.vertices)
        assert slice_unit.fragments == pytest.approx(unit.fragments / 4)

    def test_screen_share_inflates_unique(self, characterizer, pool):
        unit = characterizer.characterize(make_object(0, pool).multiview_draw())
        plain = unit.with_screen_share(0.25, 1.0, 1.0, "a")
        inflated = unit.with_screen_share(0.25, 1.0, 2.0, "b")
        assert inflated.texture_unique_bytes == pytest.approx(
            2 * plain.texture_unique_bytes
        )

    def test_screen_share_unique_capped(self, characterizer, pool):
        unit = characterizer.characterize(make_object(0, pool).multiview_draw())
        capped = unit.with_screen_share(0.5, 1.0, 10.0, "c")
        assert capped.texture_unique_bytes <= unit.texture_unique_bytes * 1.0001

    def test_merge_sums_work(self, characterizer, pool):
        units = [
            characterizer.characterize(make_object(i, pool).multiview_draw())
            for i in range(3)
        ]
        merged = merge_units("batch", tuple(units))
        assert merged.fragments == pytest.approx(sum(u.fragments for u in units))
        assert merged.draw_count == pytest.approx(3.0)

    def test_merge_dedups_shared_texture_unique(self, characterizer, pool):
        # Both objects bind the same "stone" texture.
        units = [
            characterizer.characterize(
                make_object(i, pool, textures=(("stone", MB),)).multiview_draw()
            )
            for i in range(2)
        ]
        merged = merge_units("batch", tuple(units))
        summed_unique = sum(u.texture_unique_bytes for u in units)
        assert merged.texture_unique_bytes < summed_unique
        # Streams still add (both objects sample).
        assert merged.texture_stream_bytes == pytest.approx(
            sum(u.texture_stream_bytes for u in units)
        )

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_units("empty", ())


class TestTiming:
    def test_all_stages_positive(self, config, characterizer, pool):
        unit = characterizer.characterize(make_object(0, pool).multiview_draw())
        breakdown = price_work_unit(unit, config.gpm, config.cost)
        assert breakdown.vertex_cycles > 0
        assert breakdown.fragment_cycles > 0
        assert breakdown.rop_cycles > 0

    def test_compute_is_max_plus_overhead(self, config, characterizer, pool):
        unit = characterizer.characterize(make_object(0, pool).multiview_draw())
        b = price_work_unit(unit, config.gpm, config.cost)
        stages = [
            b.vertex_cycles, b.setup_cycles, b.raster_cycles,
            b.fragment_cycles, b.texture_cycles, b.rop_cycles,
        ]
        assert b.compute_cycles == pytest.approx(max(stages) + b.overhead_cycles)
        assert b.serial_cycles >= b.compute_cycles

    def test_bottleneck_label(self, config, characterizer, pool):
        unit = characterizer.characterize(
            make_object(0, pool, triangles=50_000, w=30, h=30).multiview_draw()
        )
        b = price_work_unit(unit, config.gpm, config.cost)
        assert b.bottleneck == "setup"

    def test_fragment_heavy_draw(self, config, characterizer, pool):
        unit = characterizer.characterize(
            make_object(0, pool, triangles=32, w=900, h=700).multiview_draw()
        )
        b = price_work_unit(unit, config.gpm, config.cost)
        assert b.bottleneck in ("fragment", "raster", "texture")

    def test_bigger_gpm_is_faster(self, config, characterizer, pool):
        import dataclasses as dc

        unit = characterizer.characterize(make_object(0, pool).multiview_draw())
        small = price_work_unit(unit, config.gpm, config.cost)
        big_gpm = dc.replace(config.gpm, num_sms=16)
        big = price_work_unit(unit, big_gpm, config.cost)
        assert big.fragment_cycles < small.fragment_cycles


class TestCompositionPricing:
    def test_master_uses_one_gpm_rops(self, config):
        cost = master_composition(32_000.0, config.gpm)
        assert cost.rop_cycles == pytest.approx(1000.0)

    def test_distributed_divides_by_gpms(self, config):
        m = master_composition(32_000.0, config.gpm)
        d = distributed_composition(32_000.0, config.gpm, 4)
        assert d.rop_cycles == pytest.approx(m.rop_cycles / 4)

    def test_crossing_fraction(self):
        assert crossing_fraction(4) == pytest.approx(0.75)
        assert crossing_fraction(1) == 0.0
