"""The unified Session/Sweep API: builders, grids, parallelism, export."""

import csv
import io
import json

import pytest

from repro.config import baseline_system
from repro.frameworks.base import build_framework, register_framework
from repro.memory.link import TrafficType
from repro.session import (
    FAST,
    ExperimentConfig,
    ResultSet,
    RunSpec,
    Session,
    SessionError,
    SpecError,
    Sweep,
)

#: Two tiny workloads keep these tests quick.
TINY = ExperimentConfig(
    draw_scale=0.08, num_frames=2, workloads=("DM3-640", "WE")
)


def tiny_sweep() -> Sweep:
    return Sweep().preset(TINY).frameworks("baseline", "oo-vr")


class TestSessionBuilder:
    def test_run_matches_direct_framework_call(self):
        session = Session().preset(TINY).framework("oo-vr").workload("WE")
        via_session = session.run()
        direct = build_framework("oo-vr").render_scene(session.scene())
        assert via_session.single_frame_cycles == direct.single_frame_cycles
        assert (
            via_session.traffic.total_bytes == direct.traffic.total_bytes
        )

    def test_missing_framework_rejected(self):
        with pytest.raises(SessionError, match="no framework"):
            Session().workload("WE").spec()

    def test_missing_workload_rejected(self):
        with pytest.raises(SessionError, match="no workload"):
            Session().framework("oo-vr").spec()

    def test_unknown_framework_rejected(self):
        with pytest.raises(SpecError, match="unknown framework"):
            Session().framework("nope").workload("WE").spec()

    def test_unknown_workload_rejected(self):
        with pytest.raises(SpecError, match="unknown workload"):
            Session().framework("oo-vr").workload("nope").spec()

    def test_bad_frames_rejected(self):
        with pytest.raises(SessionError):
            Session().frames(0)

    def test_bad_scale_rejected(self):
        with pytest.raises(SessionError):
            Session().scale(0.0)

    def test_fast_preset_applied(self):
        spec = Session().framework("oo-vr").workload("WE").fast().spec()
        assert spec.draw_scale == FAST.draw_scale
        assert spec.num_frames == FAST.num_frames

    def test_scene_memoised_across_sessions(self):
        a = Session().preset(TINY).workload("WE").scene()
        b = Session().preset(TINY).workload("WE").scene()
        assert a is b

    def test_last_framework_exposed(self):
        session = Session().preset(TINY).framework("oo-vr").workload("WE")
        session.run()
        assert session.last_framework is not None
        assert session.last_framework.name == "oo-vr"


class TestSweepGrid:
    def test_cartesian_expansion_order(self):
        specs = (
            Sweep()
            .frameworks("baseline", "oo-vr")
            .workloads("DM3-640", "WE")
            .specs()
        )
        cells = [(s.framework, s.workload) for s in specs]
        assert cells == [
            ("baseline", "DM3-640"),
            ("baseline", "WE"),
            ("oo-vr", "DM3-640"),
            ("oo-vr", "WE"),
        ]

    def test_config_axis_outermost(self):
        sweep = Sweep().frameworks("baseline").workloads("WE")
        sweep.config(baseline_system(), label="a")
        sweep.config(baseline_system(num_gpms=2), label="b")
        assert [s.config_label for s in sweep.specs()] == ["a", "b"]

    def test_preset_supplies_default_workloads(self):
        specs = Sweep().preset(TINY).frameworks("baseline").specs()
        assert [s.workload for s in specs] == list(TINY.workloads)

    def test_empty_frameworks_rejected(self):
        with pytest.raises(SessionError, match="no frameworks"):
            Sweep().workloads("WE").specs()

    def test_duplicate_framework_rejected(self):
        with pytest.raises(SessionError, match="listed twice"):
            Sweep().frameworks("oo-vr", "oo-vr")

    def test_duplicate_config_label_rejected(self):
        sweep = Sweep().config(baseline_system(), label="x")
        with pytest.raises(SessionError, match="listed twice"):
            sweep.config(baseline_system(num_gpms=2), label="x")

    def test_unknown_name_rejected_at_expansion(self):
        with pytest.raises(SpecError):
            Sweep().frameworks("nope").workloads("WE").specs()

    def test_bad_jobs_rejected(self):
        with pytest.raises(SessionError):
            tiny_sweep().run(jobs=0)


class TestSweepExecution:
    def test_parallel_equals_serial(self):
        serial = tiny_sweep().run(jobs=1)
        parallel = tiny_sweep().run(jobs=2)
        assert serial.to_records() == parallel.to_records()
        assert serial.to_csv() == parallel.to_csv()

    def test_by_workload_matches_legacy_suite_shape(self):
        results = tiny_sweep().run().by_workload(framework="oo-vr")
        assert list(results) == list(TINY.workloads)
        direct = build_framework("oo-vr").render_scene(
            Session().preset(TINY).workload("WE").scene()
        )
        assert results["WE"].single_frame_cycles == direct.single_frame_cycles

    def test_select_and_get(self):
        results = tiny_sweep().run()
        subset = results.select(framework="baseline")
        assert len(subset) == 2
        one = results.get(framework="oo-vr", workload="WE")
        assert one.framework == "oo-vr"
        with pytest.raises(KeyError):
            results.get(framework="oo-vr")  # two workloads match

    def test_select_rejects_typo_field(self):
        results = tiny_sweep().run()
        with pytest.raises(KeyError, match="framwork"):
            results.select(framwork="oo-vr")
        with pytest.raises(KeyError, match="valid fields"):
            results.get(framwork="oo-vr", workload="WE")
        # An empty result set still validates keys.
        with pytest.raises(KeyError):
            ResultSet([]).select(framwork="oo-vr")

    def test_by_workload_rejects_ambiguous_subset(self):
        results = tiny_sweep().run()
        with pytest.raises(ValueError, match="ambiguous"):
            results.by_workload()  # two frameworks clobber each key
        narrowed = results.by_workload(framework="oo-vr")
        assert list(narrowed) == list(TINY.workloads)


class TestResultSetMath:
    def test_normalize_to_speedups(self):
        results = tiny_sweep().run()
        speedups = results.normalize_to(
            "baseline", "single_frame_cycles", invert=True
        )
        assert set(speedups) == {"baseline", "oo-vr"}
        assert all(
            value == pytest.approx(1.0)
            for value in speedups["baseline"].values()
        )
        assert all(value > 1.0 for value in speedups["oo-vr"].values())

    def test_normalize_to_missing_baseline(self):
        with pytest.raises(KeyError):
            tiny_sweep().run().normalize_to("nope", "single_frame_cycles")

    def test_geomean_by_tuple_key(self):
        means = tiny_sweep().run().geomean_by(
            "single_frame_cycles", by=("framework", "config_label")
        )
        assert ("oo-vr", "base") in means
        assert all(value > 0 for value in means.values())

    def test_geomean_by_all_zero_group_is_zero(self):
        # On a single-GPM machine nothing crosses the links, so every
        # traffic column is zero; the per-framework geomean must report
        # 0.0 rather than raise.
        results = (
            Sweep()
            .preset(TINY)
            .workloads("WE")
            .frameworks("baseline", "oo-vr")
            .config(baseline_system(num_gpms=1), label="1gpm")
            .run()
        )
        means = results.geomean_by("traffic_texture")
        assert means == {"baseline": 0.0, "oo-vr": 0.0}

    def test_geomean_rejects_negative_values(self):
        from repro.stats.metrics import geomean

        with pytest.raises(ValueError, match="non-negative"):
            geomean([1.0, -2.0])
        with pytest.raises(ValueError):
            geomean([0.0, 0.0])
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_pivot_shape(self):
        table = tiny_sweep().run().pivot("throughput_fps")
        assert list(table["baseline"]) == list(TINY.workloads)


class TestResultSetExport:
    def test_records_share_scene_to_dict_path(self):
        results = tiny_sweep().run()
        record = results.to_records()[0]
        spec, scene = next(iter(results))
        summary = scene.to_dict(include_frames=False)
        assert record["single_frame_cycles"] == summary["single_frame_cycles"]
        assert record["framework"] == spec.framework
        assert record["traffic_texture"] == summary["traffic"].get(
            "texture", 0.0
        )

    def test_json_round_trip(self, tmp_path):
        results = tiny_sweep().run()
        path = tmp_path / "out.json"
        text = results.to_json(str(path))
        assert json.loads(text) == results.to_records()
        assert json.loads(path.read_text()) == results.to_records()

    def test_csv_round_trip(self, tmp_path):
        results = tiny_sweep().run()
        path = tmp_path / "out.csv"
        text = results.to_csv(str(path))
        assert path.read_text() == text
        parsed = list(csv.DictReader(io.StringIO(text)))
        records = results.to_records()
        assert len(parsed) == len(records)
        for row, record in zip(parsed, records):
            assert row["framework"] == record["framework"]
            assert float(row["single_frame_cycles"]) == pytest.approx(
                record["single_frame_cycles"]
            )
            assert int(row["num_frames"]) == record["num_frames"]

    def test_empty_resultset_exports(self):
        empty = ResultSet([])
        assert empty.to_records() == []
        assert empty.to_csv() == ""


class TestSerialization:
    def test_frame_to_dict(self):
        result = Session().preset(TINY).framework("oo-vr").workload("WE").run()
        frame = result.frames[0].to_dict()
        assert frame["cycles"] == result.frames[0].cycles
        assert set(frame["traffic"]) <= {t.value for t in TrafficType}
        assert frame["load_balance_ratio"] >= 1.0

    def test_scene_to_dict_frames_toggle(self):
        result = Session().preset(TINY).framework("oo-vr").workload("WE").run()
        full = result.to_dict()
        assert len(full["frames"]) == TINY.num_frames
        summary = result.to_dict(include_frames=False)
        assert "frames" not in summary
        assert summary["num_frames"] == TINY.num_frames


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        from repro.frameworks.single import SingleKernelBaseline

        with pytest.raises(ValueError, match="already registered"):
            register_framework("baseline")(type("Fake", (), {}))
        # Re-decorating the registered class itself stays idempotent.
        register_framework("baseline")(SingleKernelBaseline)
        assert build_framework("baseline").name == "baseline"


class TestSceneMemoisationAliasing:
    def test_cached_scene_not_mutated_across_frameworks(self):
        """The lru_cache hands every framework the *same* Scene object;
        rendering must never mutate it (or the second framework would
        see a different input than the first)."""
        from repro.scene.benchmarks import make_benchmark_scene
        from repro.session.spec import cached_scene

        shared = cached_scene("WE", 2, 2019, 0.08)
        shared_base = build_framework("baseline").render_scene(shared)
        shared_oovr = build_framework("oo-vr").render_scene(shared)

        fresh_base = build_framework("baseline").render_scene(
            make_benchmark_scene("WE", num_frames=2, seed=2019, draw_scale=0.08)
        )
        fresh_oovr = build_framework("oo-vr").render_scene(
            make_benchmark_scene("WE", num_frames=2, seed=2019, draw_scale=0.08)
        )
        for shared_result, fresh_result in (
            (shared_base, fresh_base),
            (shared_oovr, fresh_oovr),
        ):
            assert (
                shared_result.to_dict() == fresh_result.to_dict()
            ), "memoised scene was mutated by a previous render"


class TestFrameworkVariants:
    def test_ablation_variant_builds(self):
        framework = build_framework("oo-vr:no-dhc")
        assert framework.name == "oo-vr:no-dhc"
        assert not framework.features.distributed_composition

    def test_middleware_variants_build(self):
        tsl = build_framework("oo-vr:tsl=0.3")
        assert tsl._builder._middleware.tsl_threshold == 0.3
        cap = build_framework("oo-vr:cap=8192")
        assert cap._builder._middleware.triangle_limit == 8192
        both = build_framework("oo-vr:tsl=0.3:cap=8192")
        assert both._builder._middleware.tsl_threshold == 0.3
        assert both._builder._middleware.triangle_limit == 8192

    def test_topology_variant_installs_fabric(self):
        from repro.extensions.topology import RoutedLinkFabric, Topology

        framework = build_framework("baseline:topo=ring")
        system = framework.make_system()
        assert isinstance(system.fabric, RoutedLinkFabric)
        assert system.fabric.topology is Topology.RING

    def test_fov_variant_renders_cheaper(self):
        scene = (
            Session().preset(TINY).workload("DM3-640").scene()
        )
        plain = build_framework("oo-vr").render_scene(scene)
        foveated = build_framework("oo-vr:fov").render_scene(scene)
        assert foveated.single_frame_cycles < plain.single_frame_cycles

    def test_variant_specs_validate_and_sweep(self):
        spec = RunSpec(
            framework="oo-vr:no-stealing", workload="WE"
        ).validate()
        assert spec.framework == "oo-vr:no-stealing"
        results = (
            Sweep()
            .preset(TINY)
            .workloads("WE")
            .frameworks("oo-vr", "oo-vr:software-only")
            .run()
        )
        records = {r["framework"]: r for r in results.to_records()}
        assert (
            records["oo-vr:software-only"]["single_frame_cycles"]
            >= records["oo-vr"]["single_frame_cycles"]
        )

    def test_bad_variants_rejected(self):
        with pytest.raises(SpecError):
            RunSpec(framework="oo-vr:nope", workload="WE").validate()
        with pytest.raises(SpecError):
            # Ablation modifiers only apply to oo-vr.
            RunSpec(framework="baseline:no-dhc", workload="WE").validate()
        with pytest.raises(SpecError):
            RunSpec(framework="oo-vr:tsl=abc", workload="WE").validate()
        with pytest.raises(SpecError):
            RunSpec(
                framework="baseline:topo=torus", workload="WE"
            ).validate()
        with pytest.raises(SpecError):
            # Two constructor modifiers cannot combine.
            RunSpec(
                framework="oo-vr:no-dhc:tsl=0.3", workload="WE"
            ).validate()
        with pytest.raises(KeyError):
            build_framework("nope:topo=ring")


class TestRunSpec:
    def test_spec_is_picklable(self):
        import pickle

        spec = RunSpec(
            framework="oo-vr", workload="WE", config=baseline_system()
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_validate_rejects_bad_fields(self):
        with pytest.raises(SpecError):
            RunSpec(framework="oo-vr", workload="WE", num_frames=0).validate()
        with pytest.raises(SpecError):
            RunSpec(framework="oo-vr", workload="WE", draw_scale=-1).validate()
