"""Tests for cameras, stereo rendering modes, and validation."""

import math

import numpy as np
import pytest

from repro.render.camera import Camera, StereoCamera
from repro.render.math3d import translate
from repro.render.mesh3d import make_box, make_checker_ground, make_icosphere
from repro.render.raster import checker_shader
from repro.render.stereo import (
    SceneObject3D,
    StereoRenderer,
    StereoRenderMode,
)
from repro.render.validate import validate_scene
from repro.scene.objects import Eye


@pytest.fixture()
def camera():
    return StereoCamera(
        Camera(position=(0.0, 1.5, 4.0), target=(0.0, 1.0, 0.0), aspect=1.0),
        ipd=0.12,
    )


@pytest.fixture()
def scene_objects():
    return [
        SceneObject3D(
            "ground",
            make_checker_ground(8.0, 4),
            translate(0, 0, 0),
            checker_shader((90, 110, 90), (40, 60, 40)),
            "grass",
        ),
        SceneObject3D(
            "crate",
            make_box(1.0, 1.0, 1.0),
            translate(0.0, 0.5, 0.0),
            checker_shader((200, 160, 90), (120, 90, 40), 2),
            "wood",
        ),
        SceneObject3D(
            "orb",
            make_icosphere(0.4, 1),
            translate(-0.9, 1.0, -0.5),
            checker_shader((220, 60, 60), (150, 30, 30)),
            "orb",
        ),
    ]


class TestCameras:
    def test_view_projection_shapes(self, camera):
        left, right = camera.view_projections()
        assert left.shape == right.shape == (4, 4)
        assert not np.allclose(left, right)

    def test_eye_cameras_separated_by_ipd(self, camera):
        left = np.asarray(camera.eye_camera("left").position)
        right = np.asarray(camera.eye_camera("right").position)
        assert math.isclose(float(np.linalg.norm(right - left)), camera.ipd)

    def test_eye_name_validated(self, camera):
        with pytest.raises(ValueError):
            camera.eye_camera("middle")

    def test_ipd_validated(self):
        with pytest.raises(ValueError):
            StereoCamera(Camera(position=(0, 0, 1)), ipd=0.0)

    def test_reprojection_offset_positive(self, camera):
        assert camera.reprojection_offset_ndc() > 0.0

    def test_reprojection_offset_shrinks_with_distance(self):
        near = StereoCamera(
            Camera(position=(0, 0, 2.0), target=(0, 0, 0)), ipd=0.1
        )
        far = StereoCamera(
            Camera(position=(0, 0, 8.0), target=(0, 0, 0)), ipd=0.1
        )
        assert near.reprojection_offset_ndc() > far.reprojection_offset_ndc()


class TestStereoRenderer:
    def test_smp_and_sequential_pixel_identical(self, camera, scene_objects):
        renderer = StereoRenderer(camera, 96, 96)
        fb_seq, _ = renderer.render(scene_objects, StereoRenderMode.SEQUENTIAL)
        fb_smp, _ = renderer.render(scene_objects, StereoRenderMode.SMP)
        np.testing.assert_array_equal(fb_seq.color, fb_smp.color)

    def test_smp_halves_vertex_transforms(self, camera, scene_objects):
        renderer = StereoRenderer(camera, 96, 96)
        _, seq = renderer.render(scene_objects, StereoRenderMode.SEQUENTIAL)
        _, smp = renderer.render(scene_objects, StereoRenderMode.SMP)
        assert smp.total.vertices_transformed * 2 == seq.total.vertices_transformed

    def test_smp_keeps_fragment_counts(self, camera, scene_objects):
        renderer = StereoRenderer(camera, 96, 96)
        _, seq = renderer.render(scene_objects, StereoRenderMode.SEQUENTIAL)
        _, smp = renderer.render(scene_objects, StereoRenderMode.SMP)
        assert smp.total.fragments_shaded == seq.total.fragments_shaded
        assert smp.total.pixels_written == seq.total.pixels_written

    def test_both_eyes_receive_content(self, camera, scene_objects):
        renderer = StereoRenderer(camera, 96, 96)
        left, right, _ = renderer.render_eye_buffers(scene_objects)
        assert left.covered_pixels() > 0
        assert right.covered_pixels() > 0

    def test_eyes_differ_by_parallax(self, camera, scene_objects):
        renderer = StereoRenderer(camera, 96, 96)
        left, right, _ = renderer.render_eye_buffers(scene_objects)
        assert not np.array_equal(left.color, right.color)

    def test_reprojection_shades_no_new_fragments(self, camera, scene_objects):
        renderer = StereoRenderer(camera, 96, 96)
        _, stats = renderer.render(scene_objects, StereoRenderMode.REPROJECTED)
        assert stats.right.fragments_shaded == 0
        assert stats.right.vertices_transformed == 0
        assert stats.right.pixels_written > 0

    def test_reprojection_approximates_far_content(self, camera):
        # A distant object reprojects almost perfectly; compare coverage.
        distant = [
            SceneObject3D(
                "wall",
                make_box(6.0, 3.0, 0.2),
                translate(0, 1.5, -12.0),
                checker_shader(),
                "brick",
            )
        ]
        renderer = StereoRenderer(camera, 128, 128)
        _, true_stats = renderer.render(distant, StereoRenderMode.SEQUENTIAL)
        packed, re_stats = renderer.render(distant, StereoRenderMode.REPROJECTED)
        true_pixels = true_stats.right.pixels_written
        re_pixels = re_stats.right.pixels_written
        assert abs(true_pixels - re_pixels) / true_pixels < 0.25

    def test_render_rejects_empty_scene(self, camera):
        renderer = StereoRenderer(camera, 32, 32)
        with pytest.raises(ValueError):
            renderer.render([])

    def test_resolution_validated(self, camera):
        with pytest.raises(ValueError):
            StereoRenderer(camera, 0, 32)

    def test_summary_mentions_mode(self, camera, scene_objects):
        renderer = StereoRenderer(camera, 64, 64)
        _, stats = renderer.render(scene_objects, StereoRenderMode.SMP)
        assert "smp" in stats.summary()


class TestValidation:
    def test_validation_produces_model_twins(self, camera, scene_objects):
        report = validate_scene(scene_objects, camera, 96, 96)
        assert len(report.render_objects) == len(scene_objects)
        assert report.mean_fragment_error < 0.05

    def test_model_twin_fragments_match_measured(self, camera, scene_objects):
        report = validate_scene(scene_objects, camera, 96, 96)
        for validation, model in zip(report.objects, report.render_objects):
            assert math.isclose(
                model.fragments(Eye.BOTH),
                validation.modelled_fragments,
            )

    def test_shared_texture_names_interned(self, camera):
        twin_pillars = [
            SceneObject3D(
                "p1", make_box(0.4, 2.0, 0.4), translate(-1, 1, 0), None, "stone"
            ),
            SceneObject3D(
                "p2", make_box(0.4, 2.0, 0.4), translate(1, 1, 0), None, "stone"
            ),
        ]
        report = validate_scene(twin_pillars, camera, 64, 64)
        a, b = report.render_objects
        assert a.textures[0] is b.textures[0]

    def test_offscreen_object_excluded_from_models(self, camera):
        objs = [
            SceneObject3D(
                "vis", make_box(1, 1, 1), translate(0, 1, 0), None, "a"
            ),
            SceneObject3D(
                "hidden", make_box(1, 1, 1), translate(100, 0, 0), None, "b"
            ),
        ]
        report = validate_scene(objs, camera, 64, 64)
        assert len(report.objects) == 2
        assert len(report.render_objects) == 1
        assert report.objects[1].measured_pixels == 0

    def test_table_renders_all_objects(self, camera, scene_objects):
        report = validate_scene(scene_objects, camera, 64, 64)
        table = report.table()
        for obj in scene_objects:
            assert obj.name in table

    def test_resolution_validated(self, camera, scene_objects):
        with pytest.raises(ValueError):
            validate_scene(scene_objects, camera, 0, 64)
