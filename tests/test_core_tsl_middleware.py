"""The OO-VR software layer: TSL (Eq. 1), programming model, middleware."""

import pytest

from repro.core.middleware import Batch, OOMiddleware
from repro.core.programming_model import OOApplication
from repro.core.tsl import should_group, texture_sharing_level
from repro.scene.geometry import Viewport
from repro.scene.objects import Eye
from tests.conftest import MB, make_object


class TestTSL:
    def test_identical_single_texture_full_sharing(self, pool):
        textures = (pool.get_or_create("a", MB),)
        assert texture_sharing_level(textures, textures) == pytest.approx(1.0)

    def test_identical_pair_is_mean_of_shares(self, pool):
        # Eq. 1 literally: for identical equal-share sets the TSL is the
        # weighted mean of Pn(t) = 0.5, not 1.0 — a quirk of the paper's
        # formula that the middleware's strict > 0.5 threshold inherits.
        textures = (pool.get_or_create("a", MB), pool.get_or_create("b", MB))
        assert texture_sharing_level(textures, textures) == pytest.approx(0.5)

    def test_disjoint_sets_zero(self, pool):
        a = (pool.get_or_create("a", MB),)
        b = (pool.get_or_create("b", MB),)
        assert texture_sharing_level(a, b) == 0.0

    def test_range_bounds(self, pool):
        a = (pool.get_or_create("a", MB), pool.get_or_create("b", 2 * MB))
        b = (pool.get_or_create("b", 2 * MB), pool.get_or_create("c", MB))
        tsl = texture_sharing_level(a, b)
        assert 0.0 <= tsl <= 1.0

    def test_equation_value(self, pool):
        # Root: a (1MB), b (1MB) -> Pr(a) = Pr(b) = 0.5.
        # Target: a (1MB), c (3MB) -> Pn(a) = 0.25.
        # Shared = {a}: TSL = Pr(a)*Pn(a) / Pr(a) = Pn(a) = 0.25.
        a = pool.get_or_create("a", MB)
        b = pool.get_or_create("b", MB)
        c = pool.get_or_create("c", 3 * MB)
        assert texture_sharing_level((a, b), (a, c)) == pytest.approx(0.25)

    def test_asymmetry(self, pool):
        a = pool.get_or_create("a", MB)
        b = pool.get_or_create("b", 3 * MB)
        c = pool.get_or_create("c", MB)
        left = texture_sharing_level((a, b), (a, c))
        right = texture_sharing_level((a, c), (a, b))
        assert left != pytest.approx(right)

    def test_duplicates_do_not_inflate(self, pool):
        a = pool.get_or_create("a", MB)
        b = pool.get_or_create("b", MB)
        assert texture_sharing_level((a, a, b), (a, b)) == pytest.approx(
            texture_sharing_level((a, b), (a, b))
        )

    def test_should_group_threshold(self, pool):
        a = pool.get_or_create("a", MB)
        assert should_group((a,), (a,))
        assert not should_group((a,), (a,), threshold=1.0)

    def test_empty_sets(self):
        assert texture_sharing_level((), ()) == 0.0


class TestMiddleware:
    def test_shared_texture_objects_grouped(self, pool):
        objects = [
            make_object(0, pool, textures=(("stone", MB),)),
            make_object(1, pool, textures=(("stone", MB),)),
            make_object(2, pool, textures=(("cloth", MB),)),
        ]
        batches = OOMiddleware().build_batches(objects)
        assert len(batches) == 2
        assert batches[0].object_ids == (0, 1)
        assert batches[1].object_ids == (2,)

    def test_all_objects_covered_exactly_once(self, tiny_scene):
        frame = tiny_scene.frames[0]
        batches = OOMiddleware().build_batches(frame.objects)
        ids = [oid for b in batches for oid in b.object_ids]
        assert sorted(ids) == sorted(o.object_id for o in frame.objects)

    def test_triangle_cap_respected(self, pool):
        objects = [
            make_object(i, pool, textures=(("stone", MB),), triangles=1500)
            for i in range(10)
        ]
        batches = OOMiddleware(triangle_limit=4096).build_batches(objects)
        for batch in batches:
            # The cap stops growth once exceeded; a batch may overshoot
            # by at most one object's triangles.
            assert batch.total_triangles <= 4096 + 1500

    def test_dependency_merged_despite_low_tsl(self, pool):
        parent = make_object(0, pool, textures=(("stone", MB),))
        child = make_object(1, pool, textures=(("glass", MB),), depends_on=0)
        batches = OOMiddleware().build_batches([parent, child])
        assert len(batches) == 1
        assert batches[0].object_ids == (0, 1)

    def test_dependency_raises_triangle_cap(self, pool):
        parent = make_object(0, pool, textures=(("stone", MB),), triangles=4000)
        child = make_object(
            1, pool, textures=(("stone", MB),), triangles=4000, depends_on=0
        )
        batches = OOMiddleware(triangle_limit=4096).build_batches([parent, child])
        assert len(batches) == 1

    def test_draw_order_preserved_within_batch(self, pool):
        objects = [
            make_object(i, pool, textures=(("stone", MB),), triangles=100)
            for i in range(5)
        ]
        batches = OOMiddleware().build_batches(objects)
        for batch in batches:
            assert list(batch.object_ids) == sorted(batch.object_ids)

    def test_batch_textures_union(self, pool):
        # moss is small so Pn(stone) = 2/3 > 0.5 and the objects group.
        objects = [
            make_object(0, pool, textures=(("stone", MB), ("dirt", MB // 4))),
            make_object(1, pool, textures=(("stone", MB), ("moss", MB // 2))),
        ]
        batches = OOMiddleware().build_batches(objects)
        assert len(batches) == 1
        names = {t.name for t in batches[0].textures}
        assert names == {"stone", "dirt", "moss"}

    def test_empty_input_empty_output(self):
        assert OOMiddleware().build_batches([]) == []

    def test_sharing_captured_metric(self, pool):
        objects = [
            make_object(0, pool, textures=(("stone", MB),)),
            make_object(1, pool, textures=(("stone", MB),)),
        ]
        batches = OOMiddleware().build_batches(objects)
        assert OOMiddleware.sharing_captured(batches) == pytest.approx(1.0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            OOMiddleware(tsl_threshold=1.0)
        with pytest.raises(ValueError):
            OOMiddleware(triangle_limit=0)

    def test_batch_cannot_be_empty(self):
        with pytest.raises(ValueError):
            Batch(batch_id=0, objects=())


class TestProgrammingModel:
    def test_builder_produces_frame(self):
        app = OOApplication(1280, 1024)
        app.object("pillar1").mesh(300, 500).texture("stone", MB).viewports(
            Viewport(100, 100, 300, 400), Viewport(120, 100, 320, 400)
        ).add()
        app.object("flag").mesh(100, 150).texture("cloth", MB // 2).viewports(
            Viewport(400, 50, 500, 200), Viewport(415, 50, 515, 200)
        ).add()
        frame = app.frame()
        assert len(frame.objects) == 2
        assert frame.objects[0].name == "pillar1"

    def test_texture_pool_shared_across_objects(self):
        app = OOApplication(640, 480)
        a = (
            app.object("a").mesh(10, 10).texture("stone", MB)
            .viewports(Viewport(0, 0, 10, 10), Viewport(1, 0, 11, 10)).add()
        )
        b = (
            app.object("b").mesh(10, 10).texture("stone", MB)
            .viewports(Viewport(0, 0, 10, 10), Viewport(1, 0, 11, 10)).add()
        )
        assert a.textures[0] is b.textures[0]

    def test_duplicate_name_rejected(self):
        app = OOApplication(640, 480)
        app.object("a").mesh(10, 10).texture("t", MB).viewports(
            Viewport(0, 0, 10, 10), Viewport(1, 0, 11, 10)
        ).add()
        with pytest.raises(ValueError):
            app.object("a")

    def test_dependency_by_name(self):
        app = OOApplication(640, 480)
        app.object("base").mesh(10, 10).texture("t", MB).viewports(
            Viewport(0, 0, 10, 10), Viewport(1, 0, 11, 10)
        ).add()
        child = (
            app.object("decal").mesh(10, 10).texture("t", MB)
            .after("base")
            .viewports(Viewport(0, 0, 10, 10), Viewport(1, 0, 11, 10))
            .add()
        )
        assert child.depends_on == 0

    def test_missing_mesh_rejected(self):
        app = OOApplication(640, 480)
        builder = app.object("x").texture("t", MB).viewports(
            Viewport(0, 0, 10, 10), Viewport(1, 0, 11, 10)
        )
        with pytest.raises(ValueError):
            builder.add()

    def test_auto_viewports_shift(self):
        app = OOApplication(640, 480)
        obj = (
            app.object("auto").mesh(10, 10).texture("t", MB)
            .auto_viewports(Viewport(300, 100, 340, 200)).add()
        )
        assert obj.viewport_left is not None
        assert obj.viewport_right is not None
        assert obj.viewport_left.x0 < obj.viewport_right.x0

    def test_multiview_draws_one_per_object(self):
        app = OOApplication(640, 480)
        for i in range(3):
            app.object(f"o{i}").mesh(10, 10).texture("t", MB).viewports(
                Viewport(0, 0, 10, 10), Viewport(1, 0, 11, 10)
            ).add()
        draws = app.multiview_draws()
        assert len(draws) == 3
        assert all(d.eye is Eye.BOTH for d in draws)

    def test_from_stereo_frame(self, small_frame):
        app = OOApplication.from_stereo_frame(small_frame)
        assert len(app.frame().objects) == len(small_frame.objects)

    def test_from_mono_frame_projects_both_eyes(self, small_frame):
        app = OOApplication.from_mono_frame(small_frame)
        for obj in app.frame().objects:
            assert obj.viewport_left is not None
            assert obj.viewport_right is not None

    def test_empty_app_has_no_frame(self):
        with pytest.raises(ValueError):
            OOApplication(640, 480).frame()
