"""Tests for the architecture extensions (ATW, topology, migration,
foveation, HBM scaling)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import baseline_system
from repro.extensions import (
    ATWConfig,
    FoveationConfig,
    MigrationConfig,
    MigrationEngine,
    RoutedLinkFabric,
    Topology,
    atw_study,
    foveate_frame,
    foveate_scene,
    foveation_study,
    install_topology,
    local_bandwidth_sweep,
    migration_study,
    simulate_atw,
    topology_sweep,
)
from repro.extensions.atw import atw_for_scene
from repro.extensions.hbm import with_local_bandwidth
from repro.frameworks.base import build_framework
from repro.memory.address import texture_resource
from repro.memory.link import TrafficType
from repro.scene.benchmarks import make_benchmark_scene


TINY_SCENE = make_benchmark_scene("DM3-640", num_frames=3, draw_scale=0.05)


class TestATW:
    def test_fast_frames_all_fresh(self):
        # 5 ms frames against an 11.1 ms vsync: never misses.
        report = simulate_atw([5e6], framework="fast")
        assert report.fresh_rate == 1.0
        assert report.judder_rate == 0.0
        assert report.worst_lag_vsyncs == 0

    def test_slow_frames_judder(self):
        # 30 ms frames against 11.1 ms vsync: mostly warped frames.
        report = simulate_atw([30e6], framework="slow")
        assert report.judder_rate > 0.5
        assert report.worst_lag_vsyncs >= 1

    def test_rates_sum_to_one(self):
        report = simulate_atw([12e6, 8e6, 15e6])
        assert report.fresh_rate + report.judder_rate == pytest.approx(1.0)

    def test_higher_latency_never_fresher(self):
        fast = simulate_atw([8e6])
        slow = simulate_atw([20e6])
        assert slow.fresh_rate <= fast.fresh_rate

    def test_reprojection_cost_scales_with_resolution(self):
        small = ATWConfig(eye_width=640, eye_height=480)
        large = ATWConfig(eye_width=1600, eye_height=1200)
        assert large.reprojection_cycles() > small.reprojection_cycles()

    def test_scene_report_carries_names(self):
        result = build_framework("oo-vr").render_scene(TINY_SCENE)
        report = atw_for_scene(result)
        assert report.framework == "oo-vr"
        assert report.workload == "DM3-640"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ATWConfig(refresh_hz=0)
        with pytest.raises(ValueError):
            ATWConfig(eye_width=0)
        with pytest.raises(ValueError):
            simulate_atw([])

    def test_summary_format(self):
        report = simulate_atw([5e6], framework="x", workload="y")
        assert "fresh" in report.summary()
        assert "judder" in report.summary()


class TestTopology:
    def test_fully_connected_single_hop(self):
        fabric = RoutedLinkFabric(4, 64.0, 0, Topology.FULLY_CONNECTED)
        assert fabric.route(0, 3) == [(0, 3)]
        assert fabric.route(2, 2) == []

    def test_ring_routes_shortest_way(self):
        fabric = RoutedLinkFabric(4, 64.0, 0, Topology.RING)
        assert fabric.route(0, 1) == [(0, 1)]
        assert fabric.route(0, 3) == [(0, 3)]  # one hop backwards
        assert fabric.route(0, 2) in (
            [(0, 1), (1, 2)],
            [(0, 3), (3, 2)],
        )

    def test_ring_routes_are_connected_paths(self):
        fabric = RoutedLinkFabric(8, 64.0, 0, Topology.RING)
        for src in range(8):
            for dst in range(8):
                hops = fabric.route(src, dst)
                if src == dst:
                    assert hops == []
                    continue
                assert hops[0][0] == src
                assert hops[-1][1] == dst
                for (a, b), (c, d) in zip(hops, hops[1:]):
                    assert b == c

    def test_switch_routes_through_crossbar(self):
        fabric = RoutedLinkFabric(4, 64.0, 0, Topology.SWITCH)
        assert fabric.route(1, 3) == [(1, 4), (4, 3)]

    def test_logical_vs_wire_bytes(self):
        fabric = RoutedLinkFabric(4, 64.0, 0, Topology.RING)
        fabric.transfer(0, 2, 1000.0, TrafficType.TEXTURE)
        assert fabric.total_bytes == 1000.0  # logical
        assert fabric.wire_bytes == 2000.0  # two hops
        assert fabric.hop_inflation == 2.0

    def test_fully_connected_no_inflation(self):
        fabric = RoutedLinkFabric(4, 64.0, 0, Topology.FULLY_CONNECTED)
        fabric.transfer(0, 2, 1000.0, TrafficType.TEXTURE)
        assert fabric.hop_inflation == 1.0

    def test_multi_hop_latency_stacks(self):
        one_hop = RoutedLinkFabric(4, 64.0, 100, Topology.FULLY_CONNECTED)
        two_hop = RoutedLinkFabric(4, 64.0, 100, Topology.SWITCH)
        t1 = one_hop.transfer(0, 2, 6400.0, TrafficType.TEXTURE)
        t2 = two_hop.transfer(0, 2, 6400.0, TrafficType.TEXTURE)
        assert t2 == pytest.approx(2 * t1)

    def test_transfer_endpoints_must_be_gpms(self):
        fabric = RoutedLinkFabric(4, 64.0, 0, Topology.SWITCH)
        with pytest.raises(ValueError):
            fabric.transfer(0, 4, 100.0, TrafficType.TEXTURE)

    def test_reset_clears_logical_counters(self):
        fabric = RoutedLinkFabric(4, 64.0, 0, Topology.RING)
        fabric.transfer(0, 2, 1000.0, TrafficType.TEXTURE)
        fabric.reset()
        assert fabric.total_bytes == 0.0
        assert fabric.wire_bytes == 0.0

    def test_ports_required(self):
        assert Topology.FULLY_CONNECTED.ports_required(8) == 7
        assert Topology.RING.ports_required(8) == 2
        assert Topology.SWITCH.ports_required(8) == 1

    def test_install_topology_swaps_fabric(self):
        framework = build_framework("baseline")
        system = framework.make_system()
        install_topology(system, Topology.RING)
        assert isinstance(system.fabric, RoutedLinkFabric)
        assert system.fabric.topology is Topology.RING

    def test_frameworks_run_on_all_topologies(self):
        frame = TINY_SCENE.frames[0]
        cycles = {}
        for topology in Topology:
            framework = build_framework("baseline")
            system = framework.make_system()
            install_topology(system, topology)
            system.begin_frame()
            result = framework.render_frame_on(system, frame, "DM3-640")
            cycles[topology] = result.cycles
        # Cheaper fabrics cannot be faster than dedicated links.
        assert cycles[Topology.RING] >= cycles[Topology.FULLY_CONNECTED]

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(2, 9),
        src=st.integers(0, 8),
        dst=st.integers(0, 8),
    )
    def test_property_ring_hops_at_most_half_ring(self, n, src, dst):
        src, dst = src % n, dst % n
        fabric = RoutedLinkFabric(n, 64.0, 0, Topology.RING)
        assert len(fabric.route(src, dst)) <= n // 2 + (n % 2)


class TestMigration:
    def test_engine_migrates_hot_resource(self):
        framework = build_framework("baseline")
        system = framework.make_system()
        system.begin_frame()
        engine = MigrationEngine(MigrationConfig(touch_threshold_bytes=1024))
        resource = texture_resource(0, 1 << 20)
        system.placement.place_fixed(resource, 0)
        engine.observe_remote(resource, 2, 2048.0)
        moved = engine.end_frame(system)
        assert moved == pytest.approx(1 << 20)
        assert system.placement.local_fraction(resource, 2) == 1.0

    def test_engine_respects_threshold(self):
        framework = build_framework("baseline")
        system = framework.make_system()
        system.begin_frame()
        engine = MigrationEngine(MigrationConfig(touch_threshold_bytes=1 << 20))
        resource = texture_resource(1, 1 << 20)
        system.placement.place_fixed(resource, 0)
        engine.observe_remote(resource, 2, 100.0)
        assert engine.end_frame(system) == 0.0

    def test_engine_respects_budget(self):
        framework = build_framework("baseline")
        system = framework.make_system()
        system.begin_frame()
        engine = MigrationEngine(
            MigrationConfig(
                touch_threshold_bytes=1.0, budget_bytes_per_frame=1 << 20
            )
        )
        for i in range(8):
            resource = texture_resource(i, 1 << 20)
            system.placement.place_fixed(resource, 0)
            engine.observe_remote(resource, 1, 1e6)
        moved = engine.end_frame(system)
        # Budget stops migration after the first 1 MiB resource.
        assert moved <= 2 * (1 << 20)

    def test_migration_charges_prealloc_traffic(self):
        framework = build_framework("baseline")
        system = framework.make_system()
        system.begin_frame()
        engine = MigrationEngine(MigrationConfig(touch_threshold_bytes=1.0))
        resource = texture_resource(3, 1 << 20)
        system.placement.place_fixed(resource, 0)
        engine.observe_remote(resource, 1, 1e6)
        engine.end_frame(system)
        traffic = system.fabric.bytes_by_type()
        assert traffic.get(TrafficType.PREALLOC, 0.0) > 0

    def test_touches_cleared_between_frames(self):
        engine = MigrationEngine()
        resource = texture_resource(4, 1 << 16)
        engine.observe_remote(resource, 1, 1e6)
        assert engine.pending_resources == 1
        framework = build_framework("baseline")
        system = framework.make_system()
        system.begin_frame()
        engine.end_frame(system)
        assert engine.pending_resources == 0

    def test_zero_byte_observations_ignored(self):
        engine = MigrationEngine()
        engine.observe_remote(texture_resource(5, 1024), 1, 0.0)
        assert engine.pending_resources == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MigrationConfig(touch_threshold_bytes=-1)
        with pytest.raises(ValueError):
            MigrationConfig(budget_bytes_per_frame=0)

    def test_baseline_mig_framework_migrates(self):
        scene = make_benchmark_scene("HL2-640", num_frames=3, draw_scale=0.1)
        framework = build_framework("baseline-mig")
        framework.render_scene(scene)
        assert framework.engine.migrated_bytes_total > 0

    def test_migration_trades_latency_for_copy_traffic(self):
        scene = make_benchmark_scene("HL2-640", num_frames=4, draw_scale=0.1)
        mig = build_framework("baseline-mig").render_scene(scene)
        base = build_framework("baseline").render_scene(scene)
        # Steady-state frames get faster (some reads became local) ...
        assert mig.single_frame_cycles <= base.single_frame_cycles * 1.01
        # ... but the copies keep total traffic at least as high.
        assert (
            mig.mean_inter_gpm_bytes_per_frame
            >= base.mean_inter_gpm_bytes_per_frame * 0.99
        )


class TestFoveation:
    def test_reduces_shader_complexity(self):
        frame = TINY_SCENE.frames[0]
        foveated = foveate_frame(frame)
        before = sum(o.shader_complexity for o in frame.objects)
        after = sum(o.shader_complexity for o in foveated.objects)
        assert after < before

    def test_geometry_untouched(self):
        frame = TINY_SCENE.frames[0]
        foveated = foveate_frame(frame)
        assert frame.total_triangles == foveated.total_triangles
        for a, b in zip(frame.objects, foveated.objects):
            assert a.viewport_left == b.viewport_left
            assert a.mesh == b.mesh

    def test_full_rate_profile_is_identity(self):
        config = FoveationConfig(
            fovea_rate=1.0, mid_rate=1.0, periphery_rate=1.0
        )
        frame = TINY_SCENE.frames[0]
        foveated = foveate_frame(frame, config)
        for a, b in zip(frame.objects, foveated.objects):
            assert a.shader_complexity == pytest.approx(b.shader_complexity)

    def test_scene_transform_speeds_up_rendering(self):
        scene = make_benchmark_scene("DM3-640", num_frames=2, draw_scale=0.1)
        foveated = foveate_scene(scene)
        framework = build_framework("oo-vr")
        base = framework.render_scene(scene)
        fast = build_framework("oo-vr").render_scene(foveated)
        assert fast.single_frame_cycles < base.single_frame_cycles

    def test_rate_rings(self):
        config = FoveationConfig()
        assert config.rate_at(0.0) == config.fovea_rate
        assert config.rate_at(0.2) == config.mid_rate
        assert config.rate_at(0.9) == config.periphery_rate

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FoveationConfig(fovea_radius=0.5, mid_radius=0.3)
        with pytest.raises(ValueError):
            FoveationConfig(mid_rate=0.2, periphery_rate=0.5)
        with pytest.raises(ValueError):
            FoveationConfig(gaze_x=1.5)
        with pytest.raises(ValueError):
            FoveationConfig(fovea_rate=0.0)

    @settings(max_examples=10, deadline=None)
    @given(
        gaze_x=st.floats(0.0, 1.0),
        gaze_y=st.floats(0.0, 1.0),
    )
    def test_property_foveation_never_increases_cost(self, gaze_x, gaze_y):
        config = FoveationConfig(gaze_x=gaze_x, gaze_y=gaze_y)
        frame = TINY_SCENE.frames[0]
        foveated = foveate_frame(frame, config)
        for a, b in zip(frame.objects, foveated.objects):
            assert b.shader_complexity <= a.shader_complexity + 1e-12


class TestStudyDrivers:
    """The extension studies as declarative Sweep grids (+ cache)."""

    TINY = None  # populated below; ExperimentConfig import kept local

    @classmethod
    def setup_class(cls):
        from repro.session import ExperimentConfig

        cls.TINY = ExperimentConfig(
            draw_scale=0.08, num_frames=2, workloads=("DM3-640",)
        )

    def test_atw_study_shapes(self):
        reports = atw_study(("baseline", "oo-vr"), self.TINY)
        assert set(reports) == {"baseline", "oo-vr"}
        for scheme, per_workload in reports.items():
            assert [r.workload for r in per_workload] == ["DM3-640"]
            assert all(r.framework == scheme for r in per_workload)

    def test_atw_study_panel_scaling_slows_frames(self):
        plain = atw_study(("oo-vr",), self.TINY)["oo-vr"][0]
        scaled = atw_study(("oo-vr",), self.TINY, panel_pixels=116.64e6)[
            "oo-vr"
        ][0]
        assert scaled.mean_latency_ms > plain.mean_latency_ms

    def test_foveation_study_stacks_gain(self):
        table = foveation_study(("DM3-640",), self.TINY)
        speedups = table["DM3-640"]
        assert speedups["oo-vr+fov"] > speedups["oo-vr"] > 1.0

    def test_topology_sweep_reference_cell_is_one(self):
        table = topology_sweep(
            schemes=("baseline", "oo-vr"),
            workloads=("DM3-640",),
            draw_scale=0.08,
            num_frames=2,
        )
        assert table["fully-connected"]["baseline"] == pytest.approx(1.0)
        for row in table.values():
            assert row["oo-vr"] >= row["baseline"]

    def test_migration_study_summary(self):
        summary = migration_study(
            ("baseline", "baseline-mig", "oo-vr"), self.TINY
        )
        base_speedup, base_traffic = summary["baseline"]
        assert base_speedup == pytest.approx(1.0)
        assert base_traffic == pytest.approx(1.0)
        assert summary["oo-vr"][0] > 1.0

    def test_hbm_sweep_reference_cell_is_one(self):
        table = local_bandwidth_sweep(
            schemes=("baseline", "oo-vr"),
            generations={"1 TB/s (paper)": 1000.0, "4 TB/s": 4000.0},
            workloads=("DM3-640",),
            draw_scale=0.08,
            num_frames=2,
        )
        assert table["1 TB/s (paper)"]["baseline"] == pytest.approx(1.0)

    def test_studies_share_one_cache(self, tmp_path):
        from repro.session import ResultCache

        cache = ResultCache(tmp_path)
        atw_study(("baseline", "oo-vr"), self.TINY, cache=cache)
        assert cache.stats.misses == 2
        # The migration study reuses both cells and adds baseline-mig.
        migration_study(
            ("baseline", "baseline-mig", "oo-vr"), self.TINY, cache=cache
        )
        assert cache.stats.hits == 2
        assert cache.stats.misses == 3


class TestHBMScaling:
    def test_with_local_bandwidth(self):
        config = with_local_bandwidth(baseline_system(), 2000.0)
        assert config.gpm.dram_bytes_per_cycle == 2000.0
        with pytest.raises(ValueError):
            with_local_bandwidth(baseline_system(), 0.0)

    def test_faster_dram_helps_oovr(self):
        scene = make_benchmark_scene("HL2-640", num_frames=2, draw_scale=0.1)
        slow = build_framework("oo-vr", baseline_system()).render_scene(scene)
        fast = build_framework(
            "oo-vr", with_local_bandwidth(baseline_system(), 4000.0)
        ).render_scene(scene)
        assert fast.single_frame_cycles <= slow.single_frame_cycles
