"""CLI surface and cross-module integration scenarios."""

import pytest

from repro import cli
from repro.config import baseline_system
from repro.core.middleware import OOMiddleware
from repro.core.programming_model import OOApplication
from repro.frameworks.base import build_framework
from repro.scene.benchmarks import make_benchmark_scene
from repro.scene.geometry import Viewport

MB = 1024 * 1024


class TestCLI:
    def test_list_command(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "oo-vr" in out
        assert "HL2-1280" in out

    def test_table_1(self, capsys):
        assert cli.main(["table", "1"]) == 0
        assert "Stereo HMD" in capsys.readouterr().out

    def test_table_2(self, capsys):
        assert cli.main(["table", "2"]) == 0
        assert "NVLink" in capsys.readouterr().out

    def test_table_3_fast(self, capsys):
        assert cli.main(["table", "3", "--fast"]) == 0
        assert "Doom 3" in capsys.readouterr().out

    def test_unknown_table(self, capsys):
        assert cli.main(["table", "9"]) == 2

    def test_unknown_figure(self, capsys):
        assert cli.main(["fig", "99"]) == 2

    def test_overhead(self, capsys):
        assert cli.main(["overhead"]) == 0
        assert "mm^2" in capsys.readouterr().out

    def test_run_command(self, capsys):
        assert cli.main(["run", "oo-vr", "DM3-640", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "single frame" in out
        assert "traffic by type" in out

    def test_unknown_engine_is_a_one_line_error(self, capsys):
        # No traceback, exit 2, and the message lists what *would* work.
        assert cli.main(["run", "oo-vr", "DM3-640", "--engine", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.splitlines() == [
            "error: unknown execution engine 'bogus'; "
            "have ['analytic', 'event']"
        ]
        assert (
            cli.main(
                ["sweep", "--frameworks", "baseline", "--workloads", "WE",
                 "--fast", "--engine", "bogus"]
            )
            == 2
        )
        assert "unknown execution engine 'bogus'" in capsys.readouterr().err

    def test_event_engine_run_shows_all_lanes(self, capsys):
        assert (
            cli.main(["run", "oo-app", "HL2-640", "--fast", "--engine", "event"])
            == 0
        )
        out = capsys.readouterr().out
        assert "frame trace (last frame, event engine):" in out
        # Full-frame coverage: render, staging-stall and compose lanes
        # all appear in the legend of a scheme that has all three.
        assert "█ render" in out
        assert "▒ staging stall" in out
        assert "▣ compose" in out

    def test_trace_record_info_replay(self, capsys, tmp_path):
        trace = str(tmp_path / "dm3.json.gz")
        assert cli.main(["trace", "record", "DM3-640", trace, "--fast"]) == 0
        assert "captured DM3-640" in capsys.readouterr().out

        assert cli.main(["trace", "info", trace]) == 0
        out = capsys.readouterr().out
        assert "DM3-640" in out
        assert "TSL>0.5 pairs" in out

        assert cli.main(["trace", "replay", trace, "object"]) == 0
        out = capsys.readouterr().out
        assert "replayed DM3-640 under object" in out

    def test_trace_record_plain_json(self, capsys, tmp_path):
        trace = str(tmp_path / "we.json")
        assert cli.main(["trace", "record", "WE", trace, "--fast"]) == 0
        assert (tmp_path / "we.json").exists()

    def test_energy_command(self, capsys):
        assert cli.main(["energy", "DM3-640", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "10 pJ/bit" in out
        assert "oo-vr" in out

    def test_energy_command_cross_node(self, capsys):
        assert cli.main(["energy", "DM3-640", "--fast", "--nodes"]) == 0
        assert "250 pJ/bit" in capsys.readouterr().out

    def test_render_command(self, capsys, tmp_path):
        assert cli.main(["render", str(tmp_path), "--size", "48"]) == 0
        assert (tmp_path / "stereo.ppm").exists()
        assert (tmp_path / "stereo.png").exists()

    def test_fig_chart_flag(self, capsys):
        assert cli.main(["fig", "16", "--fast", "--chart"]) == 0
        assert "█" in capsys.readouterr().out


class TestEndToEnd:
    def test_authored_app_through_oovr(self):
        """Author content with the OO API, render with every scheme."""
        app = OOApplication(640, 480)
        for index in range(12):
            x = 40.0 * index + 5
            (
                app.object(f"pillar{index}")
                .mesh(300, 500)
                .texture("stone" if index % 2 == 0 else "brick", MB)
                .appearance(depth_complexity=1.4, coverage=0.6)
                .auto_viewports(Viewport(x, 100, x + 35, 300))
                .add()
            )
        frame = app.frame()
        from repro.scene.scene import Scene

        scene = Scene(name="authored", frames=(frame,))
        cycles = {}
        for name in ("baseline", "object", "oo-vr"):
            cycles[name] = build_framework(name).render_scene(scene).frames[0].cycles
        assert cycles["oo-vr"] < cycles["baseline"]

    def test_middleware_batches_feed_engine(self):
        """Batches built by the middleware run through the full OO-VR path."""
        scene = make_benchmark_scene("UT3", num_frames=2, draw_scale=0.1)
        fw = build_framework("oo-vr")
        result = fw.render_scene(scene)
        records = fw.last_engine.records
        batches = OOMiddleware().build_batches(scene.frames[-1].objects)
        assert len(records) == len(batches)

    def test_all_workloads_run_oovr_quickly(self):
        for workload in ("DM3-640", "HL2-640", "NFS", "UT3", "WE"):
            scene = make_benchmark_scene(workload, num_frames=1, draw_scale=0.05)
            result = build_framework("oo-vr").render_scene(scene)
            assert result.single_frame_cycles > 0

    def test_different_resolutions_scale_work(self):
        low = make_benchmark_scene("DM3-640", num_frames=1, draw_scale=0.2)
        high = make_benchmark_scene("DM3-1600", num_frames=1, draw_scale=0.2)
        fw = build_framework("baseline")
        assert (
            fw.render_scene(high).single_frame_cycles
            > fw.render_scene(low).single_frame_cycles
        )

    def test_energy_accounting_available(self):
        scene = make_benchmark_scene("HL2-640", num_frames=1, draw_scale=0.1)
        fw = build_framework("baseline")
        system = fw.make_system()
        system.begin_frame()
        fw.render_frame_on(system, scene.frames[0], "HL2-640")
        energy = system.fabric.energy_picojoules(
            fw.config.link.picojoules_per_bit
        )
        assert energy > 0

    def test_vr_deadline_check_integrates(self):
        from repro.scene.vr import STEREO_VR

        scene = make_benchmark_scene("WE", num_frames=1, draw_scale=0.1)
        result = build_framework("oo-vr").render_scene(scene)
        # The check runs; tiny scaled scenes comfortably meet 5 ms.
        assert STEREO_VR.meets_deadline(result.single_frame_cycles)

    def test_two_gpm_system_end_to_end(self):
        scene = make_benchmark_scene("DM3-640", num_frames=2, draw_scale=0.15)
        cfg = baseline_system(num_gpms=2)
        for name in ("baseline", "object", "oo-app", "oo-vr"):
            result = build_framework(name, cfg).render_scene(scene)
            assert len(result.frames[0].gpm_busy_cycles) == 2
