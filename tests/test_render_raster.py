"""Unit and property tests for the rasterizer and framebuffer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render.framebuffer import FrameBuffer, side_by_side
from repro.render.math3d import identity, perspective, look_at, translate
from repro.render.mesh3d import TriangleMesh, make_quad
from repro.render.raster import DrawStats, Rasterizer, checker_shader


def ortho_quad_mvp():
    """An MVP that maps the unit quad to the centre of the screen."""
    # The quad spans [-0.5, 0.5]^2 at z=0; with identity MVP it lands in
    # the NDC centre, i.e. the middle quarter of the framebuffer.
    return identity()


def fullscreen_quad() -> TriangleMesh:
    """A quad covering all of NDC (clip == NDC with identity MVP)."""
    return make_quad(2.0, 2.0)


class TestFrameBuffer:
    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            FrameBuffer(0, 10)

    def test_clear_resets_planes(self):
        fb = FrameBuffer(4, 4)
        fb.color[:, :] = 77
        fb.depth[:, :] = 0.5
        fb.pixels_written = 9
        fb.clear((1, 2, 3))
        assert (fb.color == np.array([1, 2, 3], dtype=np.uint8)).all()
        assert np.isinf(fb.depth).all()
        assert fb.pixels_written == 0

    def test_covered_pixels_counts_finite_depth(self):
        fb = FrameBuffer(4, 4)
        assert fb.covered_pixels() == 0
        fb.depth[1, 2] = 0.25
        assert fb.covered_pixels() == 1

    def test_ppm_roundtrip_header_and_payload(self, tmp_path):
        fb = FrameBuffer(3, 2)
        fb.color[0, 0] = (255, 0, 0)
        path = fb.write_ppm(tmp_path / "img.ppm")
        data = path.read_bytes()
        assert data.startswith(b"P6\n3 2\n255\n")
        assert len(data) == len(b"P6\n3 2\n255\n") + 3 * 2 * 3

    def test_depth_pgm_marks_uncovered_white(self, tmp_path):
        fb = FrameBuffer(2, 2)
        fb.depth[0, 0] = 0.1
        path = fb.write_depth_pgm(tmp_path / "depth.pgm")
        payload = path.read_bytes().split(b"255\n", 1)[1]
        img = np.frombuffer(payload, dtype=np.uint8).reshape(2, 2)
        assert img[0, 0] != 255  # covered pixel is not white
        assert img[1, 1] == 255  # uncovered stays white

    def test_side_by_side_packs_eyes(self):
        left, right = FrameBuffer(4, 3), FrameBuffer(4, 3)
        left.color[:, :] = (10, 0, 0)
        right.color[:, :] = (0, 20, 0)
        packed = side_by_side(left, right)
        assert packed.width == 8
        assert (packed.color[:, :4, 0] == 10).all()
        assert (packed.color[:, 4:, 1] == 20).all()

    def test_side_by_side_rejects_mismatched(self):
        with pytest.raises(ValueError):
            side_by_side(FrameBuffer(4, 3), FrameBuffer(4, 4))


class TestRasterizer:
    def test_fullscreen_quad_covers_everything(self):
        fb = FrameBuffer(32, 32)
        stats = Rasterizer(fb).draw_mesh(fullscreen_quad(), identity())
        assert stats.pixels_written == 32 * 32
        assert fb.covered_pixels() == 32 * 32
        assert stats.triangles_rasterised == 2

    def test_centered_quad_covers_middle_quarter(self):
        fb = FrameBuffer(64, 64)
        stats = Rasterizer(fb).draw_mesh(make_quad(1.0, 1.0), identity())
        # NDC [-0.5, 0.5] maps to pixels [16, 48) in each axis.
        assert stats.pixels_written == 32 * 32
        mask = fb.covered_mask()
        assert mask[16:48, 16:48].all()
        assert not mask[:16].any() and not mask[48:].any()

    def test_depth_test_keeps_nearer_triangle(self):
        fb = FrameBuffer(16, 16)
        raster = Rasterizer(fb)
        near = fullscreen_quad().transformed(translate(0, 0, 0.1))
        far = fullscreen_quad().transformed(translate(0, 0, 0.9))
        shade_near = checker_shader((255, 0, 0), (255, 0, 0))
        shade_far = checker_shader((0, 255, 0), (0, 255, 0))
        raster.draw_mesh(near, identity(), shade_near)
        stats_far = raster.draw_mesh(far, identity(), shade_far)
        # NDC depth: smaller is nearer; far quad must lose everywhere.
        assert stats_far.pixels_written == 0
        # Full coverage, plus pixels on the shared diagonal counted by
        # both triangles (the rasterizer has no top-left fill rule).
        assert 16 * 16 <= stats_far.fragments_shaded <= 16 * 17
        assert (fb.color[:, :, 0] > 0).all()

    def test_depth_test_draw_order_independent(self):
        def render(order):
            fb = FrameBuffer(16, 16)
            raster = Rasterizer(fb)
            for mesh, shader in order:
                raster.draw_mesh(mesh, identity(), shader)
            return fb.color.copy()

        near = fullscreen_quad().transformed(translate(0, 0, 0.1))
        far = fullscreen_quad().transformed(translate(0, 0, 0.9))
        red = checker_shader((255, 0, 0), (255, 0, 0))
        green = checker_shader((0, 255, 0), (0, 255, 0))
        a = render([(near, red), (far, green)])
        b = render([(far, green), (near, red)])
        np.testing.assert_array_equal(a, b)

    def test_backface_culling_counts(self):
        fb = FrameBuffer(16, 16)
        quad = fullscreen_quad()
        flipped = TriangleMesh(
            quad.positions, quad.uvs, quad.faces[:, ::-1].copy()
        )
        stats = Rasterizer(fb).draw_mesh(flipped, identity())
        assert stats.triangles_culled == 2
        assert stats.pixels_written == 0

    def test_backface_culling_can_be_disabled(self):
        fb = FrameBuffer(16, 16)
        quad = fullscreen_quad()
        flipped = TriangleMesh(quad.positions, quad.uvs, quad.faces[:, ::-1].copy())
        stats = Rasterizer(fb).draw_mesh(flipped, identity(), cull_backfaces=False)
        assert stats.pixels_written == 16 * 16

    def test_near_plane_rejection_counts_clipped(self):
        proj = perspective(90.0, 1.0, 1.0, 10.0)
        view = look_at((0, 0, 0), (0, 0, -1))
        behind = make_quad(1.0, 1.0).transformed(translate(0, 0, 0.5))
        fb = FrameBuffer(16, 16)
        stats = Rasterizer(fb).draw_mesh(behind, proj @ view)
        assert stats.triangles_clipped == 2
        assert stats.pixels_written == 0

    def test_scissor_limits_coverage(self):
        fb = FrameBuffer(32, 32)
        raster = Rasterizer(fb, scissor=(0, 0, 16, 32))
        stats = raster.draw_mesh(fullscreen_quad(), identity())
        assert stats.pixels_written == 16 * 32
        assert not fb.covered_mask()[:, 16:].any()

    def test_scissor_validation(self):
        fb = FrameBuffer(8, 8)
        with pytest.raises(ValueError):
            Rasterizer(fb, scissor=(5, 5, 5, 8))

    def test_offscreen_triangle_draws_nothing(self):
        fb = FrameBuffer(16, 16)
        offscreen = make_quad(0.5, 0.5).transformed(translate(5.0, 0, 0))
        stats = Rasterizer(fb).draw_mesh(offscreen, identity())
        assert stats.pixels_written == 0
        assert stats.fragments_shaded == 0

    def test_empty_mesh_is_noop(self):
        fb = FrameBuffer(8, 8)
        empty = TriangleMesh(
            np.zeros((0, 3)), np.zeros((0, 2)), np.zeros((0, 3), dtype=np.int32)
        )
        stats = Rasterizer(fb).draw_mesh(empty, identity())
        assert stats == DrawStats(triangles_in=0)

    def test_stats_merge_adds_counters(self):
        a = DrawStats(triangles_in=2, pixels_written=5, fragments_shaded=7)
        b = DrawStats(triangles_in=3, pixels_written=1, fragments_shaded=2)
        merged = a.merged_with(b)
        assert merged.triangles_in == 5
        assert merged.pixels_written == 6
        assert merged.fragments_shaded == 9

    def test_overdraw_definition(self):
        stats = DrawStats(fragments_shaded=30, pixels_written=10)
        assert stats.overdraw == 3.0
        assert DrawStats().overdraw == 0.0

    @settings(max_examples=20, deadline=None)
    @given(
        x=st.floats(-0.9, 0.9),
        y=st.floats(-0.9, 0.9),
        size=st.floats(0.05, 0.5),
    )
    def test_property_fragments_bounded_by_bbox(self, x, y, size):
        """A quad's fragments never exceed its screen bounding box."""
        fb = FrameBuffer(64, 64)
        quad = make_quad(size, size).transformed(translate(x, y, 0))
        stats = Rasterizer(fb).draw_mesh(quad, identity())
        bbox_pixels = (np.ceil(size * 32) + 2) ** 2  # NDC size -> pixels
        assert stats.fragments_shaded <= bbox_pixels
        assert stats.pixels_written <= stats.fragments_shaded

    @settings(max_examples=15, deadline=None)
    @given(depth_a=st.floats(0.0, 0.9), depth_b=st.floats(0.0, 0.9))
    def test_property_depth_buffer_never_increases(self, depth_a, depth_b):
        fb = FrameBuffer(8, 8)
        raster = Rasterizer(fb)
        raster.draw_mesh(
            fullscreen_quad().transformed(translate(0, 0, depth_a)), identity()
        )
        before = fb.depth.copy()
        raster.draw_mesh(
            fullscreen_quad().transformed(translate(0, 0, depth_b)), identity()
        )
        assert (fb.depth <= before + 1e-12).all()
