"""Cross-cutting simulator invariants (hypothesis-driven).

These are the conservation laws the figures silently rely on: byte
counters never go negative, placement accounting balances, frame time
dominates every GPM's busy time, and identical inputs give identical
outputs (the simulator is deterministic).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import baseline_system
from repro.extensions.topology import RoutedLinkFabric, Topology
from repro.frameworks.base import build_framework
from repro.memory.address import texture_resource
from repro.memory.link import LinkFabric, TrafficType
from repro.memory.placement import PagePlacement, PlacementPolicy
from repro.scene.benchmarks import make_benchmark_scene

PAGE = 64 * 1024


class TestPlacementMigration:
    def make_placement(self, gpms=4):
        return PagePlacement(gpms, PAGE, PlacementPolicy.FIRST_TOUCH)

    def test_migrate_rehomes_all_pages(self):
        placement = self.make_placement()
        resource = texture_resource(0, 10 * PAGE)
        placement.place_fixed(resource, 0)
        moved = placement.migrate(resource, 3)
        assert moved == 10 * PAGE
        assert placement.local_fraction(resource, 3) == 1.0
        assert placement.local_fraction(resource, 0) == 0.0

    def test_migrate_to_current_owner_is_free(self):
        placement = self.make_placement()
        resource = texture_resource(1, 4 * PAGE)
        placement.place_fixed(resource, 2)
        assert placement.migrate(resource, 2) == 0.0

    def test_migrate_unplaced_places_for_free(self):
        placement = self.make_placement()
        resource = texture_resource(2, 4 * PAGE)
        assert placement.migrate(resource, 1) == 0.0
        assert placement.local_fraction(resource, 1) == 1.0

    def test_migrate_is_idempotent(self):
        placement = self.make_placement()
        resource = texture_resource(3, 6 * PAGE)
        placement.place_fixed(resource, 0)
        placement.migrate(resource, 1)
        assert placement.migrate(resource, 1) == 0.0

    def test_migrate_drops_replicas(self):
        placement = self.make_placement()
        resource = texture_resource(4, 4 * PAGE)
        placement.place_fixed(resource, 0)
        placement.replicate(resource, [2])
        placement.migrate(resource, 3)
        # After migration only GPM 3 holds the resource.
        assert placement.local_fraction(resource, 2) == 1.0 or (
            placement.owner_fractions(resource, 2) == {3: 1.0}
        )

    def test_migrate_validates_gpm(self):
        placement = self.make_placement()
        resource = texture_resource(5, PAGE)
        with pytest.raises(ValueError):
            placement.migrate(resource, 9)

    @settings(max_examples=25, deadline=None)
    @given(
        pages=st.integers(1, 40),
        src=st.integers(0, 3),
        dst=st.integers(0, 3),
    )
    def test_property_resident_bytes_conserved(self, pages, src, dst):
        placement = self.make_placement()
        resource = texture_resource(7, pages * PAGE)
        placement.place_fixed(resource, src)
        before = placement.total_resident_bytes
        placement.migrate(resource, dst)
        assert placement.total_resident_bytes == pytest.approx(before)


class TestFabricInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        transfers=st.lists(
            st.tuples(
                st.integers(0, 3),
                st.integers(0, 3),
                st.floats(1.0, 1e6),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_property_total_bytes_is_sum_of_cross_gpm_transfers(self, transfers):
        fabric = LinkFabric(4, 64.0)
        expected = 0.0
        for src, dst, nbytes in transfers:
            fabric.transfer(src, dst, nbytes, TrafficType.TEXTURE)
            if src != dst:
                expected += nbytes
        assert fabric.total_bytes == pytest.approx(expected)
        assert sum(fabric.bytes_by_type().values()) == pytest.approx(expected)

    @settings(max_examples=25, deadline=None)
    @given(
        topology=st.sampled_from(list(Topology)),
        transfers=st.lists(
            st.tuples(
                st.integers(0, 3), st.integers(0, 3), st.floats(1.0, 1e6)
            ),
            min_size=1,
            max_size=20,
        ),
    )
    def test_property_routed_logical_equals_base_accounting(
        self, topology, transfers
    ):
        """Routed fabrics agree with the flat fabric on *logical* bytes."""
        routed = RoutedLinkFabric(4, 64.0, 0, topology)
        flat = LinkFabric(4, 64.0)
        for src, dst, nbytes in transfers:
            routed.transfer(src, dst, nbytes, TrafficType.TEXTURE)
            flat.transfer(src, dst, nbytes, TrafficType.TEXTURE)
        assert routed.total_bytes == pytest.approx(flat.total_bytes)
        # Wire load covers the logical bytes (>= up to FP summation
        # order: the two counters accumulate the same floats in
        # different orders, so compare with relative slack).
        assert routed.wire_bytes >= routed.total_bytes * (1.0 - 1e-12)

    def test_incoming_outgoing_partition_wire_bytes(self):
        fabric = LinkFabric(4, 64.0)
        fabric.transfer(0, 1, 100.0, TrafficType.TEXTURE)
        fabric.transfer(2, 1, 50.0, TrafficType.VERTEX)
        fabric.transfer(1, 3, 25.0, TrafficType.COMMAND)
        assert fabric.incoming_bytes(1) == 150.0
        assert fabric.outgoing_bytes(1) == 25.0
        total_in = sum(fabric.incoming_bytes(g) for g in range(4))
        assert total_in == pytest.approx(fabric.total_bytes)


class TestSystemInvariants:
    SCENE = make_benchmark_scene("HL2-640", num_frames=2, draw_scale=0.08)

    @pytest.mark.parametrize(
        "scheme", ["baseline", "afr", "tile-v", "tile-h", "object", "oo-app", "oo-vr"]
    )
    def test_frame_time_dominates_busy_time(self, scheme):
        result = build_framework(scheme).render_scene(self.SCENE)
        for frame in result.frames:
            # Composition may add to the critical path, so the frame is
            # at least as long as the busiest GPM's render phase.
            assert frame.cycles >= max(frame.gpm_busy_cycles) - 1e-6

    @pytest.mark.parametrize("scheme", ["baseline", "object", "oo-vr"])
    def test_determinism(self, scheme):
        a = build_framework(scheme).render_scene(self.SCENE)
        b = build_framework(scheme).render_scene(self.SCENE)
        assert a.single_frame_cycles == b.single_frame_cycles
        assert a.mean_inter_gpm_bytes_per_frame == pytest.approx(
            b.mean_inter_gpm_bytes_per_frame
        )

    @pytest.mark.parametrize("scheme", ["baseline", "object", "oo-vr"])
    def test_traffic_and_dram_counters_non_negative(self, scheme):
        result = build_framework(scheme).render_scene(self.SCENE)
        for frame in result.frames:
            assert frame.inter_gpm_bytes >= 0.0
            assert all(b >= 0.0 for b in frame.dram_bytes)
            assert all(c >= 0.0 for c in frame.gpm_busy_cycles)

    def test_single_gpm_system_has_no_link_traffic(self):
        config = baseline_system(num_gpms=1)
        result = build_framework("oo-vr", config).render_scene(self.SCENE)
        for frame in result.frames:
            assert frame.inter_gpm_bytes == 0.0

    def test_more_gpms_never_slower_for_oovr(self):
        small = build_framework(
            "oo-vr", baseline_system(num_gpms=2)
        ).render_scene(self.SCENE)
        large = build_framework(
            "oo-vr", baseline_system(num_gpms=8)
        ).render_scene(self.SCENE)
        assert large.single_frame_cycles <= small.single_frame_cycles * 1.05

    def test_disabling_numa_optimizations_never_helps(self):
        from dataclasses import replace

        on = baseline_system()
        off = replace(on, numa_optimizations=False)
        fast = build_framework("baseline", on).render_scene(self.SCENE)
        slow = build_framework("baseline", off).render_scene(self.SCENE)
        assert slow.single_frame_cycles >= fast.single_frame_cycles * 0.999
