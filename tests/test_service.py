"""The sweep service: wire protocol, daemon, workers, remote executor.

The acceptance bar mirrors the executor layer's: whatever transport a
grid travels over, the exported records must be byte-identical to the
``serial`` backend — and a repeated grid must be answered entirely
from the server's cache without touching the simulator.

Coordination-state tests drive :class:`SweepService` directly with a
fake clock (lease expiry is deterministic, no sleeping); transport
tests run a real :class:`SweepServer` on a loopback port with worker
threads.
"""

import json
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro import cli
from repro.config import baseline_system
from repro.service import (
    ProtocolError,
    RemoteExecutor,
    ServiceClient,
    ServiceError,
    SweepService,
    SweepWorker,
    serve,
    spec_from_wire,
    spec_to_wire,
    specs_from_wire,
    specs_to_wire,
)
from repro.service.protocol import check_version
from repro.service.server import UnknownResource
from repro.session import (
    CacheMergeError,
    ExperimentConfig,
    ResultCache,
    RunSpec,
    SerialExecutor,
    Sweep,
    encode_entry,
    shard_of,
    spec_key,
)

#: Two tiny workloads keep these tests quick.
TINY = ExperimentConfig(
    draw_scale=0.08, num_frames=2, workloads=("DM3-640", "WE")
)


def tiny_sweep() -> Sweep:
    return Sweep().preset(TINY).frameworks("baseline", "oo-vr")


def tiny_specs():
    return tiny_sweep().specs()


def executed_entries(specs):
    """(key, payload) uploads for ``specs``, run through ``serial``."""
    results = SerialExecutor().run(specs)
    return [
        {"key": spec_key(spec), "payload": encode_entry(spec, result)}
        for spec, result in zip(specs, results)
    ]


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class TestWireProtocol:
    """RunSpec <-> JSON must preserve the content address exactly."""

    SPECS = (
        RunSpec(framework="oo-vr", workload="HL2-1280"),
        RunSpec(framework="oo-vr:no-dhc", workload="WE", engine="event"),
        RunSpec(
            framework="baseline:topo=ring",
            workload="DM3-640",
            config=baseline_system(8).with_link_bandwidth(32.0),
            config_label="8gpm@32GB/s",
            num_frames=2,
            seed=7,
            draw_scale=0.1,
        ),
        RunSpec(framework="oo-vr:engine=event", workload="WE", engine="analytic"),
    )

    @pytest.mark.parametrize(
        "spec", SPECS, ids=lambda spec: spec.framework
    )
    def test_round_trip_preserves_spec_key(self, spec):
        # Through actual JSON text, not just dict shape: the wire must
        # keep ints ints and floats floats or the fingerprint shifts.
        wire = json.loads(json.dumps(spec_to_wire(spec)))
        back = spec_from_wire(wire)
        assert back == spec
        assert spec_key(back) == spec_key(spec)

    def test_grid_round_trip_keeps_order(self):
        specs = tiny_specs()
        assert specs_from_wire(specs_to_wire(specs)) == specs

    def test_non_list_grid_rejected(self):
        with pytest.raises(ProtocolError, match="list"):
            specs_from_wire({"framework": "oo-vr"})

    def test_empty_grid_rejected(self):
        with pytest.raises(ProtocolError, match="empty"):
            specs_from_wire([])

    def test_invalid_spec_surfaces_spec_error(self):
        from repro.session import SpecError

        wire = spec_to_wire(RunSpec(framework="oo-vr", workload="WE"))
        wire["framework"] = "hologram"
        with pytest.raises(SpecError):
            spec_from_wire(wire)

    def test_version_mismatch_rejected(self):
        with pytest.raises(ProtocolError, match="version"):
            check_version({"version": 99}, "request")


# ---------------------------------------------------------------------------
# Coordination state (no socket)
# ---------------------------------------------------------------------------


class FakeClock:
    """Deterministic stand-in for ``time.monotonic``."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def service(tmp_path, clock):
    return SweepService(
        ResultCache(tmp_path / "cache"), lease_timeout=10.0, clock=clock
    )


class TestSweepService:
    def submit(self, service, specs):
        return service.submit(specs_to_wire(specs))

    def test_lease_execute_upload_completes_job(self, service):
        specs = tiny_specs()
        job = self.submit(service, specs)
        assert (job["state"], job["hits"]) == ("running", 0)
        worker = service.register_worker("w0")["worker"]
        lease = service.lease(worker, limit=len(specs))
        leased = specs_from_wire(lease["specs"])
        assert sorted(spec_key(s) for s in leased) == sorted(
            spec_key(s) for s in specs
        )
        status = service.upload(
            worker,
            job["job"],
            executed_entries(leased),
            lease_id=lease["lease"],
        )
        assert status["state"] == "done"
        assert status["executed"] == len(specs)
        assert status["copied"] == len(specs)
        assert service.stats()["active_leases"] == 0

    def test_cached_grid_completes_at_submit(self, service):
        specs = tiny_specs()
        for entry in executed_entries(specs):
            service.cache.merge_entry(entry["key"], entry["payload"])
        job = self.submit(service, specs)
        assert job["state"] == "done"
        assert job["hits"] == len(specs)
        assert job["executed"] == 0
        # The completion events are already there, in grid order.
        events = service.job_events(job["job"])["events"]
        assert [event["index"] for event in events] == list(
            range(len(specs))
        )
        assert all(event["cached"] for event in events)
        # No worker is ever consulted: a lease finds nothing pending.
        worker = service.register_worker("w0")["worker"]
        assert service.lease(worker, limit=8)["lease"] is None

    def test_dead_worker_lease_expires_and_redispatches(
        self, service, clock
    ):
        """The satellite bar: a worker dying mid-lease degrades to a
        re-dispatch, and the job still completes."""
        specs = tiny_specs()
        job = self.submit(service, specs)
        dead = service.register_worker("dies-mid-lease")["worker"]
        lease = service.lease(dead, limit=len(specs))
        assert len(lease["specs"]) == len(specs)
        # Before the deadline nothing is pending for anyone else.
        survivor = service.register_worker("survivor")["worker"]
        assert service.lease(survivor, limit=8)["lease"] is None
        # The worker dies; its lease times out.
        clock.advance(10.5)
        release = service.lease(survivor, limit=len(specs))
        assert sorted(
            spec_key(s) for s in specs_from_wire(release["specs"])
        ) == sorted(spec_key(s) for s in specs)
        status = service.upload(
            survivor,
            job["job"],
            executed_entries(specs),
            lease_id=release["lease"],
        )
        assert status["state"] == "done"
        assert service.stats()["expired_leases"] == 1

    def test_late_upload_from_expired_lease_is_a_noop(
        self, service, clock
    ):
        """A slow (not dead) worker's late upload lands as a
        byte-identical no-op next to the re-dispatched copy."""
        specs = tiny_specs()
        job = self.submit(service, specs)
        slow = service.register_worker("slow")["worker"]
        stale = service.lease(slow, limit=len(specs))
        clock.advance(10.5)
        fast = service.register_worker("fast")["worker"]
        release = service.lease(fast, limit=len(specs))
        entries = executed_entries(specs)
        service.upload(fast, job["job"], entries, lease_id=release["lease"])
        late = service.upload(
            slow, job["job"], entries, lease_id=stale["lease"]
        )
        assert late["state"] == "done"
        assert late["identical"] == len(specs)
        assert late["copied"] == 0
        # The late copy did not double-count executions.
        assert late["executed"] == len(specs)

    def test_conflicting_upload_errors_the_job(self, service):
        """Byte-level disagreement for one content address is model
        skew: the job surfaces CacheMergeError, state -> error."""
        specs = tiny_specs()
        job = self.submit(service, specs)
        rogue = service.register_worker("skewed-model")["worker"]
        honest = service.register_worker("honest")["worker"]
        entries = executed_entries(specs)
        tampered = dict(entries[0])
        tampered["payload"] = entries[0]["payload"].replace(
            '"version"', '"Version"', 1
        )
        assert tampered["payload"] != entries[0]["payload"]
        lease = service.lease(rogue, limit=1)
        service.upload(rogue, job["job"], [tampered], lease_id=lease["lease"])
        with pytest.raises(CacheMergeError, match="merge conflict"):
            service.upload(honest, job["job"], [entries[0]])
        status = service.job_status(job["job"])
        assert status["state"] == "error"
        assert "merge conflict" in status["error"]

    def test_duplicate_cells_in_grid_rejected(self, service):
        spec = tiny_specs()[0]
        with pytest.raises(ProtocolError, match="duplicate cell"):
            self.submit(service, [spec, spec])

    def test_two_workers_get_shard_disjoint_slices(self, service):
        """Assignment prefers shard_of(spec, fleet) == slot — a stable
        fleet splits a grid exactly like ``--shard I/N`` hosts."""
        specs = tiny_specs()
        self.submit(service, specs)
        workers = [
            service.register_worker(f"w{slot}")["worker"]
            for slot in range(2)
        ]
        owned = {
            slot: sorted(
                spec_key(s) for s in specs if shard_of(s, 2) == slot
            )
            for slot in range(2)
        }
        for slot, worker in enumerate(workers):
            lease = service.lease(worker, limit=len(owned[slot]))
            keys = sorted(
                spec_key(s) for s in specs_from_wire(lease["specs"])
            )
            assert keys == owned[slot]

    def test_fetch_results_guards(self, service):
        specs = tiny_specs()
        job = self.submit(service, specs)
        with pytest.raises(ProtocolError, match="not complete"):
            service.fetch_results(job["job"], [spec_key(specs[0])])
        with pytest.raises(UnknownResource, match="no cell"):
            service.fetch_results(job["job"], ["f" * 64])
        with pytest.raises(UnknownResource, match="unknown job"):
            service.job_status("nope")
        with pytest.raises(UnknownResource, match="unknown worker"):
            service.lease("nope")

    def test_fetched_payload_is_the_entry_file(self, service):
        specs = tiny_specs()[:1]
        entries = executed_entries(specs)
        job = self.submit(service, specs)
        worker = service.register_worker("w0")["worker"]
        lease = service.lease(worker, limit=1)
        service.upload(worker, job["job"], entries, lease_id=lease["lease"])
        fetched = service.fetch_results(job["job"], [entries[0]["key"]])
        assert fetched["results"][entries[0]["key"]] == entries[0]["payload"]


# ---------------------------------------------------------------------------
# HTTP loopback: daemon + worker threads + remote executor
# ---------------------------------------------------------------------------


@contextmanager
def loopback(cache, workers=2, jobs=1, lease_timeout=30.0):
    """A live daemon on a free loopback port plus worker threads."""
    server = serve(cache=cache, lease_timeout=lease_timeout)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    stop = threading.Event()
    threads = []
    for index in range(workers):
        agent = SweepWorker(
            server.url, jobs=jobs, name=f"w{index}", poll_interval=0.02
        )
        thread = threading.Thread(
            target=agent.run_forever,
            kwargs={"should_stop": stop.is_set},
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    try:
        yield server
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        server.shutdown()
        server.server_close()


def remote(server, **kwargs):
    kwargs.setdefault("poll_interval", 0.02)
    kwargs.setdefault("timeout", 60.0)
    return RemoteExecutor(server.url, **kwargs)


class TestLoopback:
    def test_remote_byte_identical_and_resubmit_all_hits(self, tmp_path):
        """The tentpole acceptance test, end to end over HTTP:
        ``remote`` records == ``serial`` records byte for byte, and the
        repeated grid is answered 100% from the server's cache."""
        reference = tiny_sweep().run(executor="serial")
        with loopback(ResultCache(tmp_path / "server-cache")) as server:
            events = []
            first = tiny_sweep().run(
                executor=remote(server),
                on_result=lambda spec, result, cached: events.append(
                    (spec_key(spec), cached)
                ),
            )
            assert first.to_csv() == reference.to_csv()
            assert first.to_json() == reference.to_json()
            # on_result fired in grid order, all misses.
            assert [key for key, _ in events] == [
                spec_key(spec) for spec in tiny_specs()
            ]
            assert [cached for _, cached in events] == [False] * 4

            again = tiny_sweep().run(executor=remote(server))
            assert again.to_csv() == reference.to_csv()

            client = ServiceClient(server.url)
            stats = client.stats()
            jobs = stats["jobs"]
            assert len(jobs) == 2
            assert (jobs[0]["hits"], jobs[0]["executed"]) == (0, 4)
            # The resubmission never touched the simulator.
            assert (jobs[1]["hits"], jobs[1]["executed"]) == (4, 0)
            assert stats["cells_executed"] == 4
            # GET /cache is the cache.status() document verbatim.
            assert client.cache_status() == server.service.cache.status()

    def test_remote_warms_the_local_cache(self, tmp_path):
        with loopback(ResultCache(tmp_path / "server-cache")) as server:
            local = ResultCache(tmp_path / "local")
            tiny_sweep().run(executor=remote(server), cache=local)
            assert len(local) == 4
            # Second run resolves locally: no new job on the server.
            hits = []
            tiny_sweep().run(
                cache=local,
                executor=remote(server),
                on_result=lambda spec, result, cached: hits.append(cached),
            )
            assert hits == [True] * 4
            assert len(ServiceClient(server.url).stats()["jobs"]) == 1

    def test_malformed_submit_is_400_and_server_stays_up(self, tmp_path):
        with loopback(
            ResultCache(tmp_path / "server-cache"), workers=0
        ) as server:
            request = urllib.request.Request(
                f"{server.url}/sweeps",
                data=b"this is not json{",
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400
            assert b"not JSON" in excinfo.value.read()

            # Structured-but-invalid bodies are 400s too, each shape
            # with a speaking message.
            client = ServiceClient(server.url)
            for body, match in (
                ({"specs": "all of them"}, "list"),
                ({"specs": []}, "empty"),
                ({"specs": [{"workload": "WE"}]}, "framework"),
            ):
                with pytest.raises(ServiceError, match=match):
                    client._request("POST", "/sweeps", body)

            # The server survived all of it.
            assert client.health()["ok"] is True
            job = client.submit(tiny_specs()[:1])
            assert job["state"] == "running"

    def test_unknown_routes_are_404(self, tmp_path):
        with loopback(
            ResultCache(tmp_path / "server-cache"), workers=0
        ) as server:
            client = ServiceClient(server.url)
            with pytest.raises(ServiceError, match="404"):
                client.job("nope")
            with pytest.raises(ServiceError, match="no such endpoint"):
                client._request("GET", "/teapot")

    def test_remote_without_workers_times_out_with_hint(self, tmp_path):
        with loopback(
            ResultCache(tmp_path / "server-cache"), workers=0
        ) as server:
            executor = remote(server, timeout=0.2)
            with pytest.raises(ServiceError, match="workers connected"):
                tiny_sweep().run(executor=executor)

    def test_conflict_surfaces_to_the_client(self, tmp_path):
        """A skewed upload 409s over HTTP and errors the job for the
        remote executor polling it."""
        with loopback(
            ResultCache(tmp_path / "server-cache"), workers=0
        ) as server:
            client = ServiceClient(server.url)
            specs = tiny_specs()
            job = client.submit(specs)
            rogue = client.register_worker("skewed")["worker"]
            entries = executed_entries(specs[:1])
            tampered = entries[0]["payload"].replace(
                '"version"', '"Version"', 1
            )
            lease = client.lease(rogue, limit=1)
            client.upload(
                rogue,
                job["job"],
                [{"key": entries[0]["key"], "payload": tampered}],
                lease_id=lease["lease"],
            )
            with pytest.raises(CacheMergeError, match="merge conflict"):
                client.upload(rogue, job["job"], entries)
            assert client.job(job["job"])["state"] == "error"

    def test_conflict_errors_the_remote_executors_job(self, tmp_path):
        """A poisoned content address on the server errors the job the
        remote executor is polling, and surfaces as CacheMergeError."""
        cache = ResultCache(tmp_path / "server-cache")
        specs = tiny_specs()
        entries = executed_entries(specs[:1])
        # Plant different bytes under cell 0's address.  The corrupt
        # entry reads as a miss at submit time, so an honest worker
        # re-executes the cell — and its upload disagrees byte-wise.
        poisoned = entries[0]["payload"].replace('"version"', '"Version"', 1)
        (cache.root / f"{entries[0]['key']}.json").write_text(
            poisoned, encoding="utf-8"
        )
        with loopback(cache, workers=1) as server:
            with pytest.raises(CacheMergeError, match="merge conflict"):
                remote(server).run(specs)

    def test_worker_exits_on_max_idle_and_server_loss(self, tmp_path):
        server = serve(cache=ResultCache(tmp_path / "server-cache"))
        threading.Thread(target=server.serve_forever, daemon=True).start()
        worker = SweepWorker(
            server.url, name="idler", poll_interval=0.01, max_idle=0.05
        )
        summary = worker.run_forever()
        assert summary["cells_done"] == 0
        server.shutdown()
        server.server_close()
        # With the daemon gone the worker retries, then gives up.
        orphan = SweepWorker(
            server.url, name="orphan", poll_interval=0.01, retries=2
        )
        with pytest.raises(ServiceError, match="cannot reach"):
            orphan.run_forever()


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCliService:
    GRID = (
        "sweep", "--frameworks", "baseline,oo-vr",
        "--workloads", "DM3-640,WE", "--fast", "--frames", "2",
    )

    def run_cli(self, capsys, *argv):
        code = cli.main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_sweep_server_flag_round_trip(self, tmp_path, capsys):
        serial_csv = tmp_path / "serial.csv"
        code, _, _ = self.run_cli(
            capsys, *self.GRID, "--csv", str(serial_csv)
        )
        assert code == 0
        with loopback(ResultCache(tmp_path / "server-cache")) as server:
            remote_csv = tmp_path / "remote.csv"
            code, out, _ = self.run_cli(
                capsys, *self.GRID, "--server", server.url,
                "--csv", str(remote_csv),
            )
            assert code == 0
            assert remote_csv.read_bytes() == serial_csv.read_bytes()

    def test_server_flag_conflicts_with_other_executors(self, capsys):
        code, _, err = self.run_cli(
            capsys, *self.GRID,
            "--server", "http://127.0.0.1:1", "--executor", "process",
        )
        assert code == 2
        assert "cannot be combined" in err

    def test_remote_executor_without_server_exits_2(
        self, capsys, monkeypatch
    ):
        monkeypatch.delenv("OOVR_SERVER", raising=False)
        code, _, err = self.run_cli(
            capsys, *self.GRID, "--executor", "remote"
        )
        assert code == 2
        assert "OOVR_SERVER" in err

    def test_malformed_server_url_exits_2(self, capsys):
        code, _, err = self.run_cli(
            capsys, *self.GRID, "--server", "ftp://host"
        )
        assert code == 2
        assert "http://" in err

    def test_bad_serve_and_worker_flags_exit_2(self, capsys):
        code, _, err = self.run_cli(
            capsys, "serve", "--cache", "x", "--lease-timeout", "0"
        )
        assert (code, "lease_timeout must be positive" in err) == (2, True)
        code, _, err = self.run_cli(
            capsys, "worker", "http://127.0.0.1:1", "--lease-limit", "0"
        )
        assert (code, "lease_limit" in err) == (2, True)
        code, _, err = self.run_cli(
            capsys, "worker", "http://127.0.0.1:1", "--poll-interval", "-1"
        )
        assert (code, "poll_interval" in err) == (2, True)

    def test_unreachable_server_exits_1(self, capsys):
        code, _, err = self.run_cli(
            capsys, *self.GRID, "--server", "http://127.0.0.1:9",
        )
        assert code == 1
        assert "cannot reach sweep server" in err

    def test_cache_info_json_matches_status(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache")
        tiny_sweep().run(shard="0/2", cache=cache)
        code, out, _ = self.run_cli(
            capsys, "cache", "info", str(cache.root), "--json"
        )
        assert code == 0
        document = json.loads(out)
        assert document == ResultCache(cache.root).status()
        (row,) = document["grids"]
        assert row["shard_count"] == 2
        assert row["complete"] is False
        # The human rendering reads the same document.
        code, out, _ = self.run_cli(
            capsys, "cache", "info", str(cache.root)
        )
        assert code == 0
        assert "[incomplete]" in out
