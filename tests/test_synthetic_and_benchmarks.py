"""Synthetic workload generation and the Table 3 suite."""

import pytest

from repro.scene.benchmarks import (
    BENCHMARKS,
    WORKLOADS,
    make_benchmark_scene,
    parse_workload,
)
from repro.scene.objects import Eye
from repro.scene.synthetic import SceneProfile, SyntheticSceneGenerator
from repro.scene.vr import PC_GAMING, STEREO_VR, requirements_table


class TestGeneratorDeterminism:
    def test_same_seed_same_scene(self, tiny_profile):
        a = SyntheticSceneGenerator(tiny_profile, seed=11).make_frame()
        b = SyntheticSceneGenerator(tiny_profile, seed=11).make_frame()
        assert a.total_triangles == b.total_triangles
        assert [o.name for o in a.objects] == [o.name for o in b.objects]
        assert [o.mesh.num_triangles for o in a.objects] == [
            o.mesh.num_triangles for o in b.objects
        ]

    def test_different_seed_different_scene(self, tiny_profile):
        a = SyntheticSceneGenerator(tiny_profile, seed=1).make_frame()
        b = SyntheticSceneGenerator(tiny_profile, seed=2).make_frame()
        assert [o.mesh.num_triangles for o in a.objects] != [
            o.mesh.num_triangles for o in b.objects
        ]

    def test_object_count_matches_profile(self, tiny_profile):
        frame = SyntheticSceneGenerator(tiny_profile).make_frame()
        assert len(frame.objects) == tiny_profile.num_objects

    def test_frames_share_texture_pool(self, tiny_profile):
        generator = SyntheticSceneGenerator(tiny_profile)
        scene = generator.make_scene(num_frames=2)
        ids_a = {t.texture_id for t in scene.frames[0].unique_textures}
        ids_b = {t.texture_id for t in scene.frames[1].unique_textures}
        assert ids_a & ids_b, "frames must reuse the material pool"

    def test_materials_bounded_by_pool(self, tiny_profile):
        frame = SyntheticSceneGenerator(tiny_profile).make_frame()
        assert len(frame.unique_textures) <= tiny_profile.num_materials


class TestGeneratedStatistics:
    def test_most_objects_stereo(self, tiny_profile):
        frame = SyntheticSceneGenerator(tiny_profile, seed=3).make_frame()
        stereo = sum(1 for o in frame.objects if o.is_stereo)
        assert stereo >= 0.8 * len(frame.objects)

    def test_viewports_inside_eye_bounds(self, tiny_profile):
        frame = SyntheticSceneGenerator(tiny_profile, seed=3).make_frame()
        for obj in frame.objects:
            for vp in (obj.viewport_left, obj.viewport_right):
                if vp is None:
                    continue
                assert vp.x0 >= -1e-6 and vp.y0 >= -1e-6
                assert vp.x1 <= tiny_profile.width + 1e-6
                assert vp.y1 <= tiny_profile.height + 1e-6

    def test_texture_sharing_exists(self, tiny_profile):
        frame = SyntheticSceneGenerator(tiny_profile, seed=3).make_frame()
        assert frame.texture_sharing_ratio() > 1.2

    def test_triangle_distribution_heavy_tailed(self):
        profile = SceneProfile(
            name="tail", num_objects=300, width=640, height=480
        )
        frame = SyntheticSceneGenerator(profile, seed=5).make_frame()
        sizes = sorted(o.mesh.num_triangles for o in frame.objects)
        mean = sum(sizes) / len(sizes)
        assert sizes[-1] > 4 * mean, "expect a heavy tail"

    def test_vertical_skew_shifts_centres_down(self):
        flat = SceneProfile(
            name="flat", num_objects=400, width=640, height=480,
            vertical_skew=0.0,
        )
        skewed = SceneProfile(
            name="skew", num_objects=400, width=640, height=480,
            vertical_skew=0.6,
        )

        def mean_cy(profile):
            frame = SyntheticSceneGenerator(profile, seed=9).make_frame()
            centres = [
                (o.viewport_left or o.viewport_right)
                for o in frame.objects
            ]
            return sum((c.y0 + c.y1) / 2 for c in centres) / len(centres)

        assert mean_cy(skewed) > mean_cy(flat) + 10

    def test_dependencies_point_backwards(self, tiny_profile):
        frame = SyntheticSceneGenerator(tiny_profile, seed=3).make_frame()
        for obj in frame.objects:
            if obj.depends_on is not None:
                assert obj.depends_on < obj.object_id


class TestProfileValidation:
    def test_bad_mono_fraction(self):
        with pytest.raises(ValueError):
            SceneProfile(
                name="x", num_objects=1, width=1, height=1, mono_fraction=1.0
            ).validate()

    def test_bad_texture_range(self):
        with pytest.raises(ValueError):
            SceneProfile(
                name="x",
                num_objects=1,
                width=10,
                height=10,
                textures_per_object=(3, 2),
            ).validate()


class TestTable3:
    def test_five_benchmarks(self):
        assert set(BENCHMARKS) == {"DM3", "HL2", "NFS", "UT3", "WE"}

    def test_paper_draw_counts(self):
        assert BENCHMARKS["DM3"].num_draws == 191
        assert BENCHMARKS["HL2"].num_draws == 328
        assert BENCHMARKS["NFS"].num_draws == 1267
        assert BENCHMARKS["UT3"].num_draws == 876
        assert BENCHMARKS["WE"].num_draws == 1697

    def test_nine_workload_points(self):
        assert len(WORKLOADS) == 9

    def test_parse_with_resolution(self):
        spec, w, h = parse_workload("DM3-1600")
        assert spec.abbr == "DM3"
        assert (w, h) == (1600, 1200)

    def test_parse_default_resolution(self):
        spec, w, h = parse_workload("NFS")
        assert (w, h) == (1280, 1024)

    def test_parse_rejects_unknown_game(self):
        with pytest.raises(KeyError):
            parse_workload("QUAKE")

    def test_parse_rejects_unevaluated_resolution(self):
        with pytest.raises(KeyError):
            parse_workload("WE-1600")

    def test_scene_has_paper_draw_count(self):
        scene = make_benchmark_scene("DM3-640", num_frames=1)
        assert scene.num_draws == 191

    def test_draw_scale(self):
        scene = make_benchmark_scene("HL2-1280", num_frames=1, draw_scale=0.25)
        assert scene.num_draws == 82

    def test_resolution_applied(self):
        scene = make_benchmark_scene("HL2-640", num_frames=1)
        assert (scene.width, scene.height) == (640, 480)

    def test_deterministic_per_seed(self):
        a = make_benchmark_scene("WE", num_frames=1, seed=1)
        b = make_benchmark_scene("WE", num_frames=1, seed=1)
        assert a.frames[0].total_triangles == b.frames[0].total_triangles


class TestTable1:
    def test_vr_needs_116_mpixels(self):
        assert STEREO_VR.megapixels == pytest.approx(116.64)

    def test_vr_deadline_stricter_than_pc(self):
        assert STEREO_VR.frame_latency_ms_min < PC_GAMING.frame_latency_ms_min

    def test_deadline_check(self):
        # 4 ms at 1 GHz meets the 5 ms VR deadline; 8 ms does not.
        assert STEREO_VR.meets_deadline(4e6)
        assert not STEREO_VR.meets_deadline(8e6)

    def test_requirements_table_rows(self):
        rows = requirements_table()
        assert len(rows) == 4
        assert rows[0][0] == "Display"
