"""Scene substrate: textures, meshes, viewports, objects, frames."""

import pytest

from repro.scene.geometry import (
    Mesh,
    Viewport,
    full_screen,
    horizontal_strips,
    vertical_strips,
)
from repro.scene.objects import Eye, RenderObject, StereoDraw
from repro.scene.scene import Frame, Scene
from repro.scene.texture import (
    Texture,
    TexturePool,
    shared_textures,
    unique_texture_bytes,
)
from tests.conftest import MB, make_object


class TestTexturePool:
    def test_interning_returns_same_object(self, pool):
        a = pool.get_or_create("stone", MB)
        b = pool.get_or_create("stone", MB)
        assert a is b

    def test_distinct_names_distinct_ids(self, pool):
        a = pool.get_or_create("stone", MB)
        b = pool.get_or_create("cloth", MB)
        assert a.texture_id != b.texture_id

    def test_size_conflict_raises(self, pool):
        pool.get_or_create("stone", MB)
        with pytest.raises(ValueError):
            pool.get_or_create("stone", 2 * MB)

    def test_total_bytes_counts_once(self, pool):
        pool.get_or_create("a", MB)
        pool.get_or_create("b", 2 * MB)
        pool.get_or_create("a", MB)
        assert pool.total_bytes == 3 * MB

    def test_contains_and_len(self, pool):
        pool.get_or_create("a", MB)
        assert "a" in pool
        assert "b" not in pool
        assert len(pool) == 1

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Texture(0, "bad", 0)

    def test_unique_texture_bytes_dedups(self, pool):
        a = pool.get_or_create("a", MB)
        b = pool.get_or_create("b", MB)
        assert unique_texture_bytes([a, b, a]) == 2 * MB

    def test_shared_textures_identity(self, pool):
        a = pool.get_or_create("a", MB)
        b = pool.get_or_create("b", MB)
        c = pool.get_or_create("c", MB)
        assert shared_textures([a, b], [b, c]) == (b,)


class TestMesh:
    def test_vertex_buffer_bytes(self):
        assert Mesh(100, 150, vertex_bytes=32).vertex_buffer_bytes == 3200

    def test_triangles_require_vertices(self):
        with pytest.raises(ValueError):
            Mesh(0, 10)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            Mesh(-1, 0)

    def test_scaled_rounds_and_floors(self):
        mesh = Mesh(100, 150).scaled(0.001)
        assert mesh.num_vertices >= 1
        assert mesh.num_triangles >= 1

    def test_scaled_up(self):
        mesh = Mesh(100, 150).scaled(2.0)
        assert mesh.num_triangles == 300


class TestViewport:
    def test_area(self):
        assert Viewport(0, 0, 10, 5).area == 50

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Viewport(10, 0, 0, 5)

    def test_zero_area_allowed(self):
        assert Viewport(5, 0, 5, 10).area == 0

    def test_shift(self):
        v = Viewport(0, 0, 10, 10).shifted(5, -2)
        assert (v.x0, v.y0, v.x1, v.y1) == (5, -2, 15, 8)

    def test_intersection(self):
        a = Viewport(0, 0, 10, 10)
        b = Viewport(5, 5, 15, 15)
        inter = a.intersection(b)
        assert inter == Viewport(5, 5, 10, 10)

    def test_disjoint_intersection_none(self):
        assert Viewport(0, 0, 1, 1).intersection(Viewport(5, 5, 6, 6)) is None

    def test_overlap_fraction(self):
        a = Viewport(0, 0, 10, 10)
        b = Viewport(5, 0, 15, 10)
        assert a.overlap_fraction(b) == pytest.approx(0.5)

    def test_full_screen(self):
        v = full_screen(1280, 1024)
        assert v.area == 1280 * 1024

    def test_vertical_strips_partition(self):
        screen = full_screen(100, 50)
        strips = vertical_strips(screen, 4)
        assert len(strips) == 4
        assert sum(s.area for s in strips) == pytest.approx(screen.area)
        assert strips[0].x1 == strips[1].x0

    def test_horizontal_strips_partition(self):
        screen = full_screen(100, 52)
        strips = horizontal_strips(screen, 4)
        assert sum(s.area for s in strips) == pytest.approx(screen.area)
        assert strips[0].y1 == strips[1].y0

    def test_strip_count_positive(self):
        with pytest.raises(ValueError):
            vertical_strips(full_screen(10, 10), 0)


class TestRenderObject:
    def test_stereo_visibility(self, pool):
        obj = make_object(0, pool)
        assert obj.is_stereo

    def test_mono_object(self, pool):
        obj = make_object(0, pool, mono=True)
        assert not obj.is_stereo

    def test_invisible_object_rejected(self, pool):
        with pytest.raises(ValueError):
            RenderObject(
                object_id=0,
                name="ghost",
                mesh=Mesh(3, 1),
                textures=(pool.get_or_create("t", MB),),
                viewport_left=None,
                viewport_right=None,
            )

    def test_self_dependency_rejected(self, pool):
        with pytest.raises(ValueError):
            make_object(3, pool, depends_on=3)

    def test_fragments_scale_with_depth(self, pool):
        flat = make_object(0, pool)
        import dataclasses

        deep = dataclasses.replace(flat, depth_complexity=2.6)
        assert deep.fragments(Eye.LEFT) == pytest.approx(
            2 * flat.fragments(Eye.LEFT)
        )

    def test_both_eye_fragments_sum(self, pool):
        obj = make_object(0, pool)
        both = obj.fragments(Eye.BOTH)
        assert both == pytest.approx(
            obj.fragments(Eye.LEFT) + obj.fragments(Eye.RIGHT)
        )

    def test_stereo_draws_two_eyes(self, pool):
        draws = make_object(0, pool).stereo_draws()
        assert [d.eye for d in draws] == [Eye.LEFT, Eye.RIGHT]

    def test_mono_object_one_draw(self, pool):
        draws = make_object(0, pool, mono=True).stereo_draws()
        assert len(draws) == 1

    def test_multiview_draw_covers_both(self, pool):
        draw = make_object(0, pool).multiview_draw()
        assert draw.eye is Eye.BOTH
        assert draw.view_count == 2

    def test_multiview_of_mono_is_single(self, pool):
        draw = make_object(0, pool, mono=True).multiview_draw()
        assert draw.view_count == 1


class TestStereoDraw:
    def test_draw_viewports_both(self, pool):
        draw = make_object(0, pool).multiview_draw()
        assert len(draw.viewports()) == 2

    def test_invalid_eye_binding_rejected(self, pool):
        obj = make_object(0, pool, mono=True)  # right eye missing
        with pytest.raises(ValueError):
            StereoDraw(obj, Eye.RIGHT)

    def test_draw_key_stable(self, pool):
        obj = make_object(7, pool)
        assert StereoDraw(obj, Eye.LEFT).draw_key == (7, "left")


class TestFrame:
    def test_duplicate_object_id_rejected(self, pool):
        a = make_object(1, pool)
        b = make_object(1, pool)
        with pytest.raises(ValueError):
            Frame(objects=(a, b), width=100, height=100)

    def test_missing_dependency_rejected(self, pool):
        a = make_object(1, pool, depends_on=99)
        with pytest.raises(ValueError):
            Frame(objects=(a,), width=100, height=100)

    def test_stereo_draw_count(self, small_frame):
        # 5 stereo objects x 2 + 1 mono object.
        assert len(small_frame.stereo_draws()) == 11

    def test_multiview_draw_count(self, small_frame):
        assert len(small_frame.multiview_draws()) == 6

    def test_total_pixels_both_eyes(self, small_frame):
        assert small_frame.total_pixels == 2 * 1280 * 1024

    def test_stereo_viewport_twice_as_wide(self, small_frame):
        assert small_frame.stereo_viewport.width == 2 * 1280

    def test_texture_bytes_dedup(self, small_frame):
        # stone shared by three objects but counted once.
        per_object = sum(o.texture_bytes for o in small_frame.objects)
        assert small_frame.texture_bytes < per_object

    def test_sharing_ratio_above_one(self, small_frame):
        assert small_frame.texture_sharing_ratio() > 1.0


class TestScene:
    def test_mixed_resolutions_rejected(self, pool):
        f1 = Frame(objects=(make_object(0, pool),), width=100, height=100)
        f2 = Frame(objects=(make_object(0, pool),), width=200, height=100)
        with pytest.raises(ValueError):
            Scene(name="bad", frames=(f1, f2))

    def test_scene_iteration(self, tiny_scene):
        assert len(list(tiny_scene)) == len(tiny_scene) == 2

    def test_num_draws(self, tiny_scene):
        assert tiny_scene.num_draws == 24
