"""Shared fixtures: small deterministic scenes and systems."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig, baseline_system
from repro.scene.geometry import Mesh, Viewport
from repro.scene.objects import RenderObject
from repro.scene.scene import Frame, Scene
from repro.scene.synthetic import SceneProfile, SyntheticSceneGenerator
from repro.scene.texture import Texture, TexturePool

KB = 1024
MB = 1024 * KB


@pytest.fixture
def config() -> SystemConfig:
    """The Table 2 baseline configuration."""
    return baseline_system()


@pytest.fixture
def pool() -> TexturePool:
    return TexturePool()


def make_object(
    object_id: int,
    pool: TexturePool,
    name: str | None = None,
    textures: tuple[tuple[str, int], ...] = (("stone", MB),),
    triangles: int = 600,
    x: float = 100.0,
    y: float = 100.0,
    w: float = 200.0,
    h: float = 150.0,
    depends_on: int | None = None,
    mono: bool = False,
) -> RenderObject:
    """A hand-built render object for unit tests."""
    left = Viewport(x, y, x + w, y + h)
    right = left.shifted(12.0)
    return RenderObject(
        object_id=object_id,
        name=name or f"obj{object_id}",
        mesh=Mesh(num_vertices=max(3, triangles // 2), num_triangles=triangles),
        textures=tuple(pool.get_or_create(n, s) for n, s in textures),
        viewport_left=left,
        viewport_right=None if mono else right,
        depends_on=depends_on,
    )


@pytest.fixture
def small_frame(pool: TexturePool) -> Frame:
    """Six objects, two materials shared pairwise, one dependency."""
    objects = (
        make_object(0, pool, "pillar1", (("stone", MB),)),
        make_object(1, pool, "flag", (("cloth", MB // 2),), x=400.0),
        make_object(2, pool, "pillar2", (("stone", MB),), x=700.0),
        make_object(3, pool, "floor", (("stone", MB), ("dirt", MB)), y=600.0),
        make_object(4, pool, "window", (("glass", MB // 4),), depends_on=3),
        make_object(5, pool, "hud", (("ui", MB // 8),), mono=True, x=20.0, y=20.0),
    )
    return Frame(objects=objects, width=1280, height=1024)


@pytest.fixture
def small_scene(small_frame: Frame) -> Scene:
    return Scene(name="unit-test", frames=(small_frame,))


@pytest.fixture
def tiny_profile() -> SceneProfile:
    return SceneProfile(
        name="tiny", num_objects=24, width=640, height=480, num_materials=12
    )


@pytest.fixture
def tiny_scene(tiny_profile: SceneProfile) -> Scene:
    return SyntheticSceneGenerator(tiny_profile, seed=7).make_scene(num_frames=2)
