"""The persistent compiled work-plan store (repro.plan.store).

Pins the store's three contracts.  First, round-trips are exact: a
``"frame"`` hit's :class:`FrameCounters` columns and a ``"group"``
hit's ``(Batch, merged WorkUnit)`` pairs compare ``==`` field-for-field
against the in-process oracle (``frame_counters`` /
``_BatchBuilder._build``), so results with the store on are
byte-identical to the store off.  Second, the on-disk format is
byte-deterministic and failure-safe: concurrent writers racing on one
key write identical bytes, and corrupt, truncated or stale entries
degrade to a rebuild-and-rewrite, never to wrong numbers.  Third, the
store is byte-transparent end to end — session results, sweep CSVs and
the reuse memo's identity anchoring are unchanged, with only the
``profile_plan_*`` counters showing the work it removed.
"""

from __future__ import annotations

import dataclasses
import json
import threading

import numpy as np
import pytest

from repro import cli
from repro.config import SystemConfig
from repro.frameworks.base import build_framework
from repro.pipeline.batch import frame_counters, work_units_from_counters
from repro.pipeline.smp import SMPMode
from repro.plan.store import (
    _COUNTER_COLUMNS,
    PLAN_VERSION,
    PlanStore,
    active_plan_store,
    cost_fingerprint,
    frame_plan_key,
    group_plan_key,
    plan_content_key,
    plan_store_scope,
    set_plan_store,
)
from repro.reuse import get_cache
from repro.scene.store import scene_key
from repro.session.session import Session, Sweep
from repro.session.spec import cached_scene


@pytest.fixture(autouse=True)
def _fresh_plan_state():
    """Isolate every test from the process-wide memo, scene cache and
    ambient plan store (the memo otherwise absorbs repeat runs before
    the store is ever consulted)."""
    cached_scene.cache_clear()
    get_cache().clear()
    set_plan_store(None)
    yield
    cached_scene.cache_clear()
    get_cache().clear()
    set_plan_store(None)


def stamped_frame(workload: str = "DM3-640"):
    """A frame that came through cached_scene, so it carries the
    scene-content stamp the store keys on."""
    return cached_scene(workload, 2, 2019, 0.15).frames[0]


def oracle_ingredients(workload: str = "DM3-640"):
    frame = stamped_frame(workload)
    cost = SystemConfig().cost
    return frame, cost, plan_content_key(frame), cost_fingerprint(cost)


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------


class TestPlanKeys:
    def test_content_key_is_stamped_by_cached_scene(self):
        scene = cached_scene("DM3-640", 2, 2019, 0.15)
        base = scene_key("DM3-640", 2, 2019, 0.15)
        for frame in scene.frames:
            assert plan_content_key(frame) == f"{base}:{frame.frame_id}"

    def test_unstamped_frame_makes_store_inert(self, tmp_path):
        frame = stamped_frame()
        bare = dataclasses.replace(frame)  # fresh instance, no stamp
        assert plan_content_key(bare) is None
        # The hook sites bypass the store for such frames: rendering a
        # hand-built frame writes nothing.
        store = PlanStore(tmp_path)
        with plan_store_scope(store):
            build_framework("oo-vr")._builder.build(bare)
        assert store.entry_paths() == []
        assert store.stats.as_dict() == {
            "hits": 0, "misses": 0, "stores": 0, "corrupt": 0,
        }

    def test_cost_fingerprint_tracks_pricing_fields_only(self):
        cost = SystemConfig().cost
        assert cost_fingerprint(cost) == cost_fingerprint(cost)
        bumped = dataclasses.replace(
            cost, bytes_per_vertex=cost.bytes_per_vertex + 1.0
        )
        assert cost_fingerprint(bumped) != cost_fingerprint(cost)

    def test_keys_are_stable_and_knob_sensitive(self):
        key = frame_plan_key("scene:0", "fp", SMPMode.SIMULTANEOUS, "multiview")
        assert len(key) == 64
        assert key == frame_plan_key(
            "scene:0", "fp", SMPMode.SIMULTANEOUS, "multiview"
        )
        assert key != frame_plan_key(
            "scene:0", "fp", SMPMode.SEQUENTIAL, "multiview"
        )
        assert key != frame_plan_key(
            "scene:0", "fp", SMPMode.SIMULTANEOUS, "stereo"
        )
        assert key != frame_plan_key(
            "scene:1", "fp", SMPMode.SIMULTANEOUS, "multiview"
        )
        assert key != frame_plan_key(
            "scene:0", "fp2", SMPMode.SIMULTANEOUS, "multiview"
        )
        group = group_plan_key("scene:0", "fp", 4096, 0.5)
        assert group != key
        assert group != group_plan_key("scene:0", "fp", 2048, 0.5)
        assert group != group_plan_key("scene:0", "fp", 4096, 0.25)
        # The output version is part of the address, so bumping it
        # orphans (never corrupts) every existing entry.
        assert PLAN_VERSION == 1


# ---------------------------------------------------------------------------
# Round trips against the in-process oracle
# ---------------------------------------------------------------------------


class TestFrameRoundTrip:
    @pytest.mark.parametrize(
        "mode, expansion",
        [
            (SMPMode.SIMULTANEOUS, "multiview"),
            (SMPMode.SEQUENTIAL, "stereo"),
        ],
    )
    def test_counters_round_trip_exact(self, tmp_path, mode, expansion):
        frame, cost, content, fp = oracle_ingredients()
        built = frame_counters(
            frame.object_batch, cost, mode=mode, expansion=expansion
        )
        store = PlanStore(tmp_path)
        store.put_frame(content, fp, mode, expansion, built)
        assert store.stats.stores == 1
        loaded = store.get_frame(content, fp, mode, expansion)
        assert loaded is not None
        assert store.stats.hits == 1
        assert loaded.mode is mode and loaded.expansion == expansion
        for name in _COUNTER_COLUMNS:
            want = getattr(built, name)
            got = getattr(loaded, name)
            assert np.array_equal(want, got), name
            assert np.asarray(want).dtype == np.asarray(got).dtype, name
        # The materialised units walk the same code path, so they are
        # field-for-field identical (touches and viewports included).
        assert work_units_from_counters(
            frame.object_batch, loaded, cost
        ) == work_units_from_counters(frame.object_batch, built, cost)

    def test_absent_entry_is_a_plain_miss(self, tmp_path):
        frame, cost, content, fp = oracle_ingredients()
        store = PlanStore(tmp_path)
        assert (
            store.get_frame(content, fp, SMPMode.SEQUENTIAL, "stereo") is None
        )
        assert store.stats.misses == 1 and store.stats.corrupt == 0


class TestGroupRoundTrip:
    def test_pairs_round_trip_exact(self, tmp_path):
        frame, cost, content, fp = oracle_ingredients()
        framework = build_framework("oo-vr")
        builder = framework._builder
        middleware = builder._middleware
        oracle = tuple(builder._build(frame))
        store = PlanStore(tmp_path)
        store.put_group(
            content, fp, middleware.triangle_limit,
            middleware.tsl_threshold, frame, oracle,
        )
        loaded = store.get_group(
            content, fp, middleware.triangle_limit,
            middleware.tsl_threshold, frame,
        )
        assert loaded is not None
        assert store.stats.hits == 1
        assert loaded == oracle  # frozen dataclasses: field-for-field
        # Batches carry the live frame's very object instances, so the
        # identity-anchored reuse machinery downstream keeps working.
        for (got_batch, _), (want_batch, _) in zip(loaded, oracle):
            for got_obj, want_obj in zip(
                got_batch.objects, want_batch.objects
            ):
                assert got_obj is want_obj

    def test_group_hit_skips_characterisation(self, tmp_path):
        """A warm group entry answers without ever pricing the frame."""
        frame, cost, content, fp = oracle_ingredients()
        framework = build_framework("oo-vr")
        framework.warm_plan(frame)  # memo only: no store yet
        store = PlanStore(tmp_path)
        with plan_store_scope(store):
            get_cache().clear()
            build_framework("oo-vr")._builder.build(frame)  # cold: writes
            written = store.stats.stores
            assert written >= 2  # the group and its nested frame entry
            get_cache().clear()
            fresh = build_framework("oo-vr")
            fresh.characterizer.characterize_frame = None  # would raise
            pairs = fresh._builder.build(frame)
        assert store.stats.hits == 1  # one group hit, no frame consult
        assert tuple(pairs) == tuple(
            build_framework("oo-vr")._builder._build(frame)
        )


# ---------------------------------------------------------------------------
# On-disk format: determinism and failure safety
# ---------------------------------------------------------------------------


class TestPlanStoreFormat:
    def test_store_is_byte_deterministic(self, tmp_path):
        frame, cost, content, fp = oracle_ingredients()
        builder = build_framework("oo-vr")._builder
        pairs = tuple(builder._build(frame))
        counters = frame_counters(
            frame.object_batch, cost,
            mode=SMPMode.SEQUENTIAL, expansion="stereo",
        )
        a = PlanStore(tmp_path / "a")
        b = PlanStore(tmp_path / "b")
        for store in (a, b):
            store.put_frame(content, fp, SMPMode.SEQUENTIAL, "stereo", counters)
            store.put_group(content, fp, 4096, 0.5, frame, pairs)
        for path_a, path_b in zip(a.entry_paths(), b.entry_paths()):
            assert path_a.name == path_b.name
            assert path_a.read_bytes() == path_b.read_bytes()
        # Re-persisting a *loaded* plan reproduces the bytes, so a warm
        # host re-storing never flips a shared directory.
        loaded = b.get_group(content, fp, 4096, 0.5, frame)
        b.put_group(content, fp, 4096, 0.5, frame, loaded)
        for path_a, path_b in zip(a.entry_paths(), b.entry_paths()):
            assert path_a.read_bytes() == path_b.read_bytes()

    def test_corrupt_entry_degrades_to_rebuild_and_rewrite(self, tmp_path):
        frame, cost, content, fp = oracle_ingredients()
        counters = frame_counters(
            frame.object_batch, cost,
            mode=SMPMode.SEQUENTIAL, expansion="stereo",
        )
        store = PlanStore(tmp_path)
        store.put_frame(content, fp, SMPMode.SEQUENTIAL, "stereo", counters)
        (entry,) = store.entry_paths()
        good = entry.read_bytes()
        entry.write_bytes(good[: len(good) // 2])
        assert store.get_frame(content, fp, SMPMode.SEQUENTIAL, "stereo") is None
        assert store.stats.corrupt == 1
        # The hook site's rebuild-and-rewrite restores the exact bytes.
        store.put_frame(content, fp, SMPMode.SEQUENTIAL, "stereo", counters)
        assert entry.read_bytes() == good

    def test_stale_entry_under_wrong_key_is_rejected(self, tmp_path):
        """An entry whose content belongs to another key (a file copied
        into the wrong address) is rejected, not trusted."""
        frame, cost, content, fp = oracle_ingredients()
        counters = frame_counters(
            frame.object_batch, cost,
            mode=SMPMode.SEQUENTIAL, expansion="stereo",
        )
        store = PlanStore(tmp_path)
        store.put_frame(content, fp, SMPMode.SEQUENTIAL, "stereo", counters)
        (entry,) = store.entry_paths()
        other = store.path_for(
            frame_plan_key(content, fp, SMPMode.SIMULTANEOUS, "multiview")
        )
        other.write_bytes(entry.read_bytes())
        assert (
            store.get_frame(content, fp, SMPMode.SIMULTANEOUS, "multiview")
            is None
        )
        assert store.stats.corrupt == 1

    def test_kind_mismatch_is_rejected(self, tmp_path):
        """A group entry's bytes under a frame key read as corrupt."""
        frame, cost, content, fp = oracle_ingredients()
        pairs = tuple(build_framework("oo-vr")._builder._build(frame))
        store = PlanStore(tmp_path)
        group_path = store.put_group(content, fp, 4096, 0.5, frame, pairs)
        frame_key = frame_plan_key(
            content, fp, SMPMode.SEQUENTIAL, "stereo"
        )
        store.path_for(frame_key).write_bytes(group_path.read_bytes())
        assert (
            store.get_frame(content, fp, SMPMode.SEQUENTIAL, "stereo") is None
        )
        assert store.stats.corrupt == 1

    def test_concurrent_writers_are_crash_safe(self, tmp_path):
        frame, cost, content, fp = oracle_ingredients()
        pairs = tuple(build_framework("oo-vr")._builder._build(frame))
        reference = PlanStore(tmp_path / "ref")
        reference.put_group(content, fp, 4096, 0.5, frame, pairs)
        (ref_entry,) = reference.entry_paths()

        store = PlanStore(tmp_path / "shared")
        barrier = threading.Barrier(4)
        errors = []

        def writer():
            try:
                barrier.wait()
                store.put_group(content, fp, 4096, 0.5, frame, pairs)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # No torn entries, no stray temp files, and the racing writers
        # all produced the byte-identical entry.
        key = group_plan_key(content, fp, 4096, 0.5)
        assert [p.name for p in store.entry_paths()] == [f"{key}.plan"]
        assert not list(store.root.glob("*.tmp"))
        (entry,) = store.entry_paths()
        assert entry.read_bytes() == ref_entry.read_bytes()
        assert store.get_group(content, fp, 4096, 0.5, frame) == pairs

    def test_info_and_clear(self, tmp_path):
        frame, cost, content, fp = oracle_ingredients()
        counters = frame_counters(
            frame.object_batch, cost,
            mode=SMPMode.SEQUENTIAL, expansion="stereo",
        )
        pairs = tuple(build_framework("oo-vr")._builder._build(frame))
        store = PlanStore(tmp_path)
        store.put_frame(content, fp, SMPMode.SEQUENTIAL, "stereo", counters)
        store.put_group(content, fp, 4096, 0.5, frame, pairs)
        info = store.info()
        assert info["entries"] == 2
        assert info["corrupt"] == 0
        kinds = sorted(plan["kind"] for plan in info["plans"])
        assert kinds == ["frame", "group"]
        for plan in info["plans"]:
            assert plan["scene"] == content
            assert plan["cost"] == fp
            assert plan["plan_version"] == PLAN_VERSION
        assert store.clear() == 2
        assert store.info()["entries"] == 0


# ---------------------------------------------------------------------------
# Scoping
# ---------------------------------------------------------------------------


class TestStoreScoping:
    def test_scope_activates_and_restores(self, tmp_path):
        assert active_plan_store() is None
        with plan_store_scope(tmp_path) as store:
            assert isinstance(store, PlanStore)
            assert active_plan_store() is store
        assert active_plan_store() is None

    def test_none_scope_preserves_ambient_store(self, tmp_path):
        ambient = set_plan_store(tmp_path)
        with plan_store_scope(None):
            assert active_plan_store() is ambient

    def test_set_accepts_paths_and_none(self, tmp_path):
        store = set_plan_store(str(tmp_path))
        assert isinstance(store, PlanStore)
        assert set_plan_store(None) is None


# ---------------------------------------------------------------------------
# End-to-end transparency
# ---------------------------------------------------------------------------


def fresh_memo():
    cached_scene.cache_clear()
    get_cache().clear()


class TestStoreResults:
    def test_store_hit_results_byte_identical(self, tmp_path):
        cell = lambda: (
            Session().framework("oo-vr").workload("DM3-640").fast()
        )
        plain = cell().run()
        fresh_memo()
        cold = cell().run(plan_store=tmp_path)
        fresh_memo()
        warm = cell().run(plan_store=tmp_path)
        want = json.dumps(plain.to_dict(), sort_keys=True)
        assert json.dumps(cold.to_dict(), sort_keys=True) == want
        assert json.dumps(warm.to_dict(), sort_keys=True) == want
        assert len(PlanStore(tmp_path).entry_paths()) > 0

    def test_store_hit_populates_the_reuse_memo(self, tmp_path):
        """The hit lands inside the memo's build path, so repeats are
        answered by the memo (identity-anchored), not by re-loading."""
        frame, cost, content, fp = oracle_ingredients()
        store = PlanStore(tmp_path)
        with plan_store_scope(store):
            framework = build_framework("oo-vr")
            framework.warm_plan(frame)  # cold: builds + persists
            get_cache().clear()
            first = framework._builder.build(frame)
            hits_after_first = store.stats.hits
            assert hits_after_first >= 1
            second = framework._builder.build(frame)
        assert store.stats.hits == hits_after_first  # memo answered
        assert first == second
        assert first is not second  # fresh list per call, same contents
        assert all(a is b for a, b in zip(first, second))

    def test_sweep_profile_exports_plan_counters(self, tmp_path):
        grid = lambda: (
            Sweep().frameworks("oo-vr").workloads("DM3-640").fast()
        )
        cold = grid().run(profile=True, plan_store=tmp_path).to_records()[0]
        assert cold["profile_plan_store_miss"] >= 1
        assert cold["profile_plan_build_s"] > 0
        assert "profile_plan_store_hit" not in cold
        fresh_memo()
        warm = grid().run(profile=True, plan_store=tmp_path).to_records()[0]
        assert warm["profile_plan_store_hit"] >= 1
        assert warm["profile_plan_load_s"] > 0
        assert "profile_plan_store_miss" not in warm
        assert "profile_plan_build_s" not in warm

    def test_jobs4_sweep_characterizes_each_point_once(self, tmp_path):
        """A --jobs 4 cold sweep leaves every (workload, cost) point
        compiled exactly once fleet-wide: the store holds one entry set
        for the shared cost fingerprint, a follow-up profiled pass is
        all hits, and the CSV never moves."""
        grid = lambda: (
            Sweep()
            .frameworks("oo-vr", "baseline")
            .workloads("DM3-640")
            .fast()
        )
        serial_csv = grid().run().to_csv()
        fresh_memo()
        cold = grid().run(jobs=4, plan_store=tmp_path)
        assert cold.to_csv() == serial_csv
        # 2 frames x (stereo frame + group + nested multiview frame),
        # shared across both frameworks via the cost fingerprint.
        assert len(PlanStore(tmp_path).entry_paths()) == 6
        fresh_memo()
        for record in (
            grid().run(profile=True, plan_store=tmp_path).to_records()
        ):
            assert record["profile_plan_store_hit"] >= 1
            assert "profile_plan_store_miss" not in record


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestPlanCLI:
    def test_plan_warm_info_clear(self, capsys, tmp_path):
        store_dir = str(tmp_path / "plans")
        assert (
            cli.main(
                ["plan", "warm", store_dir, "--fast",
                 "--workloads", "DM3-640",
                 "--frameworks", "oo-vr,baseline"]
            )
            == 0
        )
        assert "compiled" in capsys.readouterr().out
        fresh_memo()
        assert (
            cli.main(
                ["plan", "warm", store_dir, "--fast",
                 "--workloads", "DM3-640",
                 "--frameworks", "oo-vr,baseline"]
            )
            == 0
        )
        assert "already present" in capsys.readouterr().out
        assert cli.main(["plan", "info", store_dir]) == 0
        out = capsys.readouterr().out
        assert "group" in out and "frame" in out
        assert cli.main(["plan", "info", store_dir, "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["entries"] == 6
        assert info["corrupt"] == 0
        assert cli.main(["plan", "clear", store_dir]) == 0
        assert "cleared 6" in capsys.readouterr().out

    def test_plan_warm_unknown_names_exit_2(self, capsys, tmp_path):
        store_dir = str(tmp_path / "plans")
        assert (
            cli.main(
                ["plan", "warm", store_dir, "--fast",
                 "--workloads", "DM3-640", "--frameworks", "nope"]
            )
            == 2
        )
        assert "unknown framework" in capsys.readouterr().err
        assert (
            cli.main(
                ["plan", "warm", store_dir, "--fast", "--workloads", "nope"]
            )
            == 2
        )
        assert "unknown benchmark" in capsys.readouterr().err

    def test_scene_warm_unknown_workload_exit_2(self, capsys, tmp_path):
        assert (
            cli.main(
                ["scene", "warm", str(tmp_path / "scenes"), "--fast",
                 "--workloads", "nope"]
            )
            == 2
        )
        assert "unknown benchmark" in capsys.readouterr().err

    def test_plan_info_missing_directory(self, capsys, tmp_path):
        missing = str(tmp_path / "nope")
        assert cli.main(["plan", "info", missing]) == 2
        assert "no plan store" in capsys.readouterr().err

    def test_plan_info_env_default(self, capsys, tmp_path, monkeypatch):
        store_dir = str(tmp_path / "env-plans")
        assert (
            cli.main(
                ["plan", "warm", store_dir, "--fast",
                 "--workloads", "DM3-640", "--frameworks", "oo-vr"]
            )
            == 0
        )
        capsys.readouterr()
        monkeypatch.setenv("OOVR_PLAN_STORE", store_dir)
        assert cli.main(["plan", "info"]) == 0
        assert store_dir in capsys.readouterr().out

    def test_plan_info_no_dir_no_env(self, capsys, monkeypatch):
        monkeypatch.delenv("OOVR_PLAN_STORE", raising=False)
        assert cli.main(["plan", "info"]) == 2
        err = capsys.readouterr().err
        assert "no plan store directory given" in err
        assert "OOVR_PLAN_STORE" in err

    def test_run_plan_store_env_default(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("OOVR_PLAN_STORE", str(tmp_path / "env-plans"))
        assert cli.main(["run", "oo-vr", "DM3-640", "--fast"]) == 0
        capsys.readouterr()
        assert len(PlanStore(tmp_path / "env-plans").entry_paths()) > 0

    def test_sweep_plan_store_csv_identical(self, capsys, tmp_path):
        store_dir = str(tmp_path / "plans")
        common = [
            "sweep", "--frameworks", "baseline,oo-vr",
            "--workloads", "DM3-640", "--fast",
        ]
        plain_csv = str(tmp_path / "plain.csv")
        cold_csv = str(tmp_path / "cold.csv")
        warm_csv = str(tmp_path / "warm.csv")
        assert cli.main(common + ["--csv", plain_csv]) == 0
        fresh_memo()
        assert (
            cli.main(common + ["--plan-store", store_dir, "--csv", cold_csv])
            == 0
        )
        assert "plan store: 0 hits" in capsys.readouterr().out
        fresh_memo()
        assert (
            cli.main(common + ["--plan-store", store_dir, "--csv", warm_csv])
            == 0
        )
        out = capsys.readouterr().out
        assert ", 0 misses" in out and "plan store: 0 hits" not in out
        with open(plain_csv, "rb") as fh:
            want = fh.read()
        with open(cold_csv, "rb") as fh:
            assert fh.read() == want
        with open(warm_csv, "rb") as fh:
            assert fh.read() == want


class TestSceneStoreEnvCLI:
    """`oovr scene info|clear` honor $OOVR_SCENE_STORE like plan's."""

    def test_scene_info_env_default(self, capsys, tmp_path, monkeypatch):
        store_dir = str(tmp_path / "env-scenes")
        assert (
            cli.main(
                ["scene", "warm", store_dir, "--fast",
                 "--workloads", "DM3-640"]
            )
            == 0
        )
        capsys.readouterr()
        monkeypatch.setenv("OOVR_SCENE_STORE", store_dir)
        assert cli.main(["scene", "info"]) == 0
        assert "DM3-640" in capsys.readouterr().out
        assert cli.main(["scene", "clear"]) == 0
        assert "cleared 1" in capsys.readouterr().out

    def test_scene_info_no_dir_no_env(self, capsys, monkeypatch):
        monkeypatch.delenv("OOVR_SCENE_STORE", raising=False)
        assert cli.main(["scene", "info"]) == 2
        err = capsys.readouterr().err
        assert "no scene store directory given" in err
        assert "OOVR_SCENE_STORE" in err
