"""Framework-level behaviour: each scheme's qualitative signature."""

import pytest

from repro.config import baseline_system
from repro.frameworks.base import build_framework, framework_names
from repro.frameworks.tile_sfr import TileOrientation, TileSplitFrameRendering
from repro.memory.link import TrafficType
from repro.scene.benchmarks import make_benchmark_scene


@pytest.fixture(scope="module")
def scene():
    return make_benchmark_scene("HL2-1280", num_frames=3, draw_scale=0.15)


@pytest.fixture(scope="module")
def results(scene):
    """Every framework run once on the shared scene."""
    return {
        name: build_framework(name).render_scene(scene)
        for name in framework_names()
    }


class TestRegistry:
    def test_all_schemes_registered(self):
        assert set(framework_names()) == {
            "baseline", "1tbs-bw", "afr", "tile-v", "tile-h",
            "object", "oo-app", "oo-vr", "baseline-mig",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_framework("sort-middle")

    def test_custom_config_accepted(self):
        fw = build_framework("baseline", baseline_system(num_gpms=2))
        assert fw.config.num_gpms == 2


class TestVariantGrammarErrors:
    """Every ``raise KeyError`` branch of the variant grammar, by message.

    The grammar (:mod:`repro.frameworks.variants`) is the only parser
    between user-supplied framework names (CLI, RunSpec, cached specs)
    and framework construction, so each malformed spelling must fail
    loudly with an actionable message rather than half-building.
    """

    def _rejects(self, name, match):
        from repro.frameworks.variants import build_variant, validate_variant

        with pytest.raises(KeyError, match=match):
            validate_variant(name)
        # build_variant shares the parser: same rejection, nothing built.
        with pytest.raises(KeyError, match=match):
            build_variant(name)

    def test_trailing_separator_is_malformed(self):
        self._rejects("oo-vr:", "malformed framework variant 'oo-vr:'")

    def test_empty_modifier_is_malformed(self):
        self._rejects("oo-vr::fov", "malformed framework variant")

    def test_unknown_modifier(self):
        self._rejects(
            "oo-vr:turbo",
            "unknown framework variant modifier 'turbo' in 'oo-vr:turbo'",
        )

    def test_unknown_base(self):
        self._rejects("sort-middle:fov", "unknown framework 'sort-middle'")

    def test_ablation_requires_oovr_base(self):
        self._rejects(
            "baseline:no-dhc",
            "ablation variant 'no-dhc' applies to 'oo-vr', not 'baseline'",
        )

    def test_middleware_requires_oovr_base(self):
        self._rejects(
            "baseline:tsl=0.3",
            "middleware modifier 'tsl=0.3' applies to 'oo-vr', "
            "not 'baseline'",
        )
        self._rejects(
            "afr:cap=8192",
            "middleware modifier 'cap=8192' applies to 'oo-vr', not 'afr'",
        )

    def test_constructor_modifiers_do_not_combine(self):
        # Ablation after middleware, middleware after ablation, and
        # double ablation all hit the incompatible-constructor branch.
        match = "combines incompatible constructor modifiers"
        self._rejects("oo-vr:tsl=0.3:no-dhc", match)
        self._rejects("oo-vr:no-dhc:tsl=0.3", match)
        self._rejects("oo-vr:no-dhc:no-stealing", match)

    def test_malformed_tsl_value(self):
        self._rejects(
            "oo-vr:tsl=warm",
            "malformed tsl value 'warm' in variant 'oo-vr:tsl=warm'",
        )

    def test_malformed_cap_value(self):
        # ints are parsed strictly: a float spelling is malformed too.
        self._rejects(
            "oo-vr:cap=many",
            "malformed cap value 'many' in variant 'oo-vr:cap=many'",
        )
        self._rejects("oo-vr:cap=4096.5", "malformed cap value '4096.5'")

    def test_unknown_topology(self):
        self._rejects(
            "baseline:topo=torus",
            "unknown topology 'torus'",
        )

    def test_unknown_engine(self):
        self._rejects(
            "baseline:engine=quantum",
            "unknown execution engine 'quantum'",
        )

    def test_wrapper_modifiers_still_stack(self):
        # Guard against over-tight rejection: the legal spellings the
        # error paths sit between keep building.
        from repro.frameworks.variants import validate_variant

        for name in (
            "oo-vr:no-dhc",
            "oo-vr:tsl=0.3:topo=ring:fov",
            "baseline:topo=switch:engine=event",
        ):
            validate_variant(name)


class TestEverySchemeRuns:
    def test_all_produce_results(self, results):
        for name, result in results.items():
            assert result.single_frame_cycles > 0, name
            assert result.frame_interval_cycles > 0, name

    def test_frame_counts(self, results, scene):
        for result in results.values():
            assert len(result.frames) == len(scene)


class TestBaseline:
    def test_heavy_inter_gpm_traffic(self, results):
        assert results["baseline"].mean_inter_gpm_bytes_per_frame > 10e6

    def test_link_bound_at_64gbps(self, results):
        # The 1TB/s variant must be clearly faster.
        assert (
            results["1tbs-bw"].single_frame_cycles
            < 0.8 * results["baseline"].single_frame_cycles
        )

    def test_upload_gpm_least_stalled(self, results):
        # GPM 0 holds the uploads (Fig. 3's story): its slices read
        # locally while the peers wait on its outgoing links.
        frame = results["baseline"].frames[-1]
        assert frame.gpm_busy_cycles[0] == min(frame.gpm_busy_cycles)

    def test_single_gpm_runs_whole_draws(self, scene):
        fw = build_framework("baseline", baseline_system(num_gpms=1))
        result = fw.render_scene(scene)
        assert result.frames[0].inter_gpm_bytes == 0.0


class TestAFR:
    def test_near_zero_traffic(self, results):
        afr = results["afr"].mean_inter_gpm_bytes_per_frame
        base = results["baseline"].mean_inter_gpm_bytes_per_frame
        assert afr < 0.01 * base

    def test_higher_single_frame_latency(self, results):
        assert (
            results["afr"].single_frame_cycles
            > results["baseline"].single_frame_cycles
        )

    def test_better_throughput_than_latency(self, results):
        afr = results["afr"]
        assert afr.frame_interval_cycles < afr.single_frame_cycles

    def test_frames_rotate_gpms(self, scene):
        fw = build_framework("afr")
        result = fw.render_scene(scene)
        busy_gpms = [
            max(range(4), key=lambda g: frame.gpm_busy_cycles[g])
            for frame in result.frames
        ]
        assert busy_gpms == [0, 1, 2]

    def test_memory_footprint_replicated(self, scene):
        fw = build_framework("afr")
        result = fw.render_scene(scene)
        base = build_framework("baseline").render_scene(scene)
        assert result.frames[-1].resident_bytes > base.frames[-1].resident_bytes


class TestTileSFR:
    def test_orientation_selection(self):
        v = TileSplitFrameRendering(orientation=TileOrientation.VERTICAL)
        h = TileSplitFrameRendering(orientation=TileOrientation.HORIZONTAL)
        scene_strips_v = v.strips(make_benchmark_scene("WE", num_frames=1).frames[0])
        scene_strips_h = h.strips(make_benchmark_scene("WE", num_frames=1).frames[0])
        assert scene_strips_v[0].width < scene_strips_h[0].width

    def test_vertical_more_traffic_than_object(self, results):
        assert (
            results["tile-v"].mean_inter_gpm_bytes_per_frame
            > results["object"].mean_inter_gpm_bytes_per_frame
        )

    def test_horizontal_less_balanced_than_vertical(self, results):
        assert (
            results["tile-h"].mean_load_balance_ratio
            > results["tile-v"].mean_load_balance_ratio
        )

    def test_stereo_space_viewports_shift_right_eye(self, scene):
        fw = build_framework("tile-v")
        frame = scene.frames[0]
        draw = frame.objects[0].stereo_draws()[1]  # right eye
        vps = fw.stereo_space_viewports(draw, frame.width)
        assert vps[0].x0 >= frame.width * 0.0  # shifted into right half
        assert vps[0].x1 <= 2 * frame.width + 1e-6


class TestObjectSFR:
    def test_less_traffic_than_baseline(self, results):
        assert (
            results["object"].mean_inter_gpm_bytes_per_frame
            < results["baseline"].mean_inter_gpm_bytes_per_frame
        )

    def test_faster_than_baseline(self, results):
        assert (
            results["object"].single_frame_cycles
            < results["baseline"].single_frame_cycles
        )

    def test_visible_load_imbalance(self, results):
        assert results["object"].mean_load_balance_ratio > 1.05

    def test_composition_phase_present(self, results):
        assert results["object"].frames[0].composition_cycles > 0

    def test_composition_traffic_to_root(self, scene):
        fw = build_framework("object")
        result = fw.render_scene(scene)
        comp = result.frames[0].traffic.bytes_of(TrafficType.COMPOSITION)
        assert comp > 0


class TestOOSchemes:
    def test_oo_app_beats_object_level(self, results):
        assert (
            results["oo-app"].single_frame_cycles
            < results["object"].single_frame_cycles
        )

    def test_oo_vr_beats_oo_app(self, results):
        assert (
            results["oo-vr"].single_frame_cycles
            < results["oo-app"].single_frame_cycles
        )

    def test_oo_vr_biggest_traffic_reduction(self, results):
        oovr = results["oo-vr"].mean_inter_gpm_bytes_per_frame
        for other in ("baseline", "tile-v", "tile-h", "object"):
            assert oovr < results[other].mean_inter_gpm_bytes_per_frame

    def test_oo_vr_well_balanced(self, results):
        assert (
            results["oo-vr"].mean_load_balance_ratio
            <= results["oo-app"].mean_load_balance_ratio + 0.05
        )

    def test_oo_vr_uses_prealloc_not_stalls(self, results):
        traffic = results["oo-vr"].frames[1].traffic
        # Steady-state PA traffic exists but is modest.
        assert traffic.bytes_of(TrafficType.PREALLOC) >= 0.0

    def test_oo_vr_composition_cheaper_than_oo_app(self, results):
        assert (
            results["oo-vr"].frames[0].composition_cycles
            < results["oo-app"].frames[0].composition_cycles
        )

    def test_engine_records_available(self, scene):
        fw = build_framework("oo-vr")
        fw.render_scene(scene)
        assert fw.last_engine is not None
        assert fw.last_engine.records


class TestSceneOrchestration:
    def test_render_frame_convenience(self, scene):
        fw = build_framework("oo-vr")
        result = fw.render_frame(scene.frames[0], "adhoc")
        assert result.cycles > 0

    def test_steady_state_metrics_skip_cold_frame(self, scene):
        fw = build_framework("oo-vr")
        result = fw.render_scene(scene)
        cold = result.frames[0].inter_gpm_bytes
        steady = result.mean_inter_gpm_bytes_per_frame
        assert steady < cold
