"""Paper-shape regression tests.

These assert the *qualitative* results of the paper's figures on
scaled-down workloads — who wins, by roughly what factor, and where the
crossovers fall.  Bounds are intentionally loose (the benches report the
precise numbers at full scale); the point is that a refactor cannot
silently invert a conclusion.
"""

import pytest

from repro.experiments import figures
from repro.experiments.runner import ExperimentConfig

#: Three representative workloads at reduced scale: one few-big-draws
#: game (DM3), one mid (HL2), one many-small-draws game (WE).
SHAPE = ExperimentConfig(
    draw_scale=0.15, num_frames=3, workloads=("DM3-1280", "HL2-1280", "WE")
)


@pytest.fixture(scope="module")
def fig4():
    return figures.fig04_bandwidth_sensitivity(SHAPE)


@pytest.fixture(scope="module")
def fig7():
    return figures.fig07_afr(SHAPE)


@pytest.fixture(scope="module")
def fig8():
    return figures.fig08_sfr_performance(SHAPE)


@pytest.fixture(scope="module")
def fig9():
    return figures.fig09_sfr_traffic(SHAPE)


@pytest.fixture(scope="module")
def fig15():
    return figures.fig15_oovr_speedup(SHAPE)


@pytest.fixture(scope="module")
def fig16():
    return figures.fig16_oovr_traffic(SHAPE)


class TestFig4Shape:
    """Baseline performance degrades as the links shrink (22/42/65%)."""

    def test_order(self, fig4):
        series = [fig4.average(c) for c in fig4.series]
        assert series == sorted(series, reverse=True)

    def test_64gbps_substantial_degradation(self, fig4):
        # Paper: 42% degradation at 64 GB/s.  Accept 25-50%.
        value = fig4.average("64GB/s")
        assert 0.50 <= value <= 0.75

    def test_32gbps_severe_degradation(self, fig4):
        # Paper: 65% degradation.  Accept 50-70%.
        value = fig4.average("32GB/s")
        assert 0.30 <= value <= 0.50

    def test_256gbps_mild(self, fig4):
        assert fig4.average("256GB/s") >= 0.9


class TestFig7Shape:
    """AFR: throughput up ~1.67x, single-frame latency up ~1.59x."""

    def test_throughput_gain(self, fig7):
        assert 1.3 <= fig7.average("overall perf") <= 2.3

    def test_latency_penalty(self, fig7):
        assert 1.3 <= fig7.average("frame latency") <= 2.0


class TestFig8Fig9Shape:
    """SFR: object wins on perf; tile schemes inflate traffic."""

    def test_object_beats_tiles(self, fig8):
        obj = fig8.average("Object-Level")
        assert obj > fig8.average("Tile-Level (H)")
        assert obj >= 1.25

    def test_tile_v_modest_gain(self, fig8):
        assert 1.0 <= fig8.average("Tile-Level (V)") <= 1.7

    def test_tile_h_near_baseline(self, fig8):
        assert 0.8 <= fig8.average("Tile-Level (H)") <= 1.3

    def test_tile_traffic_above_baseline(self, fig9):
        assert fig9.average("Tile-Level (V)") > 1.1
        assert fig9.average("Tile-Level (H)") > 1.1

    def test_object_traffic_below_baseline(self, fig9):
        assert 0.35 <= fig9.average("Object-Level") <= 0.8


class TestFig10Shape:
    def test_imbalance_visible(self):
        result = figures.fig10_load_balance(SHAPE)
        value = result.average("best-to-worst")
        assert 1.15 <= value <= 2.5


class TestFig15Shape:
    """The headline ladder: OO-VR > OO_APP > object > baseline > AFR."""

    def test_full_ordering(self, fig15):
        oovr = fig15.average("OOVR")
        app = fig15.average("OO_APP")
        obj = fig15.average("Object-Level")
        afr = fig15.average("Frame-Level")
        assert oovr > app > obj > 1.0 > afr

    def test_oovr_speedup_magnitude(self, fig15):
        # Paper's mutually consistent reading: ~2.6-3.2x.
        assert 2.0 <= fig15.average("OOVR") <= 3.8

    def test_oo_app_about_double(self, fig15):
        assert 1.5 <= fig15.average("OO_APP") <= 2.6

    def test_1tbs_between(self, fig15):
        value = fig15.average("1TB/s-BW")
        assert 1.3 <= value <= 2.0

    def test_oovr_vs_oo_app_gap(self, fig15):
        # Paper: ~1.59x (hardware contribution).
        ratio = fig15.average("OOVR") / fig15.average("OO_APP")
        assert 1.15 <= ratio <= 1.9


class TestFig16Shape:
    """Traffic: OO-VR ~0.24x of baseline, object ~0.6x."""

    def test_oovr_traffic_reduction(self, fig16):
        assert 0.15 <= fig16.average("OOVR") <= 0.40

    def test_object_traffic_reduction(self, fig16):
        assert 0.40 <= fig16.average("Object-Level") <= 0.80

    def test_ordering(self, fig16):
        assert (
            fig16.average("OOVR")
            < fig16.average("Object-Level")
            < fig16.average("Baseline")
        )


class TestFig17Shape:
    """OO-VR is insensitive to link bandwidth; the baseline is not."""

    @pytest.fixture(scope="class")
    def fig17(self):
        return figures.fig17_link_bandwidth(SHAPE)

    def test_baseline_sensitive(self, fig17):
        base = fig17.series["Baseline"]
        assert base["256GB/s"] / base["32GB/s"] > 1.8

    def test_oovr_insensitive(self, fig17):
        oovr = fig17.series["OOVR"]
        assert oovr["256GB/s"] / oovr["32GB/s"] < 1.5

    def test_oovr_wins_everywhere(self, fig17):
        for bandwidth in ("32GB/s", "64GB/s", "128GB/s", "256GB/s"):
            assert fig17.series["OOVR"][bandwidth] > fig17.series["Baseline"][bandwidth]


class TestFig18Shape:
    """Scalability: OO-VR scales near-linearly, the baseline saturates."""

    @pytest.fixture(scope="class")
    def fig18(self):
        return figures.fig18_scalability(SHAPE)

    def test_oovr_scales_best(self, fig18):
        assert fig18.series["OOVR"]["8 GPM"] > fig18.series["Object-level"]["8 GPM"]
        assert (
            fig18.series["Object-level"]["8 GPM"]
            > fig18.series["Baseline"]["8 GPM"]
        )

    def test_baseline_saturates(self, fig18):
        # Paper: 2.08x at 8 GPMs.
        assert fig18.series["Baseline"]["8 GPM"] < 3.5

    def test_oovr_near_linear_at_4(self, fig18):
        # Paper: 3.64x at 4 GPMs.
        assert fig18.series["OOVR"]["4 GPM"] >= 2.4

    def test_oovr_8gpm_speedup(self, fig18):
        # Paper: 6.27x at 8 GPMs; accept >= 3.8.
        assert fig18.series["OOVR"]["8 GPM"] >= 3.8

    def test_everyone_improves_with_gpms(self, fig18):
        for scheme, series in fig18.series.items():
            assert series["8 GPM"] > series["1 GPM"], scheme


class TestSMPValidationShape:
    def test_smp_gain_near_paper(self):
        result = figures.smp_validation(SHAPE)
        # Paper: 27% gain over sequential stereo on one GPU.
        assert 1.1 <= result.average("SMP speedup") <= 1.6
