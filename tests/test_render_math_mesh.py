"""Unit tests for repro.render.math3d and repro.render.mesh3d."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render.math3d import (
    identity,
    look_at,
    normalize,
    perspective,
    rotate_x,
    rotate_y,
    rotate_z,
    scale_matrix,
    transform_points,
    translate,
)
from repro.render.mesh3d import (
    TriangleMesh,
    make_box,
    make_checker_ground,
    make_cylinder,
    make_icosphere,
    make_quad,
)


class TestMath3D:
    def test_identity_leaves_points_alone(self):
        points = np.array([[1.0, 2.0, 3.0], [-4.0, 0.0, 9.0]])
        out = transform_points(identity(), points)
        np.testing.assert_allclose(out[:, :3], points)
        np.testing.assert_allclose(out[:, 3], 1.0)

    def test_translate_moves_points(self):
        out = transform_points(translate(1, -2, 3), np.array([[0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out[0, :3], [1, -2, 3])

    def test_scale_matrix_uniform_shorthand(self):
        np.testing.assert_allclose(scale_matrix(2.0), scale_matrix(2.0, 2.0, 2.0))

    def test_scale_matrix_rejects_zero(self):
        with pytest.raises(ValueError):
            scale_matrix(0.0)

    def test_normalize_unit_length(self):
        v = normalize([3.0, 4.0, 0.0])
        assert math.isclose(float(np.linalg.norm(v)), 1.0)

    def test_normalize_zero_vector_raises(self):
        with pytest.raises(ValueError):
            normalize([0.0, 0.0, 0.0])

    @pytest.mark.parametrize("rot", [rotate_x, rotate_y, rotate_z])
    def test_rotations_are_orthonormal(self, rot):
        m = rot(0.7)[:3, :3]
        np.testing.assert_allclose(m @ m.T, np.eye(3), atol=1e-12)
        assert math.isclose(float(np.linalg.det(m)), 1.0)

    def test_rotate_y_quarter_turn(self):
        out = transform_points(rotate_y(math.pi / 2), np.array([[1.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out[0, :3], [0, 0, -1], atol=1e-12)

    def test_look_at_centers_target_on_axis(self):
        view = look_at((0, 0, 5), (0, 0, 0))
        out = transform_points(view, np.array([[0.0, 0.0, 0.0]]))
        # Target lands on the -z axis at distance 5.
        np.testing.assert_allclose(out[0, :3], [0, 0, -5], atol=1e-12)

    def test_look_at_keeps_eye_at_origin(self):
        view = look_at((3, 2, 5), (0, 1, 0))
        out = transform_points(view, np.array([[3.0, 2.0, 5.0]]))
        np.testing.assert_allclose(out[0, :3], [0, 0, 0], atol=1e-12)

    def test_perspective_maps_near_far_to_ndc_bounds(self):
        proj = perspective(90.0, 1.0, 1.0, 10.0)
        near = transform_points(proj, np.array([[0.0, 0.0, -1.0]]))
        far = transform_points(proj, np.array([[0.0, 0.0, -10.0]]))
        assert math.isclose(near[0, 2] / near[0, 3], -1.0)
        assert math.isclose(far[0, 2] / far[0, 3], 1.0)

    def test_perspective_rejects_bad_planes(self):
        with pytest.raises(ValueError):
            perspective(90.0, 1.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            perspective(90.0, 1.0, 5.0, 5.0)
        with pytest.raises(ValueError):
            perspective(0.0, 1.0, 0.1, 10.0)
        with pytest.raises(ValueError):
            perspective(90.0, -1.0, 0.1, 10.0)

    def test_transform_points_shape_validation(self):
        with pytest.raises(ValueError):
            transform_points(identity(), np.zeros((3,)))
        with pytest.raises(ValueError):
            transform_points(identity(), np.zeros((2, 5)))

    @settings(max_examples=25, deadline=None)
    @given(
        angle=st.floats(-math.pi, math.pi),
        x=st.floats(-10, 10),
        y=st.floats(-10, 10),
        z=st.floats(-10, 10),
    )
    def test_rotation_preserves_length(self, angle, x, y, z):
        point = np.array([[x, y, z]])
        out = transform_points(rotate_y(angle), point)
        assert math.isclose(
            float(np.linalg.norm(out[0, :3])),
            float(np.linalg.norm(point[0])),
            abs_tol=1e-9,
        )


class TestMeshes:
    def test_quad_has_two_triangles(self):
        quad = make_quad()
        assert quad.num_triangles == 2
        assert quad.num_vertices == 4

    def test_quad_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            make_quad(0.0, 1.0)

    def test_box_has_twelve_triangles(self):
        box = make_box()
        assert box.num_triangles == 12
        assert box.num_vertices == 24  # four per face, faces unshared

    def test_box_extents(self):
        box = make_box(2.0, 4.0, 6.0)
        spans = box.positions.max(axis=0) - box.positions.min(axis=0)
        np.testing.assert_allclose(spans, [2.0, 4.0, 6.0])

    def test_cylinder_triangle_count(self):
        cyl = make_cylinder(segments=16)
        assert cyl.num_triangles == 32

    def test_cylinder_needs_three_segments(self):
        with pytest.raises(ValueError):
            make_cylinder(segments=2)

    def test_ground_tiling(self):
        ground = make_checker_ground(extent=5.0, tiles=4)
        assert ground.num_triangles == 2 * 4 * 4
        assert np.allclose(ground.positions[:, 1], 0.0)

    def test_icosphere_subdivision_quadruples_faces(self):
        base = make_icosphere(subdivisions=0)
        sub = make_icosphere(subdivisions=1)
        assert base.num_triangles == 20
        assert sub.num_triangles == 80

    def test_icosphere_vertices_on_sphere(self):
        sphere = make_icosphere(radius=2.0, subdivisions=1)
        radii = np.linalg.norm(sphere.positions, axis=1)
        np.testing.assert_allclose(radii, 2.0, rtol=1e-9)

    def test_icosphere_rejects_deep_subdivision(self):
        with pytest.raises(ValueError):
            make_icosphere(subdivisions=9)

    def test_transformed_applies_matrix(self):
        quad = make_quad()
        moved = quad.transformed(translate(5, 0, 0))
        np.testing.assert_allclose(
            moved.positions[:, 0], quad.positions[:, 0] + 5.0
        )

    def test_merged_with_rebases_indices(self):
        a, b = make_quad(), make_quad()
        merged = a.merged_with(b)
        assert merged.num_vertices == 8
        assert merged.num_triangles == 4
        assert merged.faces[2:].min() >= 4

    def test_stats_mesh_matches_counts(self):
        cyl = make_cylinder(segments=8)
        stats = cyl.stats_mesh()
        assert stats.num_vertices == cyl.num_vertices
        assert stats.num_triangles == cyl.num_triangles

    def test_mesh_validates_shapes(self):
        with pytest.raises(ValueError):
            TriangleMesh(
                np.zeros((3, 2)), np.zeros((3, 2)), np.zeros((1, 3), dtype=np.int32)
            )
        with pytest.raises(ValueError):
            TriangleMesh(
                np.zeros((3, 3)), np.zeros((2, 2)), np.zeros((1, 3), dtype=np.int32)
            )

    def test_mesh_validates_face_indices(self):
        with pytest.raises(ValueError):
            TriangleMesh(
                np.zeros((3, 3)),
                np.zeros((3, 2)),
                np.array([[0, 1, 5]], dtype=np.int32),
            )
