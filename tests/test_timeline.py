"""Tests for the dispatch timeline renderer."""

import pytest

from repro.core.distribution import DispatchRecord
from repro.core.oovr import OOVRFramework
from repro.scene.benchmarks import make_benchmark_scene
from repro.stats.timeline import dispatch_timeline


def record(gpm, cycles, calibration=False, batch_id=0):
    return DispatchRecord(
        batch_id=batch_id,
        gpm=gpm,
        predicted_cycles=None if calibration else cycles,
        actual_cycles=cycles,
        prealloc_bytes=0.0,
        calibration=calibration,
    )


class TestDispatchTimeline:
    def test_one_row_per_gpm_plus_legend(self):
        text = dispatch_timeline([record(0, 100.0)], num_gpms=2)
        lines = text.splitlines()
        assert lines[0].startswith("GPM0")
        assert lines[1].startswith("GPM1")
        assert "calibration" in lines[2]

    def test_busiest_gpm_reads_full(self):
        text = dispatch_timeline(
            [record(0, 100.0), record(1, 50.0)], num_gpms=2, width=20
        )
        gpm0 = text.splitlines()[0]
        assert "100% busy" in gpm0
        assert gpm0.count("█") == 20

    def test_idle_gpm_shows_idle_cells(self):
        text = dispatch_timeline(
            [record(0, 100.0), record(1, 25.0)], num_gpms=2, width=20
        )
        gpm1 = text.splitlines()[1]
        assert "·" in gpm1
        assert " 25% busy" in gpm1

    def test_calibration_glyph_differs(self):
        text = dispatch_timeline(
            [record(0, 50.0, calibration=True), record(1, 50.0)],
            num_gpms=2,
            width=20,
        )
        lines = text.splitlines()
        assert "▒" in lines[0]
        assert "█" in lines[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            dispatch_timeline([], num_gpms=2)
        with pytest.raises(ValueError):
            dispatch_timeline([record(0, 1.0)], num_gpms=0)
        with pytest.raises(ValueError):
            dispatch_timeline([record(0, 1.0)], num_gpms=2, width=4)
        with pytest.raises(ValueError):
            dispatch_timeline([record(5, 1.0)], num_gpms=2)

    def test_renders_real_engine_records(self):
        scene = make_benchmark_scene("HL2-640", num_frames=1, draw_scale=0.1)
        framework = OOVRFramework()
        framework.render_scene(scene)
        text = dispatch_timeline(
            framework.last_engine.records, framework.config.num_gpms
        )
        assert text.count("GPM") == framework.config.num_gpms
        # Calibration batches (the first 8) must be visible.
        assert "▒" in text
