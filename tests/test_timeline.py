"""Tests for the dispatch- and trace-timeline renderers."""

import pytest

from repro.config import baseline_system
from repro.core.distribution import DispatchRecord
from repro.core.oovr import OOVRFramework
from repro.engine.trace import FrameTrace, TraceInterval
from repro.scene.benchmarks import make_benchmark_scene
from repro.stats.timeline import dispatch_timeline, trace_timeline


def record(gpm, cycles, calibration=False, batch_id=0):
    return DispatchRecord(
        batch_id=batch_id,
        gpm=gpm,
        predicted_cycles=None if calibration else cycles,
        actual_cycles=cycles,
        prealloc_bytes=0.0,
        calibration=calibration,
    )


class TestDispatchTimeline:
    def test_one_row_per_gpm_plus_legend(self):
        text = dispatch_timeline([record(0, 100.0)], num_gpms=2)
        lines = text.splitlines()
        assert lines[0].startswith("GPM0")
        assert lines[1].startswith("GPM1")
        assert "calibration" in lines[2]

    def test_busiest_gpm_reads_full(self):
        text = dispatch_timeline(
            [record(0, 100.0), record(1, 50.0)], num_gpms=2, width=20
        )
        gpm0 = text.splitlines()[0]
        assert "100% busy" in gpm0
        assert gpm0.count("█") == 20

    def test_idle_gpm_shows_idle_cells(self):
        text = dispatch_timeline(
            [record(0, 100.0), record(1, 25.0)], num_gpms=2, width=20
        )
        gpm1 = text.splitlines()[1]
        assert "·" in gpm1
        assert " 25% busy" in gpm1

    def test_calibration_glyph_differs(self):
        text = dispatch_timeline(
            [record(0, 50.0, calibration=True), record(1, 50.0)],
            num_gpms=2,
            width=20,
        )
        lines = text.splitlines()
        assert "▒" in lines[0]
        assert "█" in lines[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            dispatch_timeline([], num_gpms=2)
        with pytest.raises(ValueError):
            dispatch_timeline([record(0, 1.0)], num_gpms=0)
        with pytest.raises(ValueError):
            dispatch_timeline([record(0, 1.0)], num_gpms=2, width=4)
        with pytest.raises(ValueError):
            dispatch_timeline([record(5, 1.0)], num_gpms=2)

    def test_renders_real_engine_records(self):
        scene = make_benchmark_scene("HL2-640", num_frames=1, draw_scale=0.1)
        framework = OOVRFramework()
        framework.render_scene(scene)
        text = dispatch_timeline(
            framework.last_engine.records, framework.config.num_gpms
        )
        assert text.count("GPM") == framework.config.num_gpms
        # Calibration batches (the first 8) must be visible.
        assert "▒" in text

    def test_width_clamps_every_row(self):
        # A batch far longer than the scale must not overrun the frame,
        # and a sliver batch still paints at least one cell.
        text = dispatch_timeline(
            [record(0, 1e9), record(1, 1.0)], num_gpms=2, width=12
        )
        for line in text.splitlines()[:2]:
            assert len(line.split("|")[1]) == 12
        assert text.splitlines()[1].count("█") == 1

    def test_minimum_width_accepted(self):
        text = dispatch_timeline([record(0, 10.0)], num_gpms=1, width=10)
        assert len(text.splitlines()[0].split("|")[1]) == 10

    def test_negative_gpm_rejected(self):
        with pytest.raises(ValueError):
            dispatch_timeline([record(-1, 1.0)], num_gpms=2)


def interval(gpm, start, end, kind="render", label="u"):
    return TraceInterval(gpm=gpm, label=label, start=start, end=end, kind=kind)


def make_trace(intervals, num_gpms=2, engine="event"):
    busy = [0.0] * num_gpms
    end = [0.0] * num_gpms
    for span in intervals:
        busy[span.gpm] += span.cycles
        end[span.gpm] = max(end[span.gpm], span.end)
    return FrameTrace(
        engine=engine,
        num_gpms=num_gpms,
        intervals=tuple(intervals),
        gpm_busy=tuple(busy),
        gpm_end=tuple(end),
    )


class TestTraceTimeline:
    def test_one_row_per_gpm_plus_legend(self):
        text = trace_timeline(make_trace([interval(0, 0.0, 100.0)]))
        lines = text.splitlines()
        assert lines[0].startswith("GPM0")
        assert lines[1].startswith("GPM1")
        assert "render" in lines[2] and "event engine" in lines[2]

    def test_idle_gap_shows_in_place(self):
        # Unlike dispatch_timeline, a late interval leaves a leading gap.
        text = trace_timeline(
            make_trace([interval(0, 50.0, 100.0), interval(1, 0.0, 100.0)]),
            width=20,
        )
        gpm0 = text.splitlines()[0].split("|")[1]
        assert gpm0.startswith("·")
        assert "50% busy" in text.splitlines()[0]

    def test_kind_glyphs(self):
        text = trace_timeline(
            make_trace(
                [
                    interval(0, 0.0, 40.0, kind="render"),
                    interval(0, 40.0, 80.0, kind="stall"),
                    interval(1, 0.0, 80.0, kind="steal"),
                ]
            ),
            width=20,
        )
        lines = text.splitlines()
        assert "█" in lines[0] and "▒" in lines[0]
        assert "◆" in lines[1]

    def test_width_clamping(self):
        text = trace_timeline(
            make_trace([interval(0, 0.0, 1e9), interval(1, 0.0, 1.0)]),
            width=15,
        )
        for line in text.splitlines()[:2]:
            assert len(line.split("|")[1]) == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            trace_timeline(make_trace([interval(0, 0.0, 1.0)]), width=4)
        with pytest.raises(ValueError):
            trace_timeline(make_trace([]))

    def test_renders_real_event_trace(self):
        scene = make_benchmark_scene("HL2-640", num_frames=1, draw_scale=0.1)
        framework = OOVRFramework(baseline_system().with_engine("event"))
        framework.render_scene(scene)
        trace = framework.last_system.last_trace
        text = trace_timeline(trace)
        assert text.count("GPM") == framework.config.num_gpms
        assert "% busy" in text
