"""The per-process reuse cache (repro.reuse).

Covers the memo table's identity-anchored contract, the scoped
enable/disable plumbing, byte-transparency of reuse across the serial
and process executors, and per-process isolation (worker caches never
leak into the parent).
"""

from __future__ import annotations

import pytest

from repro import reuse
from repro.session import Session, Sweep


def shared_grid() -> Sweep:
    """Frameworks sharing one workload: the reuse-friendly shape."""
    return (
        Sweep().fast().frameworks("oo-vr", "oo-app").workloads("HL2-640")
    )


# ---------------------------------------------------------------------------
# The memo table itself
# ---------------------------------------------------------------------------


class TestReuseCache:
    def test_memoize_builds_once_per_anchor_and_key(self):
        cache = reuse.ReuseCache()
        anchor = object()
        calls = []

        def build():
            calls.append(1)
            return ("artefact",)

        first = cache.memoize("section", anchor, ("cost",), build)
        second = cache.memoize("section", anchor, ("cost",), build)
        assert first is second  # the very same object, not a copy
        assert calls == [1]
        assert cache.stats.snapshot() == (1, 1)

    def test_anchor_identity_not_equality(self):
        """Equal-but-distinct anchors never alias each other's entries."""
        cache = reuse.ReuseCache()
        calls = []

        def build():
            calls.append(1)
            return len(calls)

        first_anchor = tuple([1, 2])  # built at runtime: not interned
        second_anchor = tuple([1, 2])
        assert first_anchor == second_anchor
        assert first_anchor is not second_anchor
        assert cache.memoize("s", first_anchor, "k", build) == 1
        # An equal but distinct tuple is a different anchor.
        assert cache.memoize("s", second_anchor, "k", build) == 2

    def test_key_and_section_separate_entries(self):
        cache = reuse.ReuseCache()
        anchor = object()
        assert cache.memoize("a", anchor, "k1", lambda: 1) == 1
        assert cache.memoize("a", anchor, "k2", lambda: 2) == 2
        assert cache.memoize("b", anchor, "k1", lambda: 3) == 3
        assert len(cache) == 3

    def test_disabled_scope_builds_every_time_and_records_nothing(self):
        cache = reuse.ReuseCache()
        anchor = object()
        calls = []

        def build():
            calls.append(1)
            return len(calls)

        with reuse.reuse_scope(False):
            assert cache.memoize("s", anchor, "k", build) == 1
            assert cache.memoize("s", anchor, "k", build) == 2
        assert len(cache) == 0
        assert cache.stats.snapshot() == (0, 0)

    def test_scope_restores_previous_state(self):
        assert reuse.reuse_enabled()  # the default
        with reuse.reuse_scope(False):
            assert not reuse.reuse_enabled()
            with reuse.reuse_scope(True):
                assert reuse.reuse_enabled()
            assert not reuse.reuse_enabled()
        assert reuse.reuse_enabled()

    def test_set_reuse_flips_the_flag(self):
        try:
            reuse.set_reuse(False)
            assert not reuse.reuse_enabled()
        finally:
            reuse.set_reuse(True)
        assert reuse.reuse_enabled()

    def test_eviction_drops_oldest_first(self):
        cache = reuse.ReuseCache(max_entries=2)
        anchors = [object() for _ in range(3)]
        for index, anchor in enumerate(anchors):
            cache.memoize("s", anchor, index, lambda index=index: index)
        assert len(cache) == 2
        calls = []
        # The oldest entry (anchor 0) was evicted: a re-lookup rebuilds.
        cache.memoize("s", anchors[0], 0, lambda: calls.append(1))
        assert calls == [1]

    def test_clear_resets_entries_and_stats(self):
        cache = reuse.ReuseCache()
        cache.memoize("s", object(), "k", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.snapshot() == (0, 0)


# ---------------------------------------------------------------------------
# Byte-transparency across executors
# ---------------------------------------------------------------------------


class TestReuseTransparency:
    def test_serial_sweep_byte_identical_reuse_on_vs_off(self):
        with_reuse = shared_grid().run().to_csv()
        without = shared_grid().run(reuse=False).to_csv()
        assert with_reuse == without

    def test_process_sweep_byte_identical_reuse_on_vs_off(self):
        serial = shared_grid().run(reuse=False).to_csv()
        assert shared_grid().run(jobs=2).to_csv() == serial
        assert shared_grid().run(jobs=2, reuse=False).to_csv() == serial

    def test_session_run_reuse_off_matches_default(self):
        session = Session().framework("oo-vr").workload("HL2-640").fast()
        assert (
            session.run().to_dict()
            == session.run(reuse=False).to_dict()
        )

    def test_eviction_never_changes_results(self, monkeypatch):
        """A pathologically tiny memo evicts constantly, yet the sweep's
        CSV is byte-identical — eviction only costs rebuild time."""
        baseline = shared_grid().run(reuse=False).to_csv()
        monkeypatch.setattr(reuse, "_cache", reuse.ReuseCache(max_entries=1))
        evicting = shared_grid().run().to_csv()
        cache = reuse.get_cache()
        assert len(cache) <= 1  # the cap held
        hits, misses = cache.stats.snapshot()
        assert misses > 2  # evictions forced rebuilds of live keys
        assert evicting == baseline

    def test_shared_workload_grid_actually_hits(self):
        """Cells sharing a workload reuse its frame-derived artefacts."""
        reuse.get_cache().clear()
        shared_grid().run()
        hits, misses = reuse.get_cache().stats.snapshot()
        assert misses > 0  # first framework's cells built the entries
        assert hits > 0  # the second framework reused them


# ---------------------------------------------------------------------------
# Per-process isolation
# ---------------------------------------------------------------------------


class TestPerProcessIsolation:
    def test_worker_caches_never_leak_into_the_parent(self):
        """jobs > 1 executes in the pool: the parent memo stays empty."""
        cache = reuse.get_cache()
        cache.clear()
        results = shared_grid().run(jobs=2)
        assert len(results) == 2
        assert len(cache) == 0
        assert cache.stats.snapshot() == (0, 0)

    def test_sweep_scope_is_active_during_and_restored_after(self):
        states = []
        shared_grid().run(
            on_result=lambda *args: states.append(reuse.reuse_enabled()),
            reuse=False,
        )
        assert states and not any(states)
        assert reuse.reuse_enabled()  # restored after the run
