"""Tests for trace capture, storage, replay and profiling."""

import gzip
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scene.benchmarks import make_benchmark_scene
from repro.scene.geometry import Mesh, Viewport
from repro.scene.objects import RenderObject
from repro.scene.scene import Frame, Scene
from repro.scene.texture import TexturePool
from repro.trace import (
    SCHEMA_VERSION,
    TraceFormatError,
    load_scene,
    profile_scene,
    save_scene,
    scene_to_document,
)
from repro.trace.reader import scene_from_document


def small_scene(name="mini", num_objects=4, frames=2, share_textures=True):
    """A hand-built scene with controlled texture sharing."""
    pool = TexturePool()
    stone = pool.get_or_create("stone", 4 << 20)
    cloth = pool.get_or_create("cloth", 1 << 20)
    built_frames = []
    for frame_id in range(frames):
        objects = []
        for i in range(num_objects):
            texture = stone if (share_textures and i % 2 == 0) else cloth
            objects.append(
                RenderObject(
                    object_id=i,
                    name=f"obj{i}",
                    mesh=Mesh(num_vertices=30 * (i + 1), num_triangles=50 * (i + 1)),
                    textures=(texture,),
                    viewport_left=Viewport(0, 0, 100 + i, 80),
                    viewport_right=Viewport(4, 0, 104 + i, 80),
                    depends_on=0 if i == num_objects - 1 and i > 0 else None,
                )
            )
        built_frames.append(
            Frame(objects=tuple(objects), width=640, height=480, frame_id=frame_id)
        )
    return Scene(name=name, frames=tuple(built_frames))


def scenes_equal(a: Scene, b: Scene) -> bool:
    """Structural equality for round-trip checks."""
    if (a.name, a.width, a.height, len(a)) != (b.name, b.width, b.height, len(b)):
        return False
    for frame_a, frame_b in zip(a, b):
        if len(frame_a.objects) != len(frame_b.objects):
            return False
        for oa, ob in zip(frame_a.objects, frame_b.objects):
            if (
                oa.object_id != ob.object_id
                or oa.name != ob.name
                or oa.mesh != ob.mesh
                or oa.viewport_left != ob.viewport_left
                or oa.viewport_right != ob.viewport_right
                or oa.depth_complexity != ob.depth_complexity
                or oa.coverage != ob.coverage
                or oa.depends_on != ob.depends_on
                or [t.texture_id for t in oa.textures]
                != [t.texture_id for t in ob.textures]
            ):
                return False
    return True


class TestRoundTrip:
    def test_json_roundtrip(self, tmp_path):
        scene = small_scene()
        path = save_scene(scene, tmp_path / "trace.json")
        loaded = load_scene(path)
        assert scenes_equal(scene, loaded)

    def test_gzip_roundtrip(self, tmp_path):
        scene = small_scene()
        path = save_scene(scene, tmp_path / "trace.json.gz")
        with gzip.open(path, "rt") as handle:
            json.load(handle)  # really gzipped JSON
        assert scenes_equal(scene, load_scene(path))

    def test_texture_identity_preserved(self, tmp_path):
        scene = small_scene(share_textures=True)
        loaded = load_scene(save_scene(scene, tmp_path / "t.json"))
        frame = loaded.frames[0]
        # obj0 and obj2 shared "stone"; after the round trip they must
        # share the *same object*, not equal copies.
        assert frame.objects[0].textures[0] is frame.objects[2].textures[0]

    def test_benchmark_scene_roundtrip(self, tmp_path):
        scene = make_benchmark_scene("DM3-640", num_frames=1, draw_scale=0.1)
        loaded = load_scene(save_scene(scene, tmp_path / "dm3.json.gz"))
        assert scenes_equal(scene, loaded)

    def test_document_is_stable(self):
        scene = small_scene()
        doc_a = scene_to_document(scene)
        doc_b = scene_to_document(scene)
        assert doc_a == doc_b

    @settings(max_examples=15, deadline=None)
    @given(
        num_objects=st.integers(1, 8),
        frames=st.integers(1, 3),
        share=st.booleans(),
    )
    def test_property_roundtrip(self, num_objects, frames, share):
        scene = small_scene(
            num_objects=num_objects, frames=frames, share_textures=share
        )
        doc = scene_to_document(scene)
        assert scenes_equal(scene, scene_from_document(doc))


class TestReaderValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(TraceFormatError, match="format"):
            scene_from_document({"format": "something-else", "version": 1})

    def test_rejects_unknown_version(self):
        doc = scene_to_document(small_scene())
        doc["version"] = SCHEMA_VERSION + 1
        with pytest.raises(TraceFormatError, match="version"):
            scene_from_document(doc)

    def test_rejects_non_dict(self):
        with pytest.raises(TraceFormatError):
            scene_from_document([1, 2, 3])

    def test_rejects_missing_scene(self):
        with pytest.raises(TraceFormatError, match="scene"):
            scene_from_document({"format": "oovr-trace", "version": 1})

    def test_rejects_unknown_texture_reference(self):
        doc = scene_to_document(small_scene())
        doc["scene"]["frames"][0]["objects"][0]["textures"] = [999]
        with pytest.raises(TraceFormatError, match="unknown texture"):
            scene_from_document(doc)

    def test_rejects_duplicate_texture_ids(self):
        doc = scene_to_document(small_scene())
        doc["scene"]["textures"].append(doc["scene"]["textures"][0])
        with pytest.raises(TraceFormatError, match="duplicate"):
            scene_from_document(doc)

    def test_rejects_bad_viewport(self):
        doc = scene_to_document(small_scene())
        doc["scene"]["frames"][0]["objects"][0]["viewport_left"] = [0, 0, 5]
        with pytest.raises(TraceFormatError, match="viewport"):
            scene_from_document(doc)

    def test_rejects_degenerate_viewport(self):
        doc = scene_to_document(small_scene())
        doc["scene"]["frames"][0]["objects"][0]["viewport_left"] = [10, 0, 5, 8]
        with pytest.raises(TraceFormatError):
            scene_from_document(doc)

    def test_rejects_empty_frames(self):
        doc = scene_to_document(small_scene())
        doc["scene"]["frames"] = []
        with pytest.raises(TraceFormatError, match="frame"):
            scene_from_document(doc)

    def test_rejects_invalid_mesh(self):
        doc = scene_to_document(small_scene())
        doc["scene"]["frames"][0]["objects"][0]["mesh"]["vertices"] = -1
        with pytest.raises(TraceFormatError):
            scene_from_document(doc)

    def test_error_names_offending_object(self):
        doc = scene_to_document(small_scene())
        del doc["scene"]["frames"][0]["objects"][1]["mesh"]
        with pytest.raises(TraceFormatError, match="object 1"):
            scene_from_document(doc)


class TestProfiler:
    def test_profile_counts_objects(self):
        scene = small_scene(num_objects=5)
        profile = profile_scene(scene)
        assert profile.representative.num_objects == 5
        assert profile.num_frames == len(scene)

    def test_profile_totals_match_frame(self):
        scene = small_scene()
        frame = scene.representative_frame
        profile = profile_scene(scene).representative
        assert profile.total_triangles == frame.total_triangles
        assert profile.total_fragments == pytest.approx(frame.total_fragments)
        assert profile.unique_texture_bytes == frame.texture_bytes

    def test_texture_fanout(self):
        scene = small_scene(num_objects=4, share_textures=True)
        profile = profile_scene(scene)
        # objects 0 and 2 bind stone (id 0); 1 and 3 bind cloth (id 1).
        assert profile.texture_fanout[0] == 2
        assert profile.texture_fanout[1] == 2

    def test_shareable_pairs_with_sharing(self):
        shared = profile_scene(small_scene(num_objects=4, share_textures=True))
        # stone pair (0,2) and cloth pair (1,3).
        assert shared.shareable_pairs == 2

    def test_shareable_pairs_without_sharing(self):
        profile = profile_scene(small_scene(num_objects=2, share_textures=False))
        # Both objects bind cloth when share_textures=False... obj0 gets
        # stone only when sharing; without sharing all bind cloth, so
        # every pair still shares.  Use distinct textures per object.
        assert profile.shareable_pairs >= 0  # structural smoke check

    def test_stereo_fraction_is_one_for_stereo_scene(self):
        profile = profile_scene(small_scene()).representative
        assert profile.stereo_fraction == 1.0

    def test_table_mentions_scene_and_objects(self):
        scene = small_scene()
        table = profile_scene(scene).table()
        assert "mini" in table
        assert "obj0" in table

    def test_profile_of_benchmark_workload(self):
        scene = make_benchmark_scene("WE", num_frames=1, draw_scale=0.05)
        profile = profile_scene(scene)
        assert profile.representative.num_objects == scene.num_draws
        assert profile.representative.texture_sharing_ratio >= 1.0
