"""The RunSpec-keyed result cache: keys, round trips, sweep memoisation."""

import json
import os
import subprocess
import sys

import pytest

from repro.config import baseline_system
from repro.session import (
    CacheMergeError,
    ExperimentConfig,
    ResultCache,
    RunSpec,
    Sweep,
    spec_key,
)
from repro.stats.metrics import SceneResult

#: Two tiny workloads keep these tests quick.
TINY = ExperimentConfig(
    draw_scale=0.08, num_frames=2, workloads=("DM3-640", "WE")
)


def tiny_sweep() -> Sweep:
    return Sweep().preset(TINY).frameworks("baseline", "oo-vr")


def tiny_spec(**overrides) -> RunSpec:
    fields = dict(
        framework="oo-vr",
        workload="WE",
        num_frames=2,
        seed=2019,
        draw_scale=0.08,
    )
    fields.update(overrides)
    return RunSpec(**fields)


class TestSpecKey:
    def test_key_is_deterministic(self):
        assert spec_key(tiny_spec()) == spec_key(tiny_spec())

    def test_key_differs_per_identity_field(self):
        base = spec_key(tiny_spec())
        assert spec_key(tiny_spec(framework="baseline")) != base
        assert spec_key(tiny_spec(workload="DM3-640")) != base
        assert spec_key(tiny_spec(seed=7)) != base
        assert spec_key(tiny_spec(draw_scale=0.5)) != base

    def test_key_covers_config_values_not_label(self):
        base = spec_key(tiny_spec())
        relabelled = tiny_spec(config_label="renamed")
        assert spec_key(relabelled) == base
        configured = tiny_spec(config=baseline_system(num_gpms=2))
        assert spec_key(configured) != base

    def test_key_stable_across_processes(self):
        """SHA-256 over canonical JSON, not Python's seeded hash()."""
        script = (
            "from repro.session import RunSpec, spec_key\n"
            "from repro.config import baseline_system\n"
            "spec = RunSpec(framework='oo-vr', workload='WE', num_frames=2,\n"
            "               seed=2019, draw_scale=0.08,\n"
            "               config=baseline_system(num_gpms=2))\n"
            "print(spec_key(spec))\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "12345"
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        local = spec_key(tiny_spec(config=baseline_system(num_gpms=2)))
        assert child.stdout.strip() == local


class TestResultCacheStore:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec().validate()
        result = spec.execute()
        cache.put(spec, result)
        cached = cache.get(spec)
        assert isinstance(cached, SceneResult)
        assert cached.to_dict() == result.to_dict()

    def test_hit_miss_accounting(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec().validate()
        assert cache.get(spec) is None
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        cache.put(spec, spec.execute())
        assert cache.get(spec) is not None
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5
        assert "1 hits, 1 misses" in cache.stats.summary()

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec().validate()
        result = spec.execute()
        cache.put(spec, result)
        cache.path_for(spec).write_text("{ not json", encoding="utf-8")
        assert cache.get(spec) is None
        assert cache.stats.corrupt == 1
        # A sweep through the same cache re-executes and heals the entry.
        results = Sweep().preset(TINY).workloads("WE").frameworks(
            "oo-vr"
        ).run(cache=cache)
        assert len(results) == 1
        healed = cache.get(spec)
        assert healed is not None
        assert healed.to_dict() == result.to_dict()

    def test_schema_version_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec().validate()
        cache.put(spec, spec.execute())
        path = cache.path_for(spec)
        entry = json.loads(path.read_text())
        entry["version"] = -1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(spec) is None
        assert cache.stats.corrupt == 1

    def test_relabelled_config_still_hits(self, tmp_path):
        """config_label is cosmetic: the same config under another
        label must hit the same entry, not read as corrupt."""
        cache = ResultCache(tmp_path)
        config = baseline_system(num_gpms=2)
        labelled_a = tiny_spec(config=config, config_label="A").validate()
        labelled_b = tiny_spec(config=config, config_label="B").validate()
        cache.put(labelled_a, labelled_a.execute())
        assert cache.get(labelled_b) is not None
        assert cache.stats.corrupt == 0
        assert (cache.stats.hits, cache.stats.misses) == (1, 0)

    def test_stored_spec_mismatch_is_miss(self, tmp_path):
        """A hand-edited (or colliding) entry must not impersonate."""
        cache = ResultCache(tmp_path)
        spec = tiny_spec().validate()
        cache.put(spec, spec.execute())
        path = cache.path_for(spec)
        entry = json.loads(path.read_text())
        entry["spec"]["seed"] = 7
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(spec) is None

    def test_info_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for workload in TINY.workloads:
            spec = tiny_spec(workload=workload).validate()
            cache.put(spec, spec.execute())
        info = cache.info()
        assert info["entries"] == len(cache) == 2
        assert info["total_bytes"] > 0
        assert cache.clear() == 2
        assert len(cache) == 0


class TestSweepCaching:
    def test_repeated_sweep_all_hits(self, tmp_path):
        first = ResultCache(tmp_path)
        tiny_sweep().run(cache=first)
        assert (first.stats.hits, first.stats.misses) == (0, 4)
        second = ResultCache(tmp_path)
        tiny_sweep().run(cache=second)
        assert (second.stats.hits, second.stats.misses) == (4, 0)
        assert second.stats.hit_rate == 1.0

    def test_cached_sweep_byte_identical_to_uncached(self, tmp_path):
        uncached = tiny_sweep().run()
        cache = ResultCache(tmp_path)
        warmup = tiny_sweep().run(cache=cache)
        cached = tiny_sweep().run(cache=cache)
        assert cache.stats.hits == 4
        assert cached.to_csv() == uncached.to_csv() == warmup.to_csv()
        assert cached.to_json() == uncached.to_json()
        assert cached.to_records() == uncached.to_records()

    def test_partial_hits_fill_the_gaps(self, tmp_path):
        cache = ResultCache(tmp_path)
        Sweep().preset(TINY).frameworks("baseline").run(cache=cache)
        results = tiny_sweep().run(cache=cache)
        assert (cache.stats.hits, cache.stats.misses) == (2, 2 + 2)
        assert len(results) == 4
        assert results.to_csv() == tiny_sweep().run().to_csv()

    def test_cache_accepts_directory_path(self, tmp_path):
        path = tmp_path / "store"
        first = tiny_sweep().run(cache=str(path))
        second = tiny_sweep().run(cache=str(path))
        assert first.to_csv() == second.to_csv()
        assert len(ResultCache(path)) == 4

    def test_parallel_cached_sweep_matches_serial(self, tmp_path):
        cache = ResultCache(tmp_path)
        parallel = tiny_sweep().run(jobs=2, cache=cache)
        assert cache.stats.misses == 4
        serial = tiny_sweep().run()
        assert parallel.to_csv() == serial.to_csv()
        replay = tiny_sweep().run(jobs=2, cache=cache)
        assert cache.stats.hits == 4
        assert replay.to_csv() == serial.to_csv()

    def test_variant_frameworks_cache_cleanly(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep = lambda: (
            Sweep()
            .preset(TINY)
            .workloads("WE")
            .frameworks("oo-vr:no-dhc", "baseline:topo=ring")
        )
        first = sweep().run(cache=cache)
        second = sweep().run(cache=cache)
        assert (cache.stats.hits, cache.stats.misses) == (2, 2)
        assert first.to_csv() == second.to_csv() == sweep().run().to_csv()


class TestConcurrentWriters:
    """Two shard processes sharing one directory must not corrupt it."""

    def test_interleaved_writers_same_key(self, tmp_path):
        """Many interleaved puts of the same key always leave a
        complete, parseable entry and no stray temp files — each
        writer stages into its own uniquely-named temp file before
        the atomic replace, so writers cannot truncate each other."""
        import threading

        spec = tiny_spec().validate()
        result = spec.execute()
        writers = [ResultCache(tmp_path), ResultCache(tmp_path)]
        start = threading.Barrier(len(writers))
        errors = []

        def hammer(cache):
            try:
                start.wait()
                for _ in range(25):
                    cache.put(spec, result)
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(cache,))
            for cache in writers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        survivor = ResultCache(tmp_path)
        assert len(survivor) == 1
        cached = survivor.get(spec)
        assert cached is not None
        assert cached.to_dict() == result.to_dict()
        assert not list(tmp_path.glob("*.tmp"))

    def test_two_caches_sharing_a_directory(self, tmp_path):
        """The shard scenario: distinct cells landing from two cache
        instances interleave without losing either entry."""
        spec_a = tiny_spec().validate()
        spec_b = tiny_spec(workload="DM3-640").validate()
        cache_a, cache_b = ResultCache(tmp_path), ResultCache(tmp_path)
        cache_a.put(spec_a, spec_a.execute())
        cache_b.put(spec_b, spec_b.execute())
        shared = ResultCache(tmp_path)
        assert shared.get(spec_a) is not None
        assert shared.get(spec_b) is not None
        assert len(shared) == 2


class TestCacheMerge:
    def seeded(self, tmp_path, name, workloads=("WE",)):
        cache = ResultCache(tmp_path / name)
        for workload in workloads:
            spec = tiny_spec(workload=workload).validate()
            cache.put(spec, spec.execute())
        return cache

    def test_merge_copies_missing_entries(self, tmp_path):
        source = self.seeded(tmp_path, "src", TINY.workloads)
        destination = ResultCache(tmp_path / "dst")
        stats = destination.merge(source)
        assert (stats.copied, stats.identical, stats.conflicts) == (2, 0, 0)
        assert sorted(destination.keys()) == sorted(source.keys())
        spec = tiny_spec(workload="WE").validate()
        assert destination.get(spec) is not None

    def test_merge_accepts_directory_path(self, tmp_path):
        source = self.seeded(tmp_path, "src")
        destination = ResultCache(tmp_path / "dst")
        stats = destination.merge(source.root)
        assert stats.copied == 1

    def test_same_key_same_payload_is_noop(self, tmp_path):
        source = self.seeded(tmp_path, "src")
        destination = ResultCache(tmp_path / "dst")
        destination.merge(source)
        again = destination.merge(source)
        assert (again.copied, again.identical) == (0, 1)
        assert "1 identical" in again.summary()

    def test_same_key_different_payload_raises(self, tmp_path):
        source = self.seeded(tmp_path, "src")
        destination = self.seeded(tmp_path, "dst")
        key = source.keys()[0]
        path = source.root / f"{key}.json"
        entry = json.loads(path.read_text())
        entry["result"]["single_frame_cycles"] += 1.0
        path.write_text(json.dumps(entry), encoding="utf-8")
        with pytest.raises(CacheMergeError, match="merge conflict"):
            destination.merge(source)

    def test_conflict_keep_and_replace_policies(self, tmp_path):
        source = self.seeded(tmp_path, "src")
        destination = self.seeded(tmp_path, "dst")
        key = source.keys()[0]
        path = source.root / f"{key}.json"
        original = (destination.root / f"{key}.json").read_text()
        doctored = original.replace("\n", "\n ", 1)
        path.write_text(doctored, encoding="utf-8")
        kept = destination.merge(source, on_conflict="keep")
        assert (kept.kept, kept.replaced) == (1, 0)
        assert (destination.root / f"{key}.json").read_text() == original
        replaced = destination.merge(source, on_conflict="replace")
        assert (replaced.kept, replaced.replaced) == (0, 1)
        assert (destination.root / f"{key}.json").read_text() == doctored

    def test_bad_on_conflict_rejected(self, tmp_path):
        destination = ResultCache(tmp_path / "dst")
        with pytest.raises(ValueError, match="on_conflict"):
            destination.merge(tmp_path / "dst", on_conflict="panic")

    def test_merge_ignores_non_entry_json(self, tmp_path):
        source = self.seeded(tmp_path, "src")
        (source.root / "notes.json").write_text("{}", encoding="utf-8")
        destination = ResultCache(tmp_path / "dst")
        stats = destination.merge(source)
        assert stats.copied == 1
        assert not (destination.root / "notes.json").exists()

    def test_entry_count_ignores_manifests_and_stray_json(self, tmp_path):
        cache = self.seeded(tmp_path, "src")
        (cache.root / "shard-0of2.manifest.json").write_text(
            "{}", encoding="utf-8"
        )
        (cache.root / "notes.json").write_text("{}", encoding="utf-8")
        assert len(cache) == 1
        assert cache.info()["entries"] == 1
        assert cache.clear() == 1
        assert (cache.root / "shard-0of2.manifest.json").exists()
