"""SoA == AoS property tests for the batched hot paths.

The struct-of-array refactor rewired three layers — frame
characterisation (:meth:`DrawCharacterizer.characterize_frame`), the
validation rasterizer's batched front end (:meth:`Rasterizer.draw_mesh`)
and the counter kernels underneath them — while keeping the scalar
per-object/per-triangle code as the reference.  These tests pin the
contract: on seeded synthetic inputs the batched paths must reproduce
the scalar paths *exactly* (work units field for field, DrawStats
counter for counter, framebuffers byte for byte), not merely closely.
"""

import hashlib

import numpy as np
import pytest

from repro.config import baseline_system
from repro.pipeline.characterize import DrawCharacterizer
from repro.pipeline.smp import SMPMode
from repro.render.framebuffer import FrameBuffer
from repro.render.math3d import look_at, perspective
from repro.render.mesh3d import (
    TriangleMesh,
    make_box,
    make_checker_ground,
    make_icosphere,
)
from repro.render.raster import Rasterizer
from repro.scene.synthetic import SceneProfile, SyntheticSceneGenerator

#: Small but structurally diverse synthetic workloads: stereo and mono
#: draws, shared materials, heavy triangle tails.
PROFILES = [
    SceneProfile(name="soa-a", num_objects=24, width=320, height=240),
    SceneProfile(
        name="soa-b",
        num_objects=40,
        width=256,
        height=256,
        mono_fraction=0.3,
        triangles_sigma=1.6,
        num_materials=12,
    ),
    SceneProfile(
        name="soa-c",
        num_objects=8,
        width=640,
        height=360,
        textures_per_object=(2, 5),
        vertical_skew=0.6,
    ),
]


def synthetic_frame(profile, seed):
    return SyntheticSceneGenerator(profile, seed=seed).make_frame()


class TestCharacterizeFrameMatchesScalar:
    """``characterize_frame`` == per-draw ``characterize``, exactly."""

    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    @pytest.mark.parametrize("seed", [2019, 7])
    @pytest.mark.parametrize("mode", [SMPMode.SIMULTANEOUS, SMPMode.SEQUENTIAL])
    def test_multiview_expansion(self, profile, seed, mode):
        frame = synthetic_frame(profile, seed)
        characterizer = DrawCharacterizer(baseline_system())
        batched = characterizer.characterize_frame(
            frame, mode=mode, expansion="multiview"
        )
        draws = frame.multiview_draws()
        assert len(batched) == len(draws)
        for draw, unit in zip(draws, batched):
            assert unit == characterizer.characterize(draw, mode=mode)

    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    @pytest.mark.parametrize("seed", [2019, 7])
    def test_stereo_expansion(self, profile, seed):
        frame = synthetic_frame(profile, seed)
        characterizer = DrawCharacterizer(baseline_system())
        batched = characterizer.characterize_frame(
            frame, mode=SMPMode.SEQUENTIAL, expansion="stereo"
        )
        draws = frame.stereo_draws()
        assert len(batched) == len(draws)
        for draw, unit in zip(draws, batched):
            assert unit == characterizer.characterize(
                draw, mode=SMPMode.SEQUENTIAL
            )

    def test_work_unit_totals_match(self):
        """Whole-frame roll-ups agree (the quantity Eq. 3 prices)."""
        frame = synthetic_frame(PROFILES[0], 2019)
        characterizer = DrawCharacterizer(baseline_system())
        batched = characterizer.characterize_frame(frame)
        scalar = [
            characterizer.characterize(draw)
            for draw in frame.multiview_draws()
        ]
        for field in (
            "vertices",
            "triangles_setup",
            "triangles_raster",
            "fragments",
            "pixels_out",
            "texel_requests",
            "command_bytes",
        ):
            assert sum(getattr(u, field) for u in batched) == sum(
                getattr(u, field) for u in scalar
            )

    def test_batch_is_cached_per_frame(self):
        frame = synthetic_frame(PROFILES[1], 3)
        assert frame.object_batch is frame.object_batch


def random_mesh(rng, num_vertices=40, num_faces=60, spread=2.0):
    """A seeded random triangle soup (degenerates and slivers included)."""
    positions = rng.uniform(-spread, spread, size=(num_vertices, 3))
    uvs = rng.uniform(0.0, 1.0, size=(num_vertices, 2))
    faces = rng.integers(0, num_vertices, size=(num_faces, 3))
    return TriangleMesh(
        positions.astype(np.float64),
        uvs.astype(np.float64),
        faces.astype(np.int32),
    )


def fb_digest(fb):
    digest = hashlib.sha256()
    digest.update(fb.color.tobytes())
    digest.update(fb.depth.tobytes())
    return digest.hexdigest()


def scene_mvp(eye=(3.0, 2.5, 4.0)):
    view = look_at(np.asarray(eye), np.zeros(3), np.asarray([0.0, 1.0, 0.0]))
    proj = perspective(60.0, 4.0 / 3.0, 0.1, 50.0)
    return proj @ view


class TestBatchedRasterMatchesReference:
    """``draw_mesh`` == ``draw_mesh_reference``: stats and pixels."""

    def assert_paths_match(
        self, mesh, mvp, scissor=None, cull_backfaces=True, size=(160, 120)
    ):
        width, height = size
        fb_batched = FrameBuffer(width, height)
        fb_reference = FrameBuffer(width, height)
        stats_batched = Rasterizer(fb_batched, scissor=scissor).draw_mesh(
            mesh, mvp, cull_backfaces=cull_backfaces
        )
        stats_reference = Rasterizer(
            fb_reference, scissor=scissor
        ).draw_mesh_reference(mesh, mvp, cull_backfaces=cull_backfaces)
        assert stats_batched == stats_reference
        assert fb_batched.pixels_written == fb_reference.pixels_written
        assert fb_digest(fb_batched) == fb_digest(fb_reference)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_triangle_soup(self, seed):
        rng = np.random.default_rng(seed)
        self.assert_paths_match(random_mesh(rng), scene_mvp())

    @pytest.mark.parametrize("seed", [11, 12])
    def test_no_backface_culling(self, seed):
        rng = np.random.default_rng(seed)
        self.assert_paths_match(
            random_mesh(rng), scene_mvp(), cull_backfaces=False
        )

    def test_near_plane_crossers_rejected_identically(self):
        # Geometry straddling the camera plane exercises the near-plane
        # rejection (w <= eps) branch of both front ends.
        rng = np.random.default_rng(99)
        mesh = random_mesh(rng, spread=6.0)
        self.assert_paths_match(mesh, scene_mvp(eye=(0.5, 0.2, 0.8)))

    def test_scissored_eye_viewport(self):
        # The stereo renderer's per-eye scissor: triangles clipped to a
        # half-screen rectangle must cull/draw identically.
        mesh = make_checker_ground(extent=6.0, tiles=5).merged_with(
            make_box(1.5, 1.0, 1.0)
        )
        self.assert_paths_match(mesh, scene_mvp(), scissor=(0, 0, 80, 120))

    def test_procedural_props(self):
        mesh = make_icosphere(radius=1.2, subdivisions=2).merged_with(
            make_box(2.0, 0.5, 1.0)
        )
        self.assert_paths_match(mesh, scene_mvp())

    def test_fully_scissored_draw_writes_nothing(self):
        # The bench's ≥10x kernel case: every face rejected before
        # coverage.  Both paths must agree that nothing was drawn.
        mesh = make_icosphere(radius=1.0, subdivisions=2)
        width, height = 160, 120
        fb_batched = FrameBuffer(width, height)
        fb_reference = FrameBuffer(width, height)
        # Scissor to a 1x1 corner the sphere never touches.
        raster_batched = Rasterizer(fb_batched, scissor=(0, 0, 1, 1))
        raster_reference = Rasterizer(fb_reference, scissor=(0, 0, 1, 1))
        mvp = scene_mvp()
        stats_batched = raster_batched.draw_mesh(mesh, mvp)
        stats_reference = raster_reference.draw_mesh_reference(mesh, mvp)
        assert stats_batched == stats_reference
        assert stats_batched.pixels_written == 0
        assert stats_batched.triangles_rasterised == 0
