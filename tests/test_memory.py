"""Memory substrate: pages, placement, caches, DRAM, links, remote cache."""

import pytest

from repro.memory.address import (
    Resource,
    ResourceKind,
    Touch,
    texture_resource,
    vertex_resource,
)
from repro.memory.cache import (
    CacheStats,
    SetAssociativeCache,
    miss_bytes,
    working_set_hit_rate,
)
from repro.memory.dram import DramTracker, make_trackers
from repro.memory.link import LinkFabric, TrafficType
from repro.memory.placement import PagePlacement, PlacementPolicy
from repro.memory.remote_cache import RemoteCache

KB = 1024
MB = 1024 * KB
PAGE = 64 * KB


class TestResourcesAndTouches:
    def test_num_pages_rounds_up(self):
        r = texture_resource(0, PAGE + 1)
        assert r.num_pages(PAGE) == 2

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Resource(("tex", 0), ResourceKind.TEXTURE, 0)

    def test_touch_stream_floored_at_unique(self):
        touch = Touch(texture_resource(0, MB), unique_bytes=100.0, stream_bytes=10.0)
        assert touch.stream_bytes == 100.0

    def test_touch_scaling(self):
        touch = Touch(texture_resource(0, MB), unique_bytes=100.0, stream_bytes=400.0)
        half = touch.scaled(0.5)
        assert half.unique_bytes == 50.0
        assert half.stream_bytes == 200.0

    def test_negative_touch_rejected(self):
        with pytest.raises(ValueError):
            Touch(texture_resource(0, MB), unique_bytes=-1.0)


class TestPlacement:
    def test_first_touch_places_on_toucher(self):
        placement = PagePlacement(4, PAGE, PlacementPolicy.FIRST_TOUCH)
        r = texture_resource(0, 4 * PAGE)
        fractions = placement.owner_fractions(r, toucher=2)
        assert fractions == {2: 1.0}

    def test_first_touch_sticky(self):
        placement = PagePlacement(4, PAGE)
        r = texture_resource(0, 4 * PAGE)
        placement.owner_fractions(r, toucher=2)
        assert placement.owner_fractions(r, toucher=3) == {2: 1.0}

    def test_interleaved_spreads_pages(self):
        placement = PagePlacement(4, PAGE, PlacementPolicy.INTERLEAVED)
        r = texture_resource(0, 8 * PAGE)
        fractions = placement.owner_fractions(r, toucher=0)
        assert fractions == {0: 0.25, 1: 0.25, 2: 0.25, 3: 0.25}

    def test_place_fixed(self):
        placement = PagePlacement(4, PAGE)
        r = texture_resource(0, 2 * PAGE)
        placement.place_fixed(r, 1)
        assert placement.local_fraction(r, 1) == 1.0
        assert placement.local_fraction(r, 0) == 0.0

    def test_double_place_rejected(self):
        placement = PagePlacement(4, PAGE)
        r = texture_resource(0, PAGE)
        placement.place_fixed(r, 0)
        with pytest.raises(ValueError):
            placement.place_fixed(r, 1)

    def test_striped_placement(self):
        placement = PagePlacement(4, PAGE)
        r = texture_resource(0, 8 * PAGE)
        placement.place_striped(r, [0, 1, 2, 3])
        fractions = placement.owner_fractions(r, toucher=0)
        assert fractions == {0: 0.25, 1: 0.25, 2: 0.25, 3: 0.25}

    def test_replica_makes_local(self):
        placement = PagePlacement(4, PAGE)
        r = texture_resource(0, 4 * PAGE)
        placement.place_fixed(r, 0)
        placement.replicate(r, [3])
        assert placement.local_fraction(r, 3) == 1.0
        # Original owner still local too.
        assert placement.local_fraction(r, 0) == 1.0

    def test_replication_counts_resident_bytes(self):
        placement = PagePlacement(4, PAGE)
        r = texture_resource(0, 4 * PAGE)
        placement.place_fixed(r, 0)
        before = placement.total_resident_bytes
        placement.replicate(r, [1, 2])
        assert placement.total_resident_bytes == before + 2 * r.size_bytes

    def test_is_home_true_only_for_owner(self):
        placement = PagePlacement(4, PAGE)
        r = texture_resource(0, 2 * PAGE)
        placement.place_fixed(r, 1)
        placement.replicate(r, [2])
        assert placement.is_home(r, 1)
        assert not placement.is_home(r, 2)
        assert not placement.is_home(r, 0)

    def test_preallocate_unplaced_is_free(self):
        placement = PagePlacement(4, PAGE)
        r = texture_resource(0, 4 * PAGE)
        assert placement.preallocate(r, 2) == 0.0
        assert placement.local_fraction(r, 2) == 1.0

    def test_preallocate_copies_missing_pages(self):
        placement = PagePlacement(4, PAGE)
        r = texture_resource(0, 4 * PAGE)
        placement.place_fixed(r, 0)
        copied = placement.preallocate(r, 1)
        assert copied == 4 * PAGE
        assert placement.local_fraction(r, 1) == 1.0

    def test_preallocate_idempotent(self):
        placement = PagePlacement(4, PAGE)
        r = texture_resource(0, 4 * PAGE)
        placement.place_fixed(r, 0)
        placement.preallocate(r, 1)
        assert placement.preallocate(r, 1) == 0.0

    def test_reset_forgets(self):
        placement = PagePlacement(4, PAGE)
        r = texture_resource(0, PAGE)
        placement.place_fixed(r, 0)
        placement.reset()
        assert not placement.is_placed(r)
        assert placement.total_resident_bytes == 0.0


class TestSetAssociativeCache:
    def test_first_access_misses_then_hits(self):
        cache = SetAssociativeCache(1024, 2, 64)
        assert not cache.access(0)
        assert cache.access(0)

    def test_same_line_hits(self):
        cache = SetAssociativeCache(1024, 2, 64)
        cache.access(0)
        assert cache.access(63)

    def test_lru_eviction(self):
        # 2 ways, 1 set: third distinct line evicts the least recent.
        cache = SetAssociativeCache(128, 2, 64)
        cache.access(0)
        cache.access(64)
        cache.access(128)  # evicts line 0
        assert not cache.access(0)

    def test_lru_order_updated_on_hit(self):
        cache = SetAssociativeCache(128, 2, 64)
        cache.access(0)
        cache.access(64)
        cache.access(0)  # 0 becomes MRU
        cache.access(128)  # evicts 64, not 0
        assert cache.access(0)

    def test_access_range_counts_lines(self):
        cache = SetAssociativeCache(8 * KB, 4, 64)
        misses = cache.access_range(0, 640)
        assert misses == 10

    def test_working_set_fits_no_capacity_misses(self):
        cache = SetAssociativeCache(8 * KB, 8, 64)
        cache.access_range(0, 4 * KB)
        cache.reset_stats()
        cache.access_range(0, 4 * KB)
        assert cache.misses == 0

    def test_thrash_when_oversized(self):
        cache = SetAssociativeCache(1 * KB, 4, 64)
        for _ in range(3):
            cache.access_range(0, 8 * KB)
        assert cache.hit_rate < 0.2

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 3, 64)

    def test_flush(self):
        cache = SetAssociativeCache(1024, 2, 64)
        cache.access(0)
        cache.flush()
        assert cache.resident_lines == 0


class TestAnalyticCacheModel:
    def test_fits_means_compulsory_only(self):
        # Working set fits: hit rate = 1 - 1/reuse.
        assert working_set_hit_rate(1000, 10_000, reuse_factor=4) == pytest.approx(
            0.75
        )

    def test_oversized_decays(self):
        fits = working_set_hit_rate(1000, 10_000, 4)
        thrash = working_set_hit_rate(100_000, 10_000, 4)
        assert thrash < fits

    def test_zero_cache_never_hits(self):
        assert working_set_hit_rate(1000, 0, 4) == 0.0

    def test_empty_stream_hits(self):
        assert working_set_hit_rate(0, 1024, 4) == 1.0

    def test_miss_bytes_bounded(self):
        stream, unique, cache = 10_000.0, 2_000.0, 4_000.0
        out = miss_bytes(stream, unique, cache)
        assert unique <= out <= stream

    def test_miss_bytes_equals_unique_when_fits(self):
        assert miss_bytes(8_000.0, 2_000.0, 1e9) == pytest.approx(2_000.0)

    def test_analytic_matches_exact_direction(self):
        """The analytic curve agrees with the exact simulator's ordering."""
        small = SetAssociativeCache(2 * KB, 4, 64)
        large = SetAssociativeCache(64 * KB, 4, 64)
        for cache in (small, large):
            for _ in range(4):
                cache.access_range(0, 16 * KB)
        assert large.hit_rate > small.hit_rate
        analytic_small = working_set_hit_rate(16 * KB, 2 * KB, 4)
        analytic_large = working_set_hit_rate(16 * KB, 64 * KB, 4)
        assert analytic_large > analytic_small

    def test_cache_stats_accumulate(self):
        stats = CacheStats()
        stats.record(100, 0.8)
        stats.record(100, 0.6)
        assert stats.hit_rate == pytest.approx(0.7)


class TestDram:
    def test_read_time(self):
        dram = DramTracker(bytes_per_cycle=1000.0)
        assert dram.read(5000.0) == pytest.approx(5.0)

    def test_totals(self):
        dram = DramTracker(1000.0)
        dram.read(100.0)
        dram.write(200.0)
        dram.serve_remote(300.0)
        assert dram.total_bytes == 600.0
        assert dram.busy_cycles() == pytest.approx(0.6)

    def test_reset(self):
        dram = DramTracker(1000.0)
        dram.read(100.0)
        dram.reset()
        assert dram.total_bytes == 0.0

    def test_make_trackers(self):
        assert len(make_trackers(4, 1000.0)) == 4


class TestLinkFabric:
    def test_transfer_time_includes_latency(self):
        fabric = LinkFabric(4, 64.0, latency_cycles=120)
        cycles = fabric.transfer(0, 1, 6400.0, TrafficType.TEXTURE)
        assert cycles == pytest.approx(100.0 + 120.0)

    def test_self_transfer_free(self):
        fabric = LinkFabric(4, 64.0)
        assert fabric.transfer(1, 1, 1e6, TrafficType.TEXTURE) == 0.0
        assert fabric.total_bytes == 0.0

    def test_traffic_taxonomy(self):
        fabric = LinkFabric(4, 64.0)
        fabric.transfer(0, 1, 100.0, TrafficType.TEXTURE)
        fabric.transfer(0, 1, 50.0, TrafficType.COMPOSITION)
        by_type = fabric.bytes_by_type()
        assert by_type[TrafficType.TEXTURE] == 100.0
        assert by_type[TrafficType.COMPOSITION] == 50.0

    def test_directional_accounting(self):
        fabric = LinkFabric(4, 64.0)
        fabric.transfer(0, 1, 100.0, TrafficType.TEXTURE)
        assert fabric.bytes_between(0, 1) == 100.0
        assert fabric.bytes_between(1, 0) == 0.0

    def test_incoming_outgoing(self):
        fabric = LinkFabric(4, 64.0)
        fabric.transfer(0, 1, 100.0, TrafficType.TEXTURE)
        fabric.transfer(2, 1, 50.0, TrafficType.TEXTURE)
        assert fabric.incoming_bytes(1) == 150.0
        assert fabric.outgoing_bytes(0) == 100.0

    def test_busiest_pair(self):
        fabric = LinkFabric(4, 64.0)
        fabric.transfer(0, 1, 640.0, TrafficType.TEXTURE)
        fabric.transfer(0, 2, 64.0, TrafficType.TEXTURE)
        assert fabric.busiest_pair_cycles() == pytest.approx(10.0)

    def test_energy(self):
        fabric = LinkFabric(4, 64.0)
        fabric.transfer(0, 1, 1000.0, TrafficType.TEXTURE)
        assert fabric.energy_picojoules(10.0) == pytest.approx(80_000.0)

    def test_out_of_range_gpm_rejected(self):
        fabric = LinkFabric(2, 64.0)
        with pytest.raises(ValueError):
            fabric.transfer(0, 5, 10.0, TrafficType.TEXTURE)


class TestRemoteCache:
    def test_compulsory_bytes_always_cross(self):
        cache = RemoteCache(512 * KB)
        crossing = cache.filter(stream_bytes=1000.0, unique_bytes=1000.0)
        assert crossing == pytest.approx(1000.0)

    def test_zero_capacity_passthrough(self):
        cache = RemoteCache(0.0)
        assert cache.filter(5000.0, 100.0) == 5000.0

    def test_reuse_filtered_when_fits(self):
        cache = RemoteCache(512 * KB, effectiveness=1.0)
        crossing = cache.filter(stream_bytes=64 * KB, unique_bytes=8 * KB)
        assert crossing < 64 * KB

    def test_large_working_set_not_filtered(self):
        cache = RemoteCache(512 * KB, effectiveness=0.06)
        stream = 64.0 * MB
        crossing = cache.filter(stream, 16.0 * MB)
        assert crossing > 0.9 * stream

    def test_hit_rate_tracking(self):
        cache = RemoteCache(512 * KB, effectiveness=1.0)
        cache.filter(64 * KB, 8 * KB)
        assert 0.0 < cache.hit_rate < 1.0
        cache.reset()
        assert cache.hit_rate == 0.0
