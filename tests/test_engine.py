"""The pluggable execution-engine layer (repro.engine).

Covers the engine interface and both implementations, the selection
plumbing (config, spec, session, variant grammar, cache key), the
conservation guarantees between engines, and the contention study.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import ConfigError, baseline_system
from repro.engine import (
    ENGINE_DEFAULT,
    ENGINE_NAMES,
    AnalyticEngine,
    EngineError,
    EventEngine,
    build_engine,
    classify_bottleneck,
    validate_engine_name,
)
from repro.frameworks.base import build_framework
from repro.gpu.system import MultiGPUSystem
from repro.pipeline.characterize import DrawCharacterizer
from repro.pipeline.smp import SMPMode
from repro.scene.scene import Scene
from repro.session import Session, SessionError, Sweep
from repro.session.cache import ResultCache, config_fingerprint, spec_key
from repro.session.spec import FAST, RunSpec, SpecError
from tests.conftest import MB, make_object


def unit_for(characterizer, pool, object_id=0, **kwargs):
    return characterizer.characterize(
        make_object(object_id, pool, **kwargs).multiview_draw(),
        mode=SMPMode.SIMULTANEOUS,
    )


@pytest.fixture
def characterizer(config):
    return DrawCharacterizer(config)


def fast_scene(workload="HL2-640"):
    from repro.session.spec import cached_scene

    return cached_scene(workload, 2, 2019, 0.15)


# ---------------------------------------------------------------------------
# Registry and selection plumbing
# ---------------------------------------------------------------------------


class TestEngineSelection:
    def test_registry_names(self):
        assert ENGINE_DEFAULT == "analytic"
        assert set(ENGINE_NAMES) == {"analytic", "event"}
        with pytest.raises(EngineError):
            validate_engine_name("bogus")

    def test_system_builds_configured_engine(self, config):
        assert isinstance(MultiGPUSystem(config).engine, AnalyticEngine)
        event_system = MultiGPUSystem(config.with_engine("event"))
        assert isinstance(event_system.engine, EventEngine)

    def test_config_rejects_unknown_engine(self, config):
        with pytest.raises(ConfigError):
            replace(config, engine="bogus").validate()

    def test_build_engine_rejects_unknown(self, config):
        with pytest.raises(EngineError):
            build_engine("bogus", MultiGPUSystem(config))

    def test_runspec_engine_validation(self):
        spec = RunSpec(framework="baseline", workload="WE", engine="event")
        assert spec.validate() is spec
        with pytest.raises(SpecError):
            RunSpec(
                framework="baseline", workload="WE", engine="bogus"
            ).validate()

    def test_session_engine_knob(self):
        spec = (
            Session()
            .framework("baseline")
            .workload("WE")
            .fast()
            .engine("event")
            .spec()
        )
        assert spec.engine == "event"
        with pytest.raises(SessionError):
            Session().engine("bogus")

    def test_sweep_engine_knob(self):
        specs = (
            Sweep()
            .frameworks("baseline")
            .workloads("WE")
            .fast()
            .engine("event")
            .specs()
        )
        assert all(spec.engine == "event" for spec in specs)

    def test_variant_grammar_selects_engine(self):
        framework = build_framework("oo-vr:engine=event")
        assert framework.config.engine == "event"
        assert framework.name == "oo-vr:engine=event"
        # Stacks with other wrapper modifiers on any base.
        framework = build_framework("baseline:topo=ring:engine=event")
        assert framework.config.engine == "event"
        with pytest.raises(KeyError):
            build_framework("baseline:engine=bogus")

    def test_session_run_applies_engine(self):
        session = (
            Session()
            .framework("baseline")
            .workload("HL2-640")
            .frames(1)
            .scale(0.1)
            .engine("event")
        )
        session.run()
        assert session.last_framework.config.engine == "event"
        trace = session.last_framework.last_system.last_trace
        assert trace is not None and trace.engine == "event"

    def test_runspec_execute_applies_engine(self):
        spec = RunSpec(
            framework="baseline",
            workload="HL2-640",
            num_frames=1,
            draw_scale=0.1,
            engine="event",
        ).validate()
        assert spec.build().config.engine == "event"
        result = spec.execute()
        assert result.single_frame_cycles > 0

    def test_records_carry_engine_only_in_mixed_sweeps(self):
        grid = (
            Sweep()
            .frameworks("baseline")
            .workloads("HL2-640")
            .frames(1)
            .scale(0.1)
        )
        analytic = grid.run()
        assert "engine" not in analytic.to_records()[0]
        event = (
            Sweep()
            .frameworks("baseline")
            .workloads("HL2-640")
            .frames(1)
            .scale(0.1)
            .engine("event")
            .run()
        )
        record = event.to_records()[0]
        assert record["engine"] == "event"
        assert event.select(engine="event").results == event.results
        assert len(event.select(engine="analytic")) == 0
        with pytest.raises(KeyError):
            event.select(enigne="event")

    def test_effective_engine_sees_variant_and_config_selection(self):
        variant = RunSpec(framework="oo-vr:engine=event", workload="WE")
        assert variant.effective_engine == "event"
        config = RunSpec(
            framework="baseline",
            workload="WE",
            config=baseline_system().with_engine("event"),
        )
        assert config.effective_engine == "event"
        # An explicit field — even "analytic" — wins over both, so the
        # paper's model can be forced back onto an :engine=event
        # variant (oovr run ... --engine analytic).
        forced = replace(variant, engine="analytic")
        assert forced.effective_engine == "analytic"
        assert forced.build().config.engine == "analytic"
        plain = RunSpec(framework="baseline", workload="WE")
        assert plain.effective_engine == "analytic"
        # Mixed sweeps spelled through the variant grammar also get
        # the provenance column.
        mixed = (
            Sweep()
            .frameworks("baseline", "baseline:engine=event")
            .workloads("HL2-640")
            .frames(1)
            .scale(0.1)
            .run()
        )
        records = mixed.to_records()
        assert [r["engine"] for r in records] == ["analytic", "event"]
        assert len(mixed.select(engine="event")) == 1


# ---------------------------------------------------------------------------
# Cache-key stability
# ---------------------------------------------------------------------------


class TestEngineCacheKey:
    #: Key of (oo-vr:no-dhc, HL2-1280, fast, default config) computed by
    #: the pre-engine cache code — the engine layer must not move
    #: existing analytic entries.
    GOLDEN_SPEC = RunSpec(
        framework="oo-vr:no-dhc",
        workload="HL2-1280",
        num_frames=2,
        seed=2019,
        draw_scale=0.15,
    )
    GOLDEN_KEY = (
        "29fe11ab625742fd80165f95a828a51175f835b4512f5a7dae755ff40e1263ca"
    )

    def test_analytic_keys_unchanged_from_pre_engine_cache(self):
        assert spec_key(self.GOLDEN_SPEC) == self.GOLDEN_KEY

    def test_event_engine_changes_the_key(self):
        assert (
            spec_key(replace(self.GOLDEN_SPEC, engine="event"))
            != self.GOLDEN_KEY
        )

    def test_analytic_override_never_collides_with_event_cell(self):
        # An :engine=event variant cell and the same cell forced back
        # to analytic price differently, so they must cache apart.
        variant = RunSpec(framework="oo-vr:engine=event", workload="WE")
        forced = replace(variant, engine="analytic")
        assert variant.effective_engine != forced.effective_engine
        assert spec_key(variant) != spec_key(forced)
        # Forcing analytic restores the plain cell's pricing but keeps
        # its own key (the framework name is part of the identity).
        config_event = RunSpec(
            framework="baseline",
            workload="WE",
            config=baseline_system().with_engine("event"),
        )
        assert spec_key(config_event) != spec_key(
            replace(config_event, engine="analytic")
        )

    def test_default_engine_elided_from_config_fingerprint(self):
        spec = replace(self.GOLDEN_SPEC, config=baseline_system())
        assert "engine" not in config_fingerprint(spec)
        event_cfg = baseline_system().with_engine("event")
        fingerprint = config_fingerprint(replace(spec, config=event_cfg))
        assert fingerprint["engine"] == "event"

    def test_config_engine_changes_the_key(self):
        base = replace(self.GOLDEN_SPEC, config=baseline_system())
        event = replace(
            self.GOLDEN_SPEC, config=baseline_system().with_engine("event")
        )
        assert spec_key(base) != spec_key(event)

    def test_cache_round_trips_event_results(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec(
            framework="baseline",
            workload="HL2-640",
            num_frames=1,
            draw_scale=0.1,
            engine="event",
        ).validate()
        result = spec.execute()
        cache.put(spec, result)
        again = cache.get(spec)
        assert again is not None
        assert again.to_dict() == result.to_dict()
        # The analytic twin is a different cell entirely.
        assert cache.get(replace(spec, engine="analytic")) is None


# ---------------------------------------------------------------------------
# Bottleneck classification (deterministic tie-breaking)
# ---------------------------------------------------------------------------


class TestBottleneckTieBreaking:
    def test_link_wins_dram_tie(self):
        # Equal dram/link cycles, both above compute: link by precedence.
        assert classify_bottleneck(10.0, 50.0, 50.0, 50.0, "fragment") == "link"

    def test_dram_wins_when_strictly_slowest(self):
        assert classify_bottleneck(10.0, 50.0, 20.0, 50.0, "fragment") == "dram"

    def test_compute_wins_exact_memory_tie(self):
        # Memory exactly equal to compute: the compute stage is charged.
        assert (
            classify_bottleneck(50.0, 50.0, 50.0, 50.0, "texture") == "texture"
        )

    def test_compute_bottleneck_passthrough(self):
        assert classify_bottleneck(50.0, 1.0, 2.0, 50.0, "vertex") == "vertex"

    def test_execution_matches_classifier(self, config, characterizer, pool):
        system = MultiGPUSystem(config)
        system.begin_frame()
        unit = unit_for(characterizer, pool)
        for touch in unit.texture_touches:
            system.placement.place_fixed(touch.resource, 1)
        execution = system.execute_unit(unit, 0, fb_targets={0: 1.0})
        assert execution.bottleneck == classify_bottleneck(
            execution.compute_cycles,
            execution.local_dram_cycles,
            execution.link_cycles,
            execution.cycles,
            execution.bottleneck,
        )


# ---------------------------------------------------------------------------
# Hop matrix
# ---------------------------------------------------------------------------


class TestHopMatrix:
    def test_base_fabric_hops(self, config):
        fabric = MultiGPUSystem(config).fabric
        assert fabric.hops(0, 0) == 0
        assert fabric.hops(0, 3) == 1
        assert fabric.route(1, 2) == [(1, 2)]

    def test_routed_fabric_matrix_matches_routes(self, config):
        from repro.extensions.topology import Topology, install_topology

        system = MultiGPUSystem(config)
        install_topology(system, Topology.RING)
        fabric = system.fabric
        for src in range(4):
            for dst in range(4):
                assert fabric.hops(src, dst) == len(fabric.route(src, dst))
        # Opposite corners of a 4-ring are two hops apart.
        assert fabric.hops(0, 2) == 2

    def test_switch_routes_are_two_hops(self, config):
        from repro.extensions.topology import Topology, install_topology

        system = MultiGPUSystem(config)
        install_topology(system, Topology.SWITCH)
        assert system.fabric.hops(0, 3) == 2
        assert system.fabric.route(0, 3) == [(0, 4), (4, 3)]


# ---------------------------------------------------------------------------
# Analytic engine traces
# ---------------------------------------------------------------------------


class TestAnalyticTrace:
    def test_trace_mirrors_gpm_state(self, config, characterizer, pool):
        system = MultiGPUSystem(config)
        system.begin_frame()
        units = [unit_for(characterizer, pool, i) for i in range(4)]
        system.run_queues([[units[0]], [units[1]], [units[2]], [units[3]]])
        result = system.frame_result("t", "w")
        trace = system.last_trace
        assert trace is not None and trace.engine == "analytic"
        assert list(trace.gpm_busy) == [g.busy_cycles for g in system.gpms]
        assert trace.render_critical_path == max(
            g.ready_at for g in system.gpms
        )
        assert result.cycles >= trace.render_critical_path
        assert len(trace.intervals) == 4
        assert all(span.kind == "render" for span in trace.intervals)

    def test_stall_and_steal_intervals(self, config):
        system = MultiGPUSystem(config)
        system.begin_frame()
        engine = system.engine
        engine.stall(0, "stage", 100.0)
        engine.steal_into(1, 0, "steal-from-1", 50.0, 640.0)
        trace = engine.finish_frame()
        kinds = {span.kind for span in trace.intervals}
        assert kinds == {"stall", "steal"}
        assert system.gpms[0].ready_at == pytest.approx(150.0)
        from repro.memory.link import TrafficType

        assert system.fabric.bytes_by_type()[TrafficType.STEAL] == 640.0

    def test_shed_tail_rewinds_clock(self, config):
        system = MultiGPUSystem(config)
        system.begin_frame()
        engine = system.engine
        engine.stall(2, "work", 200.0)
        engine.shed_tail(2, 60.0)
        assert system.gpms[2].ready_at == pytest.approx(140.0)
        assert system.gpms[2].busy_cycles == pytest.approx(140.0)

    def test_shed_tail_clips_trace_intervals(self, config):
        system = MultiGPUSystem(config)
        system.begin_frame()
        engine = system.engine
        engine.stall(2, "a", 100.0)
        engine.stall(2, "b", 100.0)
        engine.shed_tail(2, 120.0)  # drops "b", clips "a" to 80
        trace = engine.finish_frame()
        spans = trace.intervals_for(2)
        assert [span.label for span in spans] == ["a"]
        assert spans[0].end == pytest.approx(80.0)
        assert spans[0].end <= trace.gpm_end[2]

    def test_analytic_trace_consistent_after_stealing(self):
        """Regression: stolen tails used to leave overrunning intervals."""
        from repro.core.oovr import OOVRFramework
        from repro.scene.benchmarks import make_benchmark_scene

        framework = OOVRFramework()
        framework.render_scene(
            make_benchmark_scene("HL2-640", num_frames=2, draw_scale=0.05)
        )
        trace = framework.last_system.last_trace
        for gpm in range(trace.num_gpms):
            for span in trace.intervals_for(gpm):
                if span.kind == "compose":
                    # The composition barrier runs after the render
                    # lane drains; it is bounded by the frame, not by
                    # the GPM's render end.
                    assert span.end <= trace.frame_cycles + 1e-6
                    continue
                assert span.end <= trace.gpm_end[gpm] + 1e-6

    def test_next_idle_prefers_lowest_id_on_ties(self, config):
        system = MultiGPUSystem(config)
        system.begin_frame()
        assert system.engine.next_idle() == 0
        system.engine.stall(0, "w", 10.0)
        assert system.engine.next_idle() == 1

    def test_completion_callbacks_fire_in_order(
        self, config, characterizer, pool
    ):
        system = MultiGPUSystem(config)
        system.begin_frame()
        seen = []
        system.engine.on_complete(
            lambda resolved, execution: seen.append(
                (resolved.label, execution.cycles)
            )
        )
        unit = unit_for(characterizer, pool)
        execution = system.execute_unit(unit, 0, fb_targets={0: 1.0})
        assert seen == [(unit.label, execution.cycles)]
        # begin_frame drops subscriptions.
        system.begin_frame()
        system.execute_unit(unit, 0, fb_targets={0: 1.0})
        assert len(seen) == 1


# ---------------------------------------------------------------------------
# Event engine
# ---------------------------------------------------------------------------


class TestEventEngine:
    def test_conservation_single_gpm(self):
        """Acceptance: contention-free single-GPM totals match exactly."""
        scene = fast_scene()
        cfg = baseline_system(num_gpms=1)
        analytic = build_framework("baseline", cfg).render_scene(scene)
        event = build_framework(
            "baseline", cfg.with_engine("event")
        ).render_scene(scene)
        for a_frame, e_frame in zip(analytic.frames, event.frames):
            # Per-GPM busy cycles conserved...
            assert e_frame.gpm_busy_cycles[0] == pytest.approx(
                a_frame.gpm_busy_cycles[0], rel=1e-9
            )
            # ... and per-link transferred bytes (none on one GPM, and
            # byte accounting is engine-independent by construction).
            assert e_frame.inter_gpm_bytes == a_frame.inter_gpm_bytes == 0.0
            assert list(e_frame.dram_bytes) == list(a_frame.dram_bytes)

    @pytest.mark.parametrize("framework", ["baseline", "oo-vr", "tile-v"])
    def test_traffic_identical_across_engines(self, framework):
        """Binding is shared: every byte counter agrees between engines."""
        scene = fast_scene()
        cfg = baseline_system()
        analytic = build_framework(framework, cfg).render_scene(scene)
        event = build_framework(
            framework, cfg.with_engine("event")
        ).render_scene(scene)
        for a_frame, e_frame in zip(analytic.frames, event.frames):
            assert e_frame.traffic.by_type == a_frame.traffic.by_type
            assert list(e_frame.dram_bytes) == list(a_frame.dram_bytes)
            assert e_frame.resident_bytes == a_frame.resident_bytes

    def test_uncontended_matches_analytic_price(
        self, config, characterizer, pool
    ):
        """A lone unit drains in exactly the analytic roofline time."""
        system = MultiGPUSystem(config.with_engine("event"))
        system.begin_frame()
        unit = unit_for(characterizer, pool)
        execution = system.execute_unit(unit, 0, fb_targets={0: 1.0})
        trace = system.engine.finish_frame()
        assert trace.engine == "event"
        assert trace.gpm_end[0] == pytest.approx(execution.cycles, rel=1e-9)
        assert trace.gpm_busy[0] == pytest.approx(execution.cycles, rel=1e-9)

    def test_peer_dram_contention_stretches_frames(
        self, characterizer, pool
    ):
        """Two GPMs streaming from one owner DRAM time-share it."""
        from repro.config import GPMConfig

        cfg = baseline_system()
        starved = replace(
            cfg, gpm=replace(cfg.gpm, dram_bytes_per_cycle=2.0)
        )
        analytic_sys = MultiGPUSystem(starved)
        event_sys = MultiGPUSystem(starved.with_engine("event"))
        for system in (analytic_sys, event_sys):
            system.begin_frame()
            units = [
                unit_for(
                    DrawCharacterizer(starved), pool, i, w=800.0, h=600.0
                )
                for i in range(2)
            ]
            # Both units read textures owned by GPM 0's DRAM.
            for unit in units:
                for touch in unit.texture_touches:
                    if not system.placement.is_placed(touch.resource):
                        system.placement.place_fixed(touch.resource, 0)
            system.execute_unit(units[0], 1, fb_targets={1: 1.0})
            system.execute_unit(units[1], 2, fb_targets={2: 1.0})
        analytic_cp = analytic_sys.frame_result("a", "w").cycles
        event_cp = event_sys.frame_result("e", "w").cycles
        # The analytic model never bills the owner's DRAM; the event
        # engine shares its 2 B/cycle between both remote streams.
        assert event_cp > analytic_cp * 1.05

    def test_switch_contention_stretches_frames(self, characterizer, pool):
        """Flows sharing a switch port queue up under the event engine."""
        scene = fast_scene()
        cfg = baseline_system().with_link_bandwidth(16.0)
        analytic = build_framework("baseline:topo=switch", cfg).render_scene(
            scene
        )
        event = build_framework(
            "baseline:topo=switch:engine=event", cfg
        ).render_scene(scene)
        assert (
            event.single_frame_cycles
            > analytic.single_frame_cycles * 1.2
        )

    def test_uncontended_multi_hop_matches_analytic_price(
        self, characterizer, pool
    ):
        """Hop serialisation matches the analytic bytes x hops charge."""
        from repro.extensions.topology import Topology, install_topology

        cfg = baseline_system()
        executions = {}
        ends = {}
        for engine_name in ("analytic", "event"):
            system = MultiGPUSystem(cfg.with_engine(engine_name))
            install_topology(system, Topology.SWITCH)
            system.begin_frame()
            unit = unit_for(characterizer, pool, w=800.0, h=600.0)
            for touch in unit.texture_touches:
                system.placement.place_fixed(touch.resource, 1)
            executions[engine_name] = system.execute_unit(
                unit, 0, fb_targets={0: 1.0}
            )
            ends[engine_name] = system.engine.finish_frame().gpm_end[0]
        assert executions["analytic"].bottleneck == "link"
        assert ends["event"] == pytest.approx(
            executions["analytic"].cycles, rel=1e-9
        )

    def test_event_engine_deterministic(self):
        scene = fast_scene()
        cfg = baseline_system().with_engine("event")
        first = build_framework("oo-vr", cfg).render_scene(scene)
        second = build_framework("oo-vr", cfg).render_scene(scene)
        assert first.to_dict() == second.to_dict()

    def test_start_floor_delays_job(self, config, characterizer, pool):
        system = MultiGPUSystem(config.with_engine("event"))
        system.begin_frame()
        unit = unit_for(characterizer, pool)
        execution = system.execute_unit(
            unit, 0, fb_targets={0: 1.0}, start_at=5000.0
        )
        trace = system.engine.finish_frame()
        span = trace.intervals_for(0)[0]
        assert span.start == pytest.approx(5000.0)
        assert trace.gpm_end[0] == pytest.approx(
            5000.0 + execution.cycles, rel=1e-9
        )
        # Busy time excludes the idle wait.
        assert trace.gpm_busy[0] == pytest.approx(execution.cycles, rel=1e-9)

    def test_zero_demand_job_does_not_block_its_gpm(self, config):
        """An instantaneous unit hands the GPM on in the same window."""
        system = MultiGPUSystem(config.with_engine("event"))
        system.begin_frame()
        engine = system.engine
        engine.stall(1, "long", 1000.0)
        engine.stall(0, "instant", 0.0)
        engine.stall(0, "short", 100.0)
        trace = engine.finish_frame()
        assert trace.gpm_end[0] == pytest.approx(100.0)
        assert trace.gpm_end[1] == pytest.approx(1000.0)

    def test_finish_frame_is_repeatable(self, config, characterizer, pool):
        system = MultiGPUSystem(config.with_engine("event"))
        system.begin_frame()
        system.execute_unit(
            unit_for(characterizer, pool), 0, fb_targets={0: 1.0}
        )
        first = system.engine.finish_frame()
        second = system.engine.finish_frame()
        assert first.to_dict() == second.to_dict()

    def test_trace_exports(self, config, characterizer, pool):
        system = MultiGPUSystem(config.with_engine("event"))
        system.begin_frame()
        unit = unit_for(characterizer, pool)
        system.placement.place_fixed(
            unit.texture_touches[0].resource, 1
        )
        system.execute_unit(unit, 0, fb_targets={0: 1.0})
        trace = system.engine.finish_frame()
        data = trace.to_dict()
        assert data["engine"] == "event"
        assert data["num_gpms"] == 4
        assert data["intervals"][0]["kind"] == "render"
        assert trace.link_bytes()[(1, 0)] > 0
        assert 0.0 <= trace.utilisation(0) <= 1.0


# ---------------------------------------------------------------------------
# Full-frame engine coverage: staging and composition phases
# ---------------------------------------------------------------------------


def _event_trace_summary(framework, workload="HL2-640"):
    """The fixed-spec trace summary the committed goldens freeze."""
    session = (
        Session()
        .framework(framework)
        .workload(workload)
        .frames(1)
        .scale(0.1)
        .engine("event")
    )
    session.run()
    return session.last_framework.last_system.last_trace.phase_summary()


def regenerate_event_golden():  # pragma: no cover - maintenance helper
    """Rewrite the event-engine goldens after a *deliberate* change.

    Run from the repo root::

        PYTHONPATH=src:. python -c \
            "from tests.test_engine import regenerate_event_golden; \
             regenerate_event_golden()"
    """
    import json
    import pathlib

    golden = pathlib.Path(__file__).parent.parent / "benchmarks" / "golden"
    for framework, stem in (
        ("oo-vr", "event_trace_oovr"),
        ("oo-app", "event_trace_ooapp"),
    ):
        path = golden / f"{stem}_hl2-640.json"
        path.write_text(
            json.dumps(
                _event_trace_summary(framework), indent=2, sort_keys=True
            )
            + "\n"
        )
        print(f"wrote {path}")


class TestFullFrameCoverage:
    """Staging and composition are engine-priced phases, both engines."""

    @pytest.mark.parametrize("framework", ["object", "oo-vr"])
    def test_single_gpm_conservation(self, framework):
        """Acceptance: per-phase bytes agree and phase cycles conserve.

        On one GPM nothing crosses a link, so both engines must report
        identical (all-zero) per-phase byte totals, and the event
        engine's phase decomposition must sum exactly to the frame
        latency it reports.
        """
        scene = fast_scene()
        cfg = baseline_system(num_gpms=1)
        outcomes = {}
        for engine_name in ("analytic", "event"):
            framework_obj = build_framework(
                framework, cfg.with_engine(engine_name)
            )
            result = framework_obj.render_scene(scene)
            outcomes[engine_name] = (
                result,
                framework_obj.last_system.last_trace,
            )
        a_trace = outcomes["analytic"][1]
        e_trace = outcomes["event"][1]
        assert dict(a_trace.phase_link_bytes) == dict(e_trace.phase_link_bytes)
        assert all(v == 0.0 for v in e_trace.phase_link_bytes.values())
        e_result = outcomes["event"][0]
        phases = e_trace.phase_cycles()
        assert set(phases) == {"render", "staging", "composition"}
        assert sum(phases.values()) == pytest.approx(
            e_result.frames[-1].cycles, rel=1e-12
        )
        # With a lone GPM there is nothing to contend with: the event
        # engine's composition barrier equals the analytic price too.
        assert e_trace.composition_cycles == pytest.approx(
            a_trace.composition_cycles, rel=1e-9
        )

    @pytest.mark.parametrize("framework", ["object", "oo-app", "oo-vr", "tile-v"])
    def test_phase_bytes_identical_across_engines(self, framework):
        """Flow accounting is shared: per-phase bytes never diverge."""
        scene = fast_scene()
        cfg = baseline_system()
        traces = {}
        results = {}
        for engine_name in ("analytic", "event"):
            framework_obj = build_framework(
                framework, cfg.with_engine(engine_name)
            )
            results[engine_name] = framework_obj.render_scene(scene)
            traces[engine_name] = framework_obj.last_system.last_trace
        assert dict(traces["analytic"].phase_link_bytes) == dict(
            traces["event"].phase_link_bytes
        )
        # Phase totals tile the fabric's frame total exactly: the trace
        # accounts every byte the fabric counted, no more, no less.
        last_frame_total = sum(traces["analytic"].phase_link_bytes.values())
        assert last_frame_total == pytest.approx(
            results["analytic"].frames[-1].inter_gpm_bytes, rel=1e-9
        )

    def test_event_phase_cycles_conserve_multi_gpm(self):
        """The phase decomposition sums to the frame on any machine."""
        for framework in ("oo-app", "oo-vr", "tile-v"):
            framework_obj = build_framework(
                framework, baseline_system().with_engine("event")
            )
            result = framework_obj.render_scene(fast_scene())
            trace = framework_obj.last_system.last_trace
            assert sum(trace.phase_cycles().values()) == pytest.approx(
                result.frames[-1].cycles, rel=1e-12
            )

    def test_pa_copies_become_background_stage_lane(self):
        """OO-VR's PA flows show up as a stage lane, not GPM time."""
        framework = build_framework(
            "oo-vr", baseline_system().with_engine("event")
        )
        framework.render_scene(fast_scene())
        trace = framework.last_system.last_trace
        stage_spans = [s for s in trace.intervals if s.kind == "stage"]
        assert stage_spans, "PA copies should appear as background flows"
        # Background copies do not occupy the GPM: busy excludes them.
        for gpm in range(trace.num_gpms):
            lane = sum(
                s.cycles
                for s in trace.intervals_for(gpm)
                if s.kind in ("render", "stall", "steal")
            )
            assert trace.gpm_busy[gpm] == pytest.approx(lane, rel=1e-9)
        assert trace.phase_link_bytes["staging"] > 0

    def test_software_staging_stall_is_a_wire_flow(
        self, config, characterizer, pool
    ):
        """A staging stall lasts its analytic price uncontended."""
        from repro.gpu.staging import StagingManager

        ends = {}
        for engine_name in ("analytic", "event"):
            system = MultiGPUSystem(config.with_engine(engine_name))
            system.begin_frame()
            unit = unit_for(characterizer, pool)
            staging = StagingManager(system)
            staging.stage_unit(unit, 1)  # first touch: home, free
            outcome = staging.stage_unit(unit, 2)  # real copy
            assert outcome.stall_cycles > 0
            ends[engine_name] = system.engine.finish_frame().gpm_end[2]
        assert ends["event"] == pytest.approx(ends["analytic"], rel=1e-9)

    @pytest.mark.parametrize("prefetched", [False, True])
    def test_staging_copies_are_hop_blind_uncontended(
        self, config, characterizer, pool, prefetched
    ):
        """Copies drain at the analytic rate on routed fabrics too.

        The analytic copy model is hop-blind (a pipelined DMA stream at
        raw link bandwidth), so an uncontended event-engine staging
        flow must last exactly the analytic stall/copy time even when
        its route crosses a 2-hop switch — regression for the rate
        being hop-serialised like render flows.
        """
        from repro.extensions.topology import Topology, install_topology
        from repro.gpu.staging import StagingManager

        spans = {}
        stalls = {}
        for engine_name in ("analytic", "event"):
            system = MultiGPUSystem(config.with_engine(engine_name))
            install_topology(system, Topology.SWITCH)
            system.begin_frame()
            unit = unit_for(characterizer, pool)
            staging = StagingManager(system, prefetched=prefetched)
            staging.stage_unit(unit, 1)  # first touch: home, free
            outcome = staging.stage_unit(unit, 2)  # real 2-hop copy
            assert outcome.copied_bytes > 0
            stalls[engine_name] = outcome.stall_cycles
            trace = system.engine.finish_frame()
            spans[engine_name] = trace
        assert stalls["event"] == stalls["analytic"]
        if prefetched:
            # The background copy drains in bytes/link_bw, the rate the
            # scheduling clock's PA landing time assumes.
            stage = [
                s for s in spans["event"].intervals if s.kind == "stage"
            ]
            assert len(stage) == 1
            copied = stage[0].cycles * config.link.bytes_per_cycle
            # Phase byte totals are logical (each copy counted once,
            # like the routed fabric's per-type counters).
            assert copied == pytest.approx(
                spans["event"].phase_link_bytes["staging"], rel=1e-9
            )
        else:
            assert spans["event"].gpm_end[2] == pytest.approx(
                spans["analytic"].gpm_end[2], rel=1e-9
            )

    def test_composition_lanes_render_both_engines(self):
        """`oovr run --engine event` acceptance: all three lanes."""
        from repro.stats.timeline import trace_timeline

        framework = build_framework(
            "oo-app", baseline_system().with_engine("event")
        )
        framework.render_scene(fast_scene())
        trace = framework.last_system.last_trace
        kinds = {span.kind for span in trace.intervals}
        assert {"render", "stall", "compose"} <= kinds
        text = trace_timeline(trace)
        assert "▣ compose" in text
        assert "▒ staging stall" in text

    def test_event_composition_stretches_on_shared_switch(self):
        """DHC's all-pairs scatter queues on a central switch."""
        scene = fast_scene()
        cfg = baseline_system().with_link_bandwidth(16.0)
        analytic = build_framework("oo-vr:topo=switch", cfg)
        analytic.render_scene(scene)
        event = build_framework("oo-vr:topo=switch:engine=event", cfg)
        event.render_scene(scene)
        a_comp = analytic.last_system.last_trace.composition_cycles
        e_comp = event.last_system.last_trace.composition_cycles
        assert e_comp > a_comp * 1.5

    @pytest.mark.parametrize(
        "framework,stem",
        [("oo-vr", "event_trace_oovr"), ("oo-app", "event_trace_ooapp")],
    )
    def test_event_golden_trace_summary(self, framework, stem):
        """Event-engine timing changes must be deliberate.

        Compares the fixed-spec per-phase summary against the committed
        golden byte for byte.  If a model change is intentional,
        regenerate with :func:`regenerate_event_golden` and commit the
        diff alongside the change that explains it.
        """
        import json
        import pathlib

        golden = (
            pathlib.Path(__file__).parent.parent
            / "benchmarks"
            / "golden"
            / f"{stem}_hl2-640.json"
        )
        expected = golden.read_text()
        actual = (
            json.dumps(
                _event_trace_summary(framework), indent=2, sort_keys=True
            )
            + "\n"
        )
        assert actual == expected


# ---------------------------------------------------------------------------
# Empty scenes (regression: used to ZeroDivisionError)
# ---------------------------------------------------------------------------


class TestEmptyScene:
    def _empty_scene(self):
        scene = Scene.__new__(Scene)
        object.__setattr__(scene, "name", "empty")
        object.__setattr__(scene, "frames", ())
        return scene

    @pytest.mark.parametrize("framework", ["baseline", "afr"])
    def test_render_scene_raises_value_error(self, framework):
        with pytest.raises(ValueError, match="scene has no frames"):
            build_framework(framework).render_scene(self._empty_scene())

    @pytest.mark.parametrize("framework", ["baseline", "afr"])
    def test_frame_interval_raises_value_error(self, framework):
        with pytest.raises(ValueError, match="scene has no frames"):
            build_framework(framework).frame_interval_cycles([])


# ---------------------------------------------------------------------------
# The contention study
# ---------------------------------------------------------------------------


class TestEngineContentionStudy:
    def test_runs_with_jobs_and_cache(self, tmp_path):
        from repro.experiments.engines import engine_contention_study

        cache = ResultCache(tmp_path)
        figure = engine_contention_study(
            FAST,
            frameworks=("baseline", "baseline:topo=switch"),
            link_bandwidths=(16.0,),
            workloads=("HL2-640",),
            jobs=2,
            cache=cache,
        )
        assert set(figure.series) == {"baseline", "baseline:topo=switch"}
        factors = figure.series
        # Dedicated links barely contend; the shared switch queues.
        assert factors["baseline"]["16GB/s"] == pytest.approx(1.0, abs=0.1)
        assert (
            factors["baseline:topo=switch"]["16GB/s"]
            > factors["baseline"]["16GB/s"]
        )
        # Each (framework, engine) cell was cached exactly once; a
        # repeat pass is pure hits and identical output.
        stored = cache.stats.stores
        assert stored == 4  # 2 frameworks x 2 engines x 1 workload
        again = engine_contention_study(
            FAST,
            frameworks=("baseline", "baseline:topo=switch"),
            link_bandwidths=(16.0,),
            workloads=("HL2-640",),
            cache=cache,
        )
        assert cache.stats.stores == stored
        assert again.series == figure.series

    def test_phase_breakdown_shares_the_grid(self, tmp_path):
        from repro.experiments.engines import (
            CONTENTION_PHASES,
            engine_contention_phases,
            engine_contention_study,
        )

        cache = ResultCache(tmp_path)
        frameworks = ("baseline", "oo-vr:topo=switch")
        kwargs = dict(
            frameworks=frameworks,
            link_bandwidths=(16.0,),
            workloads=("HL2-640",),
            cache=cache,
        )
        engine_contention_study(FAST, **kwargs)
        stored = cache.stats.stores
        phases = engine_contention_phases(FAST, **kwargs)
        # Identical grid: the phase view is pure cache hits.
        assert cache.stats.stores == stored
        assert set(phases.series) == {
            f"{framework} [{phase}]"
            for framework in frameworks
            for phase in CONTENTION_PHASES
        }
        # The interleaved baseline has no composition barrier: its
        # composition factor is the exact 1.0 placeholder.
        assert phases.series["baseline [composition]"]["16GB/s"] == 1.0
        # OO-VR's DHC barrier queues on the shared switch.
        assert phases.series["oo-vr:topo=switch [composition]"]["16GB/s"] > 1.2


# ---------------------------------------------------------------------------
# Incremental window loop vs. the retained reference loop
# ---------------------------------------------------------------------------


def _random_flow_soup(engine, rng):
    """A randomised schedule shaped like real recorded frames.

    Mixes every row species the recording API can emit: compute-only
    jobs, multi-row DRAM streams, latency-only flows, plain streaming
    flows, staged multi-link streams (``rate_scale > 1``), dust flows
    (below the progress threshold on both axes), zero-demand jobs and
    background staging copies with start floors.
    """
    from repro.engine.event import _FlowSpec, _Job

    fabric = engine.system.fabric
    n = engine.system.num_gpms

    def random_flow():
        src, dst = (int(g) for g in rng.choice(n, size=2, replace=False))
        route = tuple(fabric.route(src, dst))
        assert route  # distinct endpoints always have a route
        species = int(rng.integers(0, 4))
        if species == 0:  # latency-only (barrier hop)
            return _FlowSpec(
                route=route,
                nbytes=0.0,
                latency=float(rng.uniform(0.5, 12.0)) * len(route),
            )
        if species == 1:  # staged copy streaming over the whole route
            return _FlowSpec(
                route=route,
                nbytes=float(rng.uniform(1.0, 400.0)),
                latency=0.0,
                rate_scale=float(len(route)),
            )
        if species == 2:  # dust: never enters any live set
            return _FlowSpec(route=route, nbytes=0.0, latency=0.0)
        return _FlowSpec(  # plain remote read: latency then bytes
            route=route,
            nbytes=float(rng.uniform(1.0, 400.0)),
            latency=float(rng.uniform(0.0, 6.0)) * len(route),
        )

    jobs = []
    for index in range(int(rng.integers(4, 24))):
        zero_demand = rng.random() < 0.1
        dram = (
            {}
            if zero_demand
            else {
                int(gpm): float(rng.uniform(1.0, 300.0))
                for gpm in rng.choice(
                    n, size=int(rng.integers(0, 3)), replace=False
                )
            }
        )
        jobs.append(
            _Job(
                label=f"unit{index}",
                gpm=int(rng.integers(0, n)),
                kind="render",
                start_floor=(
                    float(rng.uniform(0.0, 40.0))
                    if rng.random() < 0.4
                    else 0.0
                ),
                compute=(
                    0.0 if zero_demand else float(rng.uniform(0.0, 80.0))
                ),
                dram=dram,
                flows=(
                    []
                    if zero_demand
                    else [random_flow() for _ in range(int(rng.integers(0, 4)))]
                ),
                provisional_cycles=1.0,
            )
        )
    background = []
    for index in range(int(rng.integers(0, 3))):
        src, dst = (int(g) for g in rng.choice(n, size=2, replace=False))
        route = tuple(fabric.route(src, dst))
        background.append(
            _Job(
                label=f"stage{index}",
                gpm=dst,
                kind="stage",
                start_floor=float(rng.uniform(0.0, 20.0)),
                compute=0.0,
                dram={},
                flows=[
                    _FlowSpec(
                        route=route,
                        nbytes=float(rng.uniform(10.0, 500.0)),
                        latency=0.0,
                        rate_scale=float(len(route)),
                    )
                ],
                provisional_cycles=0.0,
            )
        )
    return jobs, background


class TestIncrementalWindowLoop:
    """The incremental loop is bit-equal to the full-scan oracle."""

    @staticmethod
    def _engine(config):
        return MultiGPUSystem(config.with_engine("event")).engine

    @pytest.mark.parametrize("seed", range(12))
    def test_random_flow_soups_match_reference_exactly(self, config, seed):
        import numpy as np

        engine = self._engine(config)
        rng = np.random.default_rng(20260808 + seed)
        jobs, background = _random_flow_soup(engine, rng)
        # _simulate never mutates its inputs, so both loops replay the
        # identical schedule.
        fast = engine._simulate(jobs, background)
        slow = engine._simulate_reference(jobs, background)
        assert fast.busy == slow.busy  # == : bit-exact, not approx
        assert fast.end == slow.end
        assert fast.intervals == slow.intervals
        assert fast.link_busy == slow.link_busy
        assert fast.link_bytes == slow.link_bytes
        assert fast.windows == slow.windows
        assert fast.live_rows == slow.live_rows

    def test_latency_only_and_background_only_soup(self, config):
        """Degenerate pass: no streaming rows at all, floors only."""
        from repro.engine.event import _FlowSpec, _Job

        engine = self._engine(config)
        route = tuple(engine.system.fabric.route(0, 1))
        jobs = [
            _Job(
                label="lat",
                gpm=0,
                kind="render",
                start_floor=5.0,
                compute=0.0,
                dram={},
                flows=[_FlowSpec(route=route, nbytes=0.0, latency=7.0)],
                provisional_cycles=1.0,
            )
        ]
        fast = engine._simulate(jobs)
        slow = engine._simulate_reference(jobs)
        assert fast.end == slow.end == [12.0, 0.0, 0.0, 0.0]
        assert fast.intervals == slow.intervals

    def test_reference_loop_flag_is_bit_exact_end_to_end(self):
        """``use_reference_loop`` (the bench A/B switch) changes nothing."""
        scene = fast_scene()
        cfg = baseline_system().with_engine("event")
        default = build_framework("oo-vr", cfg).render_scene(scene)
        EventEngine.use_reference_loop = True
        try:
            reference = build_framework("oo-vr", cfg).render_scene(scene)
        finally:
            EventEngine.use_reference_loop = False
        assert default.to_dict() == reference.to_dict()

    @pytest.mark.parametrize("loop", ["_simulate", "_simulate_reference"])
    def test_unfinishable_flow_raises_stall_diagnostic(self, config, loop):
        """Satellite: dt == inf now raises with job labels, not 0.0."""
        from repro.engine.event import _FlowSpec, _Job

        engine = self._engine(config)
        route = tuple(engine.system.fabric.route(0, 1))
        wedge = _Job(
            label="wedged-unit",
            gpm=0,
            kind="render",
            start_floor=0.0,
            compute=0.0,
            dram={},
            # Infinite latency: the flow is pending but never drains,
            # so every window is zero-length.
            flows=[
                _FlowSpec(route=route, nbytes=5.0, latency=float("inf"))
            ],
            provisional_cycles=1.0,
        )
        with pytest.raises(RuntimeError) as excinfo:
            getattr(engine, loop)([wedge])
        message = str(excinfo.value)
        assert "stalled" in message
        assert "wedged-unit" in message
