"""Vectorized scene construction and the compiled-scene store.

Two contracts are pinned here.  First, the batched generator path
(:meth:`SyntheticSceneGenerator.make_frame`) is bit-identical to the
scalar reference path it replaced — every object, texture and viewport
field compares equal with ``==`` and the RNG stream position matches,
so no golden anywhere in the repo moves.  Second, the persistent
compiled-scene store (:mod:`repro.scene.store`) round-trips scenes
byte-exactly: a store-hit cell's ``SceneResult.to_dict`` is identical
to a built-scene cell's, corrupt or stale entries degrade to a
rebuild-and-rewrite, and concurrent writers are crash-safe.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import cli
from repro.scene.batch import ObjectBatch
from repro.scene.store import (
    SceneStore,
    active_scene_store,
    scene_key,
    scene_store_scope,
    set_scene_store,
)
from repro.scene.synthetic import (
    GENERATOR_VERSION,
    SceneProfile,
    SyntheticSceneGenerator,
)
from repro.session.session import Session, Sweep
from repro.session.spec import cached_scene

BATCH_COLUMNS = (
    "object_ids",
    "num_vertices",
    "num_triangles",
    "vertex_bytes",
    "vertex_buffer_bytes",
    "depth_complexity",
    "shader_complexity",
    "coverage",
    "left_area",
    "right_area",
    "has_left",
    "has_right",
    "tex_offsets",
    "tex_ids",
    "tex_sizes",
)


@pytest.fixture(autouse=True)
def _fresh_scene_memo():
    """Isolate every test from the process-wide scene memo and store."""
    cached_scene.cache_clear()
    set_scene_store(None)
    yield
    cached_scene.cache_clear()
    set_scene_store(None)


def assert_objects_identical(ref, fast):
    assert len(ref) == len(fast)
    for a, b in zip(ref, fast):
        assert a.object_id == b.object_id
        assert a.name == b.name
        assert a.mesh == b.mesh
        assert a.textures == b.textures
        assert a.viewport_left == b.viewport_left
        assert a.viewport_right == b.viewport_right
        assert a.depth_complexity == b.depth_complexity
        assert a.shader_complexity == b.shader_complexity
        assert a.coverage == b.coverage
        assert a.depends_on == b.depends_on
        assert a == b


def assert_frames_identical(ref, fast):
    assert (ref.width, ref.height, ref.frame_id) == (
        fast.width,
        fast.height,
        fast.frame_id,
    )
    assert_objects_identical(ref.objects, fast.objects)
    reference_batch = ObjectBatch.from_objects(ref.objects)
    batch = fast.object_batch
    for column in BATCH_COLUMNS:
        want = getattr(reference_batch, column)
        got = getattr(batch, column)
        assert np.array_equal(want, got), column
        assert want.dtype == got.dtype, column


def rng_position(generator):
    """The PCG64 stream position (ignores the uint32 half-buffer,
    which the batched path shadows in Python rather than in the bit
    generator — values drawn are identical either way)."""
    return generator._rng.bit_generator.state["state"]["state"]


class TestBatchedConstruction:
    """Batched generation is bit-identical to the scalar reference."""

    @pytest.mark.parametrize(
        "workload", ["HL2-1280", "WE", "DM3-640", "NFS", "UT3"]
    )
    def test_benchmark_workloads_bit_identical(self, workload):
        from repro.scene.benchmarks import parse_workload

        spec, width, height = parse_workload(workload)
        draws = max(8, int(round(spec.num_draws * 0.15)))
        profile = SceneProfile(
            **{
                **vars(spec.profile),
                "num_objects": draws,
                "width": width,
                "height": height,
                "name": workload,
            }
        )
        ref_gen = SyntheticSceneGenerator(profile, seed=2019)
        fast_gen = SyntheticSceneGenerator(profile, seed=2019)
        ref = ref_gen.make_scene_reference(num_frames=2)
        fast = fast_gen.make_scene(num_frames=2)
        assert ref.name == fast.name
        for ref_frame, fast_frame in zip(ref.frames, fast.frames):
            assert_frames_identical(ref_frame, fast_frame)
        assert rng_position(ref_gen) == rng_position(fast_gen)

    def test_random_profiles_bit_identical(self):
        """Seeded property test: random generator parameters, including
        the edge cases that exercise every branch of the RNG replica
        (tiny material pools, zero-span texture counts, all-mono and
        no-mono frames, single-object frames)."""
        rng = np.random.default_rng(7)
        for case in range(30):
            num_materials = int(rng.integers(1, 40))
            lo = int(rng.integers(1, 5))
            hi = int(rng.integers(lo, min(lo + 6, num_materials + 3)))
            profile = SceneProfile(
                name=f"prop{case}",
                num_objects=int(rng.integers(1, 40)),
                width=int(rng.integers(64, 2048)),
                height=int(rng.integers(64, 1200)),
                triangles_median=float(rng.uniform(20, 4000)),
                triangles_sigma=float(rng.uniform(0.1, 1.4)),
                num_materials=num_materials,
                material_zipf=float(rng.uniform(0.4, 1.6)),
                textures_per_object=(lo, hi),
                texture_bytes_median=float(rng.uniform(1e5, 4e6)),
                texture_bytes_sigma=float(rng.uniform(0.2, 1.2)),
                depth_complexity_mean=float(rng.uniform(1.0, 4.0)),
                shader_complexity_mean=float(rng.uniform(0.5, 3.0)),
                footprint_median=float(rng.uniform(0.001, 0.2)),
                footprint_sigma=float(rng.uniform(0.2, 1.2)),
                vertical_skew=float(rng.uniform(0.0, 0.95)),
                max_disparity=float(rng.uniform(0.0, 0.1)),
                mono_fraction=float(
                    rng.choice([0.0, 0.95, rng.uniform(0.0, 1.0)])
                ),
                dependency_fraction=float(rng.uniform(0.0, 0.6)),
            )
            seed = int(rng.integers(0, 2**31))
            ref_gen = SyntheticSceneGenerator(profile, seed=seed)
            fast_gen = SyntheticSceneGenerator(profile, seed=seed)
            for frame_id in range(2):
                ref_frame = ref_gen.make_frame_reference(frame_id)
                fast_frame = fast_gen.make_frame(frame_id)
                assert_frames_identical(ref_frame, fast_frame)
            assert rng_position(ref_gen) == rng_position(fast_gen)


class TestSceneKey:
    def test_key_is_stable_and_version_sensitive(self):
        key = scene_key("HL2-1280", 2, 2019, 0.15)
        assert key == scene_key("HL2-1280", 2, 2019, 0.15)
        assert key != scene_key("HL2-1280", 3, 2019, 0.15)
        assert key != scene_key("WE", 2, 2019, 0.15)
        # The generator version is part of the address, so bumping it
        # orphans (not corrupts) every existing entry.
        assert len(key) == 64
        assert GENERATOR_VERSION == 1


class TestSceneStore:
    def test_round_trip_is_exact(self, tmp_path):
        store = SceneStore(tmp_path)
        built = store.get_or_build("HL2-1280", 2, 2019, 0.15)
        assert store.stats.misses == 1 and store.stats.stores == 1
        loaded = store.get("HL2-1280", 2, 2019, 0.15)
        assert loaded is not None
        assert store.stats.hits == 1
        assert loaded.name == built.name
        for ref_frame, got_frame in zip(built.frames, loaded.frames):
            assert_frames_identical(ref_frame, got_frame)

    def test_loaded_scene_interns_textures(self, tmp_path):
        store = SceneStore(tmp_path)
        store.get_or_build("HL2-1280", 2, 2019, 0.15)
        loaded = store.get("HL2-1280", 2, 2019, 0.15)
        seen = {}
        for frame in loaded.frames:
            for obj in frame.objects:
                for texture in obj.textures:
                    assert (
                        seen.setdefault(texture.texture_id, texture)
                        is texture
                    )

    def test_store_is_byte_deterministic(self, tmp_path):
        a = SceneStore(tmp_path / "a")
        b = SceneStore(tmp_path / "b")
        a.get_or_build("WE", 2, 2019, 0.15)
        cached_scene.cache_clear()
        b.get_or_build("WE", 2, 2019, 0.15)
        (entry_a,) = a.entry_paths()
        (entry_b,) = b.entry_paths()
        assert entry_a.read_bytes() == entry_b.read_bytes()
        # Re-serialising a *loaded* scene also reproduces the bytes, so
        # a warm host re-storing never flips a shared directory.
        loaded = b.get("WE", 2, 2019, 0.15)
        b.put(loaded, "WE", 2, 2019, 0.15)
        assert entry_a.read_bytes() == entry_b.read_bytes()

    def test_corrupt_entry_degrades_to_rebuild_and_rewrite(self, tmp_path):
        store = SceneStore(tmp_path)
        store.get_or_build("HL2-1280", 2, 2019, 0.15)
        (entry,) = store.entry_paths()
        good = entry.read_bytes()
        entry.write_bytes(good[: len(good) // 2])
        cached_scene.cache_clear()
        scene = store.get_or_build("HL2-1280", 2, 2019, 0.15)
        assert scene is not None
        assert store.stats.corrupt >= 1
        assert entry.read_bytes() == good

    def test_stale_entry_degrades_to_rebuild(self, tmp_path):
        # An entry whose *content* belongs to another key (e.g. a file
        # copied into the wrong address) is rejected, not trusted.
        store = SceneStore(tmp_path)
        store.get_or_build("WE", 2, 2019, 0.15)
        (we_entry,) = store.entry_paths()
        hl2_path = store.path_for(scene_key("HL2-1280", 2, 2019, 0.15))
        hl2_path.write_bytes(we_entry.read_bytes())
        cached_scene.cache_clear()
        scene = store.get_or_build("HL2-1280", 2, 2019, 0.15)
        assert scene.name == "HL2-1280"
        assert store.stats.corrupt >= 1

    def test_concurrent_writers_are_crash_safe(self, tmp_path):
        store = SceneStore(tmp_path)
        scene = store.get_or_build("HL2-1280", 2, 2019, 0.15)
        barrier = threading.Barrier(4)
        errors = []

        def writer():
            try:
                barrier.wait()
                store.put(scene, "HL2-1280", 2, 2019, 0.15)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # No torn entries, no stray temp files.
        assert [p.name for p in store.entry_paths()] == [
            f"{scene_key('HL2-1280', 2, 2019, 0.15)}.scene"
        ]
        assert not list(store.root.glob("*.tmp"))
        assert store.get("HL2-1280", 2, 2019, 0.15) is not None

    def test_info_and_clear(self, tmp_path):
        store = SceneStore(tmp_path)
        store.get_or_build("HL2-1280", 2, 2019, 0.15)
        info = store.info()
        assert info["entries"] == 1
        assert info["corrupt"] == 0
        assert info["scenes"][0]["workload"] == "HL2-1280"
        assert info["scenes"][0]["generator_version"] == GENERATOR_VERSION
        assert store.clear() == 1
        assert store.info()["entries"] == 0


class TestStoreScoping:
    def test_scope_activates_and_restores(self, tmp_path):
        assert active_scene_store() is None
        with scene_store_scope(tmp_path) as store:
            assert isinstance(store, SceneStore)
            assert active_scene_store() is store
        assert active_scene_store() is None

    def test_none_scope_preserves_ambient_store(self, tmp_path):
        ambient = set_scene_store(tmp_path)
        with scene_store_scope(None):
            assert active_scene_store() is ambient

    def test_set_accepts_paths_and_none(self, tmp_path):
        store = set_scene_store(str(tmp_path))
        assert isinstance(store, SceneStore)
        assert set_scene_store(None) is None


class TestStoreResults:
    def test_store_hit_results_byte_identical(self, tmp_path):
        plain = (
            Session().framework("oo-vr").workload("HL2-1280").fast().run()
        )
        cached_scene.cache_clear()
        cold = (
            Session()
            .framework("oo-vr")
            .workload("HL2-1280")
            .fast()
            .run(scene_store=tmp_path)
        )
        cached_scene.cache_clear()
        warm = (
            Session()
            .framework("oo-vr")
            .workload("HL2-1280")
            .fast()
            .run(scene_store=tmp_path)
        )
        want = json.dumps(plain.to_dict(), sort_keys=True)
        assert json.dumps(cold.to_dict(), sort_keys=True) == want
        assert json.dumps(warm.to_dict(), sort_keys=True) == want

    def test_store_hit_keeps_identity_anchor(self, tmp_path):
        store = SceneStore(tmp_path)
        with scene_store_scope(store):
            first = cached_scene("HL2-1280", 2, 2019, 0.15)
            second = cached_scene("HL2-1280", 2, 2019, 0.15)
        # The memo, not the store, answers repeats — same object, so
        # the reuse cache's frame-anchored artefacts stay shared.
        assert first is second

    def test_sweep_profile_exports_scene_counters(self, tmp_path):
        records = (
            Sweep()
            .frameworks("oo-vr")
            .workloads("HL2-1280")
            .fast()
            .run(profile=True, scene_store=tmp_path)
            .to_records()
        )
        record = records[0]
        assert record["profile_scene_store_miss"] == 1.0
        assert record["profile_scene_objects_built"] > 0
        assert record["profile_scene_frames_built"] == 2.0
        assert record["profile_scene_build_s"] > 0
        cached_scene.cache_clear()
        warm = (
            Sweep()
            .frameworks("oo-vr")
            .workloads("HL2-1280")
            .fast()
            .run(profile=True, scene_store=tmp_path)
            .to_records()
        )[0]
        assert warm["profile_scene_store_hit"] == 1.0
        assert warm["profile_scene_load_s"] > 0
        assert "profile_scene_build_s" not in warm


class TestSceneCLI:
    def test_run_flag_aliases(self, capsys):
        assert (
            cli.main(
                ["run", "--framework", "oo-vr", "--workload", "DM3-640",
                 "--fast"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "single frame" in out

    def test_run_mixed_positional_and_alias(self, capsys):
        assert (
            cli.main(["run", "oo-vr", "--workload", "DM3-640", "--fast"])
            == 0
        )
        assert "single frame" in capsys.readouterr().out

    def test_run_conflicting_names_error(self, capsys):
        assert (
            cli.main(
                ["run", "oo-vr", "DM3-640", "--framework", "baseline",
                 "--fast"]
            )
            == 2
        )
        assert "too many framework/workload names" in capsys.readouterr().err

    def test_run_missing_names_error(self, capsys):
        assert cli.main(["run", "oo-vr", "--fast"]) == 2
        assert "needs a framework and a workload" in capsys.readouterr().err

    def test_scene_warm_info_clear(self, capsys, tmp_path):
        store_dir = str(tmp_path / "scenes")
        assert (
            cli.main(
                ["scene", "warm", store_dir, "--fast",
                 "--workloads", "DM3-640"]
            )
            == 0
        )
        assert "compiled" in capsys.readouterr().out
        cached_scene.cache_clear()
        assert (
            cli.main(
                ["scene", "warm", store_dir, "--fast",
                 "--workloads", "DM3-640"]
            )
            == 0
        )
        assert "already present" in capsys.readouterr().out
        assert cli.main(["scene", "info", store_dir]) == 0
        assert "DM3-640" in capsys.readouterr().out
        assert cli.main(["scene", "info", store_dir, "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["entries"] == 1
        assert cli.main(["scene", "clear", store_dir]) == 0
        assert "cleared 1" in capsys.readouterr().out

    def test_scene_info_missing_directory(self, capsys, tmp_path):
        missing = str(tmp_path / "nope")
        assert cli.main(["scene", "info", missing]) == 2
        assert "no scene store" in capsys.readouterr().err

    def test_run_scene_store_env_default(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("OOVR_SCENE_STORE", str(tmp_path / "env-store"))
        assert cli.main(["run", "oo-vr", "DM3-640", "--fast"]) == 0
        capsys.readouterr()
        store = SceneStore(tmp_path / "env-store")
        assert len(store.entry_paths()) == 1

    def test_sweep_scene_store_csv_identical(self, capsys, tmp_path):
        store_dir = str(tmp_path / "scenes")
        common = [
            "sweep", "--frameworks", "baseline,oo-vr",
            "--workloads", "DM3-640", "--fast",
        ]
        plain_csv = str(tmp_path / "plain.csv")
        warm_csv = str(tmp_path / "warm.csv")
        assert cli.main(common + ["--csv", plain_csv]) == 0
        cached_scene.cache_clear()
        assert (
            cli.main(common + ["--scene-store", store_dir, "--csv", warm_csv])
            == 0
        )
        capsys.readouterr()
        with open(plain_csv, "rb") as a, open(warm_csv, "rb") as b:
            assert a.read() == b.read()
