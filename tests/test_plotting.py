"""Tests for the terminal bar-chart renderer."""

import pytest

from repro.experiments.figures import FigureResult
from repro.stats.plotting import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_one_line_per_entry(self):
        chart = bar_chart({"a": 1.0, "b": 2.0, "c": 0.5})
        assert len(chart.splitlines()) == 3

    def test_title_prepended(self):
        chart = bar_chart({"a": 1.0}, title="My chart")
        assert chart.splitlines()[0] == "My chart"

    def test_largest_value_fills_width(self):
        chart = bar_chart({"small": 1.0, "big": 4.0}, width=20)
        big_line = next(l for l in chart.splitlines() if l.startswith("big"))
        assert big_line.count("█") == 20

    def test_bars_proportional(self):
        chart = bar_chart({"half": 2.0, "full": 4.0}, width=20)
        half = next(l for l in chart.splitlines() if l.startswith("half"))
        assert half.count("█") == 10

    def test_values_annotated(self):
        chart = bar_chart({"x": 1.234})
        assert "1.23" in chart

    def test_zero_value_gets_no_bar(self):
        chart = bar_chart({"none": 0.0, "some": 1.0})
        none_line = next(l for l in chart.splitlines() if l.startswith("none"))
        assert "█" not in none_line

    def test_reference_marker_drawn(self):
        chart = bar_chart({"lo": 0.5, "hi": 2.0}, reference=1.0, width=20)
        lo_line = next(l for l in chart.splitlines() if l.startswith("lo"))
        hi_line = next(l for l in chart.splitlines() if l.startswith("hi"))
        assert "┆" in lo_line  # bar stops before the 1.0 mark
        assert "┼" in hi_line  # bar crosses the 1.0 mark

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=4)


class TestGroupedBarChart:
    SERIES = {
        "baseline": {"w1": 1.0, "w2": 1.0},
        "oo-vr": {"w1": 2.5, "w2": 3.0},
    }

    def test_groups_by_row(self):
        chart = grouped_bar_chart(self.SERIES, row_order=["w1", "w2"])
        lines = chart.splitlines()
        assert lines[0] == "w1:"
        assert "w2:" in lines

    def test_row_order_respected(self):
        chart = grouped_bar_chart(self.SERIES, row_order=["w2", "w1"])
        assert chart.index("w2:") < chart.index("w1:")

    def test_missing_cell_skipped(self):
        series = {"a": {"w1": 1.0}, "b": {"w2": 2.0}}
        chart = grouped_bar_chart(series, row_order=["w1", "w2"])
        w1_block = chart.split("w2:")[0]
        assert "b" not in w1_block.replace("w1:", "")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart({})


class TestFigureToChart:
    def make_figure(self, with_avg=True):
        rows = {"w1": 1.2, "w2": 0.8}
        if with_avg:
            rows["Avg."] = 1.0
        return FigureResult(
            figure="Figure T",
            title="test figure",
            series={"scheme": dict(rows)},
            row_order=list(rows),
        )

    def test_avg_figures_collapse_to_headline_bars(self):
        chart = self.make_figure(with_avg=True).to_chart()
        # One title line + one bar per series.
        assert len(chart.splitlines()) == 2
        assert "scheme" in chart

    def test_avgless_figures_render_grouped(self):
        chart = self.make_figure(with_avg=False).to_chart()
        assert "w1:" in chart
        assert "w2:" in chart
