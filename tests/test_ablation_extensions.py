"""Ablation frameworks and extension experiments."""

import pytest

from repro.core.ablation import AblatedOOVR, OOVRFeatures, ablation_suite
from repro.experiments.extensions import (
    batching_sensitivity,
    energy_report,
    oovr_ablation,
)
from repro.experiments.runner import ExperimentConfig
from repro.scene.benchmarks import make_benchmark_scene

TINY = ExperimentConfig(draw_scale=0.08, num_frames=2, workloads=("HL2-640",))


@pytest.fixture(scope="module")
def scene():
    return make_benchmark_scene("HL2-1280", num_frames=2, draw_scale=0.12)


class TestFeatures:
    def test_full_label(self):
        assert OOVRFeatures().label() == "oo-vr"

    def test_disabled_labels(self):
        label = OOVRFeatures(prediction=False, stealing=False).label()
        assert "pred" in label and "steal" in label

    def test_suite_has_six_variants(self):
        suite = ablation_suite()
        assert set(suite) == {
            "full", "no-prediction", "no-preallocation",
            "no-dhc", "no-stealing", "software-only",
        }


class TestAblatedRendering:
    def test_all_variants_run(self, scene):
        for key, framework in ablation_suite().items():
            result = framework.render_scene(scene)
            assert result.single_frame_cycles > 0, key

    def test_full_matches_oovr_semantics(self, scene):
        from repro.frameworks.base import build_framework

        full = AblatedOOVR(features=OOVRFeatures()).render_scene(scene)
        oovr = build_framework("oo-vr").render_scene(scene)
        assert full.single_frame_cycles == pytest.approx(
            oovr.single_frame_cycles, rel=0.01
        )

    def test_no_dhc_slower_composition(self, scene):
        full = AblatedOOVR(features=OOVRFeatures()).render_scene(scene)
        no_dhc = AblatedOOVR(
            features=OOVRFeatures(distributed_composition=False)
        ).render_scene(scene)
        assert (
            no_dhc.frames[0].composition_cycles
            > full.frames[0].composition_cycles
        )

    def test_no_preallocation_not_faster(self, scene):
        full = AblatedOOVR(features=OOVRFeatures()).render_scene(scene)
        no_pa = AblatedOOVR(
            features=OOVRFeatures(preallocation=False)
        ).render_scene(scene)
        assert no_pa.single_frame_cycles >= full.single_frame_cycles * 0.98

    def test_software_only_slowest(self, scene):
        suite = ablation_suite()
        cycles = {
            key: fw.render_scene(scene).single_frame_cycles
            for key, fw in suite.items()
        }
        assert cycles["software-only"] >= max(
            cycles["full"], cycles["no-prediction"], cycles["no-stealing"]
        ) * 0.99


class TestExtensionExperiments:
    def test_ablation_experiment_structure(self):
        result = oovr_ablation(TINY)
        assert "full" in result.series
        assert result.average("full") > 1.0

    def test_energy_ordering(self):
        result = energy_report(TINY)
        board = result.series["10 pJ/bit (board)"]
        assert board["oo-vr"] < board["baseline"]
        nodes = result.series["250 pJ/bit (nodes)"]
        assert nodes["baseline"] == pytest.approx(25 * board["baseline"])

    def test_batching_sensitivity_rows(self):
        result = batching_sensitivity(TINY, workload="HL2-640")
        series = result.series["speedup"]
        assert "tsl>0.5" in series
        assert "cap=4096" in series
        assert all(v > 0 for v in series.values())
