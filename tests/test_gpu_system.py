"""The multi-GPU machine: NUMA resolution, execution, composition, staging."""

import pytest

from repro.config import baseline_system
from repro.gpu.composition import compose_distributed, compose_master
from repro.gpu.staging import StagingManager
from repro.gpu.system import MultiGPUSystem
from repro.memory.link import TrafficType
from repro.memory.placement import PlacementPolicy
from repro.pipeline.characterize import DrawCharacterizer
from repro.pipeline.smp import SMPMode
from tests.conftest import MB, make_object


@pytest.fixture
def system(config):
    sys_ = MultiGPUSystem(config)
    sys_.begin_frame()
    return sys_


@pytest.fixture
def characterizer(config):
    return DrawCharacterizer(config)


def unit_for(characterizer, pool, object_id=0, **kwargs):
    return characterizer.characterize(
        make_object(object_id, pool, **kwargs).multiview_draw(),
        mode=SMPMode.SIMULTANEOUS,
    )


class TestExecuteUnit:
    def test_local_execution_no_link_traffic(self, system, characterizer, pool):
        unit = unit_for(characterizer, pool)
        system.execute_unit(unit, 0, fb_targets={0: 1.0}, command_source=0)
        assert system.fabric.total_bytes == 0.0

    def test_remote_texture_crosses_link(self, system, characterizer, pool):
        unit = unit_for(characterizer, pool)
        for touch in unit.texture_touches:
            system.placement.place_fixed(touch.resource, 1)
        system.execute_unit(unit, 0, fb_targets={0: 1.0}, command_source=0)
        assert system.fabric.bytes_between(1, 0) > 0
        assert system.drams[1].remote_served_bytes > 0

    def test_remote_slower_than_local(self, config, characterizer, pool):
        def run(place_remote: bool) -> float:
            system = MultiGPUSystem(config)
            system.begin_frame()
            unit = unit_for(characterizer, pool, w=800, h=600)
            if place_remote:
                for touch in unit.texture_touches:
                    system.placement.place_fixed(touch.resource, 1)
            execution = system.execute_unit(unit, 0, fb_targets={0: 1.0})
            return execution.cycles

        assert run(place_remote=True) > run(place_remote=False)

    def test_first_touch_places_on_renderer(self, system, characterizer, pool):
        unit = unit_for(characterizer, pool)
        system.execute_unit(unit, 2, fb_targets={2: 1.0}, command_source=2)
        for touch in unit.texture_touches:
            assert system.placement.local_fraction(touch.resource, 2) == 1.0

    def test_fb_targets_route_writes(self, system, characterizer, pool):
        unit = unit_for(characterizer, pool)
        system.execute_unit(unit, 0, fb_targets={1: 1.0}, command_source=0)
        fb_bytes = system.fabric.bytes_by_type().get(TrafficType.FRAMEBUFFER, 0.0)
        assert fb_bytes > 0

    def test_command_traffic_from_master(self, system, characterizer, pool):
        unit = unit_for(characterizer, pool)
        system.execute_unit(unit, 3, fb_targets={3: 1.0}, command_source=0)
        assert system.fabric.bytes_by_type().get(TrafficType.COMMAND, 0.0) > 0

    def test_counters_advance(self, system, characterizer, pool):
        unit = unit_for(characterizer, pool)
        system.execute_unit(unit, 1, fb_targets={1: 1.0})
        gpm = system.gpms[1]
        assert gpm.transformed_vertices == pytest.approx(unit.vertices)
        assert gpm.rendered_pixels == pytest.approx(unit.pixels_out)

    def test_start_at_delays(self, system, characterizer, pool):
        unit = unit_for(characterizer, pool)
        execution = system.execute_unit(
            unit, 0, fb_targets={0: 1.0}, start_at=5000.0
        )
        assert system.gpms[0].ready_at == pytest.approx(5000.0 + execution.cycles)
        # Busy time excludes the idle wait.
        assert system.gpms[0].busy_cycles == pytest.approx(execution.cycles)

    def test_invalid_gpm_rejected(self, system, characterizer, pool):
        unit = unit_for(characterizer, pool)
        with pytest.raises(ValueError):
            system.execute_unit(unit, 9)

    def test_cycles_at_least_compute(self, system, characterizer, pool):
        unit = unit_for(characterizer, pool)
        execution = system.execute_unit(unit, 0, fb_targets={0: 1.0})
        assert execution.cycles >= execution.compute_cycles


class TestRunQueuesAndResult:
    def test_queue_count_checked(self, system, characterizer, pool):
        with pytest.raises(ValueError):
            system.run_queues([[]])

    def test_frame_result_rolls_up(self, system, characterizer, pool):
        units = [unit_for(characterizer, pool, i) for i in range(4)]
        system.run_queues([[units[0]], [units[1]], [units[2]], [units[3]]])
        result = system.frame_result("test", "wl")
        assert result.cycles > 0
        assert len(result.gpm_busy_cycles) == 4
        assert all(b > 0 for b in result.gpm_busy_cycles)

    def test_composition_adds_to_latency(self, system, characterizer, pool):
        from repro.engine.base import CompositionSchedule

        unit = unit_for(characterizer, pool)
        system.execute_unit(unit, 0, fb_targets={0: 1.0})
        before = system.frame_result("t", "w").cycles
        system.engine.composition_phase(
            CompositionSchedule(label="compose", rop_cycles={0: 12_345.0})
        )
        after = system.frame_result("t", "w").cycles
        assert after == pytest.approx(before + 12_345.0)
        trace = system.last_trace
        assert trace.composition_cycles == pytest.approx(12_345.0)
        assert trace.frame_cycles == pytest.approx(after)
        kinds = [span.kind for span in trace.intervals]
        assert "compose" in kinds

    def test_begin_frame_resets(self, system, characterizer, pool):
        unit = unit_for(characterizer, pool)
        system.execute_unit(unit, 0, fb_targets={0: 1.0})
        system.begin_frame()
        assert system.gpms[0].busy_cycles == 0.0
        assert system.fabric.total_bytes == 0.0

    def test_placement_persists_across_frames(self, system, characterizer, pool):
        unit = unit_for(characterizer, pool)
        system.execute_unit(unit, 2, fb_targets={2: 1.0})
        system.begin_frame(keep_placement=True)
        for touch in unit.texture_touches:
            assert system.placement.is_placed(touch.resource)

    def test_placement_reset_on_request(self, system, characterizer, pool):
        unit = unit_for(characterizer, pool)
        system.execute_unit(unit, 2, fb_targets={2: 1.0})
        system.begin_frame(keep_placement=False)
        for touch in unit.texture_touches:
            assert not system.placement.is_placed(touch.resource)


class TestComposition:
    def test_master_traffic_from_workers_only(self, system):
        compose_master(system, [1000.0, 1000.0, 1000.0, 1000.0], root=0)
        assert system.fabric.bytes_between(1, 0) > 0
        assert system.fabric.bytes_between(0, 1) == 0.0

    def test_master_composition_cycles_recorded(self, system):
        cycles = compose_master(system, [8000.0, 8000.0, 8000.0, 8000.0])
        result = system.frame_result("t", "w")
        assert result.composition_cycles == pytest.approx(cycles)

    def test_distributed_faster_than_master(self, config):
        pixels = [4_000_000.0] * 4

        sys_a = MultiGPUSystem(config)
        sys_a.begin_frame()
        master = compose_master(sys_a, pixels)

        sys_b = MultiGPUSystem(config)
        sys_b.begin_frame()
        distributed = compose_distributed(sys_b, pixels)
        assert distributed < master

    def test_distributed_spreads_traffic(self, system):
        compose_distributed(system, [1000.0] * 4)
        pairs = [
            (s, d)
            for s in range(4)
            for d in range(4)
            if s != d
        ]
        used = [system.fabric.bytes_between(s, d) > 0 for s, d in pairs]
        assert all(used)

    def test_composition_traffic_type(self, system):
        compose_master(system, [1000.0] * 4)
        assert system.fabric.bytes_by_type().get(TrafficType.COMPOSITION, 0) > 0

    def test_pixel_count_mismatch_rejected(self, system):
        with pytest.raises(ValueError):
            compose_master(system, [1000.0, 1000.0])


class TestStagingManager:
    def test_first_touch_stage_is_free(self, system, characterizer, pool):
        staging = StagingManager(system)
        unit = unit_for(characterizer, pool)
        outcome = staging.stage_unit(unit, 1)
        assert outcome.stall_cycles == 0.0
        assert outcome.copied_bytes == 0.0
        assert staging.staged_bytes == 0.0
        assert system.fabric.total_bytes == 0.0

    def test_restaging_elsewhere_costs(self, system, characterizer, pool):
        staging = StagingManager(system)
        unit = unit_for(characterizer, pool)
        staging.stage_unit(unit, 1)  # home
        outcome = staging.stage_unit(unit, 2)  # copy to another GPM
        assert staging.staged_bytes > 0
        assert outcome.stall_cycles > 0
        assert outcome.copied_bytes == pytest.approx(staging.staged_bytes)
        assert system.fabric.total_bytes == pytest.approx(staging.staged_bytes)

    def test_staged_reads_become_local(self, system, characterizer, pool):
        staging = StagingManager(system)
        unit = unit_for(characterizer, pool)
        staging.stage_unit(unit, 1)
        staging.stage_unit(unit, 2)
        for touch in unit.texture_touches:
            assert system.placement.local_fraction(touch.resource, 2) == 1.0

    def test_staging_saturates_at_footprint(self, system, characterizer, pool):
        staging = StagingManager(system, factor=1.0)
        unit = unit_for(characterizer, pool)
        staging.stage_unit(unit, 1)  # home placement
        for _ in range(50):  # repeated use accumulates, then saturates
            staging.stage_unit(unit, 2)
        cap = sum(t.resource.size_bytes for t in unit.texture_touches)
        cap += sum(t.resource.size_bytes for t in unit.vertex_touches)
        assert staging.staged_bytes <= cap + 1.0

    def test_new_frame_restages(self, system, characterizer, pool):
        staging = StagingManager(system)
        unit = unit_for(characterizer, pool)
        staging.stage_unit(unit, 1)
        staging.stage_unit(unit, 2)
        first = staging.staged_bytes
        staging.begin_frame()
        staging.stage_unit(unit, 2)
        assert staging.staged_bytes == pytest.approx(first)

    def test_home_never_staged(self, system, characterizer, pool):
        staging = StagingManager(system)
        unit = unit_for(characterizer, pool)
        staging.stage_unit(unit, 3)
        staging.begin_frame()
        outcome = staging.stage_unit(unit, 3)
        assert outcome.stall_cycles == 0.0
        assert staging.staged_bytes == 0.0

    def test_prefetched_no_stall(self, system, characterizer, pool):
        staging = StagingManager(system, prefetched=True)
        unit = unit_for(characterizer, pool)
        staging.stage_unit(unit, 1)
        busy_before = system.gpms[2].busy_cycles
        outcome = staging.stage_unit(unit, 2)
        assert outcome.stall_cycles == 0.0
        assert system.gpms[2].busy_cycles == busy_before
        assert staging.staged_bytes > 0

    def test_factor_scales_bytes(self, config, characterizer, pool):
        def staged(factor):
            system = MultiGPUSystem(config)
            system.begin_frame()
            staging = StagingManager(system, factor=factor)
            unit = unit_for(characterizer, pool)
            staging.stage_unit(unit, 0)
            staging.stage_unit(unit, 1)
            return staging.staged_bytes

        assert staged(2.0) > staged(0.5)

    def test_traffic_type_label(self, system, characterizer, pool):
        staging = StagingManager(
            system, prefetched=True, traffic_type=TrafficType.PREALLOC
        )
        unit = unit_for(characterizer, pool)
        staging.stage_unit(unit, 0)
        staging.stage_unit(unit, 1)
        assert system.fabric.bytes_by_type().get(TrafficType.PREALLOC, 0) > 0
