"""The OO-VR hardware layer: predictor, distribution engine, overhead."""

import pytest

from repro.config import baseline_system
from repro.core.distribution import BATCH_QUEUE_DEPTH, DistributionEngine
from repro.core.middleware import OOMiddleware
from repro.core.overhead import OverheadModel
from repro.core.oovr import _BatchBuilder, OOVRFramework
from repro.core.predictor import (
    CALIBRATION_BATCHES,
    BatchObservation,
    RenderingTimePredictor,
)
from repro.gpu.system import MultiGPUSystem
from tests.conftest import MB, make_object


def observation(triangles, cycles, tv=None, pixels=None):
    return BatchObservation(
        triangles=triangles,
        transformed_vertices=tv if tv is not None else triangles * 0.6,
        rendered_pixels=pixels if pixels is not None else triangles * 20.0,
        cycles=cycles,
    )


class TestPredictor:
    def test_not_calibrated_initially(self):
        predictor = RenderingTimePredictor()
        assert not predictor.is_calibrated
        with pytest.raises(RuntimeError):
            predictor.predict_total(100.0)

    def test_calibrates_after_eight_batches(self):
        predictor = RenderingTimePredictor()
        for i in range(CALIBRATION_BATCHES):
            predictor.observe(observation(1000.0 + i, 5000.0 + 5 * i))
        assert predictor.is_calibrated

    def test_c0_recovers_linear_rate(self):
        predictor = RenderingTimePredictor()
        for i in range(8):
            tris = 500.0 * (i + 1)
            predictor.observe(observation(tris, cycles=tris * 3.0))
        assert predictor.c0 == pytest.approx(3.0, rel=0.01)

    def test_total_prediction_linear_in_triangles(self):
        predictor = RenderingTimePredictor()
        for i in range(8):
            tris = 500.0 * (i + 1)
            predictor.observe(observation(tris, cycles=tris * 2.0))
        assert predictor.predict_total(1000.0) == pytest.approx(2000.0, rel=0.05)

    def test_elapsed_from_counters(self):
        predictor = RenderingTimePredictor()
        # cycles = 1.0 * tv + 0.05 * pixels exactly.
        for i in range(1, 9):
            tv, px = 600.0 * i, 10_000.0 * i
            predictor.observe(
                BatchObservation(
                    triangles=1000.0 * i,
                    transformed_vertices=tv,
                    rendered_pixels=px,
                    cycles=1.0 * tv + 0.05 * px,
                )
            )
        assert predictor.predict_elapsed(600.0, 10_000.0) == pytest.approx(
            1100.0, rel=0.15
        )

    def test_remaining_non_negative(self):
        predictor = RenderingTimePredictor()
        for i in range(1, 9):
            predictor.observe(observation(1000.0 * i, 3000.0 * i))
        remaining = predictor.remaining(
            predicted_total=100.0,
            transformed_vertices=1e9,
            rendered_pixels=1e9,
        )
        assert remaining == 0.0

    def test_rates_never_negative(self):
        predictor = RenderingTimePredictor()
        for i in range(1, 9):
            predictor.observe(
                BatchObservation(
                    triangles=100.0 * i,
                    transformed_vertices=60.0 * i,
                    rendered_pixels=2000.0 * i,
                    cycles=500.0 * i,
                )
            )
        assert predictor.c1 >= 0.0
        assert predictor.c2 >= 0.0

    def test_mae_reported(self):
        predictor = RenderingTimePredictor()
        for i in range(1, 9):
            predictor.observe(observation(1000.0 * i, 3000.0 * i))
        assert predictor.mean_absolute_error() < 0.05

    def test_invalid_observation_rejected(self):
        with pytest.raises(ValueError):
            BatchObservation(
                triangles=-1.0,
                transformed_vertices=0.0,
                rendered_pixels=0.0,
                cycles=1.0,
            )


def build_batches(pool, count=16, triangles=800, materials=5):
    objects = [
        make_object(
            i,
            pool,
            textures=((f"mat{i % materials}", MB),),
            triangles=triangles,
            x=40.0 * (i % 20) + 10,
            y=30.0 * (i % 15) + 10,
            w=140.0,
            h=120.0,
        )
        for i in range(count)
    ]
    from repro.scene.scene import Frame

    return Frame(objects=tuple(objects), width=1280, height=1024)


class TestDistributionEngine:
    def _dispatch(self, pool, config=None, count=60, materials=20):
        cfg = config or baseline_system()
        system = MultiGPUSystem(cfg)
        system.begin_frame()
        framework = OOVRFramework(cfg)
        frame = build_batches(pool, count=count, materials=materials)
        engine = DistributionEngine(system)
        pairs = _BatchBuilder(framework).build(frame)
        pixels = engine.dispatch(pairs)
        return system, engine, pixels

    def test_first_batches_round_robin(self, pool):
        _system, engine, _pixels = self._dispatch(pool)
        calibration = [r for r in engine.records if r.calibration]
        assert len(calibration) >= 1
        gpms = [r.gpm for r in calibration]
        assert gpms == [i % 4 for i in range(len(gpms))]

    def test_prediction_enabled_after_calibration(self, pool):
        _system, engine, _pixels = self._dispatch(pool)
        predicted = [r for r in engine.records if not r.calibration]
        assert predicted, "prediction phase never engaged"
        assert all(r.predicted_cycles is not None for r in predicted)

    def test_all_gpms_participate(self, pool):
        _system, engine, _pixels = self._dispatch(pool)
        assert {r.gpm for r in engine.records} == {0, 1, 2, 3}

    def test_balances_better_than_round_robin(self, pool):
        cfg = baseline_system()
        frame = build_batches(pool, count=40)
        framework = OOVRFramework(cfg)
        pairs = _BatchBuilder(framework).build(frame)

        # Round-robin reference.
        system_rr = MultiGPUSystem(cfg)
        system_rr.begin_frame()
        for index, (_batch, unit) in enumerate(pairs):
            system_rr.execute_unit(unit, index % 4, fb_targets={index % 4: 1.0})
        rr = system_rr.frame_result("rr", "w").load_balance_ratio

        system_engine = MultiGPUSystem(cfg)
        system_engine.begin_frame()
        engine = DistributionEngine(system_engine)
        engine.dispatch(pairs)
        engine_ratio = system_engine.frame_result("eng", "w").load_balance_ratio
        assert engine_ratio <= rr * 1.05

    def test_queue_depth_validated(self, pool):
        system = MultiGPUSystem(baseline_system())
        with pytest.raises(ValueError):
            DistributionEngine(system, queue_depth=0)
        assert BATCH_QUEUE_DEPTH == 4

    def test_single_gpm_no_stealing(self, pool):
        cfg = baseline_system(num_gpms=1)
        system, engine, pixels = self._dispatch(pool, config=cfg)
        assert len(pixels) == 1
        assert pixels[0] > 0

    def test_pixels_conserved(self, pool):
        cfg = baseline_system()
        frame = build_batches(pool, count=24)
        framework = OOVRFramework(cfg)
        pairs = _BatchBuilder(framework).build(frame)
        expected = sum(unit.pixels_out for _b, unit in pairs)
        system = MultiGPUSystem(cfg)
        system.begin_frame()
        engine = DistributionEngine(system)
        pixels = engine.dispatch(pairs)
        assert sum(pixels) == pytest.approx(expected, rel=1e-6)


class TestOverheadModel:
    def test_paper_storage_bits(self):
        model = OverheadModel()
        # 4 GPMs x 2 counters x 64b + 4-entry queue x (16b + 64b)
        # + 12 x 32b registers = 512 + 320 + 384 = 1216 bits; the paper
        # rounds its accounting to 960 — we stay within 30%.
        assert model.counter_storage_bits == 512
        assert model.tracking_bits == 384
        assert 900 <= model.total_storage_bits <= 1300

    def test_area_scales_with_bits(self):
        small = OverheadModel(num_gpms=4)
        large = OverheadModel(num_gpms=8)
        assert large.area_mm2 > small.area_mm2

    def test_area_fraction_below_half_percent(self):
        assert OverheadModel().area_fraction_of_gtx1080 < 0.005

    def test_power_fraction_below_half_percent(self):
        assert OverheadModel().power_fraction_of_gtx1080_tdp < 0.005

    def test_report_mentions_bits(self):
        report = OverheadModel().report()
        assert "bits" in report
        assert "mm^2" in report

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            OverheadModel(num_gpms=0)
