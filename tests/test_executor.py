"""The pluggable sweep-executor layer: backends, sharding, merge, CLI.

The equivalence bar is strict: whatever backend runs a grid —
serial, process pool, or a scatter of shard slices merged back
together — the exported records must be byte-identical.
"""

import json
import threading

import pytest

from repro import cli
from repro.session import (
    EXECUTOR_NAMES,
    CacheMergeError,
    ExecutorError,
    ExperimentConfig,
    ProcessExecutor,
    ResultCache,
    ResultSet,
    SerialExecutor,
    SessionError,
    ShardExecutor,
    Sweep,
    iter_shards,
    load_shard_manifests,
    make_executor,
    parse_shard,
    register_executor,
    shard_of,
    spec_key,
)

#: Two tiny workloads keep these tests quick.
TINY = ExperimentConfig(
    draw_scale=0.08, num_frames=2, workloads=("DM3-640", "WE")
)


def tiny_sweep() -> Sweep:
    return Sweep().preset(TINY).frameworks("baseline", "oo-vr")


class TestShardPartition:
    """The deterministic, content-addressed grid partition."""

    @pytest.mark.parametrize("shard_count", (1, 2, 3, 5))
    def test_every_spec_in_exactly_one_shard(self, shard_count):
        specs = tiny_sweep().specs()
        memberships = [
            [
                index
                for index in range(shard_count)
                if shard_of(spec, shard_count) == index
            ]
            for spec in specs
        ]
        assert all(len(owned) == 1 for owned in memberships)

    def test_single_shard_owns_everything(self):
        specs = tiny_sweep().specs()
        assert all(shard_of(spec, 1) == 0 for spec in specs)

    def test_membership_stable_under_spec_order(self):
        """Shards are keyed by content, not by position in the grid."""
        specs = tiny_sweep().specs()
        by_key = {spec_key(spec): shard_of(spec, 3) for spec in specs}
        for spec in reversed(specs):
            assert shard_of(spec, 3) == by_key[spec_key(spec)]

    def test_shards_cover_the_grid_disjointly(self):
        specs = tiny_sweep().specs()
        seen = []
        for executor in iter_shards(2):
            seen.extend(
                spec_key(spec)
                for spec in specs
                if shard_of(spec, 2) == executor.shard_index
            )
        assert sorted(seen) == sorted(spec_key(spec) for spec in specs)

    def test_bad_shard_counts_rejected(self):
        spec = tiny_sweep().specs()[0]
        with pytest.raises(ExecutorError, match="at least 1"):
            shard_of(spec, 0)
        with pytest.raises(ExecutorError, match="at least 1"):
            list(iter_shards(0))


class TestExecutorSelection:
    def test_builtin_names_registered(self):
        assert EXECUTOR_NAMES == (
            "serial", "process", "profile", "shard", "remote"
        )

    def test_inferred_backends(self):
        assert isinstance(make_executor(jobs=1), SerialExecutor)
        assert isinstance(make_executor(jobs=4), ProcessExecutor)
        assert isinstance(make_executor(shard="0/2"), ShardExecutor)

    def test_named_backends(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        process = make_executor("process", jobs=3)
        assert isinstance(process, ProcessExecutor)
        assert process.jobs == 3
        sharded = make_executor("shard", jobs=2, shard="1/2")
        assert isinstance(sharded, ShardExecutor)
        assert (sharded.shard_index, sharded.shard_count) == (1, 2)
        assert isinstance(sharded.inner, ProcessExecutor)

    def test_instance_passes_through(self):
        backend = SerialExecutor()
        assert make_executor(backend) is backend

    def test_unknown_name_rejected(self):
        """A typo'd name is answered with the full registered menu —
        the same grammar the ``--engine`` error uses."""
        expected = (
            "unknown executor 'gpu'; "
            "have ['process', 'profile', 'remote', 'serial', 'shard']"
        )
        with pytest.raises(ExecutorError) as excinfo:
            make_executor("gpu")
        assert str(excinfo.value) == expected

    def test_remote_name_without_server_rejected(self, monkeypatch):
        """Selecting ``remote`` by name needs $OOVR_SERVER."""
        monkeypatch.delenv("OOVR_SERVER", raising=False)
        with pytest.raises(ExecutorError, match="OOVR_SERVER"):
            make_executor("remote")

    def test_remote_name_resolves_from_env(self, monkeypatch):
        from repro.service import RemoteExecutor

        monkeypatch.setenv("OOVR_SERVER", "http://127.0.0.1:1")
        executor = make_executor("remote")
        assert isinstance(executor, RemoteExecutor)
        assert executor.client.server == "http://127.0.0.1:1"

    def test_remote_name_plus_shard_rejected(self, monkeypatch):
        monkeypatch.setenv("OOVR_SERVER", "http://127.0.0.1:1")
        with pytest.raises(ExecutorError, match="does not shard"):
            make_executor("remote", shard="0/2")

    def test_shard_name_without_slice_rejected(self):
        with pytest.raises(ExecutorError, match="needs a slice"):
            make_executor("shard")

    def test_instance_plus_shard_rejected(self):
        with pytest.raises(ExecutorError, match="cannot combine"):
            make_executor(SerialExecutor(), shard="0/2")

    def test_non_shard_name_plus_shard_rejected(self):
        with pytest.raises(ExecutorError, match="does not shard"):
            make_executor("serial", shard="0/2")
        with pytest.raises(ExecutorError, match="does not shard"):
            make_executor("process", jobs=2, shard="0/2")

    def test_parse_shard(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("1/2") == (1, 2)
        assert parse_shard((2, 3)) == (2, 3)
        with pytest.raises(ExecutorError, match="expected INDEX/COUNT"):
            parse_shard("1of2")
        with pytest.raises(ExecutorError, match="expected INDEX/COUNT"):
            parse_shard("a/b")
        with pytest.raises(ExecutorError, match="out of range"):
            parse_shard("2/2")
        with pytest.raises(ExecutorError, match="out of range"):
            parse_shard("-1/2")
        with pytest.raises(ExecutorError, match="at least 1"):
            parse_shard("0/0")

    def test_bad_jobs_rejected(self):
        with pytest.raises(ExecutorError, match="at least 1"):
            ProcessExecutor(0)
        with pytest.raises(ExecutorError, match="at least 1"):
            make_executor(jobs=0)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExecutorError, match="already registered"):
            register_executor("serial", lambda jobs, shard: SerialExecutor())

    def test_custom_backend_selectable_by_name(self):
        calls = {}

        class Recording(SerialExecutor):
            name = "recording"

            def run(self, specs, cache=None, on_result=None):
                calls["specs"] = len(specs)
                return super().run(specs, cache=cache, on_result=on_result)

        register_executor(
            "test-recording", lambda jobs, shard: Recording()
        )
        results = tiny_sweep().run(executor="test-recording")
        assert calls["specs"] == 4
        assert len(results) == 4


class TestExecutorEquivalence:
    def test_named_backends_byte_identical(self):
        reference = tiny_sweep().run().to_csv()
        assert tiny_sweep().run(executor="serial").to_csv() == reference
        assert (
            tiny_sweep().run(executor="process", jobs=2).to_csv()
            == reference
        )
        assert tiny_sweep().run(jobs=2).to_csv() == reference

    def test_misbehaving_executor_length_checked(self):
        class Truncating(SerialExecutor):
            name = "truncating"

            def run(self, specs, cache=None, on_result=None):
                return super().run(
                    specs, cache=cache, on_result=on_result
                )[:-1]

        with pytest.raises(SessionError, match="3 results for 4 specs"):
            tiny_sweep().run(executor=Truncating())


class TestProgressCallback:
    def test_serial_callback_in_grid_order_with_hit_flags(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = []
        tiny_sweep().run(
            cache=cache,
            on_result=lambda spec, result, cached: first.append(
                (spec.framework, spec.workload, cached)
            ),
        )
        expected_cells = [
            (spec.framework, spec.workload)
            for spec in tiny_sweep().specs()
        ]
        assert [(f, w) for f, w, _ in first] == expected_cells
        assert [cached for _, _, cached in first] == [False] * 4
        second = []
        tiny_sweep().run(
            cache=cache,
            on_result=lambda spec, result, cached: second.append(cached),
        )
        assert second == [True] * 4

    def test_process_callback_in_grid_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        # Warm exactly one cell so the pool path sees a hit/miss mix.
        warm = tiny_sweep().specs()[1]
        cache.put(warm, warm.execute())
        events = []
        results = tiny_sweep().run(
            jobs=2,
            cache=cache,
            on_result=lambda spec, result, cached: events.append(
                (spec_key(spec), cached)
            ),
        )
        assert [key for key, _ in events] == [
            spec_key(spec) for spec in tiny_sweep().specs()
        ]
        assert [cached for _, cached in events] == [
            False, True, False, False,
        ]
        assert len(results) == 4

    def test_callback_results_match_returned_records(self):
        seen = []
        results = tiny_sweep().run(
            on_result=lambda spec, result, cached: seen.append(result)
        )
        assert seen == results.results


class TestShardScatterMerge:
    """The acceptance bar: scattered-then-merged == serial, byte for byte."""

    def test_scatter_merge_replay_byte_identical(self, tmp_path):
        reference = tiny_sweep().run(executor="serial")
        reference_csv = reference.to_csv()
        reference_json = reference.to_json()

        shard_caches = []
        shard_sets = []
        for index in range(2):
            cache = ResultCache(tmp_path / f"shard{index}")
            shard_caches.append(cache)
            shard_sets.append(
                tiny_sweep().run(shard=(index, 2), cache=cache)
            )
        owned = [len(results) for results in shard_sets]
        assert sum(owned) == 4

        merged = ResultCache(tmp_path / "merged")
        for cache in shard_caches:
            merged.merge(cache)
        assert len(merged) == 4

        replay = tiny_sweep().run(cache=merged)
        assert merged.stats.hits == 4 and merged.stats.misses == 0
        assert replay.to_csv() == reference_csv
        assert replay.to_json() == reference_json

    def test_shard_result_sets_merge_to_the_full_grid(self, tmp_path):
        shards = [
            tiny_sweep().run(shard=(index, 2)) for index in range(2)
        ]
        combined = shards[0].merge(shards[1])
        keys = sorted(spec_key(spec) for spec in combined.specs)
        assert keys == sorted(
            spec_key(spec) for spec in tiny_sweep().specs()
        )

    def test_resultset_merge_rejects_duplicate_cells(self):
        results = tiny_sweep().run()
        with pytest.raises(ValueError, match="duplicate cell"):
            results.merge(results)
        shard = tiny_sweep().run(shard=(0, 2))
        with pytest.raises(ValueError, match="must be disjoint"):
            results.merge(shard)

    def test_shard_runs_only_its_slice(self, tmp_path):
        cache = ResultCache(tmp_path)
        results = tiny_sweep().run(shard="0/2", cache=cache)
        specs = tiny_sweep().specs()
        owned = [spec for spec in specs if shard_of(spec, 2) == 0]
        assert [spec_key(s) for s in results.specs] == [
            spec_key(s) for s in owned
        ]
        # Only the owned cells were executed and stored.
        assert cache.stats.stores == len(owned)
        assert sorted(cache.keys()) == sorted(spec_key(s) for s in owned)

    def test_shard_manifest_records_owned_and_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        tiny_sweep().run(shard="1/2", cache=cache)
        manifests = load_shard_manifests(tmp_path)
        assert len(manifests) == 1
        manifest = manifests[0]
        assert (manifest.shard_index, manifest.shard_count) == (1, 2)
        specs = tiny_sweep().specs()
        owned = [
            spec_key(s) for s in specs if shard_of(s, 2) == 1
        ]
        skipped = [
            spec_key(s) for s in specs if shard_of(s, 2) != 1
        ]
        assert manifest.owned_keys == owned
        assert manifest.skipped_keys == skipped
        # The manifest file must not pollute the entry namespace.
        assert len(cache) == len(owned)
        entry = next(iter(manifest.owned))
        assert set(entry) == {"key", "framework", "workload", "config_label"}

    def test_two_grids_sharing_a_cache_keep_two_manifests(self, tmp_path):
        """Manifest filenames embed the grid fingerprint, so grids
        scattered into one directory never clobber each other."""
        cache = ResultCache(tmp_path)
        tiny_sweep().run(shard="0/2", cache=cache)
        Sweep().preset(TINY).frameworks("baseline").workloads("WE").run(
            shard="0/2", cache=cache
        )
        manifests = load_shard_manifests(tmp_path)
        assert len(manifests) == 2
        assert len({manifest.grid_key for manifest in manifests}) == 2
        # Re-running the same grid overwrites its own manifest only.
        tiny_sweep().run(shard="0/2", cache=cache)
        assert len(load_shard_manifests(tmp_path)) == 2

    def test_one_way_shard_equals_unsharded(self, tmp_path):
        reference = tiny_sweep().run().to_csv()
        sharded = tiny_sweep().run(
            shard="0/1", cache=ResultCache(tmp_path)
        )
        assert sharded.to_csv() == reference


class TestCliExecutor:
    GRID = (
        "sweep", "--frameworks", "baseline,oo-vr",
        "--workloads", "DM3-640,WE", "--fast", "--frames", "2",
    )

    def run_cli(self, capsys, *argv):
        code = cli.main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_sweep_shard_merge_manifest_replay(self, tmp_path, capsys):
        serial_csv = tmp_path / "serial.csv"
        code, _, _ = self.run_cli(
            capsys, *self.GRID, "--csv", str(serial_csv)
        )
        assert code == 0

        for index in range(2):
            code, _, err = self.run_cli(
                capsys, *self.GRID, "--shard", f"{index}/2",
                "--cache", str(tmp_path / f"shard{index}"), "--progress",
            )
            assert code == 0
            assert all(
                " hit " in line or " miss " in line
                for line in err.splitlines()
                if line.startswith("[")
            )

        code, out, _ = self.run_cli(
            capsys, "cache", "merge", str(tmp_path / "merged"),
            str(tmp_path / "shard0"), str(tmp_path / "shard1"),
        )
        assert code == 0
        assert "merged" in out

        code, out, _ = self.run_cli(
            capsys, "cache", "manifest", str(tmp_path / "merged")
        )
        assert code == 0
        assert "coverage: 4/4" in out

        replay_csv = tmp_path / "replay.csv"
        code, out, _ = self.run_cli(
            capsys, *self.GRID, "--cache", str(tmp_path / "merged"),
            "--csv", str(replay_csv),
        )
        assert code == 0
        assert "4 hits, 0 misses" in out
        assert replay_csv.read_bytes() == serial_csv.read_bytes()

    def test_sweep_progress_lines(self, capsys):
        code, _, err = self.run_cli(capsys, *self.GRID, "--progress")
        assert code == 0
        lines = [line for line in err.splitlines() if line.startswith("[")]
        assert len(lines) == 4
        assert lines[0].split()[1] == "miss"
        assert "baseline" in lines[0] and "DM3-640" in lines[0]

    def test_sweep_executor_flag(self, capsys, tmp_path):
        out_csv = tmp_path / "proc.csv"
        code, _, _ = self.run_cli(
            capsys, *self.GRID, "--executor", "process", "--jobs", "2",
            "--csv", str(out_csv),
        )
        assert code == 0
        assert out_csv.is_file()

    def test_sweep_unknown_executor_exits_2(self, capsys):
        code, _, err = self.run_cli(capsys, *self.GRID, "--executor", "gpu")
        assert code == 2
        assert "unknown executor" in err

    def test_sweep_bad_shard_exits_2(self, capsys):
        code, _, err = self.run_cli(capsys, *self.GRID, "--shard", "2/2")
        assert code == 2
        assert "out of range" in err

    def test_cache_merge_missing_source_exits_2(self, tmp_path, capsys):
        code, _, err = self.run_cli(
            capsys, "cache", "merge", str(tmp_path / "dst"),
            str(tmp_path / "nope"),
        )
        assert code == 2
        assert "no cache directory" in err

    def test_cache_manifest_without_manifests(self, tmp_path, capsys):
        cache_dir = tmp_path / "plain"
        cache_dir.mkdir()
        code, out, _ = self.run_cli(
            capsys, "cache", "manifest", str(cache_dir)
        )
        assert code == 0
        assert "no shard manifests" in out

    def test_cache_manifest_incomplete_exits_1(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "shard0")
        tiny_sweep().run(shard="0/2", cache=cache)
        # Drop one owned entry: the manifest audit must notice.
        removed = cache.keys()[0]
        (cache.root / f"{removed}.json").unlink()
        code, out, _ = self.run_cli(
            capsys, "cache", "manifest", str(cache.root)
        )
        assert code == 1
        assert "missing" in out

    def test_cache_manifest_tolerates_torn_manifest(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "shard0")
        tiny_sweep().run(shard="0/2", cache=cache)
        torn = cache.root / "shard-1of2-0000dead0000.manifest.json"
        torn.write_text('{"version": 1, "shard_i', encoding="utf-8")
        code, out, _ = self.run_cli(
            capsys, "cache", "manifest", str(cache.root)
        )
        assert code == 1
        assert "unreadable shard manifest" in out
        # The intact manifest is still reported.
        assert "coverage:" in out
