"""Tests for the energy model and reports."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import (
    EnergyConstants,
    EnergyModel,
    IntegrationPoint,
    compare_frameworks,
    scene_energy,
)
from repro.experiments.runner import ExperimentConfig, run_framework_suite
from repro.memory.link import TrafficType
from repro.stats.metrics import FrameResult, TrafficBreakdown

TINY = ExperimentConfig(draw_scale=0.05, num_frames=2, workloads=("DM3-640",))


def make_frame(
    inter_bytes=1_000_000.0,
    dram=(2_000_000.0, 2_000_000.0),
    busy=(50_000.0, 50_000.0),
    cycles=120_000.0,
) -> FrameResult:
    return FrameResult(
        framework="test",
        workload="w",
        cycles=cycles,
        gpm_busy_cycles=list(busy),
        composition_cycles=0.0,
        traffic=TrafficBreakdown({TrafficType.TEXTURE: inter_bytes}),
        dram_bytes=list(dram),
    )


class TestEnergyModel:
    def test_link_energy_is_bits_times_pj(self):
        model = EnergyModel(EnergyConstants(link_pj_per_bit=10.0))
        energy = model.frame_energy(make_frame(inter_bytes=1e6))
        assert energy.link_joules == pytest.approx(1e6 * 8 * 10e-12)

    def test_dram_energy_sums_gpms(self):
        model = EnergyModel(EnergyConstants(dram_pj_per_byte=50.0))
        energy = model.frame_energy(make_frame(dram=(1e6, 3e6)))
        assert energy.dram_joules == pytest.approx(4e6 * 50e-12)

    def test_engine_energy_only_when_active(self):
        model = EnergyModel()
        off = model.frame_energy(make_frame(), engine_active=False)
        on = model.frame_energy(make_frame(cycles=1e9), engine_active=True)
        assert off.engine_joules == 0.0
        # 0.3 W for 1e9 cycles at 1 GHz = 1 second = 0.3 J.
        assert on.engine_joules == pytest.approx(0.3)

    def test_total_is_sum_of_components(self):
        energy = EnergyModel().frame_energy(make_frame(), engine_active=True)
        assert energy.total_joules == pytest.approx(
            energy.link_joules
            + energy.dram_joules
            + energy.compute_joules
            + energy.engine_joules
        )

    def test_fraction_of_components(self):
        energy = EnergyModel().frame_energy(make_frame())
        total = sum(
            energy.fraction_of(c) for c in ("link", "dram", "compute", "engine")
        )
        assert total == pytest.approx(1.0)

    def test_integration_point_constants(self):
        assert IntegrationPoint.ON_BOARD.picojoules_per_bit == 10.0
        assert IntegrationPoint.CROSS_NODE.picojoules_per_bit == 250.0
        cross = EnergyConstants.for_integration(IntegrationPoint.CROSS_NODE)
        assert cross.link_pj_per_bit == 250.0

    def test_cross_node_is_25x_link_energy(self):
        frame = make_frame()
        board = EnergyModel(
            EnergyConstants.for_integration(IntegrationPoint.ON_BOARD)
        ).frame_energy(frame)
        nodes = EnergyModel(
            EnergyConstants.for_integration(IntegrationPoint.CROSS_NODE)
        ).frame_energy(frame)
        assert nodes.link_joules == pytest.approx(25.0 * board.link_joules)

    def test_link_energy_by_type_partitions_total(self):
        model = EnergyModel()
        frame = FrameResult(
            framework="t",
            workload="w",
            cycles=1e5,
            gpm_busy_cycles=[1e4],
            composition_cycles=0.0,
            traffic=TrafficBreakdown(
                {TrafficType.TEXTURE: 1e6, TrafficType.ZTEST: 5e5}
            ),
            dram_bytes=[0.0],
        )
        by_type = model.link_energy_by_type(frame)
        assert sum(by_type.values()) == pytest.approx(
            model.frame_energy(frame).link_joules
        )

    def test_constants_validated(self):
        with pytest.raises(ValueError):
            EnergyConstants(link_pj_per_bit=-1.0)
        with pytest.raises(ValueError):
            EnergyModel(clock_hz=0.0)

    @settings(max_examples=20, deadline=None)
    @given(nbytes=st.floats(0, 1e9), scale=st.floats(1.1, 10.0))
    def test_property_link_energy_monotone_in_traffic(self, nbytes, scale):
        model = EnergyModel()
        small = model.frame_energy(make_frame(inter_bytes=nbytes))
        large = model.frame_energy(make_frame(inter_bytes=nbytes * scale))
        assert large.link_joules >= small.link_joules


class TestSceneEnergy:
    def test_scene_energy_charges_engine_for_oovr_only(self):
        results_oovr = run_framework_suite("oo-vr", TINY)
        results_base = run_framework_suite("baseline", TINY)
        oovr = scene_energy(results_oovr["DM3-640"])
        base = scene_energy(results_base["DM3-640"])
        assert oovr.per_frame.engine_joules > 0.0
        assert base.per_frame.engine_joules == 0.0

    def test_oovr_spends_less_link_energy_than_baseline(self):
        oovr = scene_energy(run_framework_suite("oo-vr", TINY)["DM3-640"])
        base = scene_energy(run_framework_suite("baseline", TINY)["DM3-640"])
        assert oovr.per_frame.link_joules < base.per_frame.link_joules

    def test_compare_frameworks_shapes(self):
        suites = {
            name: run_framework_suite(name, TINY)
            for name in ("baseline", "oo-vr")
        }
        table = compare_frameworks(suites)
        assert set(table) == {"baseline", "oo-vr"}
        for row in table.values():
            assert {"link", "dram", "compute", "engine", "total"} <= set(row)
        assert table["oo-vr"]["link"] < table["baseline"]["link"]
