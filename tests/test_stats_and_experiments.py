"""Stats, reporting, the experiment runner, figures and tables."""

import pytest

from repro.experiments import figures, tables
from repro.experiments.runner import (
    ExperimentConfig,
    run_framework_suite,
    scene_for,
    single_frame_speedups,
    throughput_speedups,
    traffic_ratios,
    with_average,
)
from repro.memory.link import TrafficType
from repro.stats.metrics import (
    FrameResult,
    SceneResult,
    TrafficBreakdown,
    geomean,
    normalize,
)
from repro.stats.reporting import format_table, series_table

#: Two tiny workloads keep the experiment tests quick.
TINY = ExperimentConfig(
    draw_scale=0.08, num_frames=2, workloads=("DM3-640", "WE")
)


def frame(cycles=1000.0, busy=(250.0, 250.0, 250.0, 250.0), comp=0.0, tex=100.0):
    return FrameResult(
        framework="f",
        workload="w",
        cycles=cycles,
        gpm_busy_cycles=list(busy),
        composition_cycles=comp,
        traffic=TrafficBreakdown({TrafficType.TEXTURE: tex}),
        dram_bytes=[0.0] * 4,
    )


class TestMetrics:
    def test_load_balance_ratio(self):
        f = frame(busy=(100.0, 200.0, 150.0, 50.0))
        assert f.load_balance_ratio == pytest.approx(4.0)

    def test_load_balance_ignores_idle_gpms(self):
        f = frame(busy=(100.0, 0.0, 0.0, 0.0))
        assert f.load_balance_ratio == 1.0

    def test_latency_ms(self):
        assert frame(cycles=2e6).latency_ms() == pytest.approx(2.0)

    def test_traffic_merge(self):
        a = TrafficBreakdown({TrafficType.TEXTURE: 10.0})
        b = TrafficBreakdown(
            {TrafficType.TEXTURE: 5.0, TrafficType.COMMAND: 2.0}
        )
        merged = a.merged_with(b)
        assert merged.bytes_of(TrafficType.TEXTURE) == 15.0
        assert merged.total_bytes == 17.0

    def test_scene_steady_frames(self):
        scene = SceneResult(
            framework="f", workload="w",
            frames=[frame(cycles=5000.0), frame(cycles=1000.0),
                    frame(cycles=1200.0)],
            frame_interval_cycles=1100.0,
        )
        assert scene.single_frame_cycles == pytest.approx(1100.0)

    def test_scene_single_frame_fallback(self):
        scene = SceneResult(
            framework="f", workload="w",
            frames=[frame(cycles=5000.0)],
            frame_interval_cycles=5000.0,
        )
        assert scene.single_frame_cycles == 5000.0

    def test_throughput_fps(self):
        scene = SceneResult(
            framework="f", workload="w", frames=[frame()],
            frame_interval_cycles=1e7,
        )
        assert scene.throughput_fps == pytest.approx(100.0)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([0.0])

    def test_normalize(self):
        out = normalize({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_normalize_missing_baseline(self):
        with pytest.raises(KeyError):
            normalize({"a": 1.0}, "z")


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("name", "value"), [("x", 1.0), ("long-name", 2.5)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "2.500" in text

    def test_format_table_title(self):
        text = format_table(("a",), [("b",)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_series_table_missing_cells(self):
        text = series_table(
            {"col": {"row1": 1.0}}, ["row1", "row2"], row_header="wl"
        )
        assert "-" in text


class TestRunner:
    def test_scene_caching(self):
        a = scene_for("DM3-640", TINY)
        b = scene_for("DM3-640", TINY)
        assert a is b

    def test_run_framework_suite_keys(self):
        results = run_framework_suite("oo-vr", TINY)
        assert set(results) == set(TINY.workloads)

    def test_speedup_helpers(self):
        base = run_framework_suite("baseline", TINY)
        fast = run_framework_suite("oo-vr", TINY)
        speedups = single_frame_speedups(fast, base)
        assert all(v > 1.0 for v in speedups.values())
        ratios = traffic_ratios(fast, base)
        assert all(v < 1.0 for v in ratios.values())
        throughput = throughput_speedups(fast, base)
        assert all(v > 0 for v in throughput.values())

    def test_with_average_appends_geomean(self):
        out = with_average({"a": 1.0, "b": 4.0})
        assert out["Avg."] == pytest.approx(2.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(draw_scale=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(num_frames=0)


class TestFigures:
    def test_fig4_monotone_in_bandwidth(self):
        result = figures.fig04_bandwidth_sensitivity(TINY)
        avgs = [result.average(c) for c in result.series]
        assert avgs == sorted(avgs, reverse=True)
        assert avgs[0] == pytest.approx(1.0)

    def test_fig7_structure(self):
        result = figures.fig07_afr(TINY)
        assert result.average("overall perf") > 1.0
        assert result.average("frame latency") > 1.0

    def test_fig10_ratios_at_least_one(self):
        result = figures.fig10_load_balance(TINY)
        for value in result.series["best-to-worst"].values():
            assert value >= 1.0

    def test_fig15_oovr_wins(self):
        result = figures.fig15_oovr_speedup(TINY)
        assert result.average("OOVR") > result.average("OO_APP")
        assert result.average("OO_APP") > 1.0

    def test_fig16_oovr_lowest(self):
        result = figures.fig16_oovr_traffic(TINY)
        assert result.average("OOVR") < result.average("Object-Level") < 1.0

    def test_smp_validation_gain(self):
        result = figures.smp_validation(TINY)
        assert result.average("SMP speedup") > 1.1

    def test_to_text_includes_reference(self):
        result = figures.fig16_oovr_traffic(TINY)
        text = result.to_text()
        assert "paper reference" in text
        assert "OOVR" in text

    def test_registry_complete(self):
        assert set(figures.FIGURES) == {
            "4", "7", "8", "9", "10", "15", "16", "17", "18", "smp"
        }


class TestTables:
    def test_table1_text(self):
        text = tables.table1_requirements()
        assert "Stereo HMD" in text
        assert "58.32x2" in text

    def test_table2_text(self):
        text = tables.table2_configuration()
        assert "64GB/s NVLink" in text
        assert "4MB total, 16-way" in text

    def test_table3_text(self):
        text = tables.table3_benchmarks(TINY)
        assert "Doom 3" in text
        assert "1697" in text

    def test_overhead_text(self):
        text = tables.overhead_analysis()
        assert "bits" in text
