"""OO-VR reproduction: NUMA-friendly object-oriented VR rendering.

A cycle-approximate simulator of NUMA-based multi-GPU systems running
stereo VR rendering, reproducing Xie et al., *OO-VR* (ISCA 2019):

- the multi-GPU substrate (GPMs, NVLink fabric, NUMA page placement);
- the four-step SMP rendering pipeline;
- the parallel rendering baselines (AFR, tile-SFR, object-SFR);
- the OO-VR contribution (programming model, TSL batching, runtime
  distribution engine, distributed hardware composition).

Quickstart — every experiment is a :class:`Session` (one run) or a
:class:`Sweep` (a grid)::

    from repro import Session, Sweep

    # One cell: OO-VR on Half-Life 2 at 1280x1024.
    result = Session().framework("oo-vr").workload("HL2-1280").run()
    print(result.single_frame_cycles, result.traffic.total_bytes)

    # A grid: two frameworks x two workloads, four worker processes,
    # tidy records out.
    records = (
        Sweep()
        .frameworks("baseline", "oo-vr")
        .workloads("HL2-1280", "WE")
        .fast()
        .run(jobs=4)
        .to_records()
    )

:class:`ResultSet` (what ``Sweep.run`` returns) exports ``to_json()`` /
``to_csv()`` and computes paper-style series: ``pivot``, ``geomean_by``,
and ``normalize_to`` (speedups and traffic ratios against a baseline
column).  ``Sweep.run(cache=ResultCache("dir"))`` memoises executed
cells on disk keyed by the spec's content hash, so repeated grids skip
already-measured cells byte-identically.  The same grids drive ``oovr
fig``, ``oovr sweep --jobs N --cache DIR``, and the benchmark harness.
"""

from repro.config import (
    CostModel,
    GPMConfig,
    LinkConfig,
    SMConfig,
    SystemConfig,
    baseline_system,
    single_gpu_system,
)
from repro.frameworks import build_framework, framework_names
from repro.scene import (
    BENCHMARKS,
    WORKLOADS,
    Frame,
    RenderObject,
    Scene,
    make_benchmark_scene,
    workload_scene,
)
from repro.core import (
    OOApplication,
    OOMiddleware,
    OverheadModel,
    RenderingTimePredictor,
    texture_sharing_level,
)
from repro.session import (
    FAST,
    FULL,
    ExperimentConfig,
    ResultCache,
    ResultSet,
    RunSpec,
    Session,
    Sweep,
)
from repro.stats import FrameResult, SceneResult, geomean, normalize

__version__ = "1.2.0"

__all__ = [
    "CostModel",
    "GPMConfig",
    "LinkConfig",
    "SMConfig",
    "SystemConfig",
    "baseline_system",
    "single_gpu_system",
    "build_framework",
    "framework_names",
    "BENCHMARKS",
    "WORKLOADS",
    "Frame",
    "RenderObject",
    "Scene",
    "make_benchmark_scene",
    "workload_scene",
    "OOApplication",
    "OOMiddleware",
    "OverheadModel",
    "RenderingTimePredictor",
    "texture_sharing_level",
    "FAST",
    "FULL",
    "ExperimentConfig",
    "ResultCache",
    "ResultSet",
    "RunSpec",
    "Session",
    "Sweep",
    "FrameResult",
    "SceneResult",
    "geomean",
    "normalize",
    "__version__",
]
