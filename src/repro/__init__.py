"""OO-VR reproduction: NUMA-friendly object-oriented VR rendering.

A cycle-approximate simulator of NUMA-based multi-GPU systems running
stereo VR rendering, reproducing Xie et al., *OO-VR* (ISCA 2019):

- the multi-GPU substrate (GPMs, NVLink fabric, NUMA page placement);
- the four-step SMP rendering pipeline;
- the parallel rendering baselines (AFR, tile-SFR, object-SFR);
- the OO-VR contribution (programming model, TSL batching, runtime
  distribution engine, distributed hardware composition).

Quickstart::

    from repro import baseline_system, build_framework, workload_scene

    scene = workload_scene("HL2-1280")
    oovr = build_framework("oo-vr")
    result = oovr.render_scene(scene)
    print(result.single_frame_cycles, result.traffic.total_bytes)
"""

from repro.config import (
    CostModel,
    GPMConfig,
    LinkConfig,
    SMConfig,
    SystemConfig,
    baseline_system,
    single_gpu_system,
)
from repro.frameworks import build_framework, framework_names
from repro.scene import (
    BENCHMARKS,
    WORKLOADS,
    Frame,
    RenderObject,
    Scene,
    make_benchmark_scene,
    workload_scene,
)
from repro.core import (
    OOApplication,
    OOMiddleware,
    OverheadModel,
    RenderingTimePredictor,
    texture_sharing_level,
)
from repro.stats import FrameResult, SceneResult, geomean, normalize

__version__ = "1.1.0"

__all__ = [
    "CostModel",
    "GPMConfig",
    "LinkConfig",
    "SMConfig",
    "SystemConfig",
    "baseline_system",
    "single_gpu_system",
    "build_framework",
    "framework_names",
    "BENCHMARKS",
    "WORKLOADS",
    "Frame",
    "RenderObject",
    "Scene",
    "make_benchmark_scene",
    "workload_scene",
    "OOApplication",
    "OOMiddleware",
    "OverheadModel",
    "RenderingTimePredictor",
    "texture_sharing_level",
    "FrameResult",
    "SceneResult",
    "geomean",
    "normalize",
    "__version__",
]
