"""Pluggable execution engines for the multi-GPU simulator.

The engine layer separates *what the machine is* (GPMs, DRAMs, links,
placement — :class:`~repro.gpu.system.MultiGPUSystem`) from *when
things happen on it*:

- :class:`~repro.engine.analytic.AnalyticEngine` (``"analytic"``, the
  default) — the paper-reproducing per-unit roofline; numerically
  identical to the original in-system timing;
- :class:`~repro.engine.event.EventEngine` (``"event"``) — a
  discrete-event simulation that time-shares link and DRAM bandwidth
  across concurrently active flows and emits a real
  :class:`~repro.engine.trace.FrameTrace`.

Engines are selected end-to-end by name: ``SystemConfig(engine=...)``,
``RunSpec(engine=...)``, ``Session/Sweep.engine(...)``, the framework
variant grammar (``oo-vr:engine=event``) and ``oovr sweep --engine``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple, Type

from repro.engine.analytic import AnalyticEngine
from repro.engine.base import (
    CompositionSchedule,
    CompositionTransfer,
    EngineError,
    ExecutionEngine,
    LinkFlow,
    ResolvedUnit,
    StageCopy,
    StageOutcome,
    classify_bottleneck,
)
from repro.engine.event import EventEngine
from repro.engine.trace import PHASES, FrameTrace, LinkUsage, TraceInterval

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.system import MultiGPUSystem

__all__ = [
    "ENGINE_DEFAULT",
    "ENGINE_NAMES",
    "PHASES",
    "AnalyticEngine",
    "CompositionSchedule",
    "CompositionTransfer",
    "EngineError",
    "EventEngine",
    "ExecutionEngine",
    "FrameTrace",
    "LinkFlow",
    "LinkUsage",
    "ResolvedUnit",
    "StageCopy",
    "StageOutcome",
    "TraceInterval",
    "build_engine",
    "classify_bottleneck",
    "validate_engine_name",
]

_ENGINES: Dict[str, Type[ExecutionEngine]] = {
    AnalyticEngine.name: AnalyticEngine,
    EventEngine.name: EventEngine,
}

#: The behaviour-preserving default every figure is calibrated under.
ENGINE_DEFAULT = AnalyticEngine.name

#: Selectable engine names, in stable order.
ENGINE_NAMES: Tuple[str, ...] = tuple(sorted(_ENGINES))


def validate_engine_name(name: str) -> None:
    """Raise :class:`EngineError` unless ``name`` is a known engine."""
    if name not in _ENGINES:
        raise EngineError(
            f"unknown execution engine {name!r}; have {list(ENGINE_NAMES)}"
        )


def build_engine(name: str, system: "MultiGPUSystem") -> ExecutionEngine:
    """Instantiate the engine ``name`` for ``system``."""
    validate_engine_name(name)
    return _ENGINES[name](system)
