"""Frame traces: what each GPM and link did, and when.

A :class:`FrameTrace` is the common output of every
:class:`~repro.engine.base.ExecutionEngine`: an interval log per GPM
(render units, staging stalls, steal slices), per-link occupancy, and
the roll-up numbers :meth:`MultiGPUSystem.frame_result
<repro.gpu.system.MultiGPUSystem.frame_result>` needs (busy cycles per
GPM and the render critical path).  The analytic engine assembles its
trace from the per-unit intervals it priced eagerly; the event engine
emits the intervals its discrete-event simulation actually produced —
including the contention-stretched ones the analytic model cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["TraceInterval", "LinkUsage", "FrameTrace"]


@dataclass(frozen=True)
class TraceInterval:
    """One occupied span of one GPM's timeline."""

    gpm: int
    label: str
    start: float
    end: float
    #: ``render`` (a work unit), ``stall`` (a staging copy the GPM
    #: waited on) or ``steal`` (a straggler slice absorbed at the tail).
    kind: str = "render"

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")

    @property
    def cycles(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class LinkUsage:
    """Occupancy of one directional physical link over the frame."""

    src: int
    dst: int
    #: Bytes laid on this wire (physical, per hop on routed fabrics).
    nbytes: float
    #: Cycles the wire spent transferring (time-shared windows count
    #: once, so this is wall-clock occupancy, not bytes/bandwidth).
    busy_cycles: float


@dataclass(frozen=True)
class FrameTrace:
    """Per-GPM/per-link timing record of one rendered frame."""

    #: Name of the engine that produced the trace.
    engine: str
    num_gpms: int
    intervals: Tuple[TraceInterval, ...]
    #: Cycles each GPM spent occupied (render + stall + steal spans).
    gpm_busy: Tuple[float, ...]
    #: Time each GPM finished its last span (0.0 for idle GPMs).
    gpm_end: Tuple[float, ...]
    links: Tuple[LinkUsage, ...] = ()

    def __post_init__(self) -> None:
        if self.num_gpms <= 0:
            raise ValueError("trace needs at least one GPM")
        if len(self.gpm_busy) != self.num_gpms or len(self.gpm_end) != self.num_gpms:
            raise ValueError("per-GPM series must cover every GPM")

    @property
    def render_critical_path(self) -> float:
        """When the last GPM went idle: the frame's render time."""
        return max(self.gpm_end) if self.gpm_end else 0.0

    def intervals_for(self, gpm: int) -> List[TraceInterval]:
        """This GPM's spans, in start order."""
        if not 0 <= gpm < self.num_gpms:
            raise ValueError(f"GPM {gpm} out of range 0..{self.num_gpms - 1}")
        spans = [span for span in self.intervals if span.gpm == gpm]
        spans.sort(key=lambda span: (span.start, span.end))
        return spans

    def link_bytes(self) -> Dict[Tuple[int, int], float]:
        """Physical bytes per directional link (conservation checks).

        Covers the bytes this trace *timed*: under the event engine
        that is the render-phase flows (staging copies and the
        composition barrier are priced analytically — see
        :mod:`repro.engine.event` — and appear only in the fabric's
        counters); the analytic trace reports the fabric totals.
        """
        out: Dict[Tuple[int, int], float] = {}
        for usage in self.links:
            key = (usage.src, usage.dst)
            out[key] = out.get(key, 0.0) + usage.nbytes
        return out

    def utilisation(self, gpm: int) -> float:
        """Occupied fraction of the frame's critical path for one GPM."""
        horizon = self.render_critical_path
        if horizon <= 0:
            return 0.0
        return self.gpm_busy[gpm] / horizon

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (trace export from the CLI and studies)."""
        return {
            "engine": self.engine,
            "num_gpms": self.num_gpms,
            "render_critical_path": self.render_critical_path,
            "gpm_busy": list(self.gpm_busy),
            "gpm_end": list(self.gpm_end),
            "intervals": [
                {
                    "gpm": span.gpm,
                    "label": span.label,
                    "start": span.start,
                    "end": span.end,
                    "kind": span.kind,
                }
                for span in self.intervals
            ],
            "links": [
                {
                    "src": usage.src,
                    "dst": usage.dst,
                    "bytes": usage.nbytes,
                    "busy_cycles": usage.busy_cycles,
                }
                for usage in self.links
            ],
        }
