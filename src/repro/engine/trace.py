"""Frame traces: what each GPM and link did, and when.

A :class:`FrameTrace` is the common output of every
:class:`~repro.engine.base.ExecutionEngine`: an interval log per GPM
(render units, staging stalls, steal slices, background staging copies,
the composition barrier), per-link occupancy, per-phase roll-ups, and
the numbers :meth:`MultiGPUSystem.frame_result
<repro.gpu.system.MultiGPUSystem.frame_result>` needs (busy cycles per
GPM, the render critical path and the composition-phase cycles).  The
analytic engine assembles its trace from the per-unit intervals it
priced eagerly; the event engine emits the intervals its discrete-event
simulation actually produced — including the contention-stretched ones
the analytic model cannot see.

Every byte the fabric counts is owned by exactly one *phase*:

- ``render`` — work-unit binding traffic (texture/vertex/z/fb/command)
  plus steal duplication;
- ``staging`` — software staging and PA pre-allocation copies
  (:meth:`ExecutionEngine.stage_flow
  <repro.engine.base.ExecutionEngine.stage_flow>`);
- ``composition`` — the post-render barrier
  (:meth:`ExecutionEngine.composition_phase
  <repro.engine.base.ExecutionEngine.composition_phase>`).

Both engines report identical per-phase byte totals (binding and flow
accounting are shared); only the timing differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

__all__ = ["PHASES", "TraceInterval", "LinkUsage", "FrameTrace"]

#: The frame phases every engine prices, in pipeline order.
PHASES = ("render", "staging", "composition")

#: Interval kinds that occupy a GPM's render lane (and therefore count
#: into ``gpm_busy``/``gpm_end``).
_RENDER_LANE_KINDS = frozenset({"render", "stall", "steal"})


@dataclass(frozen=True)
class TraceInterval:
    """One occupied span of one GPM's timeline."""

    gpm: int
    label: str
    start: float
    end: float
    #: ``render`` (a work unit), ``stall`` (a staging copy the GPM
    #: waited on), ``steal`` (a straggler slice absorbed at the tail),
    #: ``stage`` (a background staging/PA copy streaming through the
    #: copy engines while the GPM renders) or ``compose`` (the
    #: post-render composition barrier on the GPM's ROPs).
    kind: str = "render"

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")

    @property
    def cycles(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class LinkUsage:
    """Occupancy of one directional physical link over the frame."""

    src: int
    dst: int
    #: Bytes laid on this wire (physical, per hop on routed fabrics).
    nbytes: float
    #: Cycles the wire spent transferring (time-shared windows count
    #: once, so this is wall-clock occupancy, not bytes/bandwidth).
    busy_cycles: float


@dataclass(frozen=True)
class FrameTrace:
    """Per-GPM/per-link timing record of one rendered frame."""

    #: Name of the engine that produced the trace.
    engine: str
    num_gpms: int
    intervals: Tuple[TraceInterval, ...]
    #: Cycles each GPM spent occupied on its render lane (render +
    #: stall + steal spans; background copies and composition are
    #: separate lanes).
    gpm_busy: Tuple[float, ...]
    #: Time each GPM finished its last render-lane span (0.0 for idle
    #: GPMs); composition runs after this barrier.
    gpm_end: Tuple[float, ...]
    links: Tuple[LinkUsage, ...] = ()
    #: Critical path of the post-render composition barrier (0.0 when
    #: the framework composes nothing).  The analytic engine reports
    #: the schedule's roofline price; the event engine the simulated,
    #: contention-aware barrier length.
    composition_cycles: float = 0.0
    #: Inter-GPM bytes per frame phase (``render``/``staging``/
    #: ``composition``) — identical across engines by construction.
    phase_link_bytes: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_gpms <= 0:
            raise ValueError("trace needs at least one GPM")
        if len(self.gpm_busy) != self.num_gpms or len(self.gpm_end) != self.num_gpms:
            raise ValueError("per-GPM series must cover every GPM")
        if self.composition_cycles < 0:
            raise ValueError("negative composition time")

    @property
    def render_critical_path(self) -> float:
        """When the last GPM went idle: the pre-barrier render time."""
        return max(self.gpm_end) if self.gpm_end else 0.0

    @property
    def frame_cycles(self) -> float:
        """End-to-end frame time: render barrier plus composition."""
        return self.render_critical_path + self.composition_cycles

    def intervals_for(self, gpm: int) -> List[TraceInterval]:
        """This GPM's spans (all lanes), in start order."""
        if not 0 <= gpm < self.num_gpms:
            raise ValueError(f"GPM {gpm} out of range 0..{self.num_gpms - 1}")
        spans = [span for span in self.intervals if span.gpm == gpm]
        spans.sort(key=lambda span: (span.start, span.end))
        return spans

    def link_bytes(self) -> Dict[Tuple[int, int], float]:
        """Physical bytes per directional link (conservation checks).

        Covers every byte this trace timed — render flows, staging/PA
        copies and the composition barrier alike.  Under the event
        engine these are the bytes its simulation drained; the analytic
        trace reports the fabric's counters, which agree because flow
        accounting is engine-independent.
        """
        out: Dict[Tuple[int, int], float] = {}
        for usage in self.links:
            key = (usage.src, usage.dst)
            out[key] = out.get(key, 0.0) + usage.nbytes
        return out

    def busy_by_kind(self) -> Dict[str, float]:
        """Total occupied cycles per interval kind, across all GPMs."""
        out: Dict[str, float] = {}
        for span in self.intervals:
            out[span.kind] = out.get(span.kind, 0.0) + span.cycles
        return out

    def phase_cycles(self) -> Dict[str, float]:
        """The frame's critical path decomposed by phase.

        ``render`` + ``staging`` span the pre-barrier timeline of the
        critical (last-finishing) GPM — ``staging`` is the part of that
        GPM's path spent blocked on staging copies (``stall`` spans),
        ``render`` the rest; ``composition`` is the post-render
        barrier.  The three always sum to :attr:`frame_cycles`, so a
        phase breakdown conserves the frame's total time.  Background
        (``stage``-kind) copies overlap rendering and contribute no
        critical-path cycles of their own.
        """
        staging = 0.0
        if self.gpm_end:
            critical_gpm = max(
                range(self.num_gpms), key=lambda g: self.gpm_end[g]
            )
            staging = sum(
                (
                    span.cycles
                    for span in self.intervals
                    if span.gpm == critical_gpm and span.kind == "stall"
                ),
                0.0,
            )
        return {
            "render": self.render_critical_path - staging,
            "staging": staging,
            "composition": self.composition_cycles,
        }

    def phase_summary(self) -> Dict[str, object]:
        """Compact per-phase roll-up (the event-engine golden format).

        Per-phase critical-path cycles and link bytes, per-kind busy
        cycles and the per-GPM render-lane occupancy — small enough to
        commit as a golden file, detailed enough that any event-engine
        timing change moves it.
        """
        return {
            "engine": self.engine,
            "num_gpms": self.num_gpms,
            "frame_cycles": self.frame_cycles,
            "render_critical_path": self.render_critical_path,
            "composition_cycles": self.composition_cycles,
            "phase_cycles": self.phase_cycles(),
            "phase_link_bytes": {
                phase: self.phase_link_bytes.get(phase, 0.0)
                for phase in PHASES
            },
            "busy_by_kind": dict(sorted(self.busy_by_kind().items())),
            "gpm_busy": list(self.gpm_busy),
        }

    def utilisation(self, gpm: int) -> float:
        """Render-lane occupancy over the render critical path."""
        horizon = self.render_critical_path
        if horizon <= 0:
            return 0.0
        return self.gpm_busy[gpm] / horizon

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (trace export from the CLI and studies)."""
        return {
            "engine": self.engine,
            "num_gpms": self.num_gpms,
            "render_critical_path": self.render_critical_path,
            "composition_cycles": self.composition_cycles,
            "frame_cycles": self.frame_cycles,
            "phase_link_bytes": dict(self.phase_link_bytes),
            "gpm_busy": list(self.gpm_busy),
            "gpm_end": list(self.gpm_end),
            "intervals": [
                {
                    "gpm": span.gpm,
                    "label": span.label,
                    "start": span.start,
                    "end": span.end,
                    "kind": span.kind,
                }
                for span in self.intervals
            ],
            "links": [
                {
                    "src": usage.src,
                    "dst": usage.dst,
                    "bytes": usage.nbytes,
                    "busy_cycles": usage.busy_cycles,
                }
                for usage in self.links
            ],
        }
