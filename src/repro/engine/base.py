"""The pluggable execution-engine layer.

:class:`~repro.gpu.system.MultiGPUSystem` owns *what* the machine is
(GPMs, DRAMs, the link fabric, page placement); an
:class:`ExecutionEngine` owns *when* things happen on it.  The split is

- :meth:`ExecutionEngine.bind` — resolve a work unit's memory touches
  through the placement map into local DRAM bytes, per-peer link bytes
  and per-DRAM demand, performing the frame's byte accounting (fabric
  transfers, DRAM counters, remote-cache filtering) exactly once.  The
  result is a :class:`ResolvedUnit`: everything timing needs, with no
  further placement state involved;
- :meth:`ExecutionEngine.execute` — schedule a resolved unit on its
  GPM and advance the engine's *scheduling clock* (the per-GPM
  ``ready_at``/``busy_cycles`` every dispatcher reads).  Both engines
  price the scheduling clock with the analytic per-unit roofline, so
  dispatch decisions — and therefore schedules, placement and traffic
  — are identical across engines;
- :meth:`ExecutionEngine.stage_flow` — account and price one unit's
  staging/PA copies.  Byte accounting (fabric transfers, destination
  DRAM writes) is shared; the *visible* cost is engine-specific: the
  scheduling clock charges the analytic overlap formula (a stall of
  ``bytes / (link bandwidth x parallelism)``, or nothing when the copy
  is prefetched), while the event engine additionally replays the copy
  as a background flow contending with render traffic on the wires;
- :meth:`ExecutionEngine.composition_phase` — run the post-render
  composition barrier from a :class:`CompositionSchedule` (per-GPM ROP
  work plus the pixel transfers sort-last assembly moves).  Again the
  byte accounting is shared and the pricing diverges: the analytic
  engine charges ``max(ROP time, slowest transfer)``, the event engine
  simulates the barrier's flows against each other;
- :meth:`ExecutionEngine.finish_frame` — produce the frame's
  :class:`~repro.engine.trace.FrameTrace`.  This is where the engines
  diverge: :class:`~repro.engine.analytic.AnalyticEngine` reports the
  scheduling clock verbatim (the paper-reproducing model), while
  :class:`~repro.engine.event.EventEngine` replays the schedule through
  a discrete-event simulation that time-shares link and DRAM bandwidth
  across concurrently active flows.

Every phase of a frame — render units, staging copies, the composition
barrier — is therefore expressed to the engine as work it prices; no
call site computes overlap or barrier arithmetic of its own, and the
engine's :class:`~repro.engine.trace.FrameTrace` times every byte the
fabric counts.

Dispatchers (the OO-VR distribution engine, OO_APP's master-slave loop,
straggler stealing) talk to the engine through the scheduling-clock API
(:meth:`ready_at`, :meth:`next_idle`, :meth:`stall`,
:meth:`steal_into`, :meth:`shed_tail`) and through completion callbacks
(:meth:`on_complete`) instead of doing clock arithmetic on raw GPM
state, so the same policy code runs under either timing model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.trace import PHASES, FrameTrace, LinkUsage, TraceInterval
from repro.memory.address import ResourceKind, Touch
from repro.memory.cache import miss_bytes
from repro.memory.link import TrafficType
from repro.pipeline.timing import price_work_unit
from repro.pipeline.workunit import WorkUnit
from repro.profiling import phase as profiled_phase
from repro.stats.metrics import UnitExecution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.system import FramebufferTargets, MultiGPUSystem

__all__ = [
    "EngineError",
    "LinkFlow",
    "ResolvedUnit",
    "StageCopy",
    "StageOutcome",
    "CompositionTransfer",
    "CompositionSchedule",
    "ExecutionEngine",
    "classify_bottleneck",
    "KIND_TO_TRAFFIC",
]


class EngineError(ValueError):
    """Raised when an engine is misused or a simulation cannot finish."""


#: Memory-resource kinds mapped to the link-traffic category they bill.
KIND_TO_TRAFFIC = {
    ResourceKind.TEXTURE: TrafficType.TEXTURE,
    ResourceKind.VERTEX: TrafficType.VERTEX,
    ResourceKind.FRAMEBUFFER: TrafficType.FRAMEBUFFER,
    ResourceKind.DEPTH: TrafficType.ZTEST,
    ResourceKind.COMMAND: TrafficType.COMMAND,
}


def classify_bottleneck(
    compute: float, dram: float, link: float, cycles: float, base: str
) -> str:
    """The unit's bottleneck resource, with deterministic tie-breaking.

    Precedence on exact ties is fixed (and relied on by tests):

    1. ``link`` — when the unit time equals the link time and the links
       are slower than compute (equal ``dram``/``link`` cycles resolve
       to ``link``: the remote stream is the scarcer resource);
    2. ``dram`` — when the unit time equals the local DRAM time and
       DRAM is slower than compute;
    3. otherwise the compute-stage bottleneck (``base``) — including
       when memory time exactly equals compute time.
    """
    if cycles == link and link > compute:
        return "link"
    if cycles == dram and dram > compute:
        return "dram"
    return base


@dataclass(frozen=True)
class LinkFlow:
    """One logical inter-GPM transfer a bound unit caused."""

    src: int
    dst: int
    nbytes: float
    traffic: TrafficType


@dataclass(frozen=True)
class ResolvedUnit:
    """A work unit bound to a GPM: all demands, no placement state.

    Produced by :meth:`ExecutionEngine.bind`; consumed by
    :meth:`ExecutionEngine.execute`.  ``link_bytes`` is the per-peer
    roll-up the analytic roofline prices (insertion order matters: the
    pricing ``max()`` iterates it); ``flows`` keeps every directional
    transfer for the event engine's contention model; ``dram_demand``
    is bytes each DRAM must serve for this unit (its own local traffic
    plus remote reads/writes served for peers).
    """

    label: str
    gpm: int
    compute_cycles: float
    #: Slowest pipeline stage, used when compute bounds the unit.
    base_bottleneck: str
    local_dram_bytes: float
    link_bytes: Mapping[int, float]
    flows: Tuple[LinkFlow, ...]
    dram_demand: Mapping[int, float]
    #: Progress counters forwarded to the GPM's hardware counters.
    vertices: float
    pixels_out: float
    triangles_raster: float

    @property
    def remote_bytes(self) -> float:
        return sum(self.link_bytes.values())


@dataclass(frozen=True)
class StageCopy:
    """One staging/PA copy chunk bound for a GPM's local DRAM.

    Zero-byte chunks are legal (a touch that needed no shortfall) and
    priced as nothing; they keep the chunk list aligned with the touch
    list for diagnostics.
    """

    src: int
    dst: int
    nbytes: float
    traffic: TrafficType


@dataclass(frozen=True)
class StageOutcome:
    """What one :meth:`ExecutionEngine.stage_flow` call did.

    ``copied_bytes`` is the exact chunk total (what the staging
    manager's frame counter advances by); ``landed_bytes`` is the same
    quantity as the PA hardware observes it — the delta of its
    cumulative DMA counter (``staged_before``), whose floating-point
    rounding the prediction pipeline inherits; ``ready_at`` is when an
    overlapped copy lands (``None`` unless ``overlap_from`` was given).
    """

    copied_bytes: float
    landed_bytes: float
    stall_cycles: float
    ready_at: Optional[float] = None


@dataclass(frozen=True)
class CompositionTransfer:
    """One worker-to-owner pixel transfer of a composition schedule."""

    src: int
    dst: int
    nbytes: float


@dataclass(frozen=True)
class CompositionSchedule:
    """The post-render composition barrier, as work the engine prices.

    Built by :mod:`repro.gpu.composition` from a
    :class:`~repro.pipeline.rop.CompositionCost`: ``rop_cycles`` maps
    each writing GPM to the ROP time of its framebuffer share (one
    entry for master composition, all GPMs for DHC), ``transfers`` are
    the pixel movements in schedule order, ``dram_writes`` the final
    framebuffer writes per owner.  The engine performs the byte
    accounting and decides how long the barrier takes.
    """

    label: str
    rop_cycles: Mapping[int, float]
    transfers: Tuple[CompositionTransfer, ...] = ()
    dram_writes: Tuple[Tuple[int, float], ...] = ()

    @property
    def total_transfer_bytes(self) -> float:
        return sum(t.nbytes for t in self.transfers)


class ExecutionEngine(abc.ABC):
    """Timing/orchestration strategy for one :class:`MultiGPUSystem`."""

    #: Stable identifier (``analytic`` / ``event``) used in configs,
    #: run specs, the variant grammar and traces.
    name: str = "abstract"

    def __init__(self, system: "MultiGPUSystem") -> None:
        self.system = system
        self._intervals: List[TraceInterval] = []
        self._callbacks: List[
            Callable[[ResolvedUnit, UnitExecution], None]
        ] = []
        #: Inter-GPM bytes each frame phase moved (engine-independent).
        self._phase_bytes: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        #: Accumulated composition critical path on the scheduling clock.
        self._composition_cycles: float = 0.0
        #: Composition-barrier intervals (separate from the render lane
        #: so :meth:`shed_tail` clipping never touches them).
        self._compose_intervals: List[TraceInterval] = []

    # -- lifecycle -----------------------------------------------------------

    def begin_frame(self) -> None:
        """Reset per-frame engine state (subscriptions included)."""
        self._intervals.clear()
        self._callbacks.clear()
        self._phase_bytes = {phase: 0.0 for phase in PHASES}
        self._composition_cycles = 0.0
        self._compose_intervals.clear()

    def on_complete(
        self, callback: Callable[[ResolvedUnit, UnitExecution], None]
    ) -> None:
        """Subscribe to unit-completion events on the scheduling clock.

        Dispatchers use this instead of reading execution records out
        of band: the callback fires once per executed unit, in
        completion order on the scheduling clock, with the resolved
        unit and its execution record.  Subscriptions are cleared by
        :meth:`begin_frame`.
        """
        self._callbacks.append(callback)

    # -- binding (shared by every engine) ------------------------------------

    def bind(
        self,
        unit: WorkUnit,
        gpm_id: int,
        fb_targets: Optional["FramebufferTargets"] = None,
        command_source: int = 0,
    ) -> ResolvedUnit:
        """Resolve ``unit``'s memory image for GPM ``gpm_id``.

        Performs the frame's byte accounting (fabric transfers, DRAM
        byte counters, remote-cache filtering, first-touch placement)
        exactly once — binding is engine-independent, so both engines
        agree on every traffic figure by construction.
        """
        system = self.system
        if not 0 <= gpm_id < system.num_gpms:
            raise ValueError(f"GPM {gpm_id} out of range")
        with profiled_phase("price"):
            breakdown = price_work_unit(
                unit, system.config.gpm, system.config.cost
            )
        with profiled_phase("bind"):
            return self._bind_resolved(
                unit, gpm_id, fb_targets, command_source, breakdown
            )

    def _bind_resolved(
        self,
        unit: WorkUnit,
        gpm_id: int,
        fb_targets: Optional["FramebufferTargets"],
        command_source: int,
        breakdown,
    ) -> ResolvedUnit:
        system = self.system
        local_bytes = 0.0
        link_bytes: Dict[int, float] = {}
        flows: List[LinkFlow] = []
        dram_demand: Dict[int, float] = {}

        def demand(gpm: int, nbytes: float) -> None:
            if nbytes > 0:
                dram_demand[gpm] = dram_demand.get(gpm, 0.0) + nbytes

        def absorb(pair: Tuple[float, Dict[int, float]]) -> None:
            nonlocal local_bytes
            local_part, remote_part = pair
            local_bytes += local_part
            for peer, nbytes in remote_part.items():
                link_bytes[peer] = link_bytes.get(peer, 0.0) + nbytes

        for touch in unit.texture_touches:
            absorb(self._resolve_touch(touch, gpm_id, flows, dram_demand))
        for touch in unit.vertex_touches:
            absorb(self._resolve_touch(touch, gpm_id, flows, dram_demand))
        absorb(
            self._resolve_framebuffer(
                unit, gpm_id, fb_targets, flows, dram_demand
            )
        )

        if unit.command_bytes > 0 and command_source != gpm_id:
            system.fabric.transfer(
                command_source, gpm_id, unit.command_bytes, TrafficType.COMMAND
            )
            flows.append(
                LinkFlow(
                    command_source, gpm_id, unit.command_bytes,
                    TrafficType.COMMAND,
                )
            )
            link_bytes[command_source] = (
                link_bytes.get(command_source, 0.0) + unit.command_bytes
            )

        self._phase_bytes["render"] += sum(flow.nbytes for flow in flows)
        return ResolvedUnit(
            label=unit.label,
            gpm=gpm_id,
            compute_cycles=breakdown.compute_cycles,
            base_bottleneck=breakdown.bottleneck,
            local_dram_bytes=local_bytes,
            link_bytes=link_bytes,
            flows=tuple(flows),
            dram_demand=dram_demand,
            vertices=unit.vertices,
            pixels_out=unit.pixels_out,
            triangles_raster=unit.triangles_raster,
        )

    def _resolve_touch(
        self,
        touch: Touch,
        gpm_id: int,
        flows: List[LinkFlow],
        dram_demand: Dict[int, float],
    ) -> Tuple[float, Dict[int, float]]:
        """Split one touch into (local DRAM bytes, {peer: link bytes}).

        Local slices are filtered by the memory-side L2 (stream collapses
        towards the unique footprint); remote slices are filtered only by
        the remote cache and consume both the link and the owner's DRAM.
        """
        system = self.system
        fractions = system.placement.owner_fractions(touch.resource, gpm_id)
        traffic = KIND_TO_TRAFFIC[touch.resource.kind]
        local_bytes = 0.0
        remote: Dict[int, float] = {}
        for owner, fraction in fractions.items():
            stream = touch.stream_bytes * fraction
            unique = touch.unique_bytes * fraction
            writes = touch.write_bytes * fraction
            if owner == gpm_id:
                local_bytes += miss_bytes(
                    stream, unique, float(system.config.gpm.l2_bytes)
                ) + writes
                continue
            crossing = system.remote_caches[gpm_id].filter(stream, unique) + writes
            if crossing > 0:
                system.fabric.transfer(owner, gpm_id, crossing, traffic)
                system.drams[owner].serve_remote(crossing)
                flows.append(LinkFlow(owner, gpm_id, crossing, traffic))
                dram_demand[owner] = dram_demand.get(owner, 0.0) + crossing
                remote[owner] = remote.get(owner, 0.0) + crossing
                if system.remote_observer is not None:
                    system.remote_observer(touch.resource, gpm_id, crossing)
        if local_bytes > 0:
            system.drams[gpm_id].read(local_bytes)
            dram_demand[gpm_id] = dram_demand.get(gpm_id, 0.0) + local_bytes
        return local_bytes, remote

    def _resolve_framebuffer(
        self,
        unit: WorkUnit,
        gpm_id: int,
        fb_targets: Optional["FramebufferTargets"],
        flows: List[LinkFlow],
        dram_demand: Dict[int, float],
    ) -> Tuple[float, Dict[int, float]]:
        """Depth-test and colour-write traffic for ``unit``.

        ``fb_targets`` maps owner GPMs to the fraction of this unit's
        framebuffer region they hold; ``None`` means the render target
        is private and local (sort-last worker buffers).
        """
        system = self.system
        targets: "FramebufferTargets" = fb_targets or {gpm_id: 1.0}
        local_bytes = 0.0
        remote: Dict[int, float] = {}
        z_write = unit.pixels_out * system.config.cost.bytes_per_ztest
        for owner, fraction in targets.items():
            z_stream = unit.z_stream_bytes * fraction
            z_unique = unit.z_unique_bytes * fraction
            color = unit.fb_write_bytes * fraction
            z_w = z_write * fraction
            if owner == gpm_id:
                local_bytes += (
                    miss_bytes(
                        z_stream, z_unique, float(system.config.gpm.l2_bytes)
                    )
                    + color
                    + z_w
                )
                continue
            crossing_z = system.remote_caches[gpm_id].filter(z_stream, z_unique)
            if crossing_z > 0:
                system.fabric.transfer(
                    owner, gpm_id, crossing_z, TrafficType.ZTEST
                )
                system.drams[owner].serve_remote(crossing_z)
                flows.append(
                    LinkFlow(owner, gpm_id, crossing_z, TrafficType.ZTEST)
                )
                dram_demand[owner] = dram_demand.get(owner, 0.0) + crossing_z
            writes = color + z_w
            if writes > 0:
                system.fabric.transfer(
                    gpm_id, owner, writes, TrafficType.FRAMEBUFFER
                )
                system.drams[owner].serve_remote(writes)
                flows.append(
                    LinkFlow(gpm_id, owner, writes, TrafficType.FRAMEBUFFER)
                )
                dram_demand[owner] = dram_demand.get(owner, 0.0) + writes
            total = crossing_z + writes
            if total > 0:
                remote[owner] = remote.get(owner, 0.0) + total
        if local_bytes > 0:
            system.drams[gpm_id].write(local_bytes)
            dram_demand[gpm_id] = dram_demand.get(gpm_id, 0.0) + local_bytes
        return local_bytes, remote

    # -- scheduling clock ----------------------------------------------------

    def price(self, resolved: ResolvedUnit) -> Tuple[float, float, float, str]:
        """Analytic roofline for one unit in isolation.

        Returns ``(dram_cycles, link_cycles, cycles, bottleneck)``.
        This is the scheduling-clock price both engines use (and the
        final price under the analytic engine): the unit costs the max
        of compute, local DRAM time and the slowest per-peer link time.
        On routed fabrics a transfer loads every link on its route;
        bytes x hops is the standard proxy for the bandwidth that wire
        load steals from concurrent flows, and per-hop latency stacks.
        """
        system = self.system
        compute = resolved.compute_cycles
        dram_cycles = (
            resolved.local_dram_bytes / system.config.gpm.dram_bytes_per_cycle
        )
        link_cycles = 0.0
        if resolved.link_bytes:
            link_cycles = max(
                nbytes
                * system.fabric.hops(peer, resolved.gpm)
                / system.config.link.bytes_per_cycle
                + system.config.link.latency_cycles
                * system.fabric.hops(peer, resolved.gpm)
                for peer, nbytes in resolved.link_bytes.items()
            )
        cycles = max(compute, dram_cycles, link_cycles)
        bottleneck = classify_bottleneck(
            compute, dram_cycles, link_cycles, cycles, resolved.base_bottleneck
        )
        return dram_cycles, link_cycles, cycles, bottleneck

    def execute(
        self, resolved: ResolvedUnit, start_at: Optional[float] = None
    ) -> UnitExecution:
        """Schedule ``resolved`` on its GPM and advance the clock."""
        system = self.system
        gpm = system.gpms[resolved.gpm]
        with profiled_phase("price"):
            dram_cycles, link_cycles, cycles, bottleneck = self.price(
                resolved
            )
        begin = (
            gpm.ready_at if start_at is None else max(gpm.ready_at, start_at)
        )
        gpm.run(resolved.label, cycles, start_at=start_at)
        gpm.record_progress(
            resolved.vertices, resolved.pixels_out, resolved.triangles_raster
        )
        self._intervals.append(
            TraceInterval(
                gpm=resolved.gpm,
                label=resolved.label,
                start=begin,
                end=gpm.ready_at,
                kind="render",
            )
        )
        self._note_unit(resolved, start_at, cycles)
        execution = UnitExecution(
            gpm=resolved.gpm,
            compute_cycles=resolved.compute_cycles,
            local_dram_cycles=dram_cycles,
            link_cycles=link_cycles,
            cycles=cycles,
            remote_bytes=resolved.remote_bytes,
            bottleneck=bottleneck,
        )
        for callback in self._callbacks:
            callback(resolved, execution)
        return execution

    def stall(self, gpm_id: int, label: str, cycles: float) -> None:
        """Charge non-render occupancy (a staging copy the GPM waits on)."""
        gpm = self.system.gpms[gpm_id]
        begin = gpm.ready_at
        gpm.run(label, cycles)
        self._intervals.append(
            TraceInterval(
                gpm=gpm_id, label=label, start=begin, end=gpm.ready_at,
                kind="stall",
            )
        )
        self._note_stall(gpm_id, label, cycles)

    def steal_into(
        self, src: int, dst: int, label: str, cycles: float, nbytes: float
    ) -> None:
        """Absorb a straggler slice on ``dst`` (with STEAL duplication)."""
        gpm = self.system.gpms[dst]
        begin = gpm.ready_at
        gpm.run(label, cycles)
        self.system.fabric.transfer(src, dst, nbytes, TrafficType.STEAL)
        if src != dst and nbytes > 0:
            self._phase_bytes["render"] += nbytes
        self._intervals.append(
            TraceInterval(
                gpm=dst, label=label, start=begin, end=gpm.ready_at,
                kind="steal",
            )
        )
        self._note_steal(src, dst, label, cycles, nbytes)

    def shed_tail(self, gpm_id: int, cycles: float) -> None:
        """Remove stolen tail cycles from the straggler's schedule."""
        straggler = self.system.gpms[gpm_id]
        straggler.ready_at -= cycles
        straggler.busy_cycles = max(0.0, straggler.busy_cycles - cycles)
        # Clip the interval log to the rewound clock so the trace stays
        # consistent (the stolen tail now renders on the thieves).
        horizon = straggler.ready_at
        clipped = []
        for span in self._intervals:
            if span.gpm != gpm_id or span.end <= horizon:
                clipped.append(span)
            elif span.start < horizon:
                clipped.append(replace(span, end=horizon))
            # else: the whole span was stolen; drop it.
        self._intervals[:] = clipped
        self._note_shed(gpm_id, cycles)

    def ready_at(self, gpm_id: int) -> float:
        """When GPM ``gpm_id`` next goes idle on the scheduling clock."""
        return self.system.gpms[gpm_id].ready_at

    def next_idle(self) -> int:
        """The GPM that goes idle first (lowest id wins exact ties)."""
        return min(
            range(self.system.num_gpms), key=lambda g: self.ready_at(g)
        )

    # -- staging flows -------------------------------------------------------

    def stage_flow(
        self,
        gpm_id: int,
        copies: Sequence[StageCopy],
        *,
        parallelism: float = 1.0,
        prefetched: bool = False,
        overlap_from: Optional[float] = None,
        staged_before: float = 0.0,
        label: str = "stage",
    ) -> StageOutcome:
        """Account and price one unit's staging copies into ``gpm_id``.

        The byte accounting (fabric transfers, destination DRAM writes)
        happens here, once, in chunk order — engine-independent like
        binding, so per-phase byte totals agree across engines.  The
        *visible* cost on the scheduling clock is the analytic overlap
        model: a prefetched copy (OO-VR's PA units) streams behind the
        previous batch and charges nothing, a software copy stalls the
        GPM for ``bytes / (link bandwidth x parallelism)`` where
        ``parallelism`` folds incoming-link count and copy/render
        overlap into one factor.  When ``overlap_from`` is given (the
        PA path), the returned ``ready_at`` is when the copy lands:
        ``overlap_from`` plus the counter-delta bytes at full link
        bandwidth.  Engines may additionally replay the copy as a
        background flow (see :class:`~repro.engine.event.EventEngine`).
        """
        system = self.system
        if not 0 <= gpm_id < system.num_gpms:
            raise ValueError(f"GPM {gpm_id} out of range")
        if parallelism <= 0:
            raise EngineError("staging parallelism must be positive")
        total = 0.0
        for copy in copies:
            if copy.nbytes <= 0:
                continue
            system.fabric.transfer(copy.src, copy.dst, copy.nbytes, copy.traffic)
            system.drams[copy.dst].write(copy.nbytes)
            total += copy.nbytes
            if copy.src != copy.dst:
                # Phase totals count what the fabric counts: a
                # single-GPM "copy" never leaves the XBAR.
                self._phase_bytes["staging"] += copy.nbytes
        stall = 0.0
        if total > 0 and not prefetched:
            stall = total / (
                system.config.link.bytes_per_cycle * parallelism
            )
            gpm = system.gpms[gpm_id]
            begin = gpm.ready_at
            gpm.run(label, stall)
            self._intervals.append(
                TraceInterval(
                    gpm=gpm_id, label=label, start=begin, end=gpm.ready_at,
                    kind="stall",
                )
            )
        landed = total
        ready_at: Optional[float] = None
        if overlap_from is not None:
            # The PA unit measures the copy off its cumulative DMA
            # counter; the register delta is what the predictor sees.
            landed = (staged_before + total) - staged_before
            ready_at = overlap_from + landed / system.config.link.bytes_per_cycle
        self._note_stage(
            gpm_id, tuple(copies), total, stall, parallelism, prefetched,
            overlap_from, label,
        )
        return StageOutcome(
            copied_bytes=total,
            landed_bytes=landed,
            stall_cycles=stall,
            ready_at=ready_at,
        )

    # -- the composition barrier ---------------------------------------------

    def composition_phase(self, schedule: CompositionSchedule) -> float:
        """Run ``schedule``'s composition barrier; returns its price.

        Byte accounting (pixel transfers, owner DRAM traffic) happens
        here in schedule order, shared by every engine.  The returned
        value is the analytic barrier price — ``max(slowest GPM's ROP
        time, slowest transfer)`` — which accumulates into the trace's
        :attr:`~repro.engine.trace.FrameTrace.composition_cycles` on
        the analytic engine; the event engine re-prices the barrier by
        simulating its flows against each other and reports that
        instead (the return value stays the scheduling-clock estimate).
        """
        system = self.system
        worst_link_cycles = 0.0
        for transfer in schedule.transfers:
            cycles = system.fabric.transfer(
                transfer.src, transfer.dst, transfer.nbytes,
                TrafficType.COMPOSITION,
            )
            system.drams[transfer.dst].serve_remote(transfer.nbytes)
            worst_link_cycles = max(worst_link_cycles, cycles)
        for gpm_id, nbytes in schedule.dram_writes:
            system.drams[gpm_id].write(nbytes)
        rop_cycles = max(schedule.rop_cycles.values(), default=0.0)
        critical_path = max(rop_cycles, worst_link_cycles)
        self._phase_bytes["composition"] += schedule.total_transfer_bytes
        self._composition_cycles += critical_path
        barrier = max(gpm.ready_at for gpm in system.gpms)
        for gpm_id in sorted(schedule.rop_cycles):
            self._compose_intervals.append(
                TraceInterval(
                    gpm=gpm_id,
                    label=schedule.label,
                    start=barrier,
                    end=barrier + critical_path,
                    kind="compose",
                )
            )
        self._note_composition(schedule, critical_path)
        return critical_path

    # -- event-recording hooks (no-ops on the analytic engine) ----------------

    def _note_unit(
        self, resolved: ResolvedUnit, start_at: Optional[float], cycles: float
    ) -> None:
        """Hook: a unit entered the schedule at its scheduling price."""

    def _note_stall(self, gpm_id: int, label: str, cycles: float) -> None:
        """Hook: a stall entered the schedule."""

    def _note_steal(
        self, src: int, dst: int, label: str, cycles: float, nbytes: float
    ) -> None:
        """Hook: a steal slice entered the schedule."""

    def _note_shed(self, gpm_id: int, cycles: float) -> None:
        """Hook: tail cycles left the straggler's schedule."""

    def _note_stage(
        self,
        gpm_id: int,
        copies: Tuple[StageCopy, ...],
        total_bytes: float,
        stall_cycles: float,
        parallelism: float,
        prefetched: bool,
        overlap_from: Optional[float],
        label: str,
    ) -> None:
        """Hook: a staging flow entered the schedule."""

    def _note_composition(
        self, schedule: CompositionSchedule, critical_path: float
    ) -> None:
        """Hook: a composition barrier entered the schedule."""

    # -- finalisation --------------------------------------------------------

    def _fabric_usage(self) -> Tuple[LinkUsage, ...]:
        """Per-link usage from the fabric's byte counters.

        Occupancy is bytes/bandwidth — exact for the analytic model,
        where flows on one link never overlap in its pricing.
        """
        fabric = self.system.fabric
        return tuple(
            LinkUsage(
                src=stats.src,
                dst=stats.dst,
                nbytes=stats.bytes_total,
                busy_cycles=stats.bytes_total / fabric.bytes_per_cycle,
            )
            for stats in fabric
        )

    @abc.abstractmethod
    def finish_frame(self) -> FrameTrace:
        """Finalise the frame and return its trace.

        Must be safe to call more than once per frame (results roll up
        repeatedly in some flows); every call reflects the schedule
        submitted so far.
        """
