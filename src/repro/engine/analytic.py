"""The analytic engine: the paper-reproducing per-unit roofline.

Every unit is priced in isolation as ``max(compute, local DRAM time,
slowest per-peer link time)`` and GPM clocks advance serially — exactly
the model the reproduced figures were calibrated under.  The whole
frame is covered: staging copies charge the overlap-model stall (or
nothing when prefetched) through :meth:`ExecutionEngine.stage_flow
<repro.engine.base.ExecutionEngine.stage_flow>`, and the composition
barrier is priced ``max(ROP time, slowest transfer)`` through
:meth:`ExecutionEngine.composition_phase
<repro.engine.base.ExecutionEngine.composition_phase>`.  The scheduling
clock *is* the final clock, so :meth:`finish_frame` simply reports the
GPM state, the intervals recorded while executing and the accumulated
composition barrier.

What it cannot see — and what :class:`~repro.engine.event.EventEngine`
exists to measure — is *contention in time*: two flows sharing a link
(or a DRAM stack) during the same window each get the full bandwidth
here, so concurrent congestion is under-priced.
"""

from __future__ import annotations

from repro.engine.base import ExecutionEngine
from repro.engine.trace import FrameTrace

__all__ = ["AnalyticEngine"]


class AnalyticEngine(ExecutionEngine):
    """Behaviour-preserving port of the original per-unit pricing."""

    name = "analytic"

    def finish_frame(self) -> FrameTrace:
        gpms = self.system.gpms
        return FrameTrace(
            engine=self.name,
            num_gpms=self.system.num_gpms,
            intervals=tuple(self._intervals) + tuple(self._compose_intervals),
            gpm_busy=tuple(gpm.busy_cycles for gpm in gpms),
            gpm_end=tuple(gpm.ready_at for gpm in gpms),
            links=self._fabric_usage(),
            composition_cycles=self._composition_cycles,
            phase_link_bytes=dict(self._phase_bytes),
        )
