"""The analytic engine: the paper-reproducing per-unit roofline.

Every unit is priced in isolation as ``max(compute, local DRAM time,
slowest per-peer link time)`` and GPM clocks advance serially — exactly
the model the reproduced figures were calibrated under.  The scheduling
clock *is* the final clock, so :meth:`finish_frame` simply reports the
GPM state and the intervals recorded while executing.

What it cannot see — and what :class:`~repro.engine.event.EventEngine`
exists to measure — is *contention in time*: two flows sharing a link
(or a DRAM stack) during the same window each get the full bandwidth
here, so concurrent congestion is under-priced.
"""

from __future__ import annotations

from repro.engine.base import ExecutionEngine
from repro.engine.trace import FrameTrace

__all__ = ["AnalyticEngine"]


class AnalyticEngine(ExecutionEngine):
    """Behaviour-preserving port of the original per-unit pricing."""

    name = "analytic"

    def finish_frame(self) -> FrameTrace:
        gpms = self.system.gpms
        return FrameTrace(
            engine=self.name,
            num_gpms=self.system.num_gpms,
            intervals=tuple(self._intervals),
            gpm_busy=tuple(gpm.busy_cycles for gpm in gpms),
            gpm_end=tuple(gpm.ready_at for gpm in gpms),
            links=self._fabric_usage(),
        )
