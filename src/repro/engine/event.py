"""The discrete-event engine: contention-aware frame timing.

The analytic model prices every work unit in isolation; real frames
overlap, and the scarce resources — each link's ``bytes_per_cycle``
and each DRAM stack's bandwidth — are *time-shared* between whatever
flows are active in the same window.  :class:`EventEngine` keeps the
analytic scheduling clock (so dispatch decisions, placement and byte
accounting stay identical to the analytic engine) and replays the
submitted schedule through a fluid discrete-event simulation:

- each GPM runs its submitted units in order, one at a time, honouring
  earliest-start floors (PA copy arrival);
- an active unit makes progress on all its demands concurrently:
  compute at rate 1, each DRAM demand at that DRAM's bandwidth divided
  by its concurrent consumers, each link flow (after its per-hop wire
  latency) at the bandwidth of the most contended link on its route
  divided by that link's concurrent flows and by its hop count (the
  same bytes x hops wire-load serialisation the analytic model
  charges, so the two engines agree when nothing overlaps);
- a unit completes when its last demand drains; the global clock
  advances between completions, starts and rate changes.

Every frame phase is replayed, not just render units:

- **staging copies** are link flows.  A software copy (tile/object
  SFR, OO_APP) occupies its GPM as a ``stall``-kind job whose demand
  is the copy stream draining at ``parallelism`` times its bandwidth
  share — uncontended it lasts exactly the analytic overlap stall,
  contended it stretches with the wires.  A prefetched PA copy is a
  *background* flow: it never occupies the GPM (the schedule already
  floors the batch at the analytic copy-arrival time), but it streams
  on the links and the destination DRAM concurrently with rendering,
  stealing bandwidth from render flows — the cost of "free"
  pre-allocation the analytic model cannot see.  Background copies
  appear in the trace as a ``stage`` lane;
- **the composition barrier** starts when the simulated render phase
  ends and is simulated as its own window: every worker's pixel
  transfers contend on the links while the stripe owners' ROP work
  runs as compute, and :attr:`FrameTrace.composition_cycles
  <repro.engine.trace.FrameTrace.composition_cycles>` is the
  simulated barrier length (``compose`` lane intervals).  Destination
  DRAM is deliberately not billed here — the analytic barrier price is
  ROP/link-bound, and keeping the same demand set preserves the
  uncontended equivalence between engines.  The two windows are
  simulated independently: a background copy still draining when the
  last render lane ends (rare — PA floors precede their batch's
  start) finishes in the render window's tail without coupling to the
  barrier's flows, so its ``stage`` span may outlast
  ``render_critical_path``.

Uncontended, a single flow drains in exactly the analytic roofline
time — on any fabric.  One deliberate divergence remains: the analytic
model rolls a unit's traffic *per peer* into one serial term, even
when it mixes directions (z-reads peer->gpm plus fb-writes gpm->peer),
while the event engine drains opposite directions in parallel — the
links are full-duplex wire pairs.  Bidirectional link-bound units can
therefore finish slightly *faster* here (study factors a fraction of a
percent under 1.0); everything beyond that gap is the time congestion
steals, the quantity the engine-contention study measures.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.engine.base import (
    CompositionSchedule,
    EngineError,
    ExecutionEngine,
    ResolvedUnit,
    StageCopy,
)
from repro.engine.trace import FrameTrace, LinkUsage, TraceInterval
from repro.profiling import add_counter

__all__ = ["EventEngine"]

#: Demand below this many bytes/cycles counts as drained (float dust).
_EPS = 1e-6
#: Relative epsilon for time comparisons.
_REL = 1e-12
#: Consecutive zero-length windows tolerated before the degenerate-
#: schedule diagnostic fires.  A zero-length window means active jobs
#: exist but *nothing* can progress (every live demand drains at rate
#: zero — e.g. an infinite wire latency or a zero-rate flow), so the
#: loop would otherwise spin silently; no reachable schedule from the
#: public recording API produces even one.
_MAX_ZERO_WINDOWS = 8

_EMPTY_IDX = np.empty(0, dtype=np.int64)

Link = Tuple[int, int]


@dataclass
class _FlowSpec:
    """One link transfer of a scheduled job (simulation input)."""

    route: Tuple[Link, ...]
    nbytes: float
    latency: float
    #: Effective-bandwidth multiplier (staging copies stream over
    #: several incoming links at once; the analytic overlap model folds
    #: that into one ``parallelism`` factor, mirrored here so the
    #: uncontended drain time matches the analytic stall exactly).
    rate_scale: float = 1.0


@dataclass
class _Job:
    """One scheduled span of one GPM (simulation input)."""

    label: str
    gpm: int
    kind: str
    start_floor: float
    compute: float
    dram: Dict[int, float]
    flows: List[_FlowSpec]
    #: Scheduling-clock price, used to scale stolen tails fairly.
    provisional_cycles: float


class _RunState:
    """Runtime handle of one activated job.

    The demand state itself lives in the pass's :class:`_JobArrays`
    rows (indexed by ``idx``); this is just the bookkeeping needed to
    emit the job's trace interval when it retires.
    """

    __slots__ = ("job", "idx", "start")

    def __init__(self, job: _Job, idx: int, start: float) -> None:
        self.job = job
        self.idx = idx
        self.start = start


class _JobArrays:
    """Struct-of-array demand state for one simulation pass.

    One row per DRAM demand and per link flow across *all* jobs of the
    pass, built once after every ``_note_shed`` scale-down has been
    applied.  Each window's bandwidth shares, next-event horizon and
    depletion are then elementwise float64 expressions over these rows
    — the exact expressions the retired per-object loop evaluated, so
    completion times (and the goldens pinned on them) are bit-equal.
    Routes are stored CSR-style over a first-seen link table so
    per-flow rates reduce with ``np.minimum.reduceat``.
    """

    def __init__(self, jobs: Sequence[_Job]) -> None:
        self.count = len(jobs)
        self.compute = np.array(
            [job.compute for job in jobs], dtype=np.float64
        )
        dram_job: List[int] = []
        dram_gpm: List[int] = []
        dram_rem: List[float] = []
        flow_job: List[int] = []
        flow_lat: List[float] = []
        flow_bytes: List[float] = []
        flow_scale: List[float] = []
        route_counts: List[int] = []
        route_links: List[int] = []
        link_ids: Dict[Link, int] = {}
        for idx, job in enumerate(jobs):
            for gpm, nbytes in job.dram.items():
                # Mirrors the old _ActiveJob filter: float-dust DRAM
                # demands never participate.
                if nbytes > _EPS:
                    dram_job.append(idx)
                    dram_gpm.append(gpm)
                    dram_rem.append(nbytes)
            for spec in job.flows:
                flow_job.append(idx)
                flow_lat.append(spec.latency)
                flow_bytes.append(spec.nbytes)
                flow_scale.append(spec.rate_scale)
                route_counts.append(len(spec.route))
                for link in spec.route:
                    lid = link_ids.setdefault(link, len(link_ids))
                    route_links.append(lid)
        # Contiguous per-job row ranges (jobs were walked in order), so
        # activation/retirement toggles the row masks with one slice.
        self.job_d0 = np.zeros(self.count + 1, dtype=np.int64)
        self.job_f0 = np.zeros(self.count + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(
                np.asarray(dram_job, dtype=np.int64), minlength=self.count
            ),
            out=self.job_d0[1:],
        )
        np.cumsum(
            np.bincount(
                np.asarray(flow_job, dtype=np.int64), minlength=self.count
            ),
            out=self.job_f0[1:],
        )
        self.dram_job = np.asarray(dram_job, dtype=np.int64)
        self.dram_gpm = np.asarray(dram_gpm, dtype=np.int64)
        self.dram_rem = np.asarray(dram_rem, dtype=np.float64)
        self.flow_job = np.asarray(flow_job, dtype=np.int64)
        self.flow_lat = np.asarray(flow_lat, dtype=np.float64)
        self.flow_bytes = np.asarray(flow_bytes, dtype=np.float64)
        self.flow_scale = np.asarray(flow_scale, dtype=np.float64)
        counts = np.asarray(route_counts, dtype=np.int64)
        self.route_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        self.route_links = np.asarray(route_links, dtype=np.int64)
        #: Flow row of each route element (for masking/bincount).
        self.route_rep = np.repeat(
            np.arange(len(route_counts), dtype=np.int64), counts
        )
        self.route_len = counts.astype(np.float64)
        #: Link table in first-seen order; row i is link id i.
        self.links: List[Link] = list(link_ids)
        # Open memory/flow components per job (a flow is one component:
        # done only once latency *and* bytes drain).  The simulation
        # copy is decremented as rows cross the dust threshold, so the
        # retirement predicate is two scalar reads, and a job with no
        # live demand at all completes instantly on activation (the
        # same predicate the per-object loop evaluated).
        pending = np.bincount(self.dram_job, minlength=self.count)
        not_done = (self.flow_lat > _EPS) | (self.flow_bytes > _EPS)
        self.pending0 = pending + np.bincount(
            self.flow_job[not_done], minlength=self.count
        )
        self.zero_demand = (self.compute <= _EPS) & (self.pending0 == 0)


@dataclass
class _SimResult:
    """Output of one simulation pass."""

    busy: List[float]
    end: List[float]
    intervals: List[TraceInterval]
    link_busy: Dict[Link, float]
    link_bytes: Dict[Link, float]
    #: Window-loop statistics: windows simulated and the total live
    #: rows (compute + DRAM + latency + streaming) those windows
    #: touched.  Diagnostics only — never part of the timing result.
    windows: int = 0
    live_rows: int = 0

    @property
    def makespan(self) -> float:
        horizon = max(self.end) if self.end else 0.0
        for span in self.intervals:
            horizon = max(horizon, span.end)
        return horizon


class EventEngine(ExecutionEngine):
    """Discrete-event timing over the analytic engine's schedule."""

    name = "event"

    #: Route :meth:`finish_frame` through the retained full-scan window
    #: loop (:meth:`_simulate_reference`) instead of the incremental
    #: one.  The two loops are bit-equal by contract (property-tested
    #: in ``tests/test_engine.py``); the throughput bench flips this
    #: class attribute for an honest same-host A/B.
    use_reference_loop = False

    def __init__(self, system) -> None:
        super().__init__(system)
        self._jobs: List[_Job] = []
        #: Background staging/PA copies (no GPM occupancy, wire load only).
        self._background: List[_Job] = []
        #: Composition barriers to simulate after the render phase.
        self._compositions: List[CompositionSchedule] = []

    def begin_frame(self) -> None:
        super().begin_frame()
        self._jobs.clear()
        self._background.clear()
        self._compositions.clear()

    # -- schedule recording ---------------------------------------------------

    def _flow_specs(self, resolved: ResolvedUnit) -> List[_FlowSpec]:
        fabric = self.system.fabric
        latency = float(self.system.config.link.latency_cycles)
        specs: List[_FlowSpec] = []
        for flow in resolved.flows:
            route = tuple(fabric.route(flow.src, flow.dst))
            if not route:
                continue
            specs.append(
                _FlowSpec(
                    route=route,
                    nbytes=flow.nbytes,
                    latency=latency * len(route),
                )
            )
        return specs

    def _note_unit(
        self,
        resolved: ResolvedUnit,
        start_at: Optional[float],
        cycles: float,
    ) -> None:
        self._jobs.append(
            _Job(
                label=resolved.label,
                gpm=resolved.gpm,
                kind="render",
                start_floor=start_at or 0.0,
                compute=resolved.compute_cycles,
                dram=dict(resolved.dram_demand),
                flows=self._flow_specs(resolved),
                provisional_cycles=cycles,
            )
        )

    def _note_stall(self, gpm_id: int, label: str, cycles: float) -> None:
        self._jobs.append(
            _Job(
                label=label,
                gpm=gpm_id,
                kind="stall",
                start_floor=0.0,
                compute=cycles,
                dram={},
                flows=[],
                provisional_cycles=cycles,
            )
        )

    def _note_steal(
        self, src: int, dst: int, label: str, cycles: float, nbytes: float
    ) -> None:
        route = tuple(self.system.fabric.route(src, dst))
        latency = float(self.system.config.link.latency_cycles)
        flows = (
            [_FlowSpec(route=route, nbytes=nbytes, latency=latency * len(route))]
            if route
            else []
        )
        self._jobs.append(
            _Job(
                label=label,
                gpm=dst,
                kind="steal",
                start_floor=0.0,
                compute=cycles,
                dram={},
                flows=flows,
                provisional_cycles=cycles,
            )
        )

    def _note_shed(self, gpm_id: int, cycles: float) -> None:
        """Shrink the straggler's pending tail by ``cycles``.

        The stolen slice takes its share of the tail job's compute and
        memory demands with it (the thief re-reads the duplicated
        data), so the tail jobs scale down proportionally, newest
        first.
        """
        remaining = cycles
        for job in reversed(self._jobs):
            if remaining <= _EPS:
                return
            if job.gpm != gpm_id or job.kind != "render":
                continue
            p = job.provisional_cycles
            if p <= _EPS:
                continue
            take = min(remaining, p)
            factor = (p - take) / p
            job.compute *= factor
            job.dram = {gpm: b * factor for gpm, b in job.dram.items()}
            for flow in job.flows:
                flow.nbytes *= factor
            job.provisional_cycles = p - take
            remaining -= take

    def _note_stage(
        self,
        gpm_id: int,
        copies: Tuple[StageCopy, ...],
        total_bytes: float,
        stall_cycles: float,
        parallelism: float,
        prefetched: bool,
        overlap_from: Optional[float],
        label: str,
    ) -> None:
        """Replay a staging copy as link flows instead of opaque time."""
        if total_bytes <= 0:
            return
        merged: Dict[Link, float] = {}
        for copy in copies:
            if copy.nbytes > 0 and copy.src != copy.dst:
                key = (copy.src, copy.dst)
                merged[key] = merged.get(key, 0.0) + copy.nbytes
        fabric = self.system.fabric
        specs: List[_FlowSpec] = []
        for (src, dst), nbytes in merged.items():
            route = tuple(fabric.route(src, dst))
            if not route:
                continue
            specs.append(
                _FlowSpec(
                    # Copies stream: no per-request wire latency (the
                    # analytic overlap stall has no latency term
                    # either).  The rate compensates flow_rate()'s
                    # hop-count serialisation — the analytic copy model
                    # is hop-blind (a pipelined DMA stream, priced at
                    # raw link bandwidth on any fabric), so uncontended
                    # drain time must equal the analytic stall / PA
                    # copy time everywhere; contention still divides
                    # the rate through each route link's user count.
                    route=route,
                    nbytes=nbytes,
                    latency=0.0,
                    rate_scale=(1.0 if prefetched else parallelism)
                    * len(route),
                )
            )
        if prefetched:
            if not specs:
                return
            self._background.append(
                _Job(
                    label=label,
                    gpm=gpm_id,
                    kind="stage",
                    start_floor=overlap_from or 0.0,
                    compute=0.0,
                    # The copy lands in the destination's DRAM while
                    # renders read from it.
                    dram={gpm_id: total_bytes},
                    flows=specs,
                    provisional_cycles=0.0,
                )
            )
            return
        self._jobs.append(
            _Job(
                label=label,
                gpm=gpm_id,
                kind="stall",
                start_floor=0.0,
                # A pure flow job when routable; otherwise fall back to
                # the scheduling-clock stall so no time is lost.
                compute=0.0 if specs else stall_cycles,
                dram={},
                flows=specs,
                provisional_cycles=stall_cycles,
            )
        )

    def _note_composition(
        self, schedule: CompositionSchedule, critical_path: float
    ) -> None:
        self._compositions.append(schedule)

    # -- simulation ----------------------------------------------------------

    @staticmethod
    def _stall_error(
        active: Dict[int, _RunState], bg_active: Sequence[_RunState]
    ) -> RuntimeError:
        """The diagnostic for a window loop that cannot progress."""
        labels = sorted(
            {state.job.label for state in (*active.values(), *bg_active)}
        )
        return RuntimeError(
            "event window loop stalled: active job(s) made no progress "
            f"for {_MAX_ZERO_WINDOWS} consecutive zero-length windows "
            "(some demand remains but every live row drains at rate "
            f"zero); stalled jobs: {labels}"
        )

    def _simulate(
        self, jobs: Sequence[_Job], background: Sequence[_Job] = ()
    ) -> _SimResult:
        """The incremental window loop (the production path).

        Behaviourally bit-equal to :meth:`_simulate_reference`, but each
        window touches O(live) rows instead of O(total): compact live
        sets for compute/DRAM/latency/streaming rows are maintained on
        job start, component drain and retirement (never rebuilt from
        full-array ``nonzero`` scans), per-link streaming user counts
        are updated by +/-1 over a flow's precomputed route slice when
        it enters or leaves the streaming state, and jobs retire
        through the same crossing-decremented pending counters.

        Profiling showed the retained loop's cost is *numpy calls per
        window*, not array size — real frames average a handful of
        live rows across thousands of windows — so the window body
        here is scalar Python over the live sets, with zero per-window
        array allocations.  That is still a pure layout change: every
        share/horizon/depletion expression evaluates the identical
        IEEE-754 double operations on the identical values (``tolist``
        round-trips float64 exactly, Python float arithmetic *is*
        C-double arithmetic, and ``min``/user-count/elementwise ops
        are order-independent), so completion times — and the event
        goldens pinned on them — are bit-equal to the reference walk.
        """
        system = self.system
        n = system.num_gpms
        dram_bw = system.config.gpm.dram_bytes_per_cycle
        link_bw = system.config.link.bytes_per_cycle

        all_jobs: List[_Job] = [*jobs, *background]
        arrays = _JobArrays(all_jobs)
        index_of = {id(job): idx for idx, job in enumerate(all_jobs)}
        # Scalar views of the SoA rows: exact float64 -> double copies.
        compute_rem = arrays.compute.tolist()
        dram_job = arrays.dram_job.tolist()
        dram_gpm = arrays.dram_gpm.tolist()
        dram_rem = arrays.dram_rem.tolist()
        flow_job = arrays.flow_job.tolist()
        flow_lat = arrays.flow_lat.tolist()
        flow_bytes = arrays.flow_bytes.tolist()
        flow_scale = arrays.flow_scale.tolist()
        route_len = arrays.route_len.tolist()
        offsets = arrays.route_offsets.tolist()
        links_flat = arrays.route_links.tolist()
        #: Per-flow contended-link id lists, precomputed once per pass.
        routes = [
            links_flat[offsets[row] : offsets[row + 1]]
            for row in range(len(flow_job))
        ]
        job_d0 = arrays.job_d0.tolist()
        job_f0 = arrays.job_f0.tolist()
        zero_demand = arrays.zero_demand.tolist()
        num_links = len(arrays.links)
        pending = arrays.pending0.tolist()
        link_busy_acc = [0.0] * num_links
        #: Streaming flows currently crossing each link — maintained
        #: incrementally (+/-1 per route element on stream enter/leave),
        #: it equals the reference loop's per-window route bincount.
        link_users = [0] * num_links

        # Live row sets: the only state the window body walks.
        c_live: Set[int] = set()
        d_live: Set[int] = set()
        lat_live: Set[int] = set()
        b_live: Set[int] = set()

        def enter_stream(row: int) -> None:
            b_live.add(row)
            for lid in routes[row]:
                link_users[lid] += 1

        def leave_stream(row: int) -> None:
            b_live.discard(row)
            for lid in routes[row]:
                link_users[lid] -= 1

        def enter_rows(idx: int) -> None:
            """Register a newly-activated job's live demand rows."""
            if compute_rem[idx] > _EPS:
                c_live.add(idx)
            d0, d1 = job_d0[idx], job_d0[idx + 1]
            if d1 > d0:
                # DRAM rows are built above the dust threshold.
                d_live.update(range(d0, d1))
            for row in range(job_f0[idx], job_f0[idx + 1]):
                if flow_lat[row] > _EPS:
                    lat_live.add(row)
                elif flow_bytes[row] > _EPS:
                    enter_stream(row)

        def clear_rows(idx: int) -> None:
            """Drop a retiring job's rows from the live sets.

            Retirement requires every pending component to have crossed
            the dust threshold, so these are no-ops on any normal path;
            kept as cheap O(job rows) insurance so a leaked live row
            can never outlive its job.
            """
            c_live.discard(idx)
            for row in range(job_d0[idx], job_d0[idx + 1]):
                d_live.discard(row)
            for row in range(job_f0[idx], job_f0[idx + 1]):
                lat_live.discard(row)
                if row in b_live:
                    leave_stream(row)

        queues: List[deque] = [deque() for _ in range(n)]
        for job in jobs:
            queues[job.gpm].append(job)
        bg_pending: List[_Job] = sorted(
            background, key=lambda job: job.start_floor
        )
        bg_active: List[_RunState] = []

        active: Dict[int, _RunState] = {}
        t = 0.0
        busy = [0.0] * n
        end = [0.0] * n
        intervals: List[TraceInterval] = []
        link_bytes: Dict[Link, float] = {}

        def account_bytes(job: _Job) -> None:
            for spec in job.flows:
                for link in spec.route:
                    link_bytes[link] = link_bytes.get(link, 0.0) + spec.nbytes

        total_components = sum(
            1 + len(job.dram) + len(job.flows)
            for job in (*jobs, *background)
        )
        max_steps = 1000 + 16 * (
            total_components + len(jobs) + len(background)
        )
        steps = 0
        zero_windows = 0
        windows = 0
        live_rows = 0

        while active or any(queues) or bg_active or bg_pending:
            steps += 1
            if steps > max_steps:
                raise EngineError(
                    "event simulation failed to converge "
                    f"({len(jobs)} jobs, {steps} steps)"
                )

            # Start any idle GPM's head job whose floor has passed;
            # zero-demand units complete instantly and hand the GPM to
            # the next queued job within the same window.
            next_start = float("inf")
            for gpm in range(n):
                while gpm not in active and queues[gpm]:
                    floor = queues[gpm][0].start_floor
                    if floor > t * (1 + _REL) + _EPS:
                        next_start = min(next_start, floor)
                        break
                    job = queues[gpm].popleft()
                    idx = index_of[id(job)]
                    start = max(t, floor)
                    if zero_demand[idx]:  # instantaneous
                        intervals.append(
                            TraceInterval(
                                gpm=gpm, label=job.label,
                                start=start, end=start,
                                kind=job.kind,
                            )
                        )
                        end[gpm] = max(end[gpm], start)
                        account_bytes(job)
                        continue
                    active[gpm] = _RunState(job, idx, start)
                    enter_rows(idx)
            # Background copies activate on their floor regardless of
            # what their GPM is doing — the copy engines, not the SMs,
            # move the bytes.
            while bg_pending:
                floor = bg_pending[0].start_floor
                if floor > t * (1 + _REL) + _EPS:
                    next_start = min(next_start, floor)
                    break
                job = bg_pending.pop(0)
                idx = index_of[id(job)]
                start = max(t, floor)
                if zero_demand[idx]:
                    intervals.append(
                        TraceInterval(
                            gpm=job.gpm, label=job.label,
                            start=start, end=start,
                            kind=job.kind,
                        )
                    )
                    account_bytes(job)
                    continue
                bg_active.append(_RunState(job, idx, start))
                enter_rows(idx)

            if not active and not bg_active:
                if next_start == float("inf"):
                    break
                t = next_start
                continue

            windows += 1
            live_rows += (
                len(c_live) + len(d_live) + len(lat_live) + len(b_live)
            )

            # Concurrent users per shared resource in this window —
            # the same share expressions as the reference loop, over
            # the same live value sets (the per-row ``(row, share)``
            # pairs are kept so the depletion pass below subtracts
            # the exact same share each horizon was computed from).
            d_shares = []
            if d_live:
                users = [0] * n
                for row in d_live:
                    users[dram_gpm[row]] += 1
                for row in d_live:
                    d_shares.append((row, dram_bw / users[dram_gpm[row]]))
            b_rates = []
            for row in b_live:
                # Bandwidth share on the most contended link of the
                # route, serialised over the hop count (links with no
                # active flow are floored to one user; a streaming
                # flow's route is never empty).
                hop = min(
                    link_bw / u if (u := link_users[lid]) > 1 else link_bw
                    for lid in routes[row]
                )
                b_rates.append(
                    (row, (hop * flow_scale[row]) / route_len[row])
                )

            # Time to the next completion or rate change.
            dt = next_start - t if next_start != float("inf") else float("inf")
            if c_live:
                dt = min(dt, min(compute_rem[idx] for idx in c_live))
            if d_shares:
                dt = min(
                    dt, min(dram_rem[row] / share for row, share in d_shares)
                )
            if lat_live:
                dt = min(dt, min(flow_lat[row] for row in lat_live))
            if b_rates:
                dt = min(
                    dt, min(flow_bytes[row] / rate for row, rate in b_rates)
                )

            if dt == float("inf"):
                # Active demand that drains at rate zero: tolerate a
                # bounded streak, then raise the diagnostic instead of
                # spinning (or silently force-retiring) forever.
                zero_windows += 1
                if zero_windows >= _MAX_ZERO_WINDOWS:
                    raise self._stall_error(active, bg_active)
                dt = 0.0
            else:
                zero_windows = 0
            dt = max(dt, 0.0)

            # Advance the window: deplete demands, accumulate occupancy
            # and retire the per-job open-component counts as rows
            # cross the dust threshold (crossings also update the live
            # sets, so the next window never rescans retired rows).
            if dt > 0.0:
                t += dt
                for gpm in active:
                    busy[gpm] += dt
                for lid in range(num_links):
                    if link_users[lid] > 0:
                        link_busy_acc[lid] += dt
                if c_live:
                    done = []
                    for idx in c_live:
                        remaining = compute_rem[idx] - dt
                        compute_rem[idx] = remaining
                        if remaining <= _EPS:
                            done.append(idx)
                    c_live.difference_update(done)
                for row, share in d_shares:
                    remaining = dram_rem[row] - dt * share
                    dram_rem[row] = remaining
                    if remaining <= _EPS:
                        pending[dram_job[row]] -= 1
                        d_live.discard(row)
                if lat_live:
                    expired = []
                    for row in lat_live:
                        remaining = flow_lat[row] - dt
                        flow_lat[row] = remaining
                        if remaining <= _EPS:
                            expired.append(row)
                    if expired:
                        lat_live.difference_update(expired)
                        # A flow with nothing left to stream is done
                        # the moment its wire latency drains; the rest
                        # enter the streaming state and start loading
                        # their route's links next window.
                        for row in expired:
                            if flow_bytes[row] > _EPS:
                                enter_stream(row)
                            else:
                                pending[flow_job[row]] -= 1
                for row, rate in b_rates:
                    remaining = flow_bytes[row] - dt * rate
                    flow_bytes[row] = remaining
                    if remaining <= _EPS:
                        pending[flow_job[row]] -= 1
                        leave_stream(row)

            # Retire completed jobs: compute drained and no DRAM or
            # flow component still above the dust threshold.
            for gpm in list(active):
                state = active[gpm]
                if not (
                    compute_rem[state.idx] <= _EPS
                    and pending[state.idx] == 0
                ):
                    continue
                intervals.append(
                    TraceInterval(
                        gpm=gpm, label=state.job.label,
                        start=state.start, end=t, kind=state.job.kind,
                    )
                )
                end[gpm] = max(end[gpm], t)
                account_bytes(state.job)
                del active[gpm]
                clear_rows(state.idx)
            for state in list(bg_active):
                if not (
                    compute_rem[state.idx] <= _EPS
                    and pending[state.idx] == 0
                ):
                    continue
                intervals.append(
                    TraceInterval(
                        gpm=state.job.gpm, label=state.job.label,
                        start=state.start, end=t, kind=state.job.kind,
                    )
                )
                account_bytes(state.job)
                bg_active.remove(state)
                clear_rows(state.idx)

        link_busy: Dict[Link, float] = {
            arrays.links[i]: link_busy_acc[i]
            for i in range(num_links)
            if link_busy_acc[i] > 0.0
        }
        return _SimResult(
            busy=busy,
            end=end,
            intervals=intervals,
            link_busy=link_busy,
            link_bytes=link_bytes,
            windows=windows,
            live_rows=live_rows,
        )

    def _simulate_reference(
        self, jobs: Sequence[_Job], background: Sequence[_Job] = ()
    ) -> _SimResult:
        """The retained full-scan window loop (the oracle).

        Every window re-derives the live-row sets with ``nonzero``/
        ``bincount`` scans over *all* rows — O(total) per window.  Kept
        as the bit-exactness oracle for :meth:`_simulate` (the property
        tests replay random flow soups through both) and as the
        baseline side of the throughput bench's same-host loop A/B via
        :attr:`use_reference_loop`.
        """
        system = self.system
        n = system.num_gpms
        dram_bw = system.config.gpm.dram_bytes_per_cycle
        link_bw = system.config.link.bytes_per_cycle

        all_jobs: List[_Job] = [*jobs, *background]
        arrays = _JobArrays(all_jobs)
        index_of = {id(job): idx for idx, job in enumerate(all_jobs)}
        compute_rem = arrays.compute
        dram_job, dram_gpm = arrays.dram_job, arrays.dram_gpm
        dram_rem = arrays.dram_rem
        flow_job, flow_lat = arrays.flow_job, arrays.flow_lat
        flow_bytes, flow_scale = arrays.flow_bytes, arrays.flow_scale
        route_offsets, route_links = arrays.route_offsets, arrays.route_links
        route_rep, route_len = arrays.route_rep, arrays.route_len
        job_d0, job_f0 = arrays.job_d0, arrays.job_f0
        num_links = len(arrays.links)
        have_dram = dram_job.size > 0
        have_flows = flow_job.size > 0
        run_mask = np.zeros(arrays.count, dtype=bool)
        #: Row-level running masks, toggled by slice on (de)activation.
        d_run = np.zeros(dram_job.size, dtype=bool)
        f_run = np.zeros(flow_job.size, dtype=bool)
        pending = arrays.pending0.copy()
        link_busy_acc = np.zeros(num_links, dtype=np.float64)

        queues: List[deque] = [deque() for _ in range(n)]
        for job in jobs:
            queues[job.gpm].append(job)
        bg_pending: List[_Job] = sorted(
            background, key=lambda job: job.start_floor
        )
        bg_active: List[_RunState] = []

        active: Dict[int, _RunState] = {}
        t = 0.0
        busy = [0.0] * n
        end = [0.0] * n
        intervals: List[TraceInterval] = []
        link_bytes: Dict[Link, float] = {}

        def account_bytes(job: _Job) -> None:
            for spec in job.flows:
                for link in spec.route:
                    link_bytes[link] = link_bytes.get(link, 0.0) + spec.nbytes

        total_components = sum(
            1 + len(job.dram) + len(job.flows)
            for job in (*jobs, *background)
        )
        max_steps = 1000 + 16 * (
            total_components + len(jobs) + len(background)
        )
        steps = 0
        zero_windows = 0
        windows = 0
        live_rows = 0

        while active or any(queues) or bg_active or bg_pending:
            steps += 1
            if steps > max_steps:
                raise EngineError(
                    "event simulation failed to converge "
                    f"({len(jobs)} jobs, {steps} steps)"
                )

            # Start any idle GPM's head job whose floor has passed;
            # zero-demand units complete instantly and hand the GPM to
            # the next queued job within the same window.
            next_start = float("inf")
            for gpm in range(n):
                while gpm not in active and queues[gpm]:
                    floor = queues[gpm][0].start_floor
                    if floor > t * (1 + _REL) + _EPS:
                        next_start = min(next_start, floor)
                        break
                    job = queues[gpm].popleft()
                    idx = index_of[id(job)]
                    start = max(t, floor)
                    if arrays.zero_demand[idx]:  # instantaneous
                        intervals.append(
                            TraceInterval(
                                gpm=gpm, label=job.label,
                                start=start, end=start,
                                kind=job.kind,
                            )
                        )
                        end[gpm] = max(end[gpm], start)
                        account_bytes(job)
                        continue
                    active[gpm] = _RunState(job, idx, start)
                    run_mask[idx] = True
                    d_run[job_d0[idx] : job_d0[idx + 1]] = True
                    f_run[job_f0[idx] : job_f0[idx + 1]] = True
            # Background copies activate on their floor regardless of
            # what their GPM is doing — the copy engines, not the SMs,
            # move the bytes.
            while bg_pending:
                floor = bg_pending[0].start_floor
                if floor > t * (1 + _REL) + _EPS:
                    next_start = min(next_start, floor)
                    break
                job = bg_pending.pop(0)
                idx = index_of[id(job)]
                start = max(t, floor)
                if arrays.zero_demand[idx]:
                    intervals.append(
                        TraceInterval(
                            gpm=job.gpm, label=job.label,
                            start=start, end=start,
                            kind=job.kind,
                        )
                    )
                    account_bytes(job)
                    continue
                bg_active.append(_RunState(job, idx, start))
                run_mask[idx] = True
                d_run[job_d0[idx] : job_d0[idx + 1]] = True
                f_run[job_f0[idx] : job_f0[idx + 1]] = True

            if not active and not bg_active:
                if next_start == float("inf"):
                    break
                t = next_start
                continue

            # Concurrent users per shared resource in this window, as
            # bincounts over the live demand rows.
            if have_dram:
                d_idx = np.nonzero(d_run & (dram_rem > _EPS))[0]
                if d_idx.size:
                    d_gpm = dram_gpm[d_idx]
                    dram_users = np.bincount(d_gpm, minlength=n)
                    #: Per-row bandwidth share, same expression the
                    #: per-object loop divided with.
                    dram_share = dram_bw / dram_users[d_gpm]
            if have_flows:
                lat_open = flow_lat > _EPS
                lat_idx = np.nonzero(f_run & lat_open)[0]
                b_mask = f_run & ~lat_open & (flow_bytes > _EPS)
                b_idx = np.nonzero(b_mask)[0]
                link_users = np.bincount(
                    route_links[b_mask[route_rep]], minlength=num_links
                )
                if b_idx.size:
                    # Bandwidth share on the most contended link of
                    # each route, serialised over the hop count —
                    # uncontended this reproduces the analytic bytes x
                    # hops wire-load charge exactly, so engine gaps
                    # isolate contention.  (Links with no active flow
                    # are floored to one user; their garbage rates are
                    # masked out by b_idx.)
                    per_hop = link_bw / np.maximum(link_users, 1)[route_links]
                    b_rate = (
                        np.minimum.reduceat(per_hop, route_offsets[:-1])
                        * flow_scale
                    )[b_idx] / route_len[b_idx]
                    b_bytes = flow_bytes[b_idx]

            # Time to the next completion or rate change.
            dt = next_start - t if next_start != float("inf") else float("inf")
            c_idx = np.nonzero(run_mask & (compute_rem > _EPS))[0]
            if c_idx.size:
                dt = min(dt, float(compute_rem[c_idx].min()))
            if have_dram and d_idx.size:
                dt = min(dt, float((dram_rem[d_idx] / dram_share).min()))
            if have_flows:
                if lat_idx.size:
                    dt = min(dt, float(flow_lat[lat_idx].min()))
                if b_idx.size:
                    dt = min(dt, float((b_bytes / b_rate).min()))

            windows += 1
            live_rows += c_idx.size
            if have_dram:
                live_rows += d_idx.size
            if have_flows:
                live_rows += lat_idx.size + b_idx.size

            if dt == float("inf"):
                # Same bounded-streak diagnostic as the incremental
                # loop (both loops share retire semantics, so the
                # property tests compare like with like).
                zero_windows += 1
                if zero_windows >= _MAX_ZERO_WINDOWS:
                    raise self._stall_error(active, bg_active)
                dt = 0.0
            else:
                zero_windows = 0
            dt = max(dt, 0.0)

            # Advance the window: deplete demands, accumulate occupancy
            # and retire the per-job open-component counts as rows
            # cross the dust threshold.
            if dt > 0.0:
                t += dt
                for gpm in active:
                    busy[gpm] += dt
                if have_flows:
                    link_busy_acc[link_users > 0] += dt
                if c_idx.size:
                    compute_rem[c_idx] -= dt
                if have_dram and d_idx.size:
                    new_d = dram_rem[d_idx] - dt * dram_share
                    dram_rem[d_idx] = new_d
                    closed = d_idx[new_d <= _EPS]
                    if closed.size:
                        np.subtract.at(pending, dram_job[closed], 1)
                if have_flows:
                    if lat_idx.size:
                        new_l = flow_lat[lat_idx] - dt
                        flow_lat[lat_idx] = new_l
                        expired = lat_idx[new_l <= _EPS]
                        if expired.size:
                            # A flow with nothing left to stream is
                            # done the moment its wire latency drains.
                            settled = expired[flow_bytes[expired] <= _EPS]
                            if settled.size:
                                np.subtract.at(
                                    pending, flow_job[settled], 1
                                )
                    if b_idx.size:
                        new_b = b_bytes - dt * b_rate
                        flow_bytes[b_idx] = new_b
                        drained = b_idx[new_b <= _EPS]
                        if drained.size:
                            np.subtract.at(pending, flow_job[drained], 1)

            # Retire completed jobs: compute drained and no DRAM or
            # flow component still above the dust threshold.
            for gpm in list(active):
                state = active[gpm]
                if not (
                    compute_rem[state.idx] <= _EPS
                    and pending[state.idx] == 0
                ):
                    continue
                intervals.append(
                    TraceInterval(
                        gpm=gpm, label=state.job.label,
                        start=state.start, end=t, kind=state.job.kind,
                    )
                )
                end[gpm] = max(end[gpm], t)
                account_bytes(state.job)
                del active[gpm]
                idx = state.idx
                run_mask[idx] = False
                d_run[job_d0[idx] : job_d0[idx + 1]] = False
                f_run[job_f0[idx] : job_f0[idx + 1]] = False
            for state in list(bg_active):
                if not (
                    compute_rem[state.idx] <= _EPS
                    and pending[state.idx] == 0
                ):
                    continue
                intervals.append(
                    TraceInterval(
                        gpm=state.job.gpm, label=state.job.label,
                        start=state.start, end=t, kind=state.job.kind,
                    )
                )
                account_bytes(state.job)
                bg_active.remove(state)
                idx = state.idx
                run_mask[idx] = False
                d_run[job_d0[idx] : job_d0[idx + 1]] = False
                f_run[job_f0[idx] : job_f0[idx + 1]] = False

        link_busy: Dict[Link, float] = {
            arrays.links[i]: float(link_busy_acc[i])
            for i in np.nonzero(link_busy_acc > 0.0)[0]
        }
        return _SimResult(
            busy=busy,
            end=end,
            intervals=intervals,
            link_busy=link_busy,
            link_bytes=link_bytes,
            windows=windows,
            live_rows=live_rows,
        )

    def _composition_jobs(self, floor: float) -> List[_Job]:
        """Expand the recorded barriers into simulation jobs.

        One job per participating GPM, floored at the simulated render
        end: its ROP share as compute, its outgoing pixel transfers
        (merged per directional pair) as flows.
        """
        fabric = self.system.fabric
        latency = float(self.system.config.link.latency_cycles)
        jobs: List[_Job] = []
        for schedule in self._compositions:
            outgoing: Dict[int, Dict[Link, float]] = {}
            for transfer in schedule.transfers:
                if transfer.nbytes <= 0 or transfer.src == transfer.dst:
                    continue
                per_src = outgoing.setdefault(transfer.src, {})
                key = (transfer.src, transfer.dst)
                per_src[key] = per_src.get(key, 0.0) + transfer.nbytes
            participants = sorted(set(schedule.rop_cycles) | set(outgoing))
            for gpm in participants:
                specs: List[_FlowSpec] = []
                for (src, dst), nbytes in outgoing.get(gpm, {}).items():
                    route = tuple(fabric.route(src, dst))
                    if not route:
                        continue
                    specs.append(
                        _FlowSpec(
                            route=route,
                            nbytes=nbytes,
                            latency=latency * len(route),
                        )
                    )
                compute = schedule.rop_cycles.get(gpm, 0.0)
                if compute <= 0 and not specs:
                    continue
                jobs.append(
                    _Job(
                        label=schedule.label,
                        gpm=gpm,
                        kind="compose",
                        start_floor=floor,
                        compute=compute,
                        dram={},
                        flows=specs,
                        provisional_cycles=0.0,
                    )
                )
        return jobs

    def finish_frame(self) -> FrameTrace:
        """Replay the submitted schedule through the event simulation.

        Two windows: the render phase (units, stalls, steals and
        background staging copies time-sharing the machine), then the
        composition barrier starting when the last GPM's render lane
        drains.  Per-GPM busy/end figures cover the render lane only;
        the barrier is reported as ``composition_cycles`` and its
        ``compose``-lane intervals.
        """
        simulate = (
            self._simulate_reference
            if self.use_reference_loop
            else self._simulate
        )
        loop_start = time.perf_counter()
        render = simulate(self._jobs, self._background)
        loop_seconds = time.perf_counter() - loop_start
        windows = render.windows
        live_rows = render.live_rows
        render_end = max(render.end) if render.end else 0.0
        intervals = list(render.intervals)
        link_busy = dict(render.link_busy)
        link_bytes = dict(render.link_bytes)
        composition_cycles = 0.0
        compose_jobs = self._composition_jobs(render_end)
        if compose_jobs:
            loop_start = time.perf_counter()
            compose = simulate(compose_jobs)
            loop_seconds += time.perf_counter() - loop_start
            windows += compose.windows
            live_rows += compose.live_rows
            composition_cycles = max(compose.makespan - render_end, 0.0)
            intervals.extend(compose.intervals)
            for link, cycles in compose.link_busy.items():
                link_busy[link] = link_busy.get(link, 0.0) + cycles
            for link, nbytes in compose.link_bytes.items():
                link_bytes[link] = link_bytes.get(link, 0.0) + nbytes
        # Window-loop counters for ``--profile`` runs (no-ops when no
        # capture is active, so unprofiled goldens pay nothing).
        add_counter("event_windows", float(windows))
        add_counter("event_live_rows", float(live_rows))
        add_counter("event_loop_s", loop_seconds)

        links = tuple(
            LinkUsage(
                src=link[0],
                dst=link[1],
                nbytes=link_bytes.get(link, 0.0),
                busy_cycles=link_busy.get(link, 0.0),
            )
            for link in sorted(set(link_bytes) | set(link_busy))
        )
        return FrameTrace(
            engine=self.name,
            num_gpms=self.system.num_gpms,
            intervals=tuple(intervals),
            gpm_busy=tuple(render.busy),
            gpm_end=tuple(render.end),
            links=links,
            composition_cycles=composition_cycles,
            phase_link_bytes=dict(self._phase_bytes),
        )
