"""The discrete-event engine: contention-aware frame timing.

The analytic model prices every work unit in isolation; real frames
overlap, and the scarce resources — each link's ``bytes_per_cycle``
and each DRAM stack's bandwidth — are *time-shared* between whatever
flows are active in the same window.  :class:`EventEngine` keeps the
analytic scheduling clock (so dispatch decisions, placement and byte
accounting stay identical to the analytic engine) and replays the
submitted schedule through a fluid discrete-event simulation:

- each GPM runs its submitted units in order, one at a time, honouring
  earliest-start floors (PA copy arrival);
- an active unit makes progress on all its demands concurrently:
  compute at rate 1, each DRAM demand at that DRAM's bandwidth divided
  by its concurrent consumers, each link flow (after its per-hop wire
  latency) at the bandwidth of the most contended link on its route
  divided by that link's concurrent flows and by its hop count (the
  same bytes x hops wire-load serialisation the analytic model
  charges, so the two engines agree when nothing overlaps);
- a unit completes when its last demand drains; the global clock
  advances between completions, starts and rate changes.

Uncontended, a single flow drains in exactly the analytic roofline
time — on any fabric.  One deliberate divergence remains: the analytic
model rolls a unit's traffic *per peer* into one serial term, even
when it mixes directions (z-reads peer->gpm plus fb-writes gpm->peer),
while the event engine drains opposite directions in parallel — the
links are full-duplex wire pairs.  Bidirectional link-bound units can
therefore finish slightly *faster* here (study factors a fraction of a
percent under 1.0); everything beyond that gap is the time congestion
steals, the quantity the engine-contention study measures.

Two traffic classes are deliberately *not* replayed as contending
flows: staging/pre-allocation copies (they overlap rendering through
the copy engines — their GPM-visible cost is the stall the staging
manager charges) and the composition pass (a barrier phase after the
render trace whose critical path is priced analytically and added on
top).  Their bytes appear in the fabric's counters like always;
modelling them as background flows is an open extension.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.base import EngineError, ExecutionEngine, ResolvedUnit
from repro.engine.trace import FrameTrace, LinkUsage, TraceInterval

__all__ = ["EventEngine"]

#: Demand below this many bytes/cycles counts as drained (float dust).
_EPS = 1e-6
#: Relative epsilon for time comparisons.
_REL = 1e-12

Link = Tuple[int, int]


@dataclass
class _FlowSpec:
    """One link transfer of a scheduled job (simulation input)."""

    route: Tuple[Link, ...]
    nbytes: float
    latency: float


@dataclass
class _Job:
    """One scheduled span of one GPM (simulation input)."""

    label: str
    gpm: int
    kind: str
    start_floor: float
    compute: float
    dram: Dict[int, float]
    flows: List[_FlowSpec]
    #: Scheduling-clock price, used to scale stolen tails fairly.
    provisional_cycles: float


class _ActiveFlow:
    """Runtime state of one flow while its job is active."""

    __slots__ = ("route", "latency_remaining", "bytes_remaining")

    def __init__(self, spec: _FlowSpec) -> None:
        self.route = spec.route
        self.latency_remaining = spec.latency
        self.bytes_remaining = spec.nbytes

    @property
    def done(self) -> bool:
        return self.latency_remaining <= _EPS and self.bytes_remaining <= _EPS


class _ActiveJob:
    """Runtime state of the job a GPM is currently executing."""

    __slots__ = ("job", "start", "compute_remaining", "dram_remaining", "flows")

    def __init__(self, job: _Job, start: float) -> None:
        self.job = job
        self.start = start
        self.compute_remaining = job.compute
        self.dram_remaining = {
            gpm: nbytes for gpm, nbytes in job.dram.items() if nbytes > _EPS
        }
        self.flows = [_ActiveFlow(spec) for spec in job.flows]

    @property
    def done(self) -> bool:
        return (
            self.compute_remaining <= _EPS
            and all(b <= _EPS for b in self.dram_remaining.values())
            and all(flow.done for flow in self.flows)
        )


class EventEngine(ExecutionEngine):
    """Discrete-event timing over the analytic engine's schedule."""

    name = "event"

    def __init__(self, system) -> None:
        super().__init__(system)
        self._jobs: List[_Job] = []

    def begin_frame(self) -> None:
        super().begin_frame()
        self._jobs.clear()

    # -- schedule recording ---------------------------------------------------

    def _flow_specs(self, resolved: ResolvedUnit) -> List[_FlowSpec]:
        fabric = self.system.fabric
        latency = float(self.system.config.link.latency_cycles)
        specs: List[_FlowSpec] = []
        for flow in resolved.flows:
            route = tuple(fabric.route(flow.src, flow.dst))
            if not route:
                continue
            specs.append(
                _FlowSpec(
                    route=route,
                    nbytes=flow.nbytes,
                    latency=latency * len(route),
                )
            )
        return specs

    def _note_unit(
        self,
        resolved: ResolvedUnit,
        start_at: Optional[float],
        cycles: float,
    ) -> None:
        self._jobs.append(
            _Job(
                label=resolved.label,
                gpm=resolved.gpm,
                kind="render",
                start_floor=start_at or 0.0,
                compute=resolved.compute_cycles,
                dram=dict(resolved.dram_demand),
                flows=self._flow_specs(resolved),
                provisional_cycles=cycles,
            )
        )

    def _note_stall(self, gpm_id: int, label: str, cycles: float) -> None:
        self._jobs.append(
            _Job(
                label=label,
                gpm=gpm_id,
                kind="stall",
                start_floor=0.0,
                compute=cycles,
                dram={},
                flows=[],
                provisional_cycles=cycles,
            )
        )

    def _note_steal(
        self, src: int, dst: int, label: str, cycles: float, nbytes: float
    ) -> None:
        route = tuple(self.system.fabric.route(src, dst))
        latency = float(self.system.config.link.latency_cycles)
        flows = (
            [_FlowSpec(route=route, nbytes=nbytes, latency=latency * len(route))]
            if route
            else []
        )
        self._jobs.append(
            _Job(
                label=label,
                gpm=dst,
                kind="steal",
                start_floor=0.0,
                compute=cycles,
                dram={},
                flows=flows,
                provisional_cycles=cycles,
            )
        )

    def _note_shed(self, gpm_id: int, cycles: float) -> None:
        """Shrink the straggler's pending tail by ``cycles``.

        The stolen slice takes its share of the tail job's compute and
        memory demands with it (the thief re-reads the duplicated
        data), so the tail jobs scale down proportionally, newest
        first.
        """
        remaining = cycles
        for job in reversed(self._jobs):
            if remaining <= _EPS:
                return
            if job.gpm != gpm_id or job.kind != "render":
                continue
            p = job.provisional_cycles
            if p <= _EPS:
                continue
            take = min(remaining, p)
            factor = (p - take) / p
            job.compute *= factor
            job.dram = {gpm: b * factor for gpm, b in job.dram.items()}
            for flow in job.flows:
                flow.nbytes *= factor
            job.provisional_cycles = p - take
            remaining -= take

    # -- simulation ----------------------------------------------------------

    def _simulate(self, jobs: Sequence[_Job]) -> FrameTrace:
        system = self.system
        n = system.num_gpms
        dram_bw = system.config.gpm.dram_bytes_per_cycle
        link_bw = system.config.link.bytes_per_cycle

        queues: List[deque] = [deque() for _ in range(n)]
        for job in jobs:
            queues[job.gpm].append(job)

        active: Dict[int, _ActiveJob] = {}
        t = 0.0
        busy = [0.0] * n
        end = [0.0] * n
        intervals: List[TraceInterval] = []
        link_busy: Dict[Link, float] = {}
        link_bytes: Dict[Link, float] = {}

        total_components = sum(
            1 + len(job.dram) + len(job.flows) for job in jobs
        )
        max_steps = 1000 + 16 * (total_components + len(jobs))
        steps = 0

        while active or any(queues):
            steps += 1
            if steps > max_steps:
                raise EngineError(
                    "event simulation failed to converge "
                    f"({len(jobs)} jobs, {steps} steps)"
                )

            # Start any idle GPM's head job whose floor has passed;
            # zero-demand units complete instantly and hand the GPM to
            # the next queued job within the same window.
            next_start = float("inf")
            for gpm in range(n):
                while gpm not in active and queues[gpm]:
                    floor = queues[gpm][0].start_floor
                    if floor > t * (1 + _REL) + _EPS:
                        next_start = min(next_start, floor)
                        break
                    job = queues[gpm].popleft()
                    state = _ActiveJob(job, start=max(t, floor))
                    if state.done:  # zero-demand unit: instantaneous
                        intervals.append(
                            TraceInterval(
                                gpm=gpm, label=job.label,
                                start=state.start, end=state.start,
                                kind=job.kind,
                            )
                        )
                        end[gpm] = max(end[gpm], state.start)
                        for spec in job.flows:
                            for link in spec.route:
                                link_bytes[link] = (
                                    link_bytes.get(link, 0.0) + spec.nbytes
                                )
                        continue
                    active[gpm] = state

            if not active:
                if next_start == float("inf"):
                    break
                t = next_start
                continue

            # Concurrent users per shared resource in this window.
            dram_users: Dict[int, int] = {}
            link_users: Dict[Link, int] = {}
            for state in active.values():
                for gpm, nbytes in state.dram_remaining.items():
                    if nbytes > _EPS:
                        dram_users[gpm] = dram_users.get(gpm, 0) + 1
                for flow in state.flows:
                    if flow.latency_remaining <= _EPS and flow.bytes_remaining > _EPS:
                        for link in flow.route:
                            link_users[link] = link_users.get(link, 0) + 1

            def flow_rate(flow: _ActiveFlow) -> float:
                # Bandwidth share on the most contended link of the
                # route, serialised over the hop count — uncontended
                # this reproduces the analytic bytes x hops wire-load
                # charge exactly, so engine gaps isolate contention.
                return min(
                    link_bw / link_users[link] for link in flow.route
                ) / len(flow.route)

            # Time to the next completion or rate change.
            dt = next_start - t if next_start != float("inf") else float("inf")
            for state in active.values():
                if state.compute_remaining > _EPS:
                    dt = min(dt, state.compute_remaining)
                for gpm, nbytes in state.dram_remaining.items():
                    if nbytes > _EPS:
                        dt = min(dt, nbytes / (dram_bw / dram_users[gpm]))
                for flow in state.flows:
                    if flow.latency_remaining > _EPS:
                        dt = min(dt, flow.latency_remaining)
                    elif flow.bytes_remaining > _EPS:
                        dt = min(dt, flow.bytes_remaining / flow_rate(flow))

            if dt == float("inf"):
                dt = 0.0
            dt = max(dt, 0.0)

            # Advance the window: deplete demands, accumulate occupancy.
            if dt > 0.0:
                t += dt
                for gpm in active:
                    busy[gpm] += dt
                for link, users in link_users.items():
                    if users > 0:
                        link_busy[link] = link_busy.get(link, 0.0) + dt
                for state in active.values():
                    if state.compute_remaining > _EPS:
                        state.compute_remaining -= dt
                    for gpm in list(state.dram_remaining):
                        nbytes = state.dram_remaining[gpm]
                        if nbytes > _EPS:
                            state.dram_remaining[gpm] = nbytes - dt * (
                                dram_bw / dram_users[gpm]
                            )
                    for flow in state.flows:
                        if flow.latency_remaining > _EPS:
                            flow.latency_remaining -= dt
                        elif flow.bytes_remaining > _EPS:
                            flow.bytes_remaining -= dt * flow_rate(flow)

            # Retire completed jobs.
            for gpm in list(active):
                state = active[gpm]
                if not state.done and dt > 0.0:
                    continue
                intervals.append(
                    TraceInterval(
                        gpm=gpm, label=state.job.label,
                        start=state.start, end=t, kind=state.job.kind,
                    )
                )
                end[gpm] = max(end[gpm], t)
                for spec in state.job.flows:
                    for link in spec.route:
                        link_bytes[link] = (
                            link_bytes.get(link, 0.0) + spec.nbytes
                        )
                del active[gpm]

        links = tuple(
            LinkUsage(
                src=link[0],
                dst=link[1],
                nbytes=link_bytes.get(link, 0.0),
                busy_cycles=link_busy.get(link, 0.0),
            )
            for link in sorted(set(link_bytes) | set(link_busy))
        )
        return FrameTrace(
            engine=self.name,
            num_gpms=n,
            intervals=tuple(intervals),
            gpm_busy=tuple(busy),
            gpm_end=tuple(end),
            links=links,
        )

    def finish_frame(self) -> FrameTrace:
        """Replay the submitted schedule through the event simulation."""
        return self._simulate(self._jobs)
