"""Per-process reuse of scene-derived immutable artefacts.

Grid sweeps vary framework/engine/link knobs far more often than they
vary the workload, yet every cell used to re-run the same middleware
batch grouping and Eq. 3 frame characterisation from scratch —
``--profile`` showed those two phases dominating the warm cell.  The
scene layer already memoises :class:`~repro.scene.scene.Scene` builds
per process (:func:`~repro.session.spec.cached_scene`), so cells that
share a workload also share *frame objects*; everything derived purely
from a frame plus a hashable slice of the config can therefore be
shared too.

:class:`ReuseCache` is that sharing point: a per-process, in-memory
memo table keyed by ``(section, anchor identity, config fingerprint)``
where the *anchor* is the immutable frame (or batch) object the
artefact was derived from.  Entries hold a strong reference to their
anchor and are only served while ``entry.anchor is anchor`` — identity,
not equality — so a rebuilt scene (cache eviction, different process)
can never alias a stale artefact.  Cached values are immutable
(frozen-dataclass :class:`~repro.pipeline.workunit.WorkUnit`,
:class:`~repro.core.middleware.Batch`, counter tuples); call sites that
hand consumers a mutable container copy it per call.

This is *in-memory* reuse, deliberately distinct from the on-disk
result cache: ``spec_key`` and :class:`~repro.session.cache.ResultCache`
entries are untouched, and the numbers produced with reuse on are
byte-identical to reuse off (the memo returns the very objects the
build would have produced).  The cache is per-process by construction —
worker processes start with an empty module instance and
:class:`~repro.session.executor.ProcessExecutor` only forwards the
enabled/disabled flag, never cache contents.

Enable/disable is scoped, not global mutation: :func:`reuse_scope`
wraps a sweep or session run, restoring the previous state on exit, so
an A/B bench can interleave the two modes safely.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterator, Tuple

__all__ = [
    "ReuseCache",
    "ReuseStats",
    "get_cache",
    "reuse_enabled",
    "reuse_scope",
    "set_reuse",
]


@dataclass
class ReuseStats:
    """Hit/miss counters of one :class:`ReuseCache`."""

    hits: int = 0
    misses: int = 0

    def snapshot(self) -> Tuple[int, int]:
        return (self.hits, self.misses)


@dataclass
class _Entry:
    """One memoised artefact, pinned to its anchor's identity."""

    anchor: Any
    value: Any


class ReuseCache:
    """Identity-anchored memo table for scene-derived artefacts.

    ``max_entries`` bounds memory: the oldest entries (insertion order)
    are dropped first.  The bound is generous — an entry is a couple of
    tuples per (frame, cost-fingerprint) pair — and exists only so a
    pathological sweep over thousands of workloads cannot grow without
    limit.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self._entries: Dict[Hashable, _Entry] = {}
        self._lock = threading.Lock()
        self.stats = ReuseStats()
        self.max_entries = max_entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = ReuseStats()

    def memoize(
        self,
        section: str,
        anchor: Any,
        key: Hashable,
        build: Callable[[], Any],
    ) -> Any:
        """``build()`` memoised under ``(section, anchor, key)``.

        ``anchor`` is compared by identity (``is``), never equality: the
        entry keeps a strong reference so a live hit is always against
        the exact object the value was derived from, and a dead
        ``id()`` can never be re-issued while its entry exists.  When
        reuse is disabled the build runs unconditionally and nothing is
        recorded.
        """
        if not _enabled:
            return build()
        full = (section, id(anchor), key)
        with self._lock:
            entry = self._entries.get(full)
        if entry is not None and entry.anchor is anchor:
            self.stats.hits += 1
            return entry.value
        value = build()
        with self._lock:
            self.stats.misses += 1
            self._entries[full] = _Entry(anchor, value)
            while len(self._entries) > self.max_entries:
                self._entries.pop(next(iter(self._entries)))
        return value


#: Whether hook sites consult the cache.  On by default: reuse is
#: byte-transparent, so figures/goldens/CSV exports are identical either
#: way and only the wall clock changes.
_enabled = True
#: The process's cache.  Module-level so forked/spawned workers start
#: fresh (per-process isolation is part of the contract, and tested).
_cache = ReuseCache()


def get_cache() -> ReuseCache:
    """This process's :class:`ReuseCache`."""
    return _cache


def reuse_enabled() -> bool:
    """Whether the reuse cache is currently consulted."""
    return _enabled


def set_reuse(enabled: bool) -> None:
    """Set the reuse flag outright (process-pool initializers)."""
    global _enabled
    _enabled = bool(enabled)


@contextmanager
def reuse_scope(enabled: bool) -> Iterator[None]:
    """Scoped enable/disable, restoring the previous state on exit."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    try:
        yield
    finally:
        _enabled = previous
