"""Asynchronous Time Warp (ATW) and VR frame pacing.

Section 2.2 of the paper notes that VR vendors "employ frame
re-projection technologies such as Asynchronous Time Warp to
artificially fill in dropped frames", but that ATW "cannot fundamentally
solve the problem of rendering deadline missing".  Section 4.1 rejects
AFR because its +59% single-frame latency "may cause significant motion
anomalies, including judder, lagging and sickness".

This module turns those qualitative statements into a measurable
pipeline model.  Given a scheme's per-frame render latencies it
simulates an HMD compositor with a fixed vsync interval:

- a frame whose render finishes inside its vsync window is displayed
  fresh;
- a miss makes the compositor re-display the previous image warped by
  ATW (a full-screen reprojection pass costed through the ROPs), which
  keeps head tracking smooth but freezes animation — a *judder* event;
- consecutive misses accumulate *lag*: the display falls behind the
  simulation clock by whole vsync periods.

The report gives fresh-frame rate, judder rate, the worst lag streak,
and the ATW GPU overhead — the numbers behind the paper's argument that
OO-VR's low single-frame latency (not just high throughput) is what VR
needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig, baseline_system
from repro.stats.metrics import SceneResult

__all__ = ["ATWConfig", "ATWReport", "atw_study", "simulate_atw"]


@dataclass(frozen=True)
class ATWConfig:
    """HMD compositor parameters.

    Parameters
    ----------
    refresh_hz:
        Display refresh rate; 90 Hz is the PC-VR standard the paper's
        5-10 ms frame-latency row in Table 1 corresponds to.
    eye_width / eye_height:
        Per-eye resolution used to price the reprojection pass.
    clock_hz:
        GPU clock for converting cycles to seconds.
    """

    refresh_hz: float = 90.0
    eye_width: int = 1280
    eye_height: int = 1024
    clock_hz: float = 1e9

    def __post_init__(self) -> None:
        if self.refresh_hz <= 0:
            raise ValueError("refresh rate must be positive")
        if self.eye_width <= 0 or self.eye_height <= 0:
            raise ValueError("eye resolution must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")

    @property
    def vsync_seconds(self) -> float:
        return 1.0 / self.refresh_hz

    def reprojection_cycles(self, config: SystemConfig | None = None) -> float:
        """Cost of one ATW pass: re-rasterising both eye images.

        ATW samples the previous frame as a texture and writes every
        output pixel once; the pass is ROP/bandwidth bound, so we price
        it as total pixels over the machine's aggregate ROP throughput.
        """
        config = config or baseline_system()
        pixels = 2.0 * self.eye_width * self.eye_height
        throughput = config.num_gpms * config.gpm.rop_throughput
        return pixels / throughput


@dataclass(frozen=True)
class ATWReport:
    """Outcome of pacing one scheme's frames through the compositor."""

    framework: str
    workload: str
    vsync_ms: float
    frames_total: int
    frames_fresh: int
    frames_judder: int
    worst_lag_vsyncs: int
    atw_overhead_ms: float
    mean_latency_ms: float

    @property
    def fresh_rate(self) -> float:
        """Fraction of vsyncs showing a newly rendered frame."""
        return self.frames_fresh / self.frames_total if self.frames_total else 0.0

    @property
    def judder_rate(self) -> float:
        """Fraction of vsyncs re-showing a warped stale frame."""
        return self.frames_judder / self.frames_total if self.frames_total else 0.0

    def summary(self) -> str:
        return (
            f"{self.framework:<12} {self.workload:<10} "
            f"fresh {100 * self.fresh_rate:5.1f}%  "
            f"judder {100 * self.judder_rate:5.1f}%  "
            f"worst lag {self.worst_lag_vsyncs} vsyncs  "
            f"ATW {self.atw_overhead_ms:.2f} ms/frame-missed"
        )


def simulate_atw(
    latencies_cycles: Sequence[float],
    framework: str = "unknown",
    workload: str = "unknown",
    atw: ATWConfig | None = None,
    system: SystemConfig | None = None,
) -> ATWReport:
    """Pace a latency stream through the HMD compositor.

    ``latencies_cycles`` is the single-frame render latency of each
    frame (the stream simply repeats if shorter than the pacing window
    of 120 vsyncs, giving steady-state rates for short scenes).
    """
    if not latencies_cycles:
        raise ValueError("need at least one frame latency")
    atw = atw or ATWConfig()
    system = system or baseline_system()
    vsync = atw.vsync_seconds
    atw_seconds = atw.reprojection_cycles(system) / atw.clock_hz

    # Repeat the latency stream across a fixed pacing window so the
    # rates are comparable between schemes regardless of scene length.
    window_vsyncs = 120
    fresh = 0
    judder = 0
    worst_streak = 0
    streak = 0
    next_frame_done = 0.0
    frame_index = 0
    seconds = [c / atw.clock_hz for c in latencies_cycles]
    mean_latency = sum(seconds) / len(seconds)

    for slot in range(window_vsyncs):
        deadline = (slot + 1) * vsync
        if next_frame_done <= deadline:
            # The in-flight frame made this vsync; present it and start
            # rendering the next one immediately (back-to-back render).
            fresh += 1
            streak = 0
            start = max(next_frame_done, slot * vsync)
            next_frame_done = start + seconds[frame_index % len(seconds)]
            frame_index += 1
        else:
            # Miss: compositor warps the previous image (ATW pass steals
            # GPU time, pushing the in-flight frame a little further).
            judder += 1
            streak += 1
            worst_streak = max(worst_streak, streak)
            next_frame_done += atw_seconds
    return ATWReport(
        framework=framework,
        workload=workload,
        vsync_ms=vsync * 1e3,
        frames_total=window_vsyncs,
        frames_fresh=fresh,
        frames_judder=judder,
        worst_lag_vsyncs=worst_streak,
        atw_overhead_ms=atw_seconds * 1e3,
        mean_latency_ms=mean_latency * 1e3,
    )


def atw_for_scene(
    result: SceneResult,
    atw: ATWConfig | None = None,
    system: SystemConfig | None = None,
) -> ATWReport:
    """Convenience: pace a :class:`SceneResult`'s steady frames."""
    latencies = [frame.cycles for frame in result.steady_frames]
    return simulate_atw(
        latencies,
        framework=result.framework,
        workload=result.workload,
        atw=atw,
        system=system,
    )


def atw_study(
    schemes: Sequence[str] = ("baseline", "object", "afr", "oo-vr"),
    experiment=None,
    atw: ATWConfig | None = None,
    system: SystemConfig | None = None,
    panel_pixels: Optional[float] = None,
    jobs: int = 1,
    cache=None,
    executor=None,
    on_result=None,
) -> Dict[str, List[ATWReport]]:
    """Pace every scheme's workload suite through the compositor.

    One declarative (scheme x workload) :class:`~repro.session.Sweep`
    (``experiment`` preset, default :data:`~repro.session.FULL`) whose
    cells fan out over ``jobs`` processes and memoise through
    ``cache``; each result's steady-frame latencies then run through
    :func:`simulate_atw`.  With ``panel_pixels`` set (e.g. Table 1's
    116.64 Mpixel stereo panel), each latency is first scaled by the
    panel-to-workload pixel ratio — "this workload's engine, at VR
    panel resolution".

    Returns ``{scheme: [ATWReport per workload, in suite order]}``.
    """
    from repro.session import FULL, Sweep

    experiment = experiment or FULL
    results = (
        Sweep()
        .preset(experiment)
        .frameworks(*schemes)
        .run(jobs=jobs, cache=cache, executor=executor, on_result=on_result)
    )
    out: Dict[str, List[ATWReport]] = {}
    for scheme in schemes:
        reports: List[ATWReport] = []
        for spec, result in results.select(framework=scheme):
            scale = 1.0
            if panel_pixels is not None:
                scale = panel_pixels / spec.scene().frames[0].total_pixels
            latencies = [
                frame.cycles * scale for frame in result.steady_frames
            ]
            reports.append(
                simulate_atw(
                    latencies,
                    framework=scheme,
                    workload=spec.workload,
                    atw=atw,
                    system=system,
                )
            )
        out[scheme] = reports
    return out
