"""Local-memory bandwidth scaling (the HBM-generation study).

Section 6.3 argues that "as the local memory bandwidth scales in future
GPU design (e.g. High-Bandwidth Memory), the performance of the future
multi-GPU scenario is more likely to be constrained by inter-GPU
memory" — i.e. OO-VR's advantage *grows* as local DRAM gets faster
while links stay hard to scale.  :func:`local_bandwidth_sweep` measures
that claim: single-frame speedup over today's baseline for each scheme
at each local-bandwidth point, with the 64 GB/s link held fixed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Mapping, Sequence

from repro.config import SystemConfig, baseline_system

__all__ = ["HBM_GENERATIONS", "local_bandwidth_sweep"]

#: Local DRAM bandwidth points, GB/s, spanning the local:link asymmetry
#: from none (64 GB/s local = the 64 GB/s link, a flat machine) through
#: the paper's 1 TB/s HBM baseline to an HBM3e-class 4 TB/s.  The
#: paper's conclusion argues OO-VR's advantage grows with this
#: asymmetry; the low points are where that claim is visible.
HBM_GENERATIONS: Mapping[str, float] = {
    "64 GB/s (=link)": 64.0,
    "128 GB/s": 128.0,
    "256 GB/s": 256.0,
    "1 TB/s (paper)": 1000.0,
    "4 TB/s": 4000.0,
}


def with_local_bandwidth(
    config: SystemConfig, bytes_per_cycle: float
) -> SystemConfig:
    """A copy of ``config`` with a different local DRAM bandwidth."""
    if bytes_per_cycle <= 0:
        raise ValueError("bandwidth must be positive")
    return replace(
        config, gpm=replace(config.gpm, dram_bytes_per_cycle=bytes_per_cycle)
    )


def local_bandwidth_sweep(
    schemes: Sequence[str] = ("baseline", "object", "oo-vr"),
    generations: Mapping[str, float] = HBM_GENERATIONS,
    workloads: Sequence[str] = ("DM3-1280", "HL2-1280", "WE"),
    draw_scale: float = 1.0,
    num_frames: int = 2,
) -> Dict[str, Dict[str, float]]:
    """Speedup over (baseline, 1 TB/s) per (generation, scheme) cell.

    Returns ``{generation: {scheme: speedup}}``, geomean over
    workloads.  The link stays at the Table 2 value throughout: the
    sweep isolates the bandwidth *asymmetry*, not raw bandwidth.
    """
    from repro.experiments.runner import ExperimentConfig, scene_for
    from repro.frameworks.base import build_framework
    from repro.stats.metrics import geomean

    experiment = ExperimentConfig(
        draw_scale=draw_scale, num_frames=num_frames, workloads=tuple(workloads)
    )

    def run(scheme: str, config: SystemConfig) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for workload in workloads:
            framework = build_framework(scheme, config)
            result = framework.render_scene(scene_for(workload, experiment))
            out[workload] = result.single_frame_cycles
        return out

    reference = run("baseline", baseline_system())
    table: Dict[str, Dict[str, float]] = {}
    for label, gbps in generations.items():
        config = with_local_bandwidth(baseline_system(), float(gbps))
        row: Dict[str, float] = {}
        for scheme in schemes:
            cycles = run(scheme, config)
            row[scheme] = geomean([reference[w] / cycles[w] for w in workloads])
        table[label] = row
    return table
