"""Local-memory bandwidth scaling (the HBM-generation study).

Section 6.3 argues that "as the local memory bandwidth scales in future
GPU design (e.g. High-Bandwidth Memory), the performance of the future
multi-GPU scenario is more likely to be constrained by inter-GPU
memory" — i.e. OO-VR's advantage *grows* as local DRAM gets faster
while links stay hard to scale.  :func:`local_bandwidth_sweep` measures
that claim: single-frame speedup over today's baseline for each scheme
at each local-bandwidth point, with the 64 GB/s link held fixed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Mapping, Sequence

from repro.config import SystemConfig, baseline_system

__all__ = ["HBM_GENERATIONS", "local_bandwidth_sweep"]

#: Local DRAM bandwidth points, GB/s, spanning the local:link asymmetry
#: from none (64 GB/s local = the 64 GB/s link, a flat machine) through
#: the paper's 1 TB/s HBM baseline to an HBM3e-class 4 TB/s.  The
#: paper's conclusion argues OO-VR's advantage grows with this
#: asymmetry; the low points are where that claim is visible.
HBM_GENERATIONS: Mapping[str, float] = {
    "64 GB/s (=link)": 64.0,
    "128 GB/s": 128.0,
    "256 GB/s": 256.0,
    "1 TB/s (paper)": 1000.0,
    "4 TB/s": 4000.0,
}


def with_local_bandwidth(
    config: SystemConfig, bytes_per_cycle: float
) -> SystemConfig:
    """A copy of ``config`` with a different local DRAM bandwidth."""
    if bytes_per_cycle <= 0:
        raise ValueError("bandwidth must be positive")
    return replace(
        config, gpm=replace(config.gpm, dram_bytes_per_cycle=bytes_per_cycle)
    )


def local_bandwidth_sweep(
    schemes: Sequence[str] = ("baseline", "object", "oo-vr"),
    generations: Mapping[str, float] = HBM_GENERATIONS,
    workloads: Sequence[str] = ("DM3-1280", "HL2-1280", "WE"),
    draw_scale: float = 1.0,
    num_frames: int = 2,
    jobs: int = 1,
    cache=None,
    executor=None,
    on_result=None,
) -> Dict[str, Dict[str, float]]:
    """Speedup over (baseline, 1 TB/s) per (generation, scheme) cell.

    Returns ``{generation: {scheme: speedup}}``, geomean over
    workloads.  The link stays at the Table 2 value throughout: the
    sweep isolates the bandwidth *asymmetry*, not raw bandwidth.

    The generations are the :class:`~repro.session.Sweep`'s config
    axis, so the whole study is one declarative grid (fanned out over
    ``jobs`` processes, memoised through ``cache``).  The reference
    cell is the generation running the paper's 1 TB/s local DRAM; when
    ``generations`` omits that point, an internal reference column is
    added.
    """
    from repro.session import Sweep
    from repro.stats.metrics import geomean

    reference_bandwidth = baseline_system().gpm.dram_bytes_per_cycle
    reference_label = next(
        (
            label
            for label, gbps in generations.items()
            if float(gbps) == reference_bandwidth
        ),
        None,
    )
    sweep = (
        Sweep()
        .workloads(*workloads)
        .frames(num_frames)
        .scale(draw_scale)
        .frameworks(*schemes)
    )
    for label, gbps in generations.items():
        sweep.config(
            with_local_bandwidth(baseline_system(), float(gbps)), label=label
        )
    results = sweep.run(
        jobs=jobs, cache=cache, executor=executor, on_result=on_result
    )

    def cycles(scheme: str, label: str) -> Dict[str, float]:
        return {
            workload: results.get(
                framework=scheme, config_label=label, workload=workload
            ).single_frame_cycles
            for workload in workloads
        }

    if "baseline" in schemes and reference_label is not None:
        reference = cycles("baseline", reference_label)
    else:
        # The main grid lacks (baseline, 1 TB/s); run just those
        # reference cells instead of widening the cartesian product.
        ref_results = (
            Sweep()
            .workloads(*workloads)
            .frames(num_frames)
            .scale(draw_scale)
            .frameworks("baseline")
            .config(baseline_system(), label="reference (1 TB/s)")
            .run(
                jobs=jobs, cache=cache,
                executor=executor, on_result=on_result,
            )
        )
        reference = {
            workload: ref_results.get(
                workload=workload
            ).single_frame_cycles
            for workload in workloads
        }
    table: Dict[str, Dict[str, float]] = {}
    for label in generations:
        row: Dict[str, float] = {}
        for scheme in schemes:
            mine = cycles(scheme, label)
            row[scheme] = geomean([reference[w] / mine[w] for w in workloads])
        table[label] = row
    return table
