"""Foveated rendering: eccentricity-based shading-rate reduction.

The human visual system resolves full detail only in the fovea (the
central few degrees); VR headsets with eye tracking exploit this by
shading peripheral pixels at reduced rate.  The paper's Table 1 makes
the motivating point — stereo VR needs 116 Mpixel within 5 ms — and
foveation is the standard lever for cutting that pixel cost, orthogonal
to OO-VR's locality optimisation.

The model is a *scene transform*: each object's screen footprint is
split over three eccentricity rings around the per-eye gaze point, and
its fragment-stage cost (``shader_complexity``) is scaled by the mean
shading rate over its footprint.  Geometry work is untouched (foveation
does not reduce triangles), so the transform exposes exactly the
pixel-bound savings real foveated pipelines see.  Transformed frames
run through any framework unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.scene.geometry import Viewport
from repro.scene.objects import RenderObject
from repro.scene.scene import Frame, Scene

__all__ = [
    "FoveationConfig",
    "foveate_frame",
    "foveate_scene",
    "foveation_study",
]


@dataclass(frozen=True)
class FoveationConfig:
    """Three-ring foveation profile.

    Radii are fractions of the eye-viewport width; rates are shading
    rates (1.0 = every pixel shaded, 0.25 = one in four).  Defaults
    follow the common inner/mid/outer split shipped by eye-tracked
    headsets.
    """

    fovea_radius: float = 0.15
    mid_radius: float = 0.35
    fovea_rate: float = 1.0
    mid_rate: float = 0.5
    periphery_rate: float = 0.25
    #: Gaze point as a fraction of the eye viewport (centre by default).
    gaze_x: float = 0.5
    gaze_y: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.fovea_radius < self.mid_radius:
            raise ValueError("need 0 < fovea_radius < mid_radius")
        for name in ("fovea_rate", "mid_rate", "periphery_rate"):
            rate = getattr(self, name)
            if not 0.0 < rate <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")
        if not (self.periphery_rate <= self.mid_rate <= self.fovea_rate):
            raise ValueError("rates must not increase with eccentricity")
        if not (0.0 <= self.gaze_x <= 1.0 and 0.0 <= self.gaze_y <= 1.0):
            raise ValueError("gaze point must be inside the viewport")

    def rate_at(self, eccentricity: float) -> float:
        """Shading rate at a given eccentricity (viewport-width units)."""
        if eccentricity <= self.fovea_radius:
            return self.fovea_rate
        if eccentricity <= self.mid_radius:
            return self.mid_rate
        return self.periphery_rate


def _mean_rate_over(
    viewport: Optional[Viewport],
    eye: Viewport,
    config: FoveationConfig,
    samples: int = 4,
) -> float:
    """Mean shading rate over an object's footprint in one eye.

    Sampled on a ``samples x samples`` grid over the object's rectangle
    — cheap and accurate enough for rectangles a few rings wide.
    """
    if viewport is None or eye.width <= 0:
        return 1.0
    gaze_x = eye.x0 + config.gaze_x * eye.width
    gaze_y = eye.y0 + config.gaze_y * eye.height
    total = 0.0
    for i in range(samples):
        for j in range(samples):
            x = viewport.x0 + (i + 0.5) / samples * viewport.width
            y = viewport.y0 + (j + 0.5) / samples * viewport.height
            ecc = ((x - gaze_x) ** 2 + (y - gaze_y) ** 2) ** 0.5 / eye.width
            total += config.rate_at(ecc)
    return total / (samples * samples)


def foveate_object(
    obj: RenderObject, eye_viewport: Viewport, config: FoveationConfig
) -> RenderObject:
    """The object with its fragment cost scaled by its mean shading rate."""
    rates = []
    if obj.viewport_left is not None:
        rates.append(_mean_rate_over(obj.viewport_left, eye_viewport, config))
    if obj.viewport_right is not None:
        rates.append(_mean_rate_over(obj.viewport_right, eye_viewport, config))
    mean_rate = sum(rates) / len(rates)
    return replace(obj, shader_complexity=obj.shader_complexity * mean_rate)


def foveate_frame(frame: Frame, config: FoveationConfig | None = None) -> Frame:
    """``frame`` with every object's shading cost foveated."""
    config = config or FoveationConfig()
    eye = frame.eye_viewport
    return Frame(
        objects=tuple(
            foveate_object(obj, eye, config) for obj in frame.objects
        ),
        width=frame.width,
        height=frame.height,
        frame_id=frame.frame_id,
    )


def foveate_scene(scene: Scene, config: FoveationConfig | None = None) -> Scene:
    """``scene`` with every frame foveated (same name, new objects)."""
    config = config or FoveationConfig()
    return Scene(
        name=scene.name,
        frames=tuple(foveate_frame(frame, config) for frame in scene),
    )


def foveation_study(
    workloads=("DM3-1600", "HL2-1600", "NFS"),
    experiment=None,
    jobs: int = 1,
    cache=None,
    executor=None,
    on_result=None,
):
    """Foveation stacked on OO-VR: speedup over baseline per workload.

    One declarative :class:`~repro.session.Sweep` over three design
    points — ``baseline``, ``oo-vr``, and the ``oo-vr:fov`` variant
    (OO-VR fed foveated scenes, default three-ring profile; see
    :mod:`repro.frameworks.variants`) — on the pixel-heavy workloads
    where foveation has the most to save.

    Returns ``{workload: {"oo-vr": speedup, "oo-vr+fov": speedup}}``.
    """
    from repro.session import FULL, Sweep

    experiment = experiment or FULL
    results = (
        Sweep()
        .preset(experiment)
        .workloads(*workloads)
        .frameworks("baseline", "oo-vr", "oo-vr:fov")
        .run(jobs=jobs, cache=cache, executor=executor, on_result=on_result)
    )
    table = {}
    for workload in workloads:
        base = results.get(framework="baseline", workload=workload)
        oovr = results.get(framework="oo-vr", workload=workload)
        stacked = results.get(framework="oo-vr:fov", workload=workload)
        table[workload] = {
            "oo-vr": base.single_frame_cycles / oovr.single_frame_cycles,
            "oo-vr+fov": base.single_frame_cycles
            / stacked.single_frame_cycles,
        }
    return table
