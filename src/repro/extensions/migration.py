"""Hot-page migration: the NUMA-GPU alternative to pre-allocation.

The NUMA-GPU systems the paper builds on (its references [5, 25, 43])
reduce remote accesses with *reactive* mechanisms — first-touch
placement, remote caching, and page migration — while OO-VR is
*proactive*: the distribution engine pre-allocates a batch's data
before rendering touches it.  This module implements the reactive
migration engine so the two philosophies can be compared on the same
workloads:

- a :class:`MigrationEngine` watches each frame's remote-touch counts
  per resource and per GPM;
- at frame end it migrates the hottest resources to their dominant
  consumer (bounded by a per-frame byte budget, as real drivers bound
  migration rate to protect bandwidth);
- migrated bytes cross the links as ``PREALLOC`` traffic and the next
  frame reads them locally.

On single-consumer workloads migration converges to OO-VR-like
locality after a frame of lag; on texture-shared workloads it thrashes
(two GPMs pulling the same pages back and forth), which is exactly the
sharing pattern TSL batching removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.memory.address import Resource
from repro.memory.link import TrafficType

__all__ = ["MigrationConfig", "MigrationEngine", "migration_study"]


@dataclass(frozen=True)
class MigrationConfig:
    """Migration policy knobs.

    Parameters
    ----------
    touch_threshold_bytes:
        Remote bytes a (resource, GPM) pair must accumulate within one
        frame before the resource becomes a migration candidate.
    budget_bytes_per_frame:
        Upper bound on bytes migrated per frame (driver rate limit).
    """

    touch_threshold_bytes: float = 256 * 1024.0
    budget_bytes_per_frame: float = 64 * 1024 * 1024.0

    def __post_init__(self) -> None:
        if self.touch_threshold_bytes < 0:
            raise ValueError("touch threshold cannot be negative")
        if self.budget_bytes_per_frame <= 0:
            raise ValueError("migration budget must be positive")


class MigrationEngine:
    """Observes remote touches and migrates hot pages between frames."""

    def __init__(self, config: Optional[MigrationConfig] = None) -> None:
        self.config = config or MigrationConfig()
        #: (resource_id) -> {gpm: remote bytes this frame}
        self._touches: Dict[Tuple[str, int], Dict[int, float]] = {}
        self._resources: Dict[Tuple[str, int], Resource] = {}
        #: Total bytes migrated over the engine's lifetime.
        self.migrated_bytes_total = 0.0
        #: Migration decisions of the last :meth:`end_frame` call.
        self.last_migrations: List[Tuple[str, int, float]] = []

    def observe_remote(
        self, resource: Resource, toucher: int, nbytes: float
    ) -> None:
        """Record that ``toucher`` pulled ``nbytes`` of ``resource``
        across the links this frame."""
        if nbytes <= 0:
            return
        key = resource.resource_id
        self._resources[key] = resource
        per_gpm = self._touches.setdefault(key, {})
        per_gpm[toucher] = per_gpm.get(toucher, 0.0) + nbytes

    def end_frame(self, system) -> float:
        """Migrate the hottest resources; returns bytes moved.

        ``system`` is a :class:`~repro.gpu.system.MultiGPUSystem`; the
        move is charged on its fabric and the placement map is updated
        so the *next* frame's touches resolve locally.
        """
        candidates: List[Tuple[float, Tuple[str, int], int]] = []
        for key, per_gpm in self._touches.items():
            gpm, heat = max(per_gpm.items(), key=lambda kv: kv[1])
            if heat >= self.config.touch_threshold_bytes:
                candidates.append((heat, key, gpm))
        candidates.sort(reverse=True)

        moved_total = 0.0
        self.last_migrations = []
        for heat, key, gpm in candidates:
            if moved_total >= self.config.budget_bytes_per_frame:
                break
            resource = self._resources[key]
            moved = system.placement.migrate(resource, gpm)
            if moved <= 0:
                continue
            moved_total += moved
            self.last_migrations.append((str(key), gpm, moved))
            # The copy streams from each previous owner; charging the
            # dominant consumer's incoming links is the common case
            # (single previous owner) and conservative otherwise.
            for peer in range(system.num_gpms):
                if peer != gpm:
                    share = moved / max(1, system.num_gpms - 1)
                    system.fabric.transfer(
                        peer, gpm, share, TrafficType.PREALLOC
                    )
        self._touches.clear()
        self.migrated_bytes_total += moved_total
        return moved_total

    @property
    def pending_resources(self) -> int:
        """Resources with recorded remote touches this frame."""
        return len(self._touches)


def _register_migration_framework() -> None:
    """Register ``baseline-mig``: the naive baseline + hot-page migration.

    The baseline is where reactive migration has something to do: its
    application uploads land on one GPM and every other GPM streams
    them over the links (Fig. 3's rabbit).  Object-level SFR and OO-VR
    already localise read data by construction (staging / PA units), so
    attaching the engine there would be a no-op.

    Defined lazily in a function so importing this module never forces
    the frameworks package (and its registry) to load first.
    """
    from repro.frameworks.base import register_framework
    from repro.frameworks.single import SingleKernelBaseline
    from repro.gpu.system import MultiGPUSystem
    from repro.scene.scene import Frame
    from repro.stats.metrics import FrameResult

    @register_framework("baseline-mig")
    class MigratingBaseline(SingleKernelBaseline):
        """Single-programming-model baseline with page migration.

        The reactive counterpart to OO-VR's proactive pre-allocation:
        frame N's remote touches drive migrations that only help frame
        N+1.  Because the baseline splits every draw across all GPMs,
        a migrated page is local to *one* consumer and still remote to
        the rest — migration recovers only a fraction of the traffic
        and keeps paying copy bytes, which is the measured argument for
        distribution-aware placement over reactive placement.
        """

        def __init__(self, config=None, migration=None) -> None:
            super().__init__(config)
            self.engine = MigrationEngine(migration)

        def render_frame_on(
            self, system: MultiGPUSystem, frame: Frame, workload: str
        ) -> FrameResult:
            system.remote_observer = self.engine.observe_remote
            try:
                super().render_frame_on(system, frame, workload)
            finally:
                system.remote_observer = None
            self.engine.end_frame(system)
            # Re-read the frame totals: the migration copies just added
            # PREALLOC traffic that belongs to this frame's bill.
            return system.frame_result(self.name, workload)

    del MigratingBaseline  # registered by decorator; name unused


_register_migration_framework()


def migration_study(
    schemes: Sequence[str] = ("baseline", "baseline-mig", "oo-vr"),
    experiment=None,
    jobs: int = 1,
    cache=None,
    executor=None,
    on_result=None,
) -> Dict[str, Tuple[float, float]]:
    """Reactive migration vs proactive pre-allocation, per scheme.

    One declarative (scheme x workload) :class:`~repro.session.Sweep`
    (``experiment`` preset, default :data:`~repro.session.FULL`) over
    the ``baseline-mig`` framework and its comparands.  Returns
    ``{scheme: (speedup, traffic_ratio)}`` — geomean over workloads,
    both relative to the plain baseline.
    """
    from repro.experiments.runner import (
        single_frame_speedups,
        traffic_ratios,
    )
    from repro.session import FULL, Sweep
    from repro.stats.metrics import geomean

    experiment = experiment or FULL
    frameworks = list(schemes)
    if "baseline" not in frameworks:  # the normalisation reference
        frameworks.append("baseline")
    results = (
        Sweep()
        .preset(experiment)
        .frameworks(*frameworks)
        .run(jobs=jobs, cache=cache, executor=executor, on_result=on_result)
    )
    base = results.by_workload(framework="baseline")
    summary: Dict[str, Tuple[float, float]] = {}
    for scheme in schemes:
        mine = results.by_workload(framework=scheme)
        speedup = geomean(list(single_frame_speedups(mine, base).values()))
        traffic = geomean(list(traffic_ratios(mine, base).values()))
        summary[scheme] = (speedup, traffic)
    return summary
