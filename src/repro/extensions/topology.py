"""Inter-GPM link topologies with multi-hop routing.

The paper assumes "each GPM has 6 ports and each pair of ports is used
to connect two GPMs, indicating that the intercommunication between two
GPMs will not be interfered by other GPMs" — a fully connected fabric.
That assumption stops scaling cheaply past a handful of GPMs (an
N-GPM clique needs N-1 ports per GPM), so larger systems will ship
rings or switches instead.  :class:`RoutedLinkFabric` generalises the
base :class:`~repro.memory.link.LinkFabric` with a routing function so
the same experiments run over:

- ``FULLY_CONNECTED`` — the paper's fabric (one hop, no interference);
- ``RING`` — each GPM links to its two neighbours; remote traffic
  takes the shortest way around and consumes bandwidth on every hop;
- ``SWITCH`` — every GPM has one up/down link pair to a central
  crossbar; all of a GPM's remote traffic shares its two ports.

:func:`topology_sweep` compares schemes across topologies: OO-VR's
traffic reduction matters *more* on the cheaper fabrics, because every
byte it removes would have crossed several contended hops.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Sequence, Tuple

from repro.config import SystemConfig
from repro.memory.link import LinkFabric, TrafficType

__all__ = [
    "RoutedLinkFabric",
    "Topology",
    "install_topology",
    "topology_sweep",
]


class Topology(enum.Enum):
    """How GPMs are wired together."""

    FULLY_CONNECTED = "fully-connected"
    RING = "ring"
    SWITCH = "switch"

    def ports_required(self, num_gpms: int) -> int:
        """Ports per GPM this topology needs at ``num_gpms`` modules."""
        if self is Topology.FULLY_CONNECTED:
            return max(1, num_gpms - 1)
        if self is Topology.RING:
            return 2 if num_gpms > 2 else 1
        return 1  # SWITCH: one bidirectional port pair to the crossbar


class RoutedLinkFabric(LinkFabric):
    """A link fabric that routes transfers over physical hops.

    The base class records one (src, dst) entry per *logical* transfer;
    this subclass expands each transfer into its physical hop sequence,
    so ``bytes_between`` and the busiest-link statistics reflect real
    wire load.  Hop latency stacks per hop.  For the ``SWITCH``
    topology the crossbar is modelled as a virtual node with id
    ``num_gpms`` (it appears in hop statistics but owns no DRAM).

    Logical per-type totals (``bytes_by_type``) count each transfer
    once regardless of hop count, so traffic *figures* stay comparable
    across topologies while *time* reflects the extra wire crossings.
    """

    def __init__(
        self,
        num_gpms: int,
        bytes_per_cycle: float,
        latency_cycles: int = 0,
        topology: Topology = Topology.FULLY_CONNECTED,
    ) -> None:
        super().__init__(num_gpms, bytes_per_cycle, latency_cycles)
        self.topology = topology
        self._logical_by_type: Dict[TrafficType, float] = {}
        self._logical_total = 0.0

    # -- routing --------------------------------------------------------------

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """The physical hop list for a logical ``src -> dst`` transfer."""
        if src == dst:
            return []
        if self.topology is Topology.FULLY_CONNECTED:
            return [(src, dst)]
        if self.topology is Topology.SWITCH:
            switch = self.num_gpms
            return [(src, switch), (switch, dst)]
        # RING: walk the shorter direction.
        n = self.num_gpms
        forward = (dst - src) % n
        backward = (src - dst) % n
        hops: List[Tuple[int, int]] = []
        node = src
        if forward <= backward:
            for _ in range(forward):
                nxt = (node + 1) % n
                hops.append((node, nxt))
                node = nxt
        else:
            for _ in range(backward):
                nxt = (node - 1) % n
                hops.append((node, nxt))
                node = nxt
        return hops

    def _check(self, gpm: int) -> None:
        # Allow the virtual switch node (id == num_gpms) in hop records.
        limit = self.num_gpms + (1 if self.topology is Topology.SWITCH else 0)
        if not 0 <= gpm < limit:
            raise ValueError(f"GPM {gpm} out of range 0..{limit - 1}")

    def transfer(
        self, src: int, dst: int, nbytes: float, traffic: TrafficType
    ) -> float:
        if not 0 <= src < self.num_gpms or not 0 <= dst < self.num_gpms:
            raise ValueError("transfer endpoints must be real GPMs")
        if src == dst or nbytes <= 0:
            return 0.0
        self._logical_total += nbytes
        self._logical_by_type[traffic] = (
            self._logical_by_type.get(traffic, 0.0) + nbytes
        )
        cycles = 0.0
        for hop_src, hop_dst in self.route(src, dst):
            cycles += super().transfer(hop_src, hop_dst, nbytes, traffic)
        return cycles

    # ``hops`` comes from the base class's precomputed matrix, which is
    # built from this subclass's ``route`` on first use.

    # -- logical queries (figure-comparable) -----------------------------------

    @property
    def total_bytes(self) -> float:
        """Logical inter-GPM bytes (each transfer counted once)."""
        return self._logical_total

    def bytes_by_type(self) -> Dict[TrafficType, float]:
        return dict(self._logical_by_type)

    @property
    def wire_bytes(self) -> float:
        """Physical bytes over all hops (>= logical total)."""
        return sum(s.bytes_total for s in self._links.values())

    @property
    def hop_inflation(self) -> float:
        """Wire bytes per logical byte (1.0 for fully connected)."""
        if self._logical_total == 0:
            return 1.0
        return self.wire_bytes / self._logical_total

    def reset(self) -> None:
        super().reset()
        self._logical_by_type = {}
        self._logical_total = 0.0


def install_topology(system, topology: Topology) -> None:
    """Swap ``system``'s fabric for a routed one (fresh counters).

    Call right after constructing the
    :class:`~repro.gpu.system.MultiGPUSystem` and before rendering.
    """
    old = system.fabric
    system.fabric = RoutedLinkFabric(
        old.num_gpms, old.bytes_per_cycle, old.latency_cycles, topology
    )


def topology_sweep(
    schemes: Sequence[str] = ("baseline", "object", "oo-vr"),
    topologies: Sequence[Topology] = tuple(Topology),
    workloads: Sequence[str] = ("DM3-1280", "HL2-1280", "WE"),
    draw_scale: float = 1.0,
    num_frames: int = 2,
    config: SystemConfig | None = None,
    jobs: int = 1,
    cache=None,
    executor=None,
    on_result=None,
) -> Dict[str, Dict[str, float]]:
    """Single-frame speedup over (baseline, fully-connected) per cell.

    Returns ``{topology.value: {scheme: speedup}}`` (geomean over
    workloads).  The study is one declarative
    :class:`~repro.session.Sweep`: each (scheme, topology) cell is the
    framework variant ``"<scheme>:topo=<topology>"`` (see
    :mod:`repro.frameworks.variants`), so the grid fans out over
    ``jobs`` worker processes and memoises through ``cache`` like any
    figure sweep.
    """
    from repro.session import Sweep
    from repro.stats.metrics import geomean

    reference_name = f"baseline:topo={Topology.FULLY_CONNECTED.value}"
    names = [
        f"{scheme}:topo={topology.value}"
        for topology in topologies
        for scheme in schemes
    ]
    if reference_name not in names:
        names.append(reference_name)
    sweep = (
        Sweep()
        .workloads(*workloads)
        .frames(num_frames)
        .scale(draw_scale)
        .frameworks(*names)
    )
    if config is not None:
        sweep.config(config)
    results = sweep.run(
        jobs=jobs, cache=cache, executor=executor, on_result=on_result
    )

    def cycles(name: str) -> Dict[str, float]:
        return {
            workload: results.get(
                framework=name, workload=workload
            ).single_frame_cycles
            for workload in workloads
        }

    reference = cycles(reference_name)
    table: Dict[str, Dict[str, float]] = {}
    for topology in topologies:
        row: Dict[str, float] = {}
        for scheme in schemes:
            mine = cycles(f"{scheme}:topo={topology.value}")
            row[scheme] = geomean(
                [reference[w] / mine[w] for w in workloads]
            )
        table[topology.value] = row
    return table
