"""Architecture extensions beyond the paper's evaluated design points.

The paper closes by arguing OO-VR "potentially benefits the future
larger multi-GPU scenarios"; this package builds the studies that
conclusion invites, each on top of the same simulator:

- :mod:`repro.extensions.atw` — Asynchronous Time Warp (Section 2.2's
  frame re-projection fallback): deadline tracking, dropped-frame
  fill-in, and the judder metrics that penalise AFR's latency;
- :mod:`repro.extensions.topology` — inter-GPM link topologies (the
  paper's dedicated pairwise links vs. a ring vs. a central switch),
  with multi-hop routing and port contention;
- :mod:`repro.extensions.migration` — first-touch + page *migration*
  (the NUMA-GPU alternative to OO-VR's pre-allocation), with a
  hot-page detector and per-frame migration budget;
- :mod:`repro.extensions.foveated` — foveated rendering: an
  eccentricity-based shading-rate transform over scenes, stacking a
  perception-driven fragment saving on top of OO-VR's locality win;
- :mod:`repro.extensions.hbm` — local-bandwidth scaling (HBM
  generations), quantifying Section 6.3's claim that faster local
  memory widens OO-VR's advantage.

Each study's driver (:func:`atw_study`, :func:`foveation_study`,
:func:`topology_sweep`, :func:`migration_study`,
:func:`local_bandwidth_sweep`) is a declarative
:class:`~repro.session.Sweep` grid — parameterised design points are
framework variants (:mod:`repro.frameworks.variants`) — so every study
takes ``jobs`` (process fan-out), ``cache`` (a
:class:`~repro.session.ResultCache` memoising repeated cells) and
``executor``/``on_result`` (the :mod:`repro.session.executor` backend
and per-cell progress callback, like any sweep).
"""

from repro.extensions.atw import ATWConfig, ATWReport, atw_study, simulate_atw
from repro.extensions.foveated import (
    FoveationConfig,
    foveate_frame,
    foveate_scene,
    foveation_study,
)
from repro.extensions.hbm import HBM_GENERATIONS, local_bandwidth_sweep
from repro.extensions.migration import (
    MigrationConfig,
    MigrationEngine,
    migration_study,
)
from repro.extensions.topology import (
    RoutedLinkFabric,
    Topology,
    install_topology,
    topology_sweep,
)

__all__ = [
    "ATWConfig",
    "ATWReport",
    "FoveationConfig",
    "HBM_GENERATIONS",
    "MigrationConfig",
    "MigrationEngine",
    "RoutedLinkFabric",
    "Topology",
    "atw_study",
    "foveate_frame",
    "foveate_scene",
    "foveation_study",
    "install_topology",
    "local_bandwidth_sweep",
    "migration_study",
    "simulate_atw",
    "topology_sweep",
]
