"""Persistent compiled-scene artifact store.

Scene construction is deterministic per ``(workload, num_frames, seed,
draw_scale)`` — that is what lets :func:`repro.session.spec.cached_scene`
memoise it per process.  But the memo is *per process*: every worker of
a ``--jobs N`` sweep and every ``oovr worker`` in a service fleet pays
the full scene wall cold.  This module makes the compiled scene a
first-class on-disk artifact instead, mirroring the content-addressed
idiom of :mod:`repro.session.cache`:

- **Key contract**: entries are addressed by a SHA-256 over the
  canonical JSON of ``(store_version, generator_version, workload,
  num_frames, seed, draw_scale)``.  ``generator_version`` is
  :data:`repro.scene.synthetic.GENERATOR_VERSION` — the version of the
  scene-generation *output*.  Any change to generation that moves
  scenes must bump it; old entries then stop matching their key and
  degrade to a rebuild-and-rewrite, never to silently stale numbers.
- **Format**: one file per entry — an ``OOVRSCN1`` magic, a canonical
  JSON header (entry metadata, the material table, and an array
  directory), then the frames' struct-of-array columns as raw
  little-endian buffers at 64-byte-aligned offsets.  Serialisation is
  byte-deterministic, so concurrent writers racing on one key write
  identical bytes and the ``os.replace`` rename (same crash-safety as
  ``ResultCache.put``) makes the last one win harmlessly.
- **Load path**: the file is ``mmap``-ed read-only and the
  :class:`~repro.scene.batch.ObjectBatch` columns are zero-copy
  ``np.frombuffer`` views of it; the per-object dataclasses are
  materialised through the same fast path the batched generator uses.
  A loaded scene is value-identical to a freshly built one (the store
  round-trip tests pin byte-identical ``SceneResult.to_dict``), and —
  because loading happens *inside* the ``cached_scene`` memo — it keeps
  the per-process identity anchor the reuse cache depends on.

The *active* store is module state scoped exactly like
:mod:`repro.reuse`'s flags: :func:`scene_store_scope` for sessions and
sweeps, :func:`set_scene_store` for process-pool initialisers and
workers, :func:`active_scene_store` for the hook in ``cached_scene``.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.profiling import add_counter
from repro.scene.batch import ObjectBatch
from repro.scene.geometry import Mesh, Viewport
from repro.scene.objects import RenderObject
from repro.scene.scene import Frame, Scene
from repro.scene.synthetic import GENERATOR_VERSION
from repro.scene.texture import Texture

__all__ = [
    "SceneStore",
    "SceneStoreStats",
    "scene_key",
    "active_scene_store",
    "set_scene_store",
    "scene_store_scope",
    "build_scene_counted",
]

#: File magic of a compiled-scene entry.
MAGIC = b"OOVRSCN1"
#: Version of the on-disk container layout (not of scene content).
STORE_VERSION = 1
#: Data buffers start on this alignment, large enough for any dtype
#: and friendly to mmap page reuse.
ALIGNMENT = 64

#: The batch columns persisted verbatim, in directory order.
_BATCH_COLUMNS = (
    "object_ids",
    "num_vertices",
    "num_triangles",
    "vertex_bytes",
    "vertex_buffer_bytes",
    "depth_complexity",
    "shader_complexity",
    "coverage",
    "left_area",
    "right_area",
    "has_left",
    "has_right",
    "tex_offsets",
    "tex_ids",
    "tex_sizes",
)
#: Extra columns needed to rebuild the API dataclasses.
_EXTRA_COLUMNS = (
    "left_x0", "left_y0", "left_x1", "left_y1",
    "right_x0", "right_y0", "right_x1", "right_y1",
    "right_is_left",
    "depends",
)


def scene_key(
    workload: str, num_frames: int, seed: int, draw_scale: float
) -> str:
    """The content address of one workload point's compiled scene.

    SHA-256 over the canonical JSON of the workload point *and* the
    generator/store versions, mirroring ``repro.session.cache.spec_key``:
    same key therefore means bit-identical scene bytes.
    """
    payload = {
        "store_version": STORE_VERSION,
        "generator_version": GENERATOR_VERSION,
        "workload": workload,
        "num_frames": num_frames,
        "seed": seed,
        "draw_scale": draw_scale,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_scene_counted(
    workload: str, num_frames: int, seed: int, draw_scale: float
) -> Scene:
    """Build a scene, reporting scene-phase counters to any active
    :func:`repro.profiling.capture` (no-ops otherwise)."""
    from repro.scene.benchmarks import make_benchmark_scene

    start = time.perf_counter()
    scene = make_benchmark_scene(
        workload, num_frames=num_frames, seed=seed, draw_scale=draw_scale
    )
    add_counter("scene_build_s", time.perf_counter() - start)
    add_counter(
        "scene_objects_built", sum(len(frame.objects) for frame in scene.frames)
    )
    add_counter("scene_frames_built", len(scene.frames))
    return scene


@dataclass
class SceneStoreStats:
    """Hit/miss accounting for one :class:`SceneStore` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }


class SceneStore:
    """Content-addressed on-disk cache of compiled scenes.

    See the module docstring for the key contract and file format.
    ``get`` never raises on a bad entry: unreadable, truncated, or
    version/key-mismatched files count as ``stats.corrupt`` misses and
    ``get_or_build`` rebuilds and rewrites them.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = SceneStoreStats()

    # -- paths ----------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.scene"

    def entry_paths(self) -> List[Path]:
        return sorted(self.root.glob("*.scene"))

    # -- store ----------------------------------------------------------

    def put(
        self,
        scene: Scene,
        workload: str,
        num_frames: int,
        seed: int,
        draw_scale: float,
    ) -> Path:
        """Serialise ``scene`` under its content address, atomically.

        Byte-deterministic: two processes racing to store the same
        workload point write identical files, so the ``os.replace``
        rename is safe under concurrency and crashes can at worst leave
        a ``.tmp`` file behind, never a partial entry.
        """
        key = scene_key(workload, num_frames, seed, draw_scale)
        payload = _serialise_scene(
            scene,
            {
                "store_version": STORE_VERSION,
                "generator_version": GENERATOR_VERSION,
                "key": key,
                "workload": workload,
                "num_frames": num_frames,
                "seed": seed,
                "draw_scale": draw_scale,
            },
        )
        path = self.path_for(key)
        handle = tempfile.NamedTemporaryFile(
            mode="wb",
            dir=self.root,
            prefix=f".{key[:16]}-",
            suffix=".tmp",
            delete=False,
        )
        try:
            handle.write(payload)
            handle.close()
            os.replace(handle.name, path)
        except BaseException:
            handle.close()
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    # -- load -----------------------------------------------------------

    def get(
        self, workload: str, num_frames: int, seed: int, draw_scale: float
    ) -> Optional[Scene]:
        """The stored scene for a workload point, or ``None`` on miss.

        Corrupt or stale entries (bad magic, truncation, version or key
        mismatch) are counted in ``stats.corrupt`` and treated as a
        miss — the caller rebuilds and overwrites.
        """
        key = scene_key(workload, num_frames, seed, draw_scale)
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                buffer = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        try:
            scene = _deserialise_scene(buffer, expected_key=key)
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return scene

    def get_or_build(
        self, workload: str, num_frames: int, seed: int, draw_scale: float
    ) -> Scene:
        """The scene for a workload point: mmap-loaded when stored,
        otherwise built once and persisted for every later process."""
        start = time.perf_counter()
        scene = self.get(workload, num_frames, seed, draw_scale)
        if scene is not None:
            add_counter("scene_store_hit", 1)
            add_counter("scene_load_s", time.perf_counter() - start)
            return scene
        add_counter("scene_store_miss", 1)
        scene = build_scene_counted(workload, num_frames, seed, draw_scale)
        self.put(scene, workload, num_frames, seed, draw_scale)
        return scene

    # -- maintenance -----------------------------------------------------

    def info(self) -> dict:
        """Inventory of the store, shaped for ``oovr scene info``."""
        scenes = []
        total_bytes = 0
        corrupt = 0
        for path in self.entry_paths():
            size = path.stat().st_size
            total_bytes += size
            header = _read_header(path)
            if header is None:
                corrupt += 1
                scenes.append({"file": path.name, "bytes": size, "corrupt": True})
                continue
            scenes.append(
                {
                    "key": header["key"],
                    "workload": header["workload"],
                    "num_frames": header["num_frames"],
                    "seed": header["seed"],
                    "draw_scale": header["draw_scale"],
                    "generator_version": header["generator_version"],
                    "num_objects": header["scene"]["num_objects"],
                    "bytes": size,
                }
            )
        return {
            "root": str(self.root),
            "entries": len(scenes),
            "corrupt": corrupt,
            "total_bytes": total_bytes,
            "scenes": scenes,
            "stats": self.stats.as_dict(),
        }

    def clear(self) -> int:
        """Delete every entry (and stray temp file); return the count."""
        removed = 0
        for path in self.entry_paths():
            path.unlink()
            removed += 1
        for stray in self.root.glob(".*.tmp"):
            stray.unlink()
        return removed


# -- serialisation -------------------------------------------------------


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _frame_columns(frame: Frame) -> dict:
    """Gather one frame's persistable columns (batch + rebuild extras)."""
    batch = frame.object_batch
    n = len(frame.objects)
    columns = {name: getattr(batch, name) for name in _BATCH_COLUMNS}
    left = np.zeros((4, n), dtype=np.float64)
    right = np.zeros((4, n), dtype=np.float64)
    right_is_left = np.zeros(n, dtype=bool)
    depends = np.full(n, -1, dtype=np.int64)
    for i, obj in enumerate(frame.objects):
        if obj.viewport_left is not None:
            vp = obj.viewport_left
            left[0, i] = vp.x0
            left[1, i] = vp.y0
            left[2, i] = vp.x1
            left[3, i] = vp.y1
        if obj.viewport_right is not None:
            vp = obj.viewport_right
            right[0, i] = vp.x0
            right[1, i] = vp.y0
            right[2, i] = vp.x1
            right[3, i] = vp.y1
            right_is_left[i] = obj.viewport_right is obj.viewport_left
        if obj.depends_on is not None:
            depends[i] = obj.depends_on
    columns["left_x0"], columns["left_y0"] = left[0], left[1]
    columns["left_x1"], columns["left_y1"] = left[2], left[3]
    columns["right_x0"], columns["right_y0"] = right[0], right[1]
    columns["right_x1"], columns["right_y1"] = right[2], right[3]
    columns["right_is_left"] = right_is_left
    columns["depends"] = depends
    return columns


def _serialise_scene(scene: Scene, meta: dict) -> bytes:
    """The byte-deterministic single-file container for ``scene``."""
    materials: dict = {}
    for frame in scene.frames:
        for obj in frame.objects:
            for texture in obj.textures:
                materials.setdefault(texture.texture_id, texture)
    material_table = [materials[tid] for tid in sorted(materials)]

    directory: List[dict] = []
    blobs: List[bytes] = []
    offset = 0
    frames_meta = []
    for frame in scene.frames:
        columns = _frame_columns(frame)
        names = [obj.name for obj in frame.objects]
        derived = names == [
            f"{scene.name}/obj{obj.object_id:05d}" for obj in frame.objects
        ]
        frames_meta.append(
            {
                "frame_id": frame.frame_id,
                "num_objects": len(frame.objects),
                "names": None if derived else names,
            }
        )
        for name in _BATCH_COLUMNS + _EXTRA_COLUMNS:
            array = np.ascontiguousarray(columns[name])
            blob = array.tobytes()
            offset = _align(offset)
            directory.append(
                {
                    "frame": frame.frame_id,
                    "name": name,
                    "dtype": array.dtype.str,
                    "count": int(array.size),
                    "offset": offset,
                }
            )
            blobs.append(blob)
            offset += len(blob)

    header = dict(meta)
    header["scene"] = {
        "name": scene.name,
        "width": scene.width,
        "height": scene.height,
        "num_objects": sum(len(frame.objects) for frame in scene.frames),
    }
    header["materials"] = {
        "ids": [texture.texture_id for texture in material_table],
        "sizes": [texture.size_bytes for texture in material_table],
        "names": [texture.name for texture in material_table],
    }
    header["frames"] = frames_meta
    header["arrays"] = directory
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")

    data_start = _align(len(MAGIC) + 8 + len(header_bytes))
    parts = [MAGIC, len(header_bytes).to_bytes(8, "little"), header_bytes]
    written = len(MAGIC) + 8 + len(header_bytes)
    for entry, blob in zip(directory, blobs):
        absolute = data_start + entry["offset"]
        parts.append(b"\x00" * (absolute - written))
        parts.append(blob)
        written = absolute + len(blob)
    return b"".join(parts)


def _read_header(path: Path) -> Optional[dict]:
    """The parsed + validated header of an entry, or ``None`` if bad."""
    try:
        with open(path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                return None
            header_len = int.from_bytes(fh.read(8), "little")
            if not 0 < header_len <= 64 * 1024 * 1024:
                return None
            header = json.loads(fh.read(header_len).decode("utf-8"))
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    if header.get("store_version") != STORE_VERSION:
        return None
    return header


def _deserialise_scene(buffer: mmap.mmap, expected_key: str) -> Scene:
    """Rebuild a scene from an mmap-ed entry, zero-copy for the batch.

    Raises on any inconsistency; :meth:`SceneStore.get` maps that to a
    corrupt miss.
    """
    if buffer[: len(MAGIC)] != MAGIC:
        raise ValueError("bad magic")
    header_len = int.from_bytes(buffer[len(MAGIC) : len(MAGIC) + 8], "little")
    header_start = len(MAGIC) + 8
    header = json.loads(
        buffer[header_start : header_start + header_len].decode("utf-8")
    )
    if header["store_version"] != STORE_VERSION:
        raise ValueError("store version mismatch")
    if header["generator_version"] != GENERATOR_VERSION:
        raise ValueError("generator version mismatch")
    if header["key"] != expected_key:
        raise ValueError("key mismatch")
    data_start = _align(header_start + header_len)

    mats = header["materials"]
    textures = {
        tid: Texture(texture_id=tid, name=name, size_bytes=size)
        for tid, name, size in zip(mats["ids"], mats["names"], mats["sizes"])
    }

    arrays: dict = {}
    for entry in header["arrays"]:
        dtype = np.dtype(entry["dtype"])
        start = data_start + entry["offset"]
        end = start + entry["count"] * dtype.itemsize
        if end > len(buffer):
            raise ValueError("truncated entry")
        arrays[(entry["frame"], entry["name"])] = np.frombuffer(
            buffer, dtype=dtype, count=entry["count"], offset=start
        )

    scene_meta = header["scene"]
    scene_name = scene_meta["name"]
    width = scene_meta["width"]
    height = scene_meta["height"]
    frames = []
    for frame_meta in header["frames"]:
        frame_id = frame_meta["frame_id"]
        n = frame_meta["num_objects"]
        column = {
            name: arrays[(frame_id, name)]
            for name in _BATCH_COLUMNS + _EXTRA_COLUMNS
        }
        if len(column["object_ids"]) != n or len(column["tex_offsets"]) != n + 1:
            raise ValueError("column length mismatch")
        names = frame_meta["names"]
        objects = _materialise_loaded_objects(
            scene_name, n, names, column, textures
        )
        frame = object.__new__(Frame)
        frame.__dict__.update(
            objects=objects, width=width, height=height, frame_id=frame_id
        )
        frame.__dict__["object_batch"] = ObjectBatch(
            objects=objects,
            **{name: column[name] for name in _BATCH_COLUMNS},
        )
        frames.append(frame)

    scene = object.__new__(Scene)
    scene.__dict__.update(name=scene_name, frames=tuple(frames))
    return scene


def _materialise_loaded_objects(
    scene_name: str,
    n: int,
    names: Optional[List[str]],
    column: dict,
    textures: dict,
) -> Tuple[RenderObject, ...]:
    """Rebuild the per-object dataclasses from mmap-ed columns.

    Same fast-construction technique as the batched generator: the
    stored values came from validated objects, so ``__post_init__``
    re-checks are skipped.
    """
    new = object.__new__
    object_ids = column["object_ids"].tolist()
    verts = column["num_vertices"].tolist()
    tris = column["num_triangles"].tolist()
    vbytes = column["vertex_bytes"].tolist()
    depth = column["depth_complexity"].tolist()
    shader = column["shader_complexity"].tolist()
    coverage = column["coverage"].tolist()
    has_left = column["has_left"].tolist()
    has_right = column["has_right"].tolist()
    lx0 = column["left_x0"].tolist()
    ly0 = column["left_y0"].tolist()
    lx1 = column["left_x1"].tolist()
    ly1 = column["left_y1"].tolist()
    rx0 = column["right_x0"].tolist()
    ry0 = column["right_y0"].tolist()
    rx1 = column["right_x1"].tolist()
    ry1 = column["right_y1"].tolist()
    right_is_left = column["right_is_left"].tolist()
    depends = column["depends"].tolist()
    tex_offsets = column["tex_offsets"].tolist()
    tex_ids = column["tex_ids"].tolist()
    objects = []
    append = objects.append
    for i in range(n):
        object_id = object_ids[i]
        mesh = new(Mesh)
        md = mesh.__dict__
        md["num_vertices"] = verts[i]
        md["num_triangles"] = tris[i]
        md["vertex_bytes"] = vbytes[i]
        left_vp = None
        if has_left[i]:
            left_vp = new(Viewport)
            vd = left_vp.__dict__
            vd["x0"] = lx0[i]
            vd["y0"] = ly0[i]
            vd["x1"] = lx1[i]
            vd["y1"] = ly1[i]
        right_vp = None
        if has_right[i]:
            if right_is_left[i] and left_vp is not None:
                right_vp = left_vp
            else:
                right_vp = new(Viewport)
                vd = right_vp.__dict__
                vd["x0"] = rx0[i]
                vd["y0"] = ry0[i]
                vd["x1"] = rx1[i]
                vd["y1"] = ry1[i]
        obj = new(RenderObject)
        od = obj.__dict__
        od["object_id"] = object_id
        od["name"] = (
            names[i] if names is not None
            else f"{scene_name}/obj{object_id:05d}"
        )
        od["mesh"] = mesh
        od["textures"] = tuple(
            textures[tid] for tid in tex_ids[tex_offsets[i] : tex_offsets[i + 1]]
        )
        od["viewport_left"] = left_vp
        od["viewport_right"] = right_vp
        od["depth_complexity"] = depth[i]
        od["shader_complexity"] = shader[i]
        od["coverage"] = coverage[i]
        od["depends_on"] = depends[i] if depends[i] >= 0 else None
        append(obj)
    return tuple(objects)


# -- the active store (scoped like repro.reuse's flags) ------------------

_active_store: Optional[SceneStore] = None

StoreLike = Union[SceneStore, str, Path, None]


def _coerce(store: StoreLike) -> Optional[SceneStore]:
    if store is None or isinstance(store, SceneStore):
        return store
    return SceneStore(store)


def active_scene_store() -> Optional[SceneStore]:
    """The store ``cached_scene`` consults, or ``None`` when disabled."""
    return _active_store


def set_scene_store(store: StoreLike) -> Optional[SceneStore]:
    """Set the process's active store (pass ``None`` to disable).

    Accepts a :class:`SceneStore` or a root path; used directly by
    process-pool initialisers and service workers, where a path string
    is what survives pickling.  Returns the active store.
    """
    global _active_store
    _active_store = _coerce(store)
    return _active_store


@contextmanager
def scene_store_scope(store: StoreLike) -> Iterator[Optional[SceneStore]]:
    """Scoped :func:`set_scene_store`, restoring the previous store.

    ``None`` (the default of every ``run(scene_store=...)``) leaves the
    ambient store untouched rather than disabling it, so a process-wide
    :func:`set_scene_store` keeps applying to runs that did not name
    one; use :func:`set_scene_store(None) <set_scene_store>` to disable
    explicitly.
    """
    global _active_store
    if store is None:
        yield _active_store
        return
    previous = _active_store
    _active_store = _coerce(store)
    try:
        yield _active_store
    finally:
        _active_store = previous
