"""Table 1 constants: PC gaming vs. stereo VR display requirements.

=================  ===================  ============================
                   Gaming PC            Stereo VR
=================  ===================  ============================
Display            2D LCD panel         Stereo HMD
Field of view      24-30" diagonal      120 deg. H x 135 deg. V
Number of pixels   2-4 Mpixels          58.32 x 2 Mpixels
Frame latency      16-33 ms             5-10 ms
=================  ===================  ============================

These constants feed the frame-deadline checks in the stats package:
an experiment can ask whether a simulated frame would meet the VR
deadline at the modelled clock.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DisplayRequirements:
    """Display requirements of one platform class (a Table 1 column)."""

    name: str
    display: str
    fov_horizontal_deg: float
    fov_vertical_deg: float
    megapixels: float
    frame_latency_ms_min: float
    frame_latency_ms_max: float

    @property
    def pixels(self) -> int:
        return int(self.megapixels * 1e6)

    @property
    def deadline_cycles(self) -> int:
        """Frame budget in cycles at the baseline 1 GHz clock (worst case)."""
        return int(self.frame_latency_ms_min * 1e6)

    def meets_deadline(self, frame_cycles: float, clock_hz: float = 1e9) -> bool:
        """Whether ``frame_cycles`` at ``clock_hz`` fits the strict deadline."""
        latency_ms = frame_cycles / clock_hz * 1e3
        return latency_ms <= self.frame_latency_ms_min


#: A typical gaming PC per Table 1.
PC_GAMING = DisplayRequirements(
    name="Gaming PC",
    display="2D LCD panel",
    fov_horizontal_deg=48.0,
    fov_vertical_deg=27.0,
    megapixels=4.0,
    frame_latency_ms_min=16.0,
    frame_latency_ms_max=33.0,
)

#: Stereo VR per Table 1: 58.32 Mpixels *per eye*, 5-10 ms budget.
STEREO_VR = DisplayRequirements(
    name="Stereo VR",
    display="Stereo HMD",
    fov_horizontal_deg=120.0,
    fov_vertical_deg=135.0,
    megapixels=58.32 * 2,
    frame_latency_ms_min=5.0,
    frame_latency_ms_max=10.0,
)


def requirements_table() -> list[tuple[str, str, str]]:
    """Rows of Table 1 as (attribute, PC value, VR value) strings."""
    return [
        ("Display", PC_GAMING.display, STEREO_VR.display),
        (
            "Field of View (FoV)",
            "24-30\" diagonal",
            f"{STEREO_VR.fov_horizontal_deg:.0f} deg horizontally / "
            f"{STEREO_VR.fov_vertical_deg:.0f} deg vertically",
        ),
        (
            "Number of Pixel",
            f"{PC_GAMING.megapixels / 2:.0f}-{PC_GAMING.megapixels:.0f} Mpixels",
            f"{STEREO_VR.megapixels / 2:.2f}x2 Mpixels",
        ),
        (
            "Frame latency",
            f"{PC_GAMING.frame_latency_ms_min:.0f}-"
            f"{PC_GAMING.frame_latency_ms_max:.0f} ms",
            f"{STEREO_VR.frame_latency_ms_min:.0f}-"
            f"{STEREO_VR.frame_latency_ms_max:.0f} ms",
        ),
    ]
