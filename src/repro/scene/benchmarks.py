"""The Table 3 benchmark suite.

Five games, matching the paper's draw counts and resolutions:

=====  ====================  ========  =============  ======
Abbr.  Name                  Library   Resolution(s)  #Draw
=====  ====================  ========  =============  ======
DM3    Doom 3                OpenGL    1600x1200,     191
                                       1280x1024,
                                       640x480
HL2    Half-Life 2           DirectX   1600x1200,     328
                                       1280x1024,
                                       640x480
NFS    Need For Speed        DirectX   1280x1024      1267
UT3    Unreal Tournament 3   DirectX   1280x1024      876
WE     Wolfenstein           DirectX   640x480        1697
=====  ====================  ========  =============  ======

Per-title profile parameters (triangle size distribution, material reuse,
overdraw, shader cost) are set to reflect the engines' published frame
characteristics: Doom 3's stencil-shadowed indoor scenes have few, large,
heavily-lit draws; Source-engine HL2 mixes indoor/outdoor with broad
material reuse; NFS streams many small draws with extreme road/car
texture reuse; UT3 is shader-heavy; Wolfenstein (RtCW-era) issues very
many small draws at low resolution.  The absolute values are synthetic;
experiments report normalised results exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.scene.scene import Scene
from repro.scene.synthetic import MB, SceneProfile, SyntheticSceneGenerator


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of Table 3, plus the synthetic profile parameters."""

    abbr: str
    title: str
    library: str
    resolutions: Tuple[Tuple[int, int], ...]
    num_draws: int
    profile: SceneProfile

    @property
    def default_resolution(self) -> Tuple[int, int]:
        """The resolution used when a workload name has no suffix."""
        return self.resolutions[0]


def _profile(name: str, draws: int, width: int, height: int, **overrides) -> SceneProfile:
    base = SceneProfile(name=name, num_objects=draws, width=width, height=height)
    return replace(base, **overrides) if overrides else base


_DM3 = BenchmarkSpec(
    abbr="DM3",
    title="Doom 3",
    library="OpenGL",
    resolutions=((1280, 1024), (1600, 1200), (640, 480)),
    num_draws=191,
    profile=_profile(
        "DM3",
        191,
        1280,
        1024,
        triangles_median=1500.0,
        triangles_sigma=1.35,
        num_materials=70,
        material_zipf=1.0,
        texture_bytes_median=1.5 * MB,
        depth_complexity_mean=1.9,  # stencil shadow overdraw
        shader_complexity_mean=1.4,  # per-pixel lighting everywhere
        footprint_median=0.03,
        vertical_skew=0.20,
    ),
)

_HL2 = BenchmarkSpec(
    abbr="HL2",
    title="Half-Life 2",
    library="DirectX",
    resolutions=((1280, 1024), (1600, 1200), (640, 480)),
    num_draws=328,
    profile=_profile(
        "HL2",
        328,
        1280,
        1024,
        triangles_median=900.0,
        triangles_sigma=1.2,
        num_materials=140,
        material_zipf=1.15,
        texture_bytes_median=1.0 * MB,
        depth_complexity_mean=1.5,
        shader_complexity_mean=1.0,
        footprint_median=0.02,
        vertical_skew=0.26,
    ),
)

_NFS = BenchmarkSpec(
    abbr="NFS",
    title="Need For Speed",
    library="DirectX",
    resolutions=((1280, 1024),),
    num_draws=1267,
    profile=_profile(
        "NFS",
        1267,
        1280,
        1024,
        triangles_median=350.0,
        triangles_sigma=1.0,
        num_materials=160,
        material_zipf=1.35,  # road/car materials repeated heavily
        texture_bytes_median=0.75 * MB,
        depth_complexity_mean=1.25,
        shader_complexity_mean=0.9,
        footprint_median=0.006,
        vertical_skew=0.32,  # road dominates the lower half
    ),
)

_UT3 = BenchmarkSpec(
    abbr="UT3",
    title="Unreal Tournament 3",
    library="DirectX",
    resolutions=((1280, 1024),),
    num_draws=876,
    profile=_profile(
        "UT3",
        876,
        1280,
        1024,
        triangles_median=550.0,
        triangles_sigma=1.15,
        num_materials=180,
        material_zipf=1.1,
        texture_bytes_median=1.25 * MB,
        depth_complexity_mean=1.45,
        shader_complexity_mean=1.5,  # UE3 material graphs
        footprint_median=0.009,
        vertical_skew=0.24,
    ),
)

_WE = BenchmarkSpec(
    abbr="WE",
    title="Wolfenstein",
    library="DirectX",
    resolutions=((640, 480),),
    num_draws=1697,
    profile=_profile(
        "WE",
        1697,
        640,
        480,
        triangles_median=180.0,
        triangles_sigma=0.95,
        num_materials=110,
        material_zipf=1.2,
        texture_bytes_median=0.5 * MB,
        depth_complexity_mean=1.3,
        shader_complexity_mean=0.8,
        footprint_median=0.004,
        vertical_skew=0.24,
    ),
)

#: The Table 3 suite, keyed by abbreviation.
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.abbr: spec for spec in (_DM3, _HL2, _NFS, _UT3, _WE)
}

#: The nine workload points evaluated throughout the paper's figures:
#: DM3 and HL2 at three resolutions each, the rest at their native one.
WORKLOADS: Tuple[str, ...] = (
    "DM3-640",
    "DM3-1280",
    "DM3-1600",
    "HL2-640",
    "HL2-1280",
    "HL2-1600",
    "NFS",
    "UT3",
    "WE",
)

_RESOLUTION_SUFFIXES: Dict[str, Tuple[int, int]] = {
    "640": (640, 480),
    "1280": (1280, 1024),
    "1600": (1600, 1200),
}


def benchmark_names() -> Tuple[str, ...]:
    """Abbreviations of the five Table 3 games."""
    return tuple(BENCHMARKS)


def parse_workload(name: str) -> Tuple[BenchmarkSpec, int, int]:
    """Split a workload name like ``"DM3-1280"`` into (spec, w, h)."""
    abbr, _, suffix = name.partition("-")
    if abbr not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {abbr!r}; have {sorted(BENCHMARKS)}")
    spec = BENCHMARKS[abbr]
    if not suffix:
        width, height = spec.default_resolution
        return spec, width, height
    if suffix not in _RESOLUTION_SUFFIXES:
        raise KeyError(f"unknown resolution suffix {suffix!r} in {name!r}")
    width, height = _RESOLUTION_SUFFIXES[suffix]
    if (width, height) not in spec.resolutions:
        raise KeyError(f"{abbr} was not evaluated at {width}x{height}")
    return spec, width, height


def make_benchmark_scene(
    name: str,
    num_frames: int = 2,
    seed: int = 2019,
    draw_scale: float = 1.0,
) -> Scene:
    """Build the synthetic scene for a workload point.

    Parameters
    ----------
    name:
        A workload name from :data:`WORKLOADS` (e.g. ``"HL2-1280"``) or a
        bare abbreviation (default resolution).
    num_frames:
        Frames to generate; AFR experiments want >= number of GPMs.
    seed:
        RNG seed; scenes are deterministic per (name, seed).
    draw_scale:
        Optional scale on the draw count, used by the fast test suite to
        shrink workloads without changing their statistics.
    """
    spec, width, height = parse_workload(name)
    draws = max(8, int(round(spec.num_draws * draw_scale)))
    profile = replace(
        spec.profile, num_objects=draws, width=width, height=height, name=name
    )
    generator = SyntheticSceneGenerator(profile, seed=seed)
    return generator.make_scene(num_frames=num_frames)


def workload_scene(name: str, **kwargs) -> Scene:
    """Alias of :func:`make_benchmark_scene` for the public API."""
    return make_benchmark_scene(name, **kwargs)
