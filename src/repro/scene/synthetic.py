"""Seeded synthetic scene generation.

The paper drives ATTILA-sim with OpenGL/Direct3D traces of five
commercial games (Table 3).  Those traces are not redistributable, so the
reproduction generates *statistically similar* scenes: the knobs that the
paper's mechanisms care about are

- the number of draws per frame (Table 3's ``#Draw`` column),
- the heavy-tailed distribution of triangles per draw (load imbalance,
  Fig. 10),
- the material pool size and reuse pattern (texture sharing level — the
  entire premise of OO-VR batching),
- per-eye screen footprints with small stereo disparity (left/right view
  redundancy exploited by SMP),
- the vertical skew of content (grounds/walls are denser than skies),
  which is what breaks tile-level SFR (H),
- overdraw and shader cost (fragment-stage load).

Everything is generated from a seeded :class:`numpy.random.Generator`, so
scenes are reproducible bit-for-bit across runs and platforms.

Construction paths
------------------

There are two construction paths with one contract:

- the **reference path** (:meth:`SyntheticSceneGenerator.make_frame_reference`
  / ``_make_object_reference``) is the original per-object scalar loop.
  It is the oracle: simple, obviously faithful to the distributions
  documented above, and kept unoptimised on purpose;
- the **batched path** (:meth:`SyntheticSceneGenerator.make_frame`) walks
  the *same* RNG stream in the same order but coalesces adjacent uniform
  draws into one ``Generator.random(k)`` call, replicates
  ``Generator.integers`` / ``Generator.choice(replace=False, p=...)``
  bit-exactly from raw draws (see ``_draw_frame_plan``), evaluates the
  derived per-object arithmetic vectorized over the whole frame, and
  materialises the dataclasses without re-running their validated
  ``__post_init__`` checks.  It also builds the frame's
  :class:`~repro.scene.batch.ObjectBatch` directly from the already
  vectorized columns, so the SoA view costs nothing extra.

The two paths produce bit-identical frames *and* leave the generator's
PCG64 position identical, which is what keeps every golden pinned before
the batched path landed valid after it.  ``tests/test_scene_batched.py``
pins that equivalence property-style over randomised profiles.  Mixing
the two paths on one generator instance is not stream-compatible (the
batched path shadows PCG64's internal 32-bit buffer used by
``integers``); use one path per generator, as ``make_scene`` does.

:data:`GENERATOR_VERSION` names the output contract of this module: any
change that alters generated scenes (new draw order, new distribution,
changed derived arithmetic) must bump it so persisted compiled scenes
(:mod:`repro.scene.store`) keyed on the old behaviour are invalidated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.scene.batch import ObjectBatch
from repro.scene.geometry import Mesh, Viewport
from repro.scene.objects import RenderObject
from repro.scene.scene import Frame, Scene
from repro.scene.texture import Texture, TexturePool

KB = 1024
MB = 1024 * KB

#: Version of the scene-generation algorithm's *output* (not its code).
#: Bump on any change that moves generated scenes — it keys the on-disk
#: compiled-scene store (:mod:`repro.scene.store`), so stale artifacts
#: degrade to a rebuild instead of silently serving old numbers.
GENERATOR_VERSION = 1


@dataclass(frozen=True)
class SceneProfile:
    """Statistical shape of one application's frames.

    Parameters are per-frame unless stated otherwise.  Defaults are a
    generic mid-2000s PC game; the Table 3 suite overrides them per
    title (see :mod:`repro.scene.benchmarks`).
    """

    name: str
    num_objects: int
    width: int
    height: int
    #: Median triangles per draw; draws are log-normal around this.
    triangles_median: float = 800.0
    #: Log-normal sigma of triangles per draw (tail heaviness).
    triangles_sigma: float = 1.1
    #: Number of distinct materials (textures) in the pool.
    num_materials: int = 120
    #: Zipf exponent for material popularity: higher = more sharing.
    material_zipf: float = 1.1
    #: Textures bound per draw (diffuse + normal + specular ...).
    textures_per_object: Tuple[int, int] = (1, 4)
    #: Median texture size in bytes.
    texture_bytes_median: float = 1.0 * MB
    #: Log-normal sigma of texture sizes.
    texture_bytes_sigma: float = 0.8
    #: Mean depth complexity (overdraw) across draws.
    depth_complexity_mean: float = 1.35
    #: Mean fragment-shader complexity multiplier.
    shader_complexity_mean: float = 1.0
    #: Median object footprint as a fraction of the eye viewport area.
    footprint_median: float = 0.012
    #: Log-normal sigma of footprint areas.
    footprint_sigma: float = 1.0
    #: Vertical content skew in [0, 1): 0 = uniform, higher pushes
    #: object centres towards the lower half of the screen.
    vertical_skew: float = 0.25
    #: Maximum stereo disparity as a fraction of eye width.
    max_disparity: float = 0.035
    #: Fraction of objects visible in only one eye (HUD, near-edge).
    mono_fraction: float = 0.05
    #: Fraction of draws that depend on the previous draw (blending).
    dependency_fraction: float = 0.06

    def validate(self) -> None:
        if self.num_objects <= 0:
            raise ValueError("profile needs at least one object")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("resolution must be positive")
        if self.num_materials <= 0:
            raise ValueError("profile needs at least one material")
        if not 0 <= self.mono_fraction < 1:
            raise ValueError("mono_fraction must be in [0, 1)")
        if not 0 <= self.vertical_skew < 1:
            raise ValueError("vertical_skew must be in [0, 1)")
        lo, hi = self.textures_per_object
        if lo < 1 or hi < lo:
            raise ValueError("textures_per_object must be a valid range")


class SyntheticSceneGenerator:
    """Generates :class:`~repro.scene.scene.Scene` objects from a profile.

    One generator owns one texture pool, so all frames of the scene share
    materials exactly as a real game reuses its assets across frames.
    """

    def __init__(self, profile: SceneProfile, seed: int = 2019) -> None:
        profile.validate()
        self.profile = profile
        self._rng = np.random.default_rng(seed)
        self._pool = TexturePool()
        self._materials: List[Texture] = []
        self._material_popularity: Optional[np.ndarray] = None
        #: Normalised popularity CDF, precomputed the way
        #: ``Generator.choice`` derives it per call (cumsum then divide
        #: by the last element) so the batched replica matches bit-wise.
        self._choice_cdf: Optional[np.ndarray] = None
        # Shadow of PCG64's internal next_uint32 buffer.  Scalar
        # ``Generator.integers`` draws 32-bit halves of each raw 64-bit
        # output and buffers the unused half across calls; the batched
        # path replicates that bookkeeping here (see _draw_frame_plan).
        self._has_uint32 = False
        self._uint32_buf = 0
        self._object_name_cache: List[str] = []
        self._build_materials()

    # -- materials -------------------------------------------------------

    def _build_materials(self) -> None:
        """Create the texture pool with a Zipf popularity distribution.

        A few materials ("stone", lightmap atlases) are used by many
        objects; most are used by one or two.  This produces exactly the
        sharing structure that Eq. 1's TSL detects.
        """
        p = self.profile
        sizes = self._rng.lognormal(
            mean=math.log(p.texture_bytes_median),
            sigma=p.texture_bytes_sigma,
            size=p.num_materials,
        )
        for index, size in enumerate(sizes):
            size_bytes = int(max(64 * KB, min(size, 16 * MB)))
            self._materials.append(
                self._pool.get_or_create(f"{p.name}/mat{index:04d}", size_bytes)
            )
        ranks = np.arange(1, p.num_materials + 1, dtype=float)
        weights = ranks ** (-p.material_zipf)
        self._material_popularity = weights / weights.sum()
        cdf = np.cumsum(self._material_popularity)
        self._choice_cdf = cdf / cdf[-1]
        self._material_ids = np.array(
            [texture.texture_id for texture in self._materials], dtype=np.int64
        )
        self._material_sizes = np.array(
            [texture.size_bytes for texture in self._materials], dtype=np.int64
        )

    @property
    def texture_pool(self) -> TexturePool:
        return self._pool

    def _pick_textures(self) -> Tuple[Texture, ...]:
        p = self.profile
        lo, hi = p.textures_per_object
        count = int(self._rng.integers(lo, hi + 1))
        count = min(count, len(self._materials))
        indices = self._rng.choice(
            len(self._materials),
            size=count,
            replace=False,
            p=self._material_popularity,
        )
        return tuple(self._materials[i] for i in sorted(indices))

    # -- placement --------------------------------------------------------

    def _object_viewports(
        self,
    ) -> Tuple[Optional[Viewport], Optional[Viewport], float]:
        """Left/right eye rectangles plus the object's footprint area."""
        p = self.profile
        eye_area = p.width * p.height
        area = eye_area * float(
            self._rng.lognormal(math.log(p.footprint_median), p.footprint_sigma)
        )
        area = min(area, 0.85 * eye_area)
        area = max(area, 64.0)
        aspect = float(self._rng.uniform(0.5, 2.0))
        w = min(math.sqrt(area * aspect), 0.95 * p.width)
        h = min(area / w, 0.95 * p.height)

        cx = float(self._rng.uniform(w / 2, p.width - w / 2))
        # Vertical skew: blend a uniform sample towards the lower half.
        u = float(self._rng.uniform(0.0, 1.0))
        skewed = u ** (1.0 / (1.0 + 2.5 * p.vertical_skew))
        cy = h / 2 + skewed * (p.height - h)
        cy = min(max(cy, h / 2), p.height - h / 2)

        left = Viewport(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2)
        disparity = float(self._rng.uniform(-1.0, 1.0)) * p.max_disparity * p.width
        right = left.shifted(disparity)
        bounds = Viewport(0.0, 0.0, float(p.width), float(p.height))
        right_clamped = right.clamped(bounds)

        if self._rng.uniform() < p.mono_fraction:
            if self._rng.uniform() < 0.5:
                return left, None, area
            return None, right_clamped or left, area
        return left, right_clamped or left, area

    # -- objects: reference (oracle) path ---------------------------------

    def _make_object_reference(
        self, object_id: int, prev_id: Optional[int]
    ) -> RenderObject:
        """The original scalar object builder — the batched path's oracle."""
        p = self.profile
        triangles = int(
            max(
                8,
                self._rng.lognormal(math.log(p.triangles_median), p.triangles_sigma),
            )
        )
        # Indexed meshes: ~0.6 vertices per triangle for typical reuse.
        vertices = max(3, int(triangles * float(self._rng.uniform(0.5, 0.75))))
        left, right, _area = self._object_viewports()
        depth = 1.0 + float(
            self._rng.gamma(shape=2.0, scale=(p.depth_complexity_mean - 1.0) / 2.0)
        )
        shader = float(
            max(0.25, self._rng.normal(p.shader_complexity_mean, 0.25))
        )
        coverage = float(self._rng.uniform(0.30, 0.75))
        depends: Optional[int] = None
        if prev_id is not None and self._rng.uniform() < p.dependency_fraction:
            depends = prev_id
        return RenderObject(
            object_id=object_id,
            name=f"{p.name}/obj{object_id:05d}",
            mesh=Mesh(vertices, triangles),
            textures=self._pick_textures(),
            viewport_left=left,
            viewport_right=right,
            depth_complexity=depth,
            shader_complexity=shader,
            coverage=coverage,
            depends_on=depends,
        )

    def make_frame_reference(self, frame_id: int = 0) -> Frame:
        """Generate one frame through the scalar reference path."""
        objects: List[RenderObject] = []
        prev_id: Optional[int] = None
        for index in range(self.profile.num_objects):
            obj = self._make_object_reference(index, prev_id)
            objects.append(obj)
            prev_id = obj.object_id
        return Frame(
            objects=tuple(objects),
            width=self.profile.width,
            height=self.profile.height,
            frame_id=frame_id,
        )

    def make_scene_reference(self, num_frames: int = 4) -> Scene:
        """Reference-path counterpart of :meth:`make_scene`."""
        frames = tuple(self.make_frame_reference(i) for i in range(num_frames))
        return Scene(name=self.profile.name, frames=frames)

    # -- objects: batched path ---------------------------------------------

    def _choice_tail(self, found: List[int], size: int) -> List[int]:
        """Finish a collided without-replacement draw numpy-faithfully.

        Mirrors ``Generator.choice``'s rejection loop after the first
        iteration left fewer than ``size`` unique indices: zero out the
        found entries of the popularity vector, renormalise its CDF and
        draw again, consuming the exact doubles numpy would.
        """
        pop = self._material_popularity
        rnd = self._rng.random
        while len(found) < size:
            draws = rnd(size - len(found))
            masked = pop.copy()
            masked[found] = 0
            cdf = np.cumsum(masked)
            cdf /= cdf[-1]
            seen = set(found)
            for index in cdf.searchsorted(draws, side="right").tolist():
                if index not in seen:
                    seen.add(index)
                    found.append(index)
        return found

    def _draw_frame_plan(self, n: int):
        """Walk the RNG stream for ``n`` objects, recording raw draws.

        This is the stream-order-preserving core of the batched path:
        per object it performs the *same generator calls in the same
        order* as ``_make_object_reference``, except that

        - adjacent scalar ``uniform(a, b)`` draws become one
          ``random(k)`` call (identical consumption; ``uniform`` is
          ``low + (high - low) * next_double``),
        - ``lognormal``/``normal`` become ``standard_normal`` plus the
          exact affine/exp epilogue numpy applies in C,
        - ``integers(lo, hi + 1)`` is replicated from raw 64-bit draws:
          numpy serves scalar bounded integers from 32-bit halves
          (Lemire rejection on the low half first, high half buffered
          in PCG64's ``has_uint32``/``uinteger`` state) — the shadow
          buffer on ``self`` mirrors that bookkeeping,
        - ``choice(n, size, replace=False, p=...)`` is replicated from
          its documented algorithm: CDF ``searchsorted`` over a batch
          of doubles with first-occurrence dedup and a rejection tail.

        ``gamma`` and ``standard_normal`` stay scalar calls: their
        ziggurat/rejection sampling consumes a data-dependent number of
        raws, so batching them would move the stream (and the goldens).
        """
        p = self.profile
        rng = self._rng
        std = rng.standard_normal
        rnd = rng.random
        gam = rng.gamma
        raw = rng.bit_generator.random_raw
        exp = math.exp
        cdf = self._choice_cdf
        searchsorted = cdf.searchsorted
        dedup = dict.fromkeys

        ln_tri = math.log(p.triangles_median)
        s_tri = p.triangles_sigma
        ln_fp = math.log(p.footprint_median)
        s_fp = p.footprint_sigma
        mono_f = p.mono_fraction
        gamma_scale = (p.depth_complexity_mean - 1.0) / 2.0
        lo, hi = p.textures_per_object
        span = hi - lo
        rng_excl = span + 1
        # Lemire rejection threshold; 0 for power-of-two ranges.
        lemire_thr = (0x100000000 - rng_excl) % rng_excl if span else 0
        num_materials = len(self._materials)

        tri: List[float] = []
        vfrac: List[float] = []
        footprint: List[float] = []
        uni5: List[float] = []
        side: List[float] = []
        gamma_draws: List[float] = []
        shader_z: List[float] = []
        cov: List[float] = []
        dep: List[float] = []
        textures: List[List[int]] = []
        tri_a = tri.append
        vfrac_a = vfrac.append
        footprint_a = footprint.append
        uni5_e = uni5.extend
        side_a = side.append
        gamma_a = gamma_draws.append
        shader_a = shader_z.append
        cov_a = cov.append
        dep_a = dep.append
        textures_a = textures.append

        has32 = self._has_uint32
        buf32 = self._uint32_buf
        for i in range(n):
            tri_a(exp(ln_tri + s_tri * std()))
            vfrac_a(rnd())
            footprint_a(exp(ln_fp + s_fp * std()))
            u5 = rnd(5).tolist()
            uni5_e(u5)
            side_a(rnd() if u5[4] < mono_f else -1.0)
            gamma_a(gam(2.0, gamma_scale))
            shader_a(std())
            if i:
                c2 = rnd(2).tolist()
                cov_a(c2[0])
                dep_a(c2[1])
            else:
                cov_a(rnd())
                dep_a(2.0)  # sentinel: no dependency draw for object 0
            if span:
                while True:
                    if has32:
                        has32 = False
                        m = buf32 * rng_excl
                    else:
                        r = int(raw())
                        buf32 = r >> 32
                        has32 = True
                        m = (r & 0xFFFFFFFF) * rng_excl
                    if (m & 0xFFFFFFFF) >= lemire_thr:
                        break
                count = lo + (m >> 32)
            else:
                count = lo
            if count > num_materials:
                count = num_materials
            picked = searchsorted(rnd(count), side="right").tolist()
            if count > 1:
                unique = list(dedup(picked))
                if len(unique) != count:
                    unique = self._choice_tail(unique, count)
                picked = unique
            picked.sort()
            textures_a(picked)
        self._has_uint32 = has32
        self._uint32_buf = buf32
        return (
            tri, vfrac, footprint, uni5, side,
            gamma_draws, shader_z, cov, dep, textures,
        )

    def _object_names(self, n: int) -> List[str]:
        """Names for object ids 0..n-1, cached across frames."""
        names = self._object_name_cache
        if len(names) < n:
            prefix = f"{self.profile.name}/obj"
            names.extend(f"{prefix}{i:05d}" for i in range(len(names), n))
        return names

    def make_frame(self, frame_id: int = 0) -> Frame:
        """Generate one frame with ``profile.num_objects`` draws.

        Batched equivalent of :meth:`make_frame_reference`: identical
        output bit-for-bit (and identical generator advancement), with
        the per-object arithmetic evaluated as numpy arrays and the
        frame's :class:`~repro.scene.batch.ObjectBatch` built directly
        from those arrays (planted into the frame's ``cached_property``
        slot, so the SoA flattening pass never runs).
        """
        p = self.profile
        n = p.num_objects
        (
            tri, vfrac, footprint, uni5, side,
            gamma_draws, shader_z, cov, dep, textures,
        ) = self._draw_frame_plan(n)

        # -- vectorized derived arithmetic (expressions mirror the
        # reference path elementwise; IEEE-identical) -------------------
        tri_f = np.maximum(np.array(tri), 8.0)
        triangles = tri_f.astype(np.int64)
        vertex_frac = 0.5 + (0.75 - 0.5) * np.array(vfrac)
        vertices = np.maximum(
            (triangles.astype(np.float64) * vertex_frac).astype(np.int64), 3
        )

        u5 = np.array(uni5).reshape(n, 5)
        eye_area = p.width * p.height
        area = eye_area * np.array(footprint)
        area = np.minimum(area, 0.85 * eye_area)
        area = np.maximum(area, 64.0)
        aspect = 0.5 + (2.0 - 0.5) * u5[:, 0]
        w = np.minimum(np.sqrt(area * aspect), 0.95 * p.width)
        h = np.minimum(area / w, 0.95 * p.height)
        half_w = w / 2
        half_h = h / 2
        cx = half_w + ((p.width - half_w) - half_w) * u5[:, 1]
        # Scalar ** per object: numpy's SIMD pow is not bit-identical
        # to CPython's float ** the reference path uses.
        skew_exponent = 1.0 / (1.0 + 2.5 * p.vertical_skew)
        skewed = np.array([u ** skew_exponent for u in u5[:, 2].tolist()])
        cy = half_h + skewed * (p.height - h)
        cy = np.minimum(np.maximum(cy, half_h), p.height - half_h)

        left_x0 = cx - half_w
        left_y0 = cy - half_h
        left_x1 = cx + half_w
        left_y1 = cy + half_h
        disparity = (-1.0 + (1.0 - (-1.0)) * u5[:, 3]) * p.max_disparity * p.width
        # right = left.shifted(disparity), clamped to the screen bounds.
        clamp_x0 = np.maximum(left_x0 + disparity, 0.0)
        clamp_y0 = np.maximum(left_y0, 0.0)
        clamp_x1 = np.minimum(left_x1 + disparity, float(p.width))
        clamp_y1 = np.minimum(left_y1, float(p.height))
        right_on_screen = ~((clamp_x1 <= clamp_x0) | (clamp_y1 <= clamp_y0))
        # Mono objects keep one eye; off-screen right falls back to the
        # left rectangle exactly like `right_clamped or left`.
        side_arr = np.array(side)
        mono = u5[:, 4] < p.mono_fraction
        left_present = ~(mono & (side_arr >= 0.5))
        right_present = ~(mono & (side_arr < 0.5))
        right_x0 = np.where(right_on_screen, clamp_x0, left_x0)
        right_y0 = np.where(right_on_screen, clamp_y0, left_y0)
        right_x1 = np.where(right_on_screen, clamp_x1, left_x1)
        right_y1 = np.where(right_on_screen, clamp_y1, left_y1)

        depth = 1.0 + np.array(gamma_draws)
        shader = np.maximum(
            0.25, p.shader_complexity_mean + 0.25 * np.array(shader_z)
        )
        coverage = 0.30 + (0.75 - 0.30) * np.array(cov)
        depends = np.array(dep) < p.dependency_fraction
        if n:
            depends[0] = False

        # -- materialise the API dataclasses ----------------------------
        # Field values equal the reference path's validated output, so
        # __init__/__post_init__ re-checks are skipped (object.__new__).
        objects = self._materialise_objects(
            n, vertices, triangles, textures,
            left_x0, left_y0, left_x1, left_y1,
            right_x0, right_y0, right_x1, right_y1,
            left_present, right_present, right_on_screen,
            depth, shader, coverage, depends,
        )
        frame = Frame(
            objects=objects,
            width=p.width,
            height=p.height,
            frame_id=frame_id,
        )

        # -- the SoA batch, from the columns we already hold ------------
        counts = np.fromiter(
            (len(t) for t in textures), dtype=np.int64, count=n
        )
        tex_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=tex_offsets[1:])
        flat = [index for picked in textures for index in picked]
        flat_idx = np.array(flat, dtype=np.int64)
        left_area = np.where(
            left_present, (left_x1 - left_x0) * (left_y1 - left_y0), 0.0
        )
        right_area = np.where(
            right_present, (right_x1 - right_x0) * (right_y1 - right_y0), 0.0
        )
        vertex_bytes = np.full(n, 32, dtype=np.int64)
        batch = ObjectBatch(
            objects=objects,
            object_ids=np.arange(n, dtype=np.int64),
            num_vertices=vertices,
            num_triangles=triangles,
            vertex_bytes=vertex_bytes,
            vertex_buffer_bytes=vertices * vertex_bytes,
            depth_complexity=depth,
            shader_complexity=shader,
            coverage=coverage,
            left_area=left_area,
            right_area=right_area,
            has_left=left_present,
            has_right=right_present,
            tex_offsets=tex_offsets,
            tex_ids=self._material_ids[flat_idx],
            tex_sizes=self._material_sizes[flat_idx],
        )
        frame.__dict__["object_batch"] = batch
        return frame

    def _materialise_objects(
        self, n, vertices, triangles, textures,
        left_x0, left_y0, left_x1, left_y1,
        right_x0, right_y0, right_x1, right_y1,
        left_present, right_present, right_on_screen,
        depth, shader, coverage, depends,
    ) -> Tuple[RenderObject, ...]:
        """Fast dataclass construction from the vectorized columns."""
        materials = self._materials
        names = self._object_names(n)
        new = object.__new__
        verts_l = vertices.tolist()
        tris_l = triangles.tolist()
        lx0 = left_x0.tolist()
        ly0 = left_y0.tolist()
        lx1 = left_x1.tolist()
        ly1 = left_y1.tolist()
        rx0 = right_x0.tolist()
        ry0 = right_y0.tolist()
        rx1 = right_x1.tolist()
        ry1 = right_y1.tolist()
        lp = left_present.tolist()
        rp = right_present.tolist()
        rok = right_on_screen.tolist()
        depth_l = depth.tolist()
        shader_l = shader.tolist()
        cov_l = coverage.tolist()
        dep_l = depends.tolist()
        objects: List[RenderObject] = []
        append = objects.append
        for i in range(n):
            mesh = new(Mesh)
            md = mesh.__dict__
            md["num_vertices"] = verts_l[i]
            md["num_triangles"] = tris_l[i]
            md["vertex_bytes"] = 32
            left_vp = None
            if lp[i]:
                left_vp = new(Viewport)
                vd = left_vp.__dict__
                vd["x0"] = lx0[i]
                vd["y0"] = ly0[i]
                vd["x1"] = lx1[i]
                vd["y1"] = ly1[i]
            right_vp = None
            if rp[i]:
                if rok[i]:
                    right_vp = new(Viewport)
                    vd = right_vp.__dict__
                    vd["x0"] = rx0[i]
                    vd["y0"] = ry0[i]
                    vd["x1"] = rx1[i]
                    vd["y1"] = ry1[i]
                elif left_vp is not None:
                    right_vp = left_vp
                else:
                    right_vp = new(Viewport)
                    vd = right_vp.__dict__
                    vd["x0"] = lx0[i]
                    vd["y0"] = ly0[i]
                    vd["x1"] = lx1[i]
                    vd["y1"] = ly1[i]
            obj = new(RenderObject)
            od = obj.__dict__
            od["object_id"] = i
            od["name"] = names[i]
            od["mesh"] = mesh
            od["textures"] = tuple(map(materials.__getitem__, textures[i]))
            od["viewport_left"] = left_vp
            od["viewport_right"] = right_vp
            od["depth_complexity"] = depth_l[i]
            od["shader_complexity"] = shader_l[i]
            od["coverage"] = cov_l[i]
            od["depends_on"] = i - 1 if dep_l[i] else None
            append(obj)
        return tuple(objects)

    # -- frames and scenes --------------------------------------------------

    def make_scene(self, num_frames: int = 4) -> Scene:
        """Generate a scene of ``num_frames`` frames sharing one pool."""
        frames = tuple(self.make_frame(i) for i in range(num_frames))
        return Scene(name=self.profile.name, frames=frames)
