"""Seeded synthetic scene generation.

The paper drives ATTILA-sim with OpenGL/Direct3D traces of five
commercial games (Table 3).  Those traces are not redistributable, so the
reproduction generates *statistically similar* scenes: the knobs that the
paper's mechanisms care about are

- the number of draws per frame (Table 3's ``#Draw`` column),
- the heavy-tailed distribution of triangles per draw (load imbalance,
  Fig. 10),
- the material pool size and reuse pattern (texture sharing level — the
  entire premise of OO-VR batching),
- per-eye screen footprints with small stereo disparity (left/right view
  redundancy exploited by SMP),
- the vertical skew of content (grounds/walls are denser than skies),
  which is what breaks tile-level SFR (H),
- overdraw and shader cost (fragment-stage load).

Everything is generated from a seeded :class:`numpy.random.Generator`, so
scenes are reproducible bit-for-bit across runs and platforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.scene.geometry import Mesh, Viewport
from repro.scene.objects import RenderObject
from repro.scene.scene import Frame, Scene
from repro.scene.texture import Texture, TexturePool

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class SceneProfile:
    """Statistical shape of one application's frames.

    Parameters are per-frame unless stated otherwise.  Defaults are a
    generic mid-2000s PC game; the Table 3 suite overrides them per
    title (see :mod:`repro.scene.benchmarks`).
    """

    name: str
    num_objects: int
    width: int
    height: int
    #: Median triangles per draw; draws are log-normal around this.
    triangles_median: float = 800.0
    #: Log-normal sigma of triangles per draw (tail heaviness).
    triangles_sigma: float = 1.1
    #: Number of distinct materials (textures) in the pool.
    num_materials: int = 120
    #: Zipf exponent for material popularity: higher = more sharing.
    material_zipf: float = 1.1
    #: Textures bound per draw (diffuse + normal + specular ...).
    textures_per_object: Tuple[int, int] = (1, 4)
    #: Median texture size in bytes.
    texture_bytes_median: float = 1.0 * MB
    #: Log-normal sigma of texture sizes.
    texture_bytes_sigma: float = 0.8
    #: Mean depth complexity (overdraw) across draws.
    depth_complexity_mean: float = 1.35
    #: Mean fragment-shader complexity multiplier.
    shader_complexity_mean: float = 1.0
    #: Median object footprint as a fraction of the eye viewport area.
    footprint_median: float = 0.012
    #: Log-normal sigma of footprint areas.
    footprint_sigma: float = 1.0
    #: Vertical content skew in [0, 1): 0 = uniform, higher pushes
    #: object centres towards the lower half of the screen.
    vertical_skew: float = 0.25
    #: Maximum stereo disparity as a fraction of eye width.
    max_disparity: float = 0.035
    #: Fraction of objects visible in only one eye (HUD, near-edge).
    mono_fraction: float = 0.05
    #: Fraction of draws that depend on the previous draw (blending).
    dependency_fraction: float = 0.06

    def validate(self) -> None:
        if self.num_objects <= 0:
            raise ValueError("profile needs at least one object")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("resolution must be positive")
        if self.num_materials <= 0:
            raise ValueError("profile needs at least one material")
        if not 0 <= self.mono_fraction < 1:
            raise ValueError("mono_fraction must be in [0, 1)")
        if not 0 <= self.vertical_skew < 1:
            raise ValueError("vertical_skew must be in [0, 1)")
        lo, hi = self.textures_per_object
        if lo < 1 or hi < lo:
            raise ValueError("textures_per_object must be a valid range")


class SyntheticSceneGenerator:
    """Generates :class:`~repro.scene.scene.Scene` objects from a profile.

    One generator owns one texture pool, so all frames of the scene share
    materials exactly as a real game reuses its assets across frames.
    """

    def __init__(self, profile: SceneProfile, seed: int = 2019) -> None:
        profile.validate()
        self.profile = profile
        self._rng = np.random.default_rng(seed)
        self._pool = TexturePool()
        self._materials: List[Texture] = []
        self._material_popularity: Optional[np.ndarray] = None
        self._build_materials()

    # -- materials -------------------------------------------------------

    def _build_materials(self) -> None:
        """Create the texture pool with a Zipf popularity distribution.

        A few materials ("stone", lightmap atlases) are used by many
        objects; most are used by one or two.  This produces exactly the
        sharing structure that Eq. 1's TSL detects.
        """
        p = self.profile
        sizes = self._rng.lognormal(
            mean=math.log(p.texture_bytes_median),
            sigma=p.texture_bytes_sigma,
            size=p.num_materials,
        )
        for index, size in enumerate(sizes):
            size_bytes = int(max(64 * KB, min(size, 16 * MB)))
            self._materials.append(
                self._pool.get_or_create(f"{p.name}/mat{index:04d}", size_bytes)
            )
        ranks = np.arange(1, p.num_materials + 1, dtype=float)
        weights = ranks ** (-p.material_zipf)
        self._material_popularity = weights / weights.sum()

    @property
    def texture_pool(self) -> TexturePool:
        return self._pool

    def _pick_textures(self) -> Tuple[Texture, ...]:
        p = self.profile
        lo, hi = p.textures_per_object
        count = int(self._rng.integers(lo, hi + 1))
        count = min(count, len(self._materials))
        indices = self._rng.choice(
            len(self._materials),
            size=count,
            replace=False,
            p=self._material_popularity,
        )
        return tuple(self._materials[i] for i in sorted(indices))

    # -- placement --------------------------------------------------------

    def _object_viewports(
        self,
    ) -> Tuple[Optional[Viewport], Optional[Viewport], float]:
        """Left/right eye rectangles plus the object's footprint area."""
        p = self.profile
        eye_area = p.width * p.height
        area = eye_area * float(
            self._rng.lognormal(math.log(p.footprint_median), p.footprint_sigma)
        )
        area = min(area, 0.85 * eye_area)
        area = max(area, 64.0)
        aspect = float(self._rng.uniform(0.5, 2.0))
        w = min(math.sqrt(area * aspect), 0.95 * p.width)
        h = min(area / w, 0.95 * p.height)

        cx = float(self._rng.uniform(w / 2, p.width - w / 2))
        # Vertical skew: blend a uniform sample towards the lower half.
        u = float(self._rng.uniform(0.0, 1.0))
        skewed = u ** (1.0 / (1.0 + 2.5 * p.vertical_skew))
        cy = h / 2 + skewed * (p.height - h)
        cy = min(max(cy, h / 2), p.height - h / 2)

        left = Viewport(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2)
        disparity = float(self._rng.uniform(-1.0, 1.0)) * p.max_disparity * p.width
        right = left.shifted(disparity)
        bounds = Viewport(0.0, 0.0, float(p.width), float(p.height))
        right_clamped = right.clamped(bounds)

        if self._rng.uniform() < p.mono_fraction:
            if self._rng.uniform() < 0.5:
                return left, None, area
            return None, right_clamped or left, area
        return left, right_clamped or left, area

    # -- objects ----------------------------------------------------------

    def _make_object(self, object_id: int, prev_id: Optional[int]) -> RenderObject:
        p = self.profile
        triangles = int(
            max(
                8,
                self._rng.lognormal(math.log(p.triangles_median), p.triangles_sigma),
            )
        )
        # Indexed meshes: ~0.6 vertices per triangle for typical reuse.
        vertices = max(3, int(triangles * float(self._rng.uniform(0.5, 0.75))))
        left, right, _area = self._object_viewports()
        depth = 1.0 + float(
            self._rng.gamma(shape=2.0, scale=(p.depth_complexity_mean - 1.0) / 2.0)
        )
        shader = float(
            max(0.25, self._rng.normal(p.shader_complexity_mean, 0.25))
        )
        coverage = float(self._rng.uniform(0.30, 0.75))
        depends: Optional[int] = None
        if prev_id is not None and self._rng.uniform() < p.dependency_fraction:
            depends = prev_id
        return RenderObject(
            object_id=object_id,
            name=f"{p.name}/obj{object_id:05d}",
            mesh=Mesh(vertices, triangles),
            textures=self._pick_textures(),
            viewport_left=left,
            viewport_right=right,
            depth_complexity=depth,
            shader_complexity=shader,
            coverage=coverage,
            depends_on=depends,
        )

    # -- frames and scenes --------------------------------------------------

    def make_frame(self, frame_id: int = 0) -> Frame:
        """Generate one frame with ``profile.num_objects`` draws."""
        objects: List[RenderObject] = []
        prev_id: Optional[int] = None
        for index in range(self.profile.num_objects):
            obj = self._make_object(index, prev_id)
            objects.append(obj)
            prev_id = obj.object_id
        return Frame(
            objects=tuple(objects),
            width=self.profile.width,
            height=self.profile.height,
            frame_id=frame_id,
        )

    def make_scene(self, num_frames: int = 4) -> Scene:
        """Generate a scene of ``num_frames`` frames sharing one pool."""
        frames = tuple(self.make_frame(i) for i in range(num_frames))
        return Scene(name=self.profile.name, frames=frames)
