"""Render objects: the draw calls the frameworks schedule.

A :class:`RenderObject` is one object in the VR scene — geometry plus
texture bindings plus a screen-space footprint for *each eye*.  The
parallel rendering frameworks consume objects in two forms:

- **stereo draws** (:meth:`RenderObject.stereo_draws`): the conventional
  trace, one draw per eye, as classic object-level SFR sees it ("it still
  executes the objects from the left and right views separately");
- **multi-view draws** (:meth:`RenderObject.multiview_draw`): one draw
  covering both eyes, as the OO-VR programming model issues after merging
  ``viewportL``/``viewportR`` — geometry runs once, SMP projects twice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.scene.geometry import Mesh, Viewport
from repro.scene.texture import Texture, unique_texture_bytes


class Eye(enum.Enum):
    """Which view a draw renders: one eye, or both via SMP."""

    LEFT = "left"
    RIGHT = "right"
    BOTH = "both"

    @property
    def view_count(self) -> int:
        """Number of projections this draw produces."""
        return 2 if self is Eye.BOTH else 1


@dataclass(frozen=True)
class RenderObject:
    """One scene object (a draw call with stereo footprints).

    Parameters
    ----------
    object_id:
        Unique, stable id; also encodes programmer-defined draw order.
    name:
        Material/asset name for debugging ("pillar1", "flag", ...).
    mesh:
        Geometry statistics.
    textures:
        Bound textures.  Sharing with other objects is by identity.
    viewport_left / viewport_right:
        Screen rectangle covered in each eye's image.  For mono content
        (HUD in one eye only) one of them may be ``None``.
    depth_complexity:
        Average overdraw: fragments rasterised per covered pixel.
    shader_complexity:
        Fragment shader cost multiplier relative to the cost model's
        unit shader.
    coverage:
        Fraction of the viewport rectangle actually covered by the
        object's triangles (a tree covers far less than its bbox).
    depends_on:
        ``object_id`` of a draw that must precede this one (blending /
        render-target dependencies).  The middleware keeps dependent
        objects in the same batch (Section 5.1).
    """

    object_id: int
    name: str
    mesh: Mesh
    textures: Tuple[Texture, ...]
    viewport_left: Optional[Viewport]
    viewport_right: Optional[Viewport]
    depth_complexity: float = 1.3
    shader_complexity: float = 1.0
    coverage: float = 0.45
    depends_on: Optional[int] = None

    def __post_init__(self) -> None:
        if self.viewport_left is None and self.viewport_right is None:
            raise ValueError(f"object {self.name!r} is invisible in both eyes")
        if self.depth_complexity < 1.0:
            raise ValueError("depth_complexity is at least 1 (one hit per pixel)")
        if self.shader_complexity <= 0:
            raise ValueError("shader_complexity must be positive")
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        if self.depends_on is not None and self.depends_on == self.object_id:
            raise ValueError("object cannot depend on itself")

    # -- derived workload statistics -----------------------------------

    @property
    def is_stereo(self) -> bool:
        """Visible in both eyes, hence SMP-shareable."""
        return self.viewport_left is not None and self.viewport_right is not None

    @property
    def texture_bytes(self) -> int:
        """Unique texture footprint bound to this object."""
        return unique_texture_bytes(self.textures)

    def covered_pixels(self, eye: Eye) -> float:
        """Pixels covered in ``eye`` (before overdraw)."""
        total = 0.0
        if eye in (Eye.LEFT, Eye.BOTH) and self.viewport_left is not None:
            total += self.viewport_left.area * self.coverage
        if eye in (Eye.RIGHT, Eye.BOTH) and self.viewport_right is not None:
            total += self.viewport_right.area * self.coverage
        return total

    def fragments(self, eye: Eye) -> float:
        """Fragments rasterised in ``eye`` (pixels x overdraw)."""
        return self.covered_pixels(eye) * self.depth_complexity

    # -- draw expansion -------------------------------------------------

    def stereo_draws(self) -> Tuple["StereoDraw", ...]:
        """The conventional per-eye draw sequence (left then right)."""
        draws = []
        if self.viewport_left is not None:
            draws.append(StereoDraw(self, Eye.LEFT))
        if self.viewport_right is not None:
            draws.append(StereoDraw(self, Eye.RIGHT))
        return tuple(draws)

    def multiview_draw(self) -> "StereoDraw":
        """A single SMP multi-view draw covering every visible eye."""
        if not self.is_stereo:
            only = Eye.LEFT if self.viewport_left is not None else Eye.RIGHT
            return StereoDraw(self, only)
        return StereoDraw(self, Eye.BOTH)


@dataclass(frozen=True)
class StereoDraw:
    """A schedulable draw: an object bound to one eye or both.

    This is the unit the frameworks distribute.  ``Eye.BOTH`` draws go
    through the SMP engine (geometry processed once, projected twice);
    single-eye draws run the full pipeline for that view only.
    """

    obj: RenderObject
    eye: Eye

    def __post_init__(self) -> None:
        if self.eye is Eye.LEFT and self.obj.viewport_left is None:
            raise ValueError("left draw of an object with no left viewport")
        if self.eye is Eye.RIGHT and self.obj.viewport_right is None:
            raise ValueError("right draw of an object with no right viewport")
        if self.eye is Eye.BOTH and not self.obj.is_stereo:
            raise ValueError("BOTH draw requires stereo visibility")

    @property
    def draw_key(self) -> Tuple[int, str]:
        """Stable identity for scheduling maps."""
        return (self.obj.object_id, self.eye.value)

    @property
    def view_count(self) -> int:
        return self.eye.view_count

    @property
    def mesh(self) -> Mesh:
        return self.obj.mesh

    @property
    def textures(self) -> Tuple[Texture, ...]:
        return self.obj.textures

    def viewports(self) -> Tuple[Viewport, ...]:
        """The screen rectangles this draw touches (one per view)."""
        out = []
        if self.eye in (Eye.LEFT, Eye.BOTH) and self.obj.viewport_left is not None:
            out.append(self.obj.viewport_left)
        if self.eye in (Eye.RIGHT, Eye.BOTH) and self.obj.viewport_right is not None:
            out.append(self.obj.viewport_right)
        return tuple(out)

    @property
    def fragments(self) -> float:
        return self.obj.fragments(self.eye)

    @property
    def covered_pixels(self) -> float:
        return self.obj.covered_pixels(self.eye)
