"""Frames and scenes.

A :class:`Frame` is one stereo VR frame: an ordered list of
:class:`~repro.scene.objects.RenderObject` draws plus the display
geometry.  A :class:`Scene` is a short sequence of frames, which is what
AFR (frame-level parallelism) needs to show its throughput-vs-latency
trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, List, Sequence, Tuple

from repro.scene.batch import ObjectBatch
from repro.scene.geometry import Viewport, full_screen
from repro.scene.objects import Eye, RenderObject, StereoDraw
from repro.scene.texture import Texture, unique_texture_bytes


@dataclass(frozen=True)
class Frame:
    """One stereo frame of a VR application.

    Frames are immutable after construction and, through the
    per-process scene memo (:func:`~repro.session.spec.cached_scene`),
    *shared by identity* across every cell of a sweep that renders the
    same workload point.  That identity is load-bearing: the reuse
    cache (:mod:`repro.reuse`) anchors frame-derived artefacts —
    middleware batch groupings, characterised frame counters — on the
    frame object itself (``is``, not ``==``), so mutating a frame in
    place would silently poison artefacts other cells reuse.  Derive
    changed frames with :func:`dataclasses.replace` instead; a new
    object is a new anchor.

    Parameters
    ----------
    objects:
        Draw-ordered render objects.
    width, height:
        Per-eye display resolution in pixels.  The HMD shows two images,
        so the full framebuffer is ``2 * width * height`` pixels.
    frame_id:
        Index within the owning scene.
    """

    objects: Tuple[RenderObject, ...]
    width: int
    height: int
    frame_id: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("frame resolution must be positive")
        if not self.objects:
            raise ValueError("a frame needs at least one object")
        seen_ids = set()
        for obj in self.objects:
            if obj.object_id in seen_ids:
                raise ValueError(f"duplicate object_id {obj.object_id}")
            seen_ids.add(obj.object_id)
        for obj in self.objects:
            if obj.depends_on is not None and obj.depends_on not in seen_ids:
                raise ValueError(
                    f"object {obj.object_id} depends on missing {obj.depends_on}"
                )

    # -- display geometry -----------------------------------------------

    @property
    def eye_viewport(self) -> Viewport:
        """The single-eye screen rectangle."""
        return full_screen(self.width, self.height)

    @property
    def stereo_viewport(self) -> Viewport:
        """Both eyes side by side: the full HMD framebuffer."""
        return Viewport(0.0, 0.0, 2.0 * self.width, float(self.height))

    @property
    def total_pixels(self) -> int:
        """Output pixels per frame across both eyes."""
        return 2 * self.width * self.height

    # -- draw streams -----------------------------------------------------

    def stereo_draws(self) -> Tuple[StereoDraw, ...]:
        """The conventional trace: each object issued once per eye.

        Order is all of object 0's views, then object 1's, matching a
        driver that replays the left/right command buffers per object.
        """
        draws: List[StereoDraw] = []
        for obj in self.objects:
            draws.extend(obj.stereo_draws())
        return tuple(draws)

    def multiview_draws(self) -> Tuple[StereoDraw, ...]:
        """The OO_Application trace: one SMP draw per object."""
        return tuple(obj.multiview_draw() for obj in self.objects)

    @cached_property
    def object_batch(self) -> ObjectBatch:
        """The struct-of-array view of this frame's objects.

        Built lazily and cached on the (frozen, memoised) frame, so a
        sweep pays the flattening cost once per scene rather than once
        per cell.  Index order matches ``objects``.
        """
        return ObjectBatch.from_objects(self.objects)

    # -- aggregate statistics ---------------------------------------------

    @property
    def total_triangles(self) -> int:
        """Triangles across all objects (single-view geometry)."""
        return sum(obj.mesh.num_triangles for obj in self.objects)

    @property
    def total_vertices(self) -> int:
        return sum(obj.mesh.num_vertices for obj in self.objects)

    @property
    def unique_textures(self) -> Tuple[Texture, ...]:
        seen = {}
        for obj in self.objects:
            for texture in obj.textures:
                seen.setdefault(texture.texture_id, texture)
        return tuple(seen.values())

    @property
    def texture_bytes(self) -> int:
        """Unique texture working set of the frame."""
        return unique_texture_bytes(self.unique_textures)

    @property
    def total_fragments(self) -> float:
        """Fragments across both eyes (with overdraw)."""
        return sum(obj.fragments(Eye.BOTH) for obj in self.objects)

    def texture_sharing_ratio(self) -> float:
        """How much texture data is shared between objects.

        Ratio of the sum of per-object footprints to the unique frame
        footprint; 1.0 means no sharing, larger means heavy reuse.
        """
        per_object = sum(obj.texture_bytes for obj in self.objects)
        unique = self.texture_bytes
        return per_object / unique if unique else 1.0


@dataclass(frozen=True)
class Scene:
    """A sequence of frames from one application run."""

    name: str
    frames: Tuple[Frame, ...]

    def __post_init__(self) -> None:
        if not self.frames:
            raise ValueError("a scene needs at least one frame")
        first = self.frames[0]
        for frame in self.frames:
            if (frame.width, frame.height) != (first.width, first.height):
                raise ValueError("all frames in a scene share one resolution")

    def __iter__(self) -> Iterator[Frame]:
        return iter(self.frames)

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def width(self) -> int:
        return self.frames[0].width

    @property
    def height(self) -> int:
        return self.frames[0].height

    @property
    def representative_frame(self) -> Frame:
        """The frame used for single-frame latency experiments."""
        return self.frames[0]

    @property
    def num_draws(self) -> int:
        """Objects per frame — comparable to Table 3's #Draw column."""
        return len(self.frames[0].objects)
