"""Scene and workload substrate.

This subpackage models everything the rendering frameworks consume:

- :mod:`repro.scene.texture` — texture resources and the shared pool;
- :mod:`repro.scene.geometry` — meshes and screen-space viewports;
- :mod:`repro.scene.objects` — render objects (draw calls) with stereo
  views, texture bindings and draw-order dependencies;
- :mod:`repro.scene.batch` — struct-of-array views (:class:`ObjectBatch`,
  :class:`TriangleBatch`) feeding the vectorized hot path;
- :mod:`repro.scene.scene` — frames and multi-frame scenes, including
  expansion of stereo draws for SMP-less pipelines;
- :mod:`repro.scene.synthetic` — seeded generators producing game-like
  object distributions;
- :mod:`repro.scene.store` — the persistent compiled-scene artifact
  store (content-addressed, mmap-loaded);
- :mod:`repro.scene.benchmarks` — the Table 3 suite (DM3, HL2, NFS,
  UT3, WE) at the paper's resolutions;
- :mod:`repro.scene.vr` — Table 1 VR-vs-PC display requirement constants.
"""

from repro.scene.texture import Texture, TexturePool
from repro.scene.geometry import Mesh, Viewport
from repro.scene.batch import ObjectBatch, TriangleBatch
from repro.scene.objects import Eye, RenderObject, StereoDraw
from repro.scene.scene import Frame, Scene
from repro.scene.synthetic import (
    GENERATOR_VERSION,
    SceneProfile,
    SyntheticSceneGenerator,
)
from repro.scene.store import (
    SceneStore,
    active_scene_store,
    scene_key,
    scene_store_scope,
    set_scene_store,
)
from repro.scene.benchmarks import (
    BENCHMARKS,
    WORKLOADS,
    BenchmarkSpec,
    benchmark_names,
    make_benchmark_scene,
    workload_scene,
)

__all__ = [
    "Texture",
    "TexturePool",
    "Mesh",
    "Viewport",
    "Eye",
    "ObjectBatch",
    "RenderObject",
    "StereoDraw",
    "TriangleBatch",
    "Frame",
    "Scene",
    "GENERATOR_VERSION",
    "SceneProfile",
    "SceneStore",
    "SyntheticSceneGenerator",
    "active_scene_store",
    "scene_key",
    "scene_store_scope",
    "set_scene_store",
    "BENCHMARKS",
    "WORKLOADS",
    "BenchmarkSpec",
    "benchmark_names",
    "make_benchmark_scene",
    "workload_scene",
]
