"""Struct-of-array (SoA) views of frame content — the hot-path layout.

The per-object dataclasses in :mod:`repro.scene.objects` are the right
API for *building* scenes, but walking them one attribute access at a
time is what made the per-cell hot path scalar Python.  This module
provides the batched counterpart:

- :class:`ObjectBatch` — one frame's objects flattened into contiguous
  numpy arrays (vertex counts, triangle counts, resource byte counts,
  screen footprints) plus a CSR layout of the per-object texture
  bindings (material ids and byte sizes).  Built once per memoised
  frame via :attr:`repro.scene.scene.Frame.object_batch` and consumed
  by the vectorized characterisation kernel
  (:func:`repro.pipeline.batch.frame_counters`);
- :class:`TriangleBatch` — a mesh's triangles as gathered arrays, with
  the batched clip-space front end (near-plane rejection and signed
  areas over all faces at once) the validation rasterizer uses.

Both views are *derived* data: they never change the numbers, only the
layout.  Every expression downstream mirrors the scalar path
elementwise (IEEE-identical products/quotients; no reordered float
reductions), which is what keeps the analytic figures byte-identical —
the property tests in ``tests/test_soa_batches.py`` pin that contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scene.objects import RenderObject

__all__ = ["ObjectBatch", "TriangleBatch"]


@dataclass(frozen=True)
class ObjectBatch:
    """One frame's objects as struct-of-array columns.

    All per-object arrays share index order with ``objects`` (frame
    draw order).  Texture bindings are stored in CSR form: object ``i``
    binds ``tex_ids[tex_offsets[i]:tex_offsets[i+1]]`` in bind order,
    duplicates preserved — the fragment-demand model weights by the
    raw binding list, not the deduplicated set.
    """

    #: The source objects (kept for labels, viewports and materialising
    #: per-draw results back into API objects).
    objects: Tuple["RenderObject", ...]
    object_ids: np.ndarray  #: (N,) int64
    num_vertices: np.ndarray  #: (N,) int64
    num_triangles: np.ndarray  #: (N,) int64
    vertex_bytes: np.ndarray  #: (N,) int64 attribute bytes per vertex
    vertex_buffer_bytes: np.ndarray  #: (N,) int64 resource byte counts
    depth_complexity: np.ndarray  #: (N,) float64
    shader_complexity: np.ndarray  #: (N,) float64
    coverage: np.ndarray  #: (N,) float64
    left_area: np.ndarray  #: (N,) float64, 0.0 where eye not covered
    right_area: np.ndarray  #: (N,) float64
    has_left: np.ndarray  #: (N,) bool
    has_right: np.ndarray  #: (N,) bool
    tex_offsets: np.ndarray  #: (N+1,) int64 CSR row pointers
    tex_ids: np.ndarray  #: (nnz,) int64 material/texture ids
    tex_sizes: np.ndarray  #: (nnz,) int64 texture byte sizes

    def __len__(self) -> int:
        return len(self.objects)

    @property
    def is_stereo(self) -> np.ndarray:
        """Visible in both eyes, hence SMP-shareable (bool per object)."""
        return self.has_left & self.has_right

    @property
    def tex_counts(self) -> np.ndarray:
        """Bindings per object (CSR row lengths)."""
        return np.diff(self.tex_offsets)

    def covered_pixels_both(self) -> np.ndarray:
        """Pixels covered across both eyes, matching the scalar
        accumulation order ``left.area*coverage + right.area*coverage``
        (absent viewports contribute an exact ``+0.0``)."""
        return self.left_area * self.coverage + self.right_area * self.coverage

    @classmethod
    def from_objects(cls, objects: Sequence["RenderObject"]) -> "ObjectBatch":
        n = len(objects)
        object_ids = np.empty(n, dtype=np.int64)
        num_vertices = np.empty(n, dtype=np.int64)
        num_triangles = np.empty(n, dtype=np.int64)
        vertex_bytes = np.empty(n, dtype=np.int64)
        depth_complexity = np.empty(n, dtype=np.float64)
        shader_complexity = np.empty(n, dtype=np.float64)
        coverage = np.empty(n, dtype=np.float64)
        left_area = np.zeros(n, dtype=np.float64)
        right_area = np.zeros(n, dtype=np.float64)
        has_left = np.zeros(n, dtype=bool)
        has_right = np.zeros(n, dtype=bool)
        tex_offsets = np.zeros(n + 1, dtype=np.int64)
        ids: list = []
        sizes: list = []
        for i, obj in enumerate(objects):
            object_ids[i] = obj.object_id
            mesh = obj.mesh
            num_vertices[i] = mesh.num_vertices
            num_triangles[i] = mesh.num_triangles
            vertex_bytes[i] = mesh.vertex_bytes
            depth_complexity[i] = obj.depth_complexity
            shader_complexity[i] = obj.shader_complexity
            coverage[i] = obj.coverage
            if obj.viewport_left is not None:
                left_area[i] = obj.viewport_left.area
                has_left[i] = True
            if obj.viewport_right is not None:
                right_area[i] = obj.viewport_right.area
                has_right[i] = True
            for texture in obj.textures:
                ids.append(texture.texture_id)
                sizes.append(texture.size_bytes)
            tex_offsets[i + 1] = len(ids)
        return cls(
            objects=tuple(objects),
            object_ids=object_ids,
            num_vertices=num_vertices,
            num_triangles=num_triangles,
            vertex_bytes=vertex_bytes,
            vertex_buffer_bytes=num_vertices * vertex_bytes,
            depth_complexity=depth_complexity,
            shader_complexity=shader_complexity,
            coverage=coverage,
            left_area=left_area,
            right_area=right_area,
            has_left=has_left,
            has_right=has_right,
            tex_offsets=tex_offsets,
            tex_ids=np.asarray(ids, dtype=np.int64),
            tex_sizes=np.asarray(sizes, dtype=np.int64),
        )


@dataclass(frozen=True)
class TriangleBatch:
    """A mesh's triangles as gathered struct-of-array data.

    ``faces`` indexes a vertex array the caller transforms per draw;
    ``face_uvs`` are the UVs gathered once so the rasterizer's inner
    loop never re-indexes the vertex UV table.  :meth:`front_end` runs
    the batched clip-space stage over all faces at once.
    """

    faces: np.ndarray  #: (T, 3) int32 vertex indices
    face_uvs: np.ndarray  #: (T, 3, 2) float64 gathered per-corner UVs
    num_vertices: int

    @classmethod
    def from_geometry(
        cls, uvs: np.ndarray, faces: np.ndarray
    ) -> "TriangleBatch":
        return cls(
            faces=faces,
            face_uvs=uvs[faces],
            num_vertices=len(uvs),
        )

    @property
    def num_triangles(self) -> int:
        return len(self.faces)

    def front_end(
        self, screen: np.ndarray, w: np.ndarray, near_eps: float = 1e-9
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batched raster front end over every face.

        Returns ``(tri, tri_w, near_reject, area)`` where ``tri`` is
        the gathered ``(T, 3, 3)`` screen coordinates, ``tri_w`` the
        per-corner clip ``w``, ``near_reject`` the per-face near-plane
        rejection mask (any ``w <= near_eps``), and ``area`` the signed
        twice-area — the exact same expression the scalar per-triangle
        loop evaluates, just evaluated for all faces at once.
        """
        tri_w = w[self.faces]
        near_reject = (tri_w <= near_eps).any(axis=1)
        tri = screen[self.faces]
        x = tri[:, :, 0]
        y = tri[:, :, 1]
        area = (x[:, 1] - x[:, 0]) * (y[:, 2] - y[:, 0]) - (
            x[:, 2] - x[:, 0]
        ) * (y[:, 1] - y[:, 0])
        return tri, tri_w, near_reject, area
