"""Texture resources.

Textures are the dominant memory consumers in rasterisation rendering and
the whole point of OO-VR's batching: two objects that *share* texture data
should render on the same GPM so the shared pages stay local.  A
:class:`Texture` is an immutable resource with a size; a
:class:`TexturePool` interns textures by name so that sharing is explicit
object identity, exactly how the middleware's TSL computation sees it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Tuple

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class Texture:
    """An immutable texture resource.

    Parameters
    ----------
    texture_id:
        Globally unique id (assigned by the owning :class:`TexturePool`).
    name:
        Human-readable material name, e.g. ``"stone"`` (the paper's
        pillar example in Fig. 12 shares a ``stone`` texture).
    size_bytes:
        Total footprint of the mip chain in memory.
    """

    texture_id: int
    name: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"texture {self.name!r} must have positive size")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Texture({self.texture_id}, {self.name!r}, {self.size_bytes}B)"


class TexturePool:
    """Interning factory for :class:`Texture` objects.

    Asking twice for the same name returns the *same* texture object, so
    texture sharing between render objects is plain identity and the
    pool's total footprint counts shared data once.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, Texture] = {}
        self._next_id = 0

    def get_or_create(self, name: str, size_bytes: int) -> Texture:
        """Return the texture called ``name``, creating it on first use.

        The size is fixed at creation; asking again with a different size
        is almost certainly a bug in the workload generator and raises.
        """
        existing = self._by_name.get(name)
        if existing is not None:
            if existing.size_bytes != size_bytes:
                raise ValueError(
                    f"texture {name!r} already exists with size "
                    f"{existing.size_bytes}, requested {size_bytes}"
                )
            return existing
        texture = Texture(self._next_id, name, size_bytes)
        self._next_id += 1
        self._by_name[name] = texture
        return texture

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[Texture]:
        return iter(self._by_name.values())

    @property
    def total_bytes(self) -> int:
        """Unique texture footprint of the pool (shared data counted once)."""
        return sum(t.size_bytes for t in self._by_name.values())


def unique_texture_bytes(textures: Iterable[Texture]) -> int:
    """Total bytes across ``textures`` with duplicates counted once."""
    seen: Dict[int, int] = {}
    for texture in textures:
        seen[texture.texture_id] = texture.size_bytes
    return sum(seen.values())


def shared_textures(
    a: Iterable[Texture], b: Iterable[Texture]
) -> Tuple[Texture, ...]:
    """The textures present in both ``a`` and ``b`` (by identity)."""
    ids_b = {t.texture_id for t in b}
    out = []
    seen = set()
    for texture in a:
        if texture.texture_id in ids_b and texture.texture_id not in seen:
            seen.add(texture.texture_id)
            out.append(texture)
    return tuple(out)
