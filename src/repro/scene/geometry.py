"""Geometry primitives: meshes and screen-space viewports.

The simulator does not rasterise real triangles; it tracks the *counts*
that drive the pipeline cost model — vertices, triangles, and the
screen-space rectangle an object covers.  The viewport rectangle matters
for the tile-level SFR schemes (which GPM strips an object overlaps) and
for the distributed composition unit (which framebuffer partition a pixel
lands in).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Mesh:
    """Geometry statistics of one render object.

    Parameters
    ----------
    num_vertices:
        Vertices fetched by the input assembler.
    num_triangles:
        Triangles assembled before clipping/culling.
    vertex_bytes:
        Attribute bytes per vertex (position + normals + UVs).
    """

    num_vertices: int
    num_triangles: int
    vertex_bytes: int = 32

    def __post_init__(self) -> None:
        if self.num_vertices < 0 or self.num_triangles < 0:
            raise ValueError("mesh counts cannot be negative")
        if self.num_triangles > 0 and self.num_vertices == 0:
            raise ValueError("triangles require vertices")
        if self.vertex_bytes <= 0:
            raise ValueError("vertex_bytes must be positive")

    @property
    def vertex_buffer_bytes(self) -> int:
        """Size of the mesh's vertex buffer in memory."""
        return self.num_vertices * self.vertex_bytes

    def scaled(self, factor: float) -> "Mesh":
        """A mesh with counts scaled by ``factor`` (for LoD studies)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Mesh(
            num_vertices=max(1, round(self.num_vertices * factor)),
            num_triangles=max(1, round(self.num_triangles * factor)),
            vertex_bytes=self.vertex_bytes,
        )


@dataclass(frozen=True)
class Viewport:
    """An axis-aligned screen-space rectangle in pixels.

    ``x`` spans ``[x0, x1)`` and ``y`` spans ``[y0, y1)``; the convention
    matches the paper's Fig. 5 description where the display frame spans
    ``[-W, +W]`` and the SMP engine shifts objects by ``W/2`` per eye —
    we work in absolute pixels instead of normalised device coordinates.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(f"degenerate viewport {self!r}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        """Covered screen area in pixels."""
        return self.width * self.height

    def shifted(self, dx: float, dy: float = 0.0) -> "Viewport":
        """This viewport translated by ``(dx, dy)`` pixels."""
        return Viewport(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def intersection(self, other: "Viewport") -> "Viewport | None":
        """The overlapping rectangle, or ``None`` when disjoint."""
        x0 = max(self.x0, other.x0)
        y0 = max(self.y0, other.y0)
        x1 = min(self.x1, other.x1)
        y1 = min(self.y1, other.y1)
        if x1 <= x0 or y1 <= y0:
            return None
        return Viewport(x0, y0, x1, y1)

    def overlap_fraction(self, other: "Viewport") -> float:
        """Fraction of *this* viewport's area inside ``other``."""
        if self.area == 0:
            return 0.0
        inter = self.intersection(other)
        if inter is None:
            return 0.0
        return inter.area / self.area

    def clamped(self, bounds: "Viewport") -> "Viewport | None":
        """This viewport clipped against ``bounds`` (triangle clipping)."""
        return self.intersection(bounds)


def full_screen(width: int, height: int) -> Viewport:
    """The viewport covering a ``width x height`` display."""
    if width <= 0 or height <= 0:
        raise ValueError("display dimensions must be positive")
    return Viewport(0.0, 0.0, float(width), float(height))


def vertical_strips(screen: Viewport, count: int) -> list[Viewport]:
    """Split ``screen`` into ``count`` equal-width vertical strips.

    Used by tile-level SFR (V) and by the distributed hardware
    composition unit's framebuffer partitioning (Fig. 14).
    """
    if count <= 0:
        raise ValueError("strip count must be positive")
    step = screen.width / count
    return [
        Viewport(screen.x0 + i * step, screen.y0, screen.x0 + (i + 1) * step, screen.y1)
        for i in range(count)
    ]


def horizontal_strips(screen: Viewport, count: int) -> list[Viewport]:
    """Split ``screen`` into ``count`` equal-height horizontal strips.

    Used by tile-level SFR (H), which groups the left and right eye
    views into one wide tile per strip so SMP stays effective.
    """
    if count <= 0:
        raise ValueError("strip count must be positive")
    step = screen.height / count
    return [
        Viewport(screen.x0, screen.y0 + i * step, screen.x1, screen.y0 + (i + 1) * step)
        for i in range(count)
    ]
