"""The object-aware runtime batch distribution engine (Section 5.2).

A hardware micro-controller that replaces the master-slave software
distribution of classic object-level SFR:

1. **Calibration**: the first 8 batches go round-robin across GPMs with
   plain first-touch placement; their measured times fit the Eq. 3
   predictor.
2. **Prediction-driven dispatch**: from the 9th batch on, each batch is
   assigned to the GPM the predictor says becomes idle first (total
   minus elapsed counters per GPM).
3. **Pre-allocation**: before the batch renders, its PA unit copies the
   batch's resources to the selected GPM's DRAM.  The copy overlaps
   with the GPM's previous batch, so its latency is hidden unless the
   batch arrives at an idle GPM.  The engine keeps at most
   ``BATCH_QUEUE_DEPTH`` batches queued per GPM.
4. **Fine-grained straggler splitting**: when every batch is issued and
   some GPMs idle while a large batch still runs, its remaining
   triangles/fragments are split fairly across the idle GPMs, with the
   required data duplicated into their DRAMs (``STEAL`` traffic).

The engine is deliberately *prediction-driven*: assignment decisions use
only information the hardware would have (triangle counts, counter
values, predicted rates), never the simulator's ground-truth times —
mispredictions therefore produce exactly the residual imbalance the
paper's OO-VR still shows.

Timing flows through the system's pluggable
:class:`~repro.engine.base.ExecutionEngine`: the dispatcher reads the
scheduling clock (:meth:`~repro.engine.base.ExecutionEngine.ready_at`),
observes completions through the engine's callback stream rather than
doing its own clock arithmetic, and hands straggler slices to
:meth:`~repro.engine.base.ExecutionEngine.steal_into` /
:meth:`~repro.engine.base.ExecutionEngine.shed_tail` so the event
engine can replay them with contention.  PA copies are engine work
too: the staging manager emits them as a staging flow
(:meth:`~repro.engine.base.ExecutionEngine.stage_flow`) with the
queue-entry time as the overlap origin, the engine answers with the
copy's landing time (the batch's start floor), and the event engine
replays the copy as a background wire flow stealing bandwidth from
concurrent rendering.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.middleware import Batch
from repro.core.predictor import BatchObservation, RenderingTimePredictor
from repro.engine.base import ResolvedUnit
from repro.gpu.staging import StagingManager
from repro.gpu.system import MultiGPUSystem
from repro.memory.link import TrafficType
from repro.pipeline.workunit import WorkUnit
from repro.stats.metrics import UnitExecution

#: The paper limits the batch queue to 4 entries per GPM.
BATCH_QUEUE_DEPTH = 4
#: Minimum remaining fraction of a straggler worth splitting.
STEAL_MIN_FRACTION = 0.15


@dataclass
class _GpmState:
    """The engine's view of one GPM."""

    gpm_id: int
    #: Predicted busy time (sum of predicted totals of queued batches).
    predicted_busy: float = 0.0
    #: Time the GPM's most recent batch started (for PA overlap).
    last_start: float = 0.0
    #: Number of batches dispatched to this GPM.
    dispatched: int = 0


@dataclass(frozen=True)
class _PendingDispatch:
    """Metadata for a batch in flight between submit and completion."""

    batch: Batch
    gpm: int
    predicted: Optional[float]
    prealloc_bytes: float
    calibration: bool


@dataclass(frozen=True)
class DispatchRecord:
    """Audit record of one batch dispatch (tests inspect these)."""

    batch_id: int
    gpm: int
    predicted_cycles: Optional[float]
    actual_cycles: float
    prealloc_bytes: float
    calibration: bool


class DistributionEngine:
    """Runtime batch distribution with prediction and pre-allocation."""

    def __init__(
        self,
        system: MultiGPUSystem,
        predictor: Optional[RenderingTimePredictor] = None,
        queue_depth: int = BATCH_QUEUE_DEPTH,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue depth must be at least 1")
        self.system = system
        self.predictor = predictor or RenderingTimePredictor()
        self.queue_depth = queue_depth
        self.records: List[DispatchRecord] = []
        self._states = [
            _GpmState(gpm_id=i) for i in range(system.num_gpms)
        ]
        self._pending: Deque[_PendingDispatch] = deque()
        # Completion events (on the scheduling clock) drive the
        # predictor and the per-GPM bookkeeping.
        system.engine.on_complete(self._on_unit_complete)
        # PA units: same staged bytes as the software schemes, but the
        # copy streams while the GPM renders its previous batch, so the
        # latency hides ("pre-allocate the required data of each batch
        # to the local memory to hide long data copy latency").
        self._staging = StagingManager(
            system,
            factor=system.config.cost.batch_stage_factor,
            parallelism=system.config.cost.stage_parallelism,
            prefetched=True,
            traffic_type=TrafficType.PREALLOC,
        )
        self._staging.begin_frame()

    # -- GPM selection --------------------------------------------------------

    def _select_gpm(self, batch_index: int) -> Tuple[int, bool]:
        """(gpm, is_calibration) for the next batch."""
        n = self.system.num_gpms
        if not self.predictor.is_calibrated:
            return batch_index % n, True
        # Earliest available by predicted remaining work: predicted
        # busy minus predicted elapsed from the GPM's runtime counters.
        def remaining(state: _GpmState) -> float:
            gpm = self.system.gpms[state.gpm_id]
            elapsed = self.predictor.predict_elapsed(
                gpm.transformed_vertices, gpm.rendered_pixels
            )
            return max(0.0, state.predicted_busy - elapsed)

        chosen = min(self._states, key=remaining)
        return chosen.gpm_id, False

    # -- pre-allocation ----------------------------------------------------------

    def _preallocate(self, unit: WorkUnit, gpm_id: int) -> Tuple[float, float]:
        """Stage the batch's resources on ``gpm_id`` via its PA unit.

        Returns ``(copied_bytes, copy_ready_time)``.  The copy starts
        when the batch enters the GPM's batch queue — modelled as the
        start of the GPM's previous batch — and streams over the links
        concurrently with rendering; the batch cannot start before the
        copy lands, but in steady state it already has.  The overlap
        arithmetic is the engine's
        (:meth:`~repro.engine.base.ExecutionEngine.stage_flow`, reached
        through the staging manager): the dispatcher only forwards the
        queue-entry time and reads the landing time back.
        """
        state = self._states[gpm_id]
        outcome = self._staging.stage_unit(
            unit, gpm_id, overlap_from=state.last_start
        )
        return outcome.landed_bytes, outcome.ready_at

    # -- completion events ------------------------------------------------------

    def _on_unit_complete(
        self, resolved: ResolvedUnit, execution: UnitExecution
    ) -> None:
        """Engine callback: a dispatched batch finished rendering."""
        if not self._pending:
            return  # not one of ours (e.g. a framework-side unit)
        pending = self._pending.popleft()
        state = self._states[pending.gpm]
        state.predicted_busy += (
            pending.predicted
            if pending.predicted is not None
            else execution.cycles
        )
        state.dispatched += 1
        self.predictor.observe(
            BatchObservation(
                triangles=float(pending.batch.total_triangles),
                transformed_vertices=resolved.vertices,
                rendered_pixels=resolved.pixels_out,
                cycles=execution.cycles,
            )
        )
        self.records.append(
            DispatchRecord(
                batch_id=pending.batch.batch_id,
                gpm=pending.gpm,
                predicted_cycles=pending.predicted,
                actual_cycles=execution.cycles,
                prealloc_bytes=pending.prealloc_bytes,
                calibration=pending.calibration,
            )
        )

    # -- dispatch -------------------------------------------------------------

    def dispatch(
        self,
        batches: Sequence[Tuple[Batch, WorkUnit]],
        fb_targets_for: Optional[Callable[[WorkUnit, int], Dict[int, float]]] = None,
    ) -> List[float]:
        """Run every batch; returns per-GPM rendered pixel counts."""
        engine = self.system.engine
        rendered_pixels = [0.0] * self.system.num_gpms
        for index, (batch, unit) in enumerate(batches):
            gpm_id, calibration = self._select_gpm(index)
            state = self._states[gpm_id]
            predicted = (
                self.predictor.predict_total(batch.total_triangles)
                if self.predictor.is_calibrated
                else None
            )
            copied, copy_ready = self._preallocate(unit, gpm_id)
            start_at = max(engine.ready_at(gpm_id), copy_ready)
            state.last_start = start_at
            targets = fb_targets_for(unit, gpm_id) if fb_targets_for else None
            self._pending.append(
                _PendingDispatch(
                    batch=batch,
                    gpm=gpm_id,
                    predicted=predicted,
                    prealloc_bytes=copied,
                    calibration=calibration,
                )
            )
            self.system.execute_unit(
                unit,
                gpm_id,
                fb_targets=targets,
                command_source=gpm_id,  # engine broadcasts, no master hop
                start_at=start_at,
            )
            rendered_pixels[gpm_id] += unit.pixels_out
        self._split_stragglers(rendered_pixels)
        return rendered_pixels

    # -- straggler splitting -----------------------------------------------------

    def _split_stragglers(self, rendered_pixels: List[float]) -> None:
        """Fine-grained task redistribution at the frame tail.

        When all batches are dispatched, GPMs that finished early absorb
        slices of the busiest GPM's tail: the paper fairly distributes
        the remaining primitives to idle GPMs by ID and duplicates the
        required data into their DRAMs.  Modelled as an equalising
        transfer of tail cycles plus STEAL traffic proportional to the
        moved work, expressed through the execution engine so the event
        engine replays the stolen slices with contention.
        """
        engine = self.system.engine
        n = self.system.num_gpms
        if n < 2:
            return
        link_bpc = self.system.config.link.bytes_per_cycle
        for _ in range(n):  # a few equalisation rounds converge fast
            ready = [engine.ready_at(g) for g in range(n)]
            mean_ready = sum(ready) / n
            busiest = max(range(n), key=lambda i: ready[i])
            tail = ready[busiest] - mean_ready
            if tail <= STEAL_MIN_FRACTION * max(mean_ready, 1.0):
                return
            # Move the surplus above the mean to the idle GPMs; the
            # data for those slices is duplicated over the links.
            idle = [i for i in range(n) if ready[i] < mean_ready]
            if not idle:
                return
            moved_total = 0.0
            for dst in idle:
                gap = mean_ready - ready[dst]
                share = min(gap, tail / len(idle))
                if share <= 0:
                    continue
                steal_bytes = share * link_bpc * 0.25
                engine.steal_into(
                    busiest, dst, f"steal-from-{busiest}", share, steal_bytes
                )
                moved_total += share
                pixel_share = rendered_pixels[busiest] * (
                    share / max(ready[busiest], 1.0)
                )
                rendered_pixels[busiest] -= pixel_share
                rendered_pixels[dst] += pixel_share
            if moved_total <= 0:
                return
            engine.shed_tail(busiest, moved_total)
