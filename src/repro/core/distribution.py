"""The object-aware runtime batch distribution engine (Section 5.2).

A hardware micro-controller that replaces the master-slave software
distribution of classic object-level SFR:

1. **Calibration**: the first 8 batches go round-robin across GPMs with
   plain first-touch placement; their measured times fit the Eq. 3
   predictor.
2. **Prediction-driven dispatch**: from the 9th batch on, each batch is
   assigned to the GPM the predictor says becomes idle first (total
   minus elapsed counters per GPM).
3. **Pre-allocation**: before the batch renders, its PA unit copies the
   batch's resources to the selected GPM's DRAM.  The copy overlaps
   with the GPM's previous batch, so its latency is hidden unless the
   batch arrives at an idle GPM.  The engine keeps at most
   ``BATCH_QUEUE_DEPTH`` batches queued per GPM.
4. **Fine-grained straggler splitting**: when every batch is issued and
   some GPMs idle while a large batch still runs, its remaining
   triangles/fragments are split fairly across the idle GPMs, with the
   required data duplicated into their DRAMs (``STEAL`` traffic).

The engine is deliberately *prediction-driven*: assignment decisions use
only information the hardware would have (triangle counts, counter
values, predicted rates), never the simulator's ground-truth times —
mispredictions therefore produce exactly the residual imbalance the
paper's OO-VR still shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.middleware import Batch
from repro.core.predictor import BatchObservation, RenderingTimePredictor
from repro.gpu.staging import StagingManager
from repro.gpu.system import MultiGPUSystem
from repro.memory.link import TrafficType
from repro.pipeline.workunit import WorkUnit

#: The paper limits the batch queue to 4 entries per GPM.
BATCH_QUEUE_DEPTH = 4
#: Minimum remaining fraction of a straggler worth splitting.
STEAL_MIN_FRACTION = 0.15


@dataclass
class _GpmState:
    """The engine's view of one GPM."""

    gpm_id: int
    #: Predicted busy time (sum of predicted totals of queued batches).
    predicted_busy: float = 0.0
    #: Time the GPM's most recent batch started (for PA overlap).
    last_start: float = 0.0
    #: Number of batches dispatched to this GPM.
    dispatched: int = 0


@dataclass(frozen=True)
class DispatchRecord:
    """Audit record of one batch dispatch (tests inspect these)."""

    batch_id: int
    gpm: int
    predicted_cycles: Optional[float]
    actual_cycles: float
    prealloc_bytes: float
    calibration: bool


class DistributionEngine:
    """Runtime batch distribution with prediction and pre-allocation."""

    def __init__(
        self,
        system: MultiGPUSystem,
        predictor: Optional[RenderingTimePredictor] = None,
        queue_depth: int = BATCH_QUEUE_DEPTH,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue depth must be at least 1")
        self.system = system
        self.predictor = predictor or RenderingTimePredictor()
        self.queue_depth = queue_depth
        self.records: List[DispatchRecord] = []
        self._states = [
            _GpmState(gpm_id=i) for i in range(system.num_gpms)
        ]
        # PA units: same staged bytes as the software schemes, but the
        # copy streams while the GPM renders its previous batch, so the
        # latency hides ("pre-allocate the required data of each batch
        # to the local memory to hide long data copy latency").
        self._staging = StagingManager(
            system,
            factor=system.config.cost.batch_stage_factor,
            parallelism=system.config.cost.stage_parallelism,
            prefetched=True,
            traffic_type=TrafficType.PREALLOC,
        )
        self._staging.begin_frame()

    # -- GPM selection --------------------------------------------------------

    def _select_gpm(self, batch_index: int) -> Tuple[int, bool]:
        """(gpm, is_calibration) for the next batch."""
        n = self.system.num_gpms
        if not self.predictor.is_calibrated:
            return batch_index % n, True
        # Earliest available by predicted remaining work: predicted
        # busy minus predicted elapsed from the GPM's runtime counters.
        def remaining(state: _GpmState) -> float:
            gpm = self.system.gpms[state.gpm_id]
            elapsed = self.predictor.predict_elapsed(
                gpm.transformed_vertices, gpm.rendered_pixels
            )
            return max(0.0, state.predicted_busy - elapsed)

        chosen = min(self._states, key=remaining)
        return chosen.gpm_id, False

    # -- pre-allocation ----------------------------------------------------------

    def _preallocate(self, unit: WorkUnit, gpm_id: int) -> Tuple[float, float]:
        """Stage the batch's resources on ``gpm_id`` via its PA unit.

        Returns ``(copied_bytes, copy_ready_time)``.  The copy starts
        when the batch enters the GPM's batch queue — modelled as the
        start of the GPM's previous batch — and streams over the links
        concurrently with rendering; the batch cannot start before the
        copy lands, but in steady state it already has.
        """
        state = self._states[gpm_id]
        before = self._staging.staged_bytes
        self._staging.stage_unit(unit, gpm_id)
        copied = self._staging.staged_bytes - before
        copy_cycles = copied / self.system.config.link.bytes_per_cycle
        copy_ready = state.last_start + copy_cycles
        return copied, copy_ready

    # -- dispatch -------------------------------------------------------------

    def dispatch(
        self,
        batches: Sequence[Tuple[Batch, WorkUnit]],
        fb_targets_for: Optional[Callable[[WorkUnit, int], Dict[int, float]]] = None,
    ) -> List[float]:
        """Run every batch; returns per-GPM rendered pixel counts."""
        rendered_pixels = [0.0] * self.system.num_gpms
        for index, (batch, unit) in enumerate(batches):
            gpm_id, calibration = self._select_gpm(index)
            state = self._states[gpm_id]
            predicted = (
                self.predictor.predict_total(batch.total_triangles)
                if self.predictor.is_calibrated
                else None
            )
            copied, copy_ready = self._preallocate(unit, gpm_id)
            gpm = self.system.gpms[gpm_id]
            start_at = max(gpm.ready_at, copy_ready)
            state.last_start = start_at
            targets = fb_targets_for(unit, gpm_id) if fb_targets_for else None
            execution = self.system.execute_unit(
                unit,
                gpm_id,
                fb_targets=targets,
                command_source=gpm_id,  # engine broadcasts, no master hop
                start_at=start_at,
            )
            rendered_pixels[gpm_id] += unit.pixels_out
            state.predicted_busy += (
                predicted if predicted is not None else execution.cycles
            )
            state.dispatched += 1
            self.predictor.observe(
                BatchObservation(
                    triangles=float(batch.total_triangles),
                    transformed_vertices=unit.vertices,
                    rendered_pixels=unit.pixels_out,
                    cycles=execution.cycles,
                )
            )
            self.records.append(
                DispatchRecord(
                    batch_id=batch.batch_id,
                    gpm=gpm_id,
                    predicted_cycles=predicted,
                    actual_cycles=execution.cycles,
                    prealloc_bytes=copied,
                    calibration=calibration,
                )
            )
        self._split_stragglers(rendered_pixels)
        return rendered_pixels

    # -- straggler splitting -----------------------------------------------------

    def _split_stragglers(self, rendered_pixels: List[float]) -> None:
        """Fine-grained task redistribution at the frame tail.

        When all batches are dispatched, GPMs that finished early absorb
        slices of the busiest GPM's tail: the paper fairly distributes
        the remaining primitives to idle GPMs by ID and duplicates the
        required data into their DRAMs.  Modelled as an equalising
        transfer of tail cycles plus STEAL traffic proportional to the
        moved work.
        """
        system = self.system
        n = system.num_gpms
        if n < 2:
            return
        for _ in range(n):  # a few equalisation rounds converge fast
            ready = [gpm.ready_at for gpm in system.gpms]
            mean_ready = sum(ready) / n
            busiest = max(range(n), key=lambda i: ready[i])
            tail = ready[busiest] - mean_ready
            if tail <= STEAL_MIN_FRACTION * max(mean_ready, 1.0):
                return
            # Move the surplus above the mean to the idle GPMs; the
            # data for those slices is duplicated over the links.
            idle = [i for i in range(n) if ready[i] < mean_ready]
            if not idle:
                return
            moved_total = 0.0
            for dst in idle:
                gap = mean_ready - ready[dst]
                share = min(gap, tail / len(idle))
                if share <= 0:
                    continue
                system.gpms[dst].run(f"steal-from-{busiest}", share)
                moved_total += share
                steal_bytes = share * system.config.link.bytes_per_cycle * 0.25
                system.fabric.transfer(
                    busiest, dst, steal_bytes, TrafficType.STEAL
                )
                pixel_share = rendered_pixels[busiest] * (
                    share / max(ready[busiest], 1.0)
                )
                rendered_pixels[busiest] -= pixel_share
                rendered_pixels[dst] += pixel_share
            if moved_total <= 0:
                return
            straggler = system.gpms[busiest]
            straggler.ready_at -= moved_total
            straggler.busy_cycles = max(
                0.0, straggler.busy_cycles - moved_total
            )
