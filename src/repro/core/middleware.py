"""``OO_Middleware``: TSL-driven batching (Section 5.1, Fig. 12).

The middleware runs at application initialisation and converts the
ordered object stream into *batches* — the smallest scheduling units the
multi-GPU system sees.  The algorithm, straight from the paper:

1. pop the head of the object queue as the batch **root**;
2. scan forward for the next *independent* object and compute its TSL
   against the root's accumulated texture set (Eq. 1);
3. if ``TSL > 0.5``, merge it — the batch becomes the new root, its
   texture set the union — and remove it from the queue;
4. stop growing when the batch exceeds **4096 triangles** (guard
   against inflated batches) or the queue is exhausted; then repeat
   from 1 until the queue is empty.

Objects that *depend* on something already in the batch are merged
directly regardless of TSL, and the triangle cap is raised for them, so
the programmer-defined order is preserved ("for the objects that have
dependency on any of the objects in a batch, we directly merge them to
the batch and increase the triangle limitation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.tsl import byte_shares, tsl_from_shares
from repro.scene.objects import RenderObject
from repro.scene.texture import Texture

#: The paper's batch growth cap in triangles.
DEFAULT_TRIANGLE_LIMIT = 4096
#: The paper's grouping threshold on Eq. 1.
DEFAULT_TSL_THRESHOLD = 0.5


@dataclass(frozen=True)
class Batch:
    """One scheduling unit: TSL-grouped objects in draw order."""

    batch_id: int
    objects: Tuple[RenderObject, ...]

    def __post_init__(self) -> None:
        if not self.objects:
            raise ValueError("batch cannot be empty")

    @property
    def total_triangles(self) -> int:
        return sum(obj.mesh.num_triangles for obj in self.objects)

    @property
    def total_vertices(self) -> int:
        return sum(obj.mesh.num_vertices for obj in self.objects)

    @property
    def textures(self) -> Tuple[Texture, ...]:
        seen: Dict[int, Texture] = {}
        for obj in self.objects:
            for texture in obj.textures:
                seen.setdefault(texture.texture_id, texture)
        return tuple(seen.values())

    @property
    def object_ids(self) -> Tuple[int, ...]:
        return tuple(obj.object_id for obj in self.objects)


class OOMiddleware:
    """Groups a frame's objects into batches by texture sharing."""

    def __init__(
        self,
        triangle_limit: int = DEFAULT_TRIANGLE_LIMIT,
        tsl_threshold: float = DEFAULT_TSL_THRESHOLD,
    ) -> None:
        if triangle_limit <= 0:
            raise ValueError("triangle limit must be positive")
        if not 0.0 <= tsl_threshold < 1.0:
            raise ValueError("TSL threshold must be in [0, 1)")
        self.triangle_limit = triangle_limit
        self.tsl_threshold = tsl_threshold

    def build_batches(self, objects: Sequence[RenderObject]) -> List[Batch]:
        """Run the Fig. 12 grouping loop over ``objects`` in order."""
        queue: List[RenderObject] = list(objects)
        # A candidate's Eq. 1 share vector depends only on its own
        # texture bindings, so compute each one once up front instead
        # of once per (root, candidate) probe — the shares were the
        # dominant cost of the O(n^2) scan.  The root's vector only
        # changes when a merge grows its texture set, so it is
        # recomputed on accept, not per probe.  Both vectors keep the
        # scalar path's key order, making every TSL bit-identical.
        shares_of: Dict[int, dict] = {
            obj.object_id: byte_shares(obj.textures) for obj in objects
        }
        batches: List[Batch] = []
        while queue:
            root = queue.pop(0)
            members: List[RenderObject] = [root]
            member_ids: Set[int] = {root.object_id}
            root_textures: Dict[int, Texture] = {
                t.texture_id: t for t in root.textures
            }
            root_shares = byte_shares(tuple(root_textures.values()))
            triangles = root.mesh.num_triangles
            limit = self.triangle_limit
            index = 0
            while index < len(queue) and triangles < limit:
                candidate = queue[index]
                depends_on_batch = (
                    candidate.depends_on is not None
                    and candidate.depends_on in member_ids
                )
                if depends_on_batch:
                    # Direct merge; raise the cap so the dependent draw
                    # never splits away from its parent.
                    limit += candidate.mesh.num_triangles
                    accept = True
                else:
                    tsl = tsl_from_shares(
                        root_shares, shares_of[candidate.object_id]
                    )
                    accept = tsl > self.tsl_threshold
                if not accept:
                    index += 1
                    continue
                queue.pop(index)
                members.append(candidate)
                member_ids.add(candidate.object_id)
                for texture in candidate.textures:
                    root_textures.setdefault(texture.texture_id, texture)
                root_shares = byte_shares(tuple(root_textures.values()))
                triangles += candidate.mesh.num_triangles
            batches.append(Batch(batch_id=len(batches), objects=tuple(members)))
        return batches

    # -- diagnostics -----------------------------------------------------------

    @staticmethod
    def sharing_captured(batches: Sequence[Batch]) -> float:
        """Fraction of per-object texture bytes kept inside batches.

        1.0 means every texture byte an object binds is private to its
        batch (perfect locality); lower values mean textures still
        shared *across* batches, which is the residual remote traffic
        OO-VR pays.
        """
        total = 0.0
        captured = 0.0
        owner_of_texture: Dict[int, int] = {}
        for batch in batches:
            for texture in batch.textures:
                owner_of_texture.setdefault(texture.texture_id, batch.batch_id)
        for batch in batches:
            for obj in batch.objects:
                for texture in obj.textures:
                    total += texture.size_bytes
                    if owner_of_texture[texture.texture_id] == batch.batch_id:
                        captured += texture.size_bytes
        return captured / total if total else 1.0
