"""The rendering-time predictor — Equation 3 (Section 5.2).

The distribution engine needs to know which GPM becomes idle first.  A
full analytic model (Eq. 2, after Wimmer & Wonka) would need geometry,
texture, hardware and stage state; the paper instead uses a simple
linear *memorisation* model::

    t(X) = c0 * #triangle_X = c1 * #tv_X + c2 * #pixel_X

- **total** rendering time of a batch is predicted from its triangle
  count (known before rendering, straight from the OO_Application);
- **elapsed** time is tracked by incrementing a counter by ``c1`` per
  transformed vertex and ``c2`` per rendered pixel, read from the GPM's
  runtime counters;
- the first 8 batches run round-robin to *calibrate* ``c0, c1, c2``
  from observed totals (least squares for the two-term form, ratio
  averaging for ``c0``).

The engine compares, per GPM, predicted total minus predicted elapsed
to find the earliest-available module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Batches used to initialise the model before prediction switches on.
CALIBRATION_BATCHES = 8


@dataclass(frozen=True)
class BatchObservation:
    """One completed batch's measured workload and time."""

    triangles: float
    transformed_vertices: float
    rendered_pixels: float
    cycles: float

    def __post_init__(self) -> None:
        if min(self.triangles, self.transformed_vertices, self.rendered_pixels) < 0:
            raise ValueError("negative workload counts")
        if self.cycles <= 0:
            raise ValueError("observed time must be positive")


class RenderingTimePredictor:
    """Linear memorisation model with online calibration."""

    def __init__(self, calibration_batches: int = CALIBRATION_BATCHES) -> None:
        if calibration_batches < 1:
            raise ValueError("need at least one calibration batch")
        self.calibration_batches = calibration_batches
        self._observations: List[BatchObservation] = []
        # Column buffers (triangles, tv, pixels, cycles) grown by
        # doubling: refits slice these views instead of rebuilding
        # arrays from the observation list on every observe() call.
        self._columns = np.zeros((4, 16), dtype=np.float64)
        self._count = 0
        self.c0: Optional[float] = None
        self.c1: Optional[float] = None
        self.c2: Optional[float] = None

    # -- calibration ------------------------------------------------------

    @property
    def is_calibrated(self) -> bool:
        return self.c0 is not None

    def observe(self, observation: BatchObservation) -> None:
        """Record a completed batch; fits the model once enough arrive."""
        self._observations.append(observation)
        if self._count == self._columns.shape[1]:
            grown = np.zeros(
                (4, self._columns.shape[1] * 2), dtype=np.float64
            )
            grown[:, : self._count] = self._columns
            self._columns = grown
        self._columns[0, self._count] = observation.triangles
        self._columns[1, self._count] = observation.transformed_vertices
        self._columns[2, self._count] = observation.rendered_pixels
        self._columns[3, self._count] = observation.cycles
        self._count += 1
        if self._count >= self.calibration_batches or self.is_calibrated:
            self._fit()

    def _fit(self) -> None:
        """Fit c0 (triangle rate) and (c1, c2) by least squares."""
        count = self._count
        triangles = self._columns[0, :count]
        cycles = self._columns[3, :count]
        valid = triangles > 0
        if valid.any():
            self.c0 = float(np.mean(cycles[valid] / triangles[valid]))
        else:
            self.c0 = float(np.mean(cycles))
        features = np.column_stack(
            [self._columns[1, :count], self._columns[2, :count]]
        )
        # Non-negative-ish least squares: plain lstsq, floored at zero —
        # the hardware's c1/c2 are rates and cannot be negative.
        solution, *_ = np.linalg.lstsq(features, cycles, rcond=None)
        self.c1 = float(max(solution[0], 0.0))
        self.c2 = float(max(solution[1], 0.0))
        if self.c1 == 0.0 and self.c2 == 0.0:
            # Degenerate fit (e.g. colinear calibration set): fall back
            # to attributing everything to pixels.
            total_pixels = float(np.sum(features[:, 1]))
            self.c2 = float(np.sum(cycles) / total_pixels) if total_pixels else 0.0

    # -- prediction ---------------------------------------------------------

    def predict_total(self, triangles: float) -> float:
        """Predicted batch time from its triangle count (c0 form)."""
        if not self.is_calibrated:
            raise RuntimeError("predictor not calibrated yet")
        return max(0.0, self.c0 * triangles)

    def predict_elapsed(
        self, transformed_vertices: float, rendered_pixels: float
    ) -> float:
        """Predicted progress from the GPM's runtime counters (c1/c2)."""
        if not self.is_calibrated:
            raise RuntimeError("predictor not calibrated yet")
        return self.c1 * transformed_vertices + self.c2 * rendered_pixels

    def remaining(
        self,
        predicted_total: float,
        transformed_vertices: float,
        rendered_pixels: float,
    ) -> float:
        """Distance between the total and elapsed counters (Section 5.2)."""
        elapsed = self.predict_elapsed(transformed_vertices, rendered_pixels)
        return max(0.0, predicted_total - elapsed)

    # -- introspection -------------------------------------------------------

    @property
    def observation_count(self) -> int:
        return len(self._observations)

    def mean_absolute_error(self) -> float:
        """Model error over everything observed so far (for reports)."""
        if not self.is_calibrated or not self._observations:
            return float("nan")
        errors = [
            abs(self.predict_total(o.triangles) - o.cycles) / o.cycles
            for o in self._observations
            if o.cycles > 0
        ]
        return sum(errors) / len(errors)
