"""OO-VR: the paper's contribution (Section 5).

- :mod:`repro.core.tsl` — texture sharing level, Eq. 1;
- :mod:`repro.core.programming_model` — the object-oriented VR
  programming model (``OO_Application``): per-object viewport pairs,
  ``GL_OVR_multiview2``-style multi-view draws, and the auto mode that
  stereo-projects conventional content;
- :mod:`repro.core.middleware` — ``OO_Middleware``: TSL-driven object
  grouping into batches with the 4096-triangle cap and dependency
  merging (Fig. 12);
- :mod:`repro.core.predictor` — the Eq. 3 linear memorisation model and
  its two-counter total/elapsed time tracking;
- :mod:`repro.core.distribution` — the object-aware runtime batch
  distribution engine: first-8-batch calibration, earliest-available
  dispatch, PA-unit pre-allocation, fine-grained straggler splitting;
- :mod:`repro.core.oovr` — the two registered frameworks: ``oo-app``
  (software-only programming model) and ``oo-vr`` (full co-design with
  the distribution engine and distributed hardware composition);
- :mod:`repro.core.overhead` — Section 5.4's storage/area/power
  accounting of the added hardware.
"""

from repro.core.tsl import texture_sharing_level
from repro.core.programming_model import OOApplication, OOObjectBuilder
from repro.core.middleware import Batch, OOMiddleware
from repro.core.predictor import RenderingTimePredictor
from repro.core.distribution import DistributionEngine
from repro.core.oovr import OOAppFramework, OOVRFramework
from repro.core.overhead import OverheadModel

__all__ = [
    "texture_sharing_level",
    "OOApplication",
    "OOObjectBuilder",
    "Batch",
    "OOMiddleware",
    "RenderingTimePredictor",
    "DistributionEngine",
    "OOAppFramework",
    "OOVRFramework",
    "OverheadModel",
]
