"""Hardware overhead accounting — Section 5.4.

The distribution engine adds, per the paper:

- one 64-bit counter per GPM for predicted *total* rendering time and
  one for *elapsed* time;
- a batch queue of 4 entries with 16-bit batch IDs holding predicted
  times;
- twelve 32-bit registers tracking triangle counts, transformed
  vertices and rendered pixels of the in-flight batches;

for a total the paper rounds to **960 bits**, evaluated with McPAT at
**0.59 mm^2** (24 nm) and **0.3 W** — 0.18 % of a GTX 1080's area and
0.16 % of its TDP.  We reproduce the bit accounting exactly and scale
area/power linearly from the paper's McPAT anchor point, which keeps
the model honest for other configurations (more GPMs, deeper queues).
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's McPAT results for the 960-bit baseline engine.
PAPER_STORAGE_BITS = 960
PAPER_AREA_MM2 = 0.59
PAPER_POWER_W = 0.3
#: Reference GPU (GTX 1080) envelope used for the percentages.
GTX1080_AREA_MM2 = 314.0
GTX1080_TDP_W = 180.0


@dataclass(frozen=True)
class OverheadModel:
    """Storage/area/power of the runtime distribution engine."""

    num_gpms: int = 4
    batch_queue_depth: int = 4
    counter_bits: int = 64
    batch_id_bits: int = 16
    tracking_registers: int = 12
    tracking_register_bits: int = 32

    def __post_init__(self) -> None:
        if self.num_gpms <= 0 or self.batch_queue_depth <= 0:
            raise ValueError("engine dimensions must be positive")

    @property
    def counter_storage_bits(self) -> int:
        """Total + elapsed rendering-time counters, one pair per GPM."""
        return self.num_gpms * 2 * self.counter_bits

    @property
    def batch_queue_bits(self) -> int:
        """Batch IDs plus a predicted-time word per queue entry."""
        per_entry = self.batch_id_bits + self.counter_bits
        return self.batch_queue_depth * per_entry

    @property
    def tracking_bits(self) -> int:
        """The twelve 32-bit workload-tracking registers."""
        return self.tracking_registers * self.tracking_register_bits

    @property
    def total_storage_bits(self) -> int:
        return self.counter_storage_bits + self.batch_queue_bits + self.tracking_bits

    @property
    def area_mm2(self) -> float:
        """Area scaled linearly from the paper's McPAT anchor."""
        return PAPER_AREA_MM2 * self.total_storage_bits / PAPER_STORAGE_BITS

    @property
    def power_w(self) -> float:
        """Power scaled linearly from the paper's McPAT anchor."""
        return PAPER_POWER_W * self.total_storage_bits / PAPER_STORAGE_BITS

    @property
    def area_fraction_of_gtx1080(self) -> float:
        return self.area_mm2 / GTX1080_AREA_MM2

    @property
    def power_fraction_of_gtx1080_tdp(self) -> float:
        return self.power_w / GTX1080_TDP_W

    def report(self) -> str:
        """The Section 5.4 numbers as a printable block."""
        lines = [
            f"distribution engine storage: {self.total_storage_bits} bits",
            f"  time counters     : {self.counter_storage_bits} bits",
            f"  batch queue       : {self.batch_queue_bits} bits",
            f"  tracking registers: {self.tracking_bits} bits",
            f"area : {self.area_mm2:.3f} mm^2"
            f" ({self.area_fraction_of_gtx1080 * 100:.2f}% of GTX 1080)",
            f"power: {self.power_w:.3f} W"
            f" ({self.power_fraction_of_gtx1080_tdp * 100:.2f}% of GTX 1080 TDP)",
        ]
        return "\n".join(lines)
