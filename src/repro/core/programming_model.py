"""The Object-Oriented VR programming model (``OO_Application``).

The software interface of Section 5.1: developers (or the auto mode)
merge the left and right views of each object into a *single* rendering
task by replacing the original viewport with a ``viewportL``/
``viewportR`` pair — the ``GL_OVR_multiview2`` idiom — so the SMP engine
in whichever GPM renders the object produces both eye views from one
geometry pass over the same texture data.

Two ways to build an application:

- :class:`OOApplication` wraps an existing stereo
  :class:`~repro.scene.scene.Frame` (objects already carry both eye
  viewports);
- the **auto mode** (:meth:`OOApplication.from_mono_frame`) extends
  conventional single-view content: each object's original viewport is
  shifted by half the eye offset ``W`` per eye and clipped against its
  eye boundary, mirroring the paper's SMP implementation in ATTILA
  (Section 3 / Fig. 5).

The builder API (:class:`OOObjectBuilder`) is the library-user-facing
way to author OO-VR content directly — see ``examples/custom_vr_scene.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pipeline.smp import SMPEngine
from repro.scene.geometry import Mesh, Viewport, full_screen
from repro.scene.objects import RenderObject, StereoDraw
from repro.scene.scene import Frame
from repro.scene.texture import Texture, TexturePool


class OOObjectBuilder:
    """Fluent builder for one OO-VR render object.

    Mirrors the software interface of Fig. 12: an object declares its
    name, geometry, texture bindings and its two viewports.
    """

    def __init__(self, app: "OOApplication", name: str) -> None:
        self._app = app
        self._name = name
        self._mesh: Optional[Mesh] = None
        self._textures: List[Texture] = []
        self._viewport_left: Optional[Viewport] = None
        self._viewport_right: Optional[Viewport] = None
        self._depth_complexity = 1.3
        self._shader_complexity = 1.0
        self._coverage = 0.5
        self._depends_on: Optional[int] = None

    def mesh(self, num_vertices: int, num_triangles: int) -> "OOObjectBuilder":
        self._mesh = Mesh(num_vertices, num_triangles)
        return self

    def texture(self, name: str, size_bytes: int) -> "OOObjectBuilder":
        """Bind a texture from the application's shared pool."""
        self._textures.append(self._app.texture_pool.get_or_create(name, size_bytes))
        return self

    def viewports(self, left: Viewport, right: Viewport) -> "OOObjectBuilder":
        """Explicit ``viewportL`` / ``viewportR`` pair."""
        self._viewport_left = left
        self._viewport_right = right
        return self

    def auto_viewports(self, original: Viewport) -> "OOObjectBuilder":
        """Auto mode: derive both eye views by shifting ``original``."""
        left, right = SMPEngine.project_viewports(
            original,
            half_offset=self._app.half_offset,
            eye_bounds_left=self._app.eye_bounds,
            eye_bounds_right=self._app.eye_bounds,
        )
        return self.viewports(left, right)

    def appearance(
        self,
        depth_complexity: float = 1.3,
        shader_complexity: float = 1.0,
        coverage: float = 0.5,
    ) -> "OOObjectBuilder":
        self._depth_complexity = depth_complexity
        self._shader_complexity = shader_complexity
        self._coverage = coverage
        return self

    def after(self, other_name: str) -> "OOObjectBuilder":
        """Declare a draw-order dependency on a previously added object."""
        self._depends_on = self._app.object_id_of(other_name)
        return self

    def add(self) -> RenderObject:
        """Finalise the object and register it with the application."""
        if self._mesh is None:
            raise ValueError(f"object {self._name!r} needs a mesh")
        if self._viewport_left is None and self._viewport_right is None:
            raise ValueError(f"object {self._name!r} needs viewports")
        if not self._textures:
            raise ValueError(f"object {self._name!r} needs at least one texture")
        obj = RenderObject(
            object_id=self._app.next_object_id(),
            name=self._name,
            mesh=self._mesh,
            textures=tuple(self._textures),
            viewport_left=self._viewport_left,
            viewport_right=self._viewport_right,
            depth_complexity=self._depth_complexity,
            shader_complexity=self._shader_complexity,
            coverage=self._coverage,
            depends_on=self._depends_on,
        )
        self._app.register(obj)
        return obj


class OOApplication:
    """An OO-VR application: objects with merged multi-view tasks."""

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("display dimensions must be positive")
        self.width = width
        self.height = height
        self.texture_pool = TexturePool()
        self._objects: List[RenderObject] = []
        self._ids_by_name: Dict[str, int] = {}
        self._next_id = 0

    # -- construction -------------------------------------------------------

    def object(self, name: str) -> OOObjectBuilder:
        """Start building a new render object."""
        if name in self._ids_by_name:
            raise ValueError(f"object {name!r} already defined")
        return OOObjectBuilder(self, name)

    def next_object_id(self) -> int:
        next_id = self._next_id
        self._next_id += 1
        return next_id

    def register(self, obj: RenderObject) -> None:
        self._ids_by_name[obj.name] = obj.object_id
        self._objects.append(obj)

    def object_id_of(self, name: str) -> int:
        if name not in self._ids_by_name:
            raise KeyError(f"unknown object {name!r}")
        return self._ids_by_name[name]

    # -- geometry helpers ------------------------------------------------------

    @property
    def eye_bounds(self) -> Viewport:
        return full_screen(self.width, self.height)

    @property
    def half_offset(self) -> float:
        """Auto-mode stereo shift: half of the coordinate offset ``W``."""
        return self.width / 2.0 * 0.08  # ~4% of eye width interocular shift

    # -- outputs ---------------------------------------------------------------

    def frame(self, frame_id: int = 0) -> Frame:
        """The application's current frame."""
        if not self._objects:
            raise ValueError("application has no objects")
        return Frame(
            objects=tuple(self._objects),
            width=self.width,
            height=self.height,
            frame_id=frame_id,
        )

    def multiview_draws(self) -> Tuple[StereoDraw, ...]:
        """The merged single-task-per-object draw stream."""
        return self.frame().multiview_draws()

    # -- auto mode ----------------------------------------------------------------

    @classmethod
    def from_stereo_frame(cls, frame: Frame) -> "OOApplication":
        """Wrap an existing stereo frame (views already authored)."""
        app = cls(frame.width, frame.height)
        for obj in frame.objects:
            app.register(replace(obj, object_id=app.next_object_id()))
        return app

    @classmethod
    def from_mono_frame(cls, frame: Frame) -> "OOApplication":
        """Auto mode: stereo-project conventional single-view content.

        Each object's left viewport is treated as the original mono
        rectangle; the two eye views are produced by shifting it along
        X by the half offset, clipped to the eye bounds (Section 5.1's
        "generating two fixed viewports for each object via shifting
        the original viewport along the X coordinate").
        """
        app = cls(frame.width, frame.height)
        for obj in frame.objects:
            original = obj.viewport_left or obj.viewport_right
            assert original is not None  # Frame invariant
            left, right = SMPEngine.project_viewports(
                original,
                half_offset=app.half_offset,
                eye_bounds_left=app.eye_bounds,
                eye_bounds_right=app.eye_bounds,
            )
            app.register(
                replace(
                    obj,
                    object_id=app.next_object_id(),
                    viewport_left=left,
                    viewport_right=right if right.area > 0 else left,
                )
            )
        return app
