"""Texture Sharing Level — Equation 1 of the paper.

Given a *root* (an object or a growing batch) and a *target* object,
the TSL measures how much texture data the two would share if grouped::

    TSL = sum_{t in shared} Pr(t) * Pn(t)  /  sum_{t in shared} Pr(t)

where ``t`` ranges over the textures bound by both sides, ``Pr(t)`` is
texture ``t``'s share (by bytes) of the root's total texture footprint,
and ``Pn(t)`` its share of the target's.  The middleware groups the
target into the root's batch when ``TSL > 0.5``.

Properties (verified by the property tests):

- ``0 <= TSL <= 1``;
- identical texture sets give ``TSL = 1``;
- disjoint sets give ``TSL = 0``;
- symmetric under swapping root and target iff both sides' shares
  mirror — in general the measure is asymmetric, exactly as Eq. 1 is.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.scene.texture import Texture


def byte_shares(textures: Sequence[Texture]) -> dict[int, float]:
    """Per-texture byte share of one side's footprint (duplicates once).

    Public so the middleware can precompute each side's share vector
    once and reuse it across the O(n^2) grouping scan — the shares only
    depend on one side's texture set, not on the pairing.  Key order is
    first-seen binding order, which :func:`tsl_from_shares` relies on
    for bit-exact summation order.
    """
    unique: dict[int, int] = {}
    for texture in textures:
        unique[texture.texture_id] = texture.size_bytes
    total = float(sum(unique.values()))
    if total <= 0:
        return {}
    return {tid: size / total for tid, size in unique.items()}


#: Backwards-compatible alias (pre-memoisation name).
_byte_shares = byte_shares


def tsl_from_shares(
    root_shares: dict[int, float],
    target_shares: dict[int, float],
) -> float:
    """Eq. 1 evaluated on precomputed share vectors.

    Exactly :func:`texture_sharing_level` minus the share computation:
    same set intersection, same summation order, so memoised callers
    get bit-identical TSL values.
    """
    shared = set(root_shares) & set(target_shares)
    if not shared:
        return 0.0
    numerator = sum(root_shares[t] * target_shares[t] for t in shared)
    denominator = sum(root_shares[t] for t in shared)
    if denominator <= 0:
        return 0.0
    return numerator / denominator


def texture_sharing_level(
    root_textures: Sequence[Texture],
    target_textures: Sequence[Texture],
) -> float:
    """Eq. 1: the TSL between a root texture set and a target object."""
    return tsl_from_shares(byte_shares(root_textures), byte_shares(target_textures))


def should_group(
    root_textures: Sequence[Texture],
    target_textures: Sequence[Texture],
    threshold: float = 0.5,
) -> bool:
    """The middleware's grouping predicate (``TSL > threshold``)."""
    return texture_sharing_level(root_textures, target_textures) > threshold
