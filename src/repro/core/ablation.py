"""Ablations of OO-VR's design components.

The paper credits OO-VR's gain over OO_APP to three hardware mechanisms
(Section 5): the predictive distribution engine, the PA-unit
pre-allocation, and the distributed hardware composition; plus the
fine-grained straggler splitting.  :class:`AblatedOOVR` re-renders with
any subset disabled, so the contribution of each can be measured — the
per-component breakdown the paper's evaluation only gives in aggregate.

Disabled components fall back to their OO_APP-level equivalents:

===================  ==========================================
``prediction``       off -> greedy ready-time dispatch (software
                     master-slave, no Eq. 3)
``preallocation``    off -> staging stalls the GPM (no PA overlap)
``distributed_comp`` off -> master-node composition
``stealing``         off -> stragglers run to completion
===================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import SystemConfig
from repro.core.distribution import DistributionEngine
from repro.core.oovr import OOVRFramework, _BatchBuilder
from repro.core.predictor import RenderingTimePredictor
from repro.frameworks.base import RenderingFramework
from repro.gpu.composition import compose_distributed, compose_master
from repro.gpu.staging import StagingManager
from repro.gpu.system import MultiGPUSystem
from repro.memory.link import TrafficType
from repro.memory.placement import PlacementPolicy
from repro.scene.scene import Frame
from repro.stats.metrics import FrameResult


@dataclass(frozen=True)
class OOVRFeatures:
    """Which OO-VR hardware mechanisms are active."""

    prediction: bool = True
    preallocation: bool = True
    distributed_composition: bool = True
    stealing: bool = True

    def label(self) -> str:
        """Short identifier like ``oo-vr[-pred]`` for reports."""
        off = []
        if not self.prediction:
            off.append("pred")
        if not self.preallocation:
            off.append("pa")
        if not self.distributed_composition:
            off.append("dhc")
        if not self.stealing:
            off.append("steal")
        if not off:
            return "oo-vr"
        return "oo-vr[-" + ",-".join(off) + "]"


class _AblatedEngine(DistributionEngine):
    """Distribution engine with selectable mechanisms."""

    def __init__(
        self,
        system: MultiGPUSystem,
        features: OOVRFeatures,
    ) -> None:
        super().__init__(system, RenderingTimePredictor())
        self.features = features
        if not features.preallocation:
            # Staging still happens (the data must arrive), but the copy
            # stalls the renderer like the software schemes.
            self._staging = StagingManager(
                system,
                factor=system.config.cost.batch_stage_factor,
                parallelism=system.config.cost.stage_parallelism,
                prefetched=False,
                traffic_type=TrafficType.PREALLOC,
            )
            self._staging.begin_frame()

    def _select_gpm(self, batch_index: int):
        if self.features.prediction:
            return super()._select_gpm(batch_index)
        # Greedy software dispatch on actual ready times (OO_APP level).
        return self.system.engine.next_idle(), False

    def _split_stragglers(self, rendered_pixels: List[float]) -> None:
        if self.features.stealing:
            super()._split_stragglers(rendered_pixels)


class AblatedOOVR(RenderingFramework):
    """OO-VR with a chosen subset of hardware mechanisms enabled."""

    name = "oo-vr-ablated"
    placement_policy = PlacementPolicy.FIRST_TOUCH
    root: int = 0

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        features: OOVRFeatures = OOVRFeatures(),
    ) -> None:
        super().__init__(config)
        self.features = features
        self.name = features.label()
        self._builder = _BatchBuilder(self)

    def warm_plan(self, frame: Frame) -> None:
        """Compile the TSL grouping (and its characterisation)."""
        self._builder.build(frame)

    def render_frame_on(
        self, system: MultiGPUSystem, frame: Frame, workload: str
    ) -> FrameResult:
        engine = _AblatedEngine(system, self.features)
        rendered_pixels = engine.dispatch(self._builder.build(frame))
        if self.features.distributed_composition:
            compose_distributed(system, rendered_pixels)
        else:
            compose_master(system, rendered_pixels, root=self.root)
        return system.frame_result(self.name, workload)


#: The named ablation points, keyed the way the variant grammar spells
#: them (``oo-vr:no-dhc`` etc. — see :mod:`repro.frameworks.variants`).
ABLATION_VARIANTS: Dict[str, OOVRFeatures] = {
    "full": OOVRFeatures(),
    "no-prediction": OOVRFeatures(prediction=False),
    "no-preallocation": OOVRFeatures(preallocation=False),
    "no-dhc": OOVRFeatures(distributed_composition=False),
    "no-stealing": OOVRFeatures(stealing=False),
    "software-only": OOVRFeatures(
        prediction=False,
        preallocation=False,
        distributed_composition=False,
        stealing=False,
    ),
}


def ablation_suite(config: Optional[SystemConfig] = None) -> Dict[str, AblatedOOVR]:
    """Full OO-VR plus one framework per disabled component."""
    return {
        key: AblatedOOVR(config, features)
        for key, features in ABLATION_VARIANTS.items()
    }
