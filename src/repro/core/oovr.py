"""The OO-VR rendering frameworks (Fig. 11's full stack).

Two registered schemes, matching the paper's evaluation design points:

- ``oo-app`` — **OO_APP**: the object-oriented programming model alone.
  Objects become SMP multi-view draws, the middleware groups them into
  TSL batches, but distribution stays software-level: batches round-
  robin across GPMs in programmer order (master-slave), and the final
  frame composes on the master's ROPs.  This isolates the software
  contribution: texture sharing between eyes and across batched
  objects, with the load imbalance left in.
- ``oo-vr`` — the full co-design: OO_APP plus the object-aware runtime
  distribution engine (Eq. 3 prediction, PA pre-allocation, straggler
  splitting) and the distributed hardware composition unit (DHC).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.core.distribution import DistributionEngine
from repro.core.middleware import Batch, OOMiddleware
from repro.core.predictor import RenderingTimePredictor
from repro.frameworks.base import RenderingFramework, register_framework
from repro.gpu.composition import compose_distributed, compose_master
from repro.gpu.staging import StagingManager
from repro.gpu.system import MultiGPUSystem
from repro.memory.placement import PlacementPolicy
from repro.pipeline.smp import SMPMode
from repro.pipeline.workunit import WorkUnit, merge_units
from repro.profiling import add_counter, phase
from repro.reuse import get_cache
from repro.scene.scene import Frame
from repro.stats.metrics import FrameResult


class _BatchBuilder:
    """Shared OO_APP front end: frame -> (batch, merged work unit)."""

    def __init__(self, framework: RenderingFramework) -> None:
        self._framework = framework
        self._middleware = OOMiddleware()

    def build(self, frame: Frame) -> List[Tuple[Batch, WorkUnit]]:
        """``frame`` -> ``[(batch, merged unit), ...]`` in draw order.

        The pairs depend only on the frame's objects, the middleware's
        grouping knobs and the (frozen) cost model, so the built list
        is memoised per process anchored on the frame object — cells
        sharing a workload skip Fig. 12 grouping and the batch merges.
        Batches and units are frozen; a fresh list is returned per call
        so no consumer can alias another cell's container.

        When a compiled-plan store is active (:mod:`repro.plan.store`)
        the memo's build path consults it first: a ``"group"`` hit
        rebuilds the pairs from the persisted grouping — skipping the
        Fig. 12 scan, the Eq. 3 characterisation *and* the merges — a
        miss builds in process and persists for every later process
        sharing the store.
        """
        return list(
            get_cache().memoize(
                "batch_builder",
                frame,
                (
                    self._framework.config.cost,
                    self._middleware.triangle_limit,
                    self._middleware.tsl_threshold,
                ),
                lambda: self._build_stored(frame),
            )
        )

    def _build_stored(self, frame: Frame) -> Tuple[Tuple[Batch, WorkUnit], ...]:
        """The memo build path: plan store consulted around the oracle.

        Store loads stay outside the ``bind`` phase (charged to the
        ``plan_load_s`` counter), so warm-store profiles show the
        grouping work the store removed.
        """
        from repro.plan.store import (
            active_plan_store,
            cost_fingerprint,
            plan_content_key,
        )

        store = active_plan_store()
        content = plan_content_key(frame)
        cost = self._framework.config.cost
        middleware = self._middleware
        if store is None or content is None:
            with phase("bind"):
                return tuple(self._build(frame))
        fingerprint = cost_fingerprint(cost)
        start = time.perf_counter()
        pairs = store.get_group(
            content,
            fingerprint,
            middleware.triangle_limit,
            middleware.tsl_threshold,
            frame,
        )
        if pairs is not None:
            add_counter("plan_store_hit", 1)
            add_counter("plan_load_s", time.perf_counter() - start)
            return pairs
        add_counter("plan_store_miss", 1)
        start = time.perf_counter()
        with phase("bind"):
            pairs = tuple(self._build(frame))
        store.put_group(
            content,
            fingerprint,
            middleware.triangle_limit,
            middleware.tsl_threshold,
            frame,
            pairs,
        )
        add_counter("plan_build_s", time.perf_counter() - start)
        return pairs

    def _build(self, frame: Frame) -> List[Tuple[Batch, WorkUnit]]:
        characterizer = self._framework.characterizer
        discount = self._framework.config.cost.batch_draw_discount
        batches = self._middleware.build_batches(frame.objects)
        # One vectorized pass prices every object's multi-view draw
        # (frame.object_batch order == frame.objects order); each batch
        # then just gathers its members' units in draw order, so the
        # merge sees the exact units the per-draw loop built.
        units_by_object = dict(
            zip(
                (obj.object_id for obj in frame.objects),
                characterizer.characterize_frame(
                    frame, mode=SMPMode.SIMULTANEOUS, expansion="multiview"
                ),
            )
        )
        out: List[Tuple[Batch, WorkUnit]] = []
        for batch in batches:
            units = tuple(
                units_by_object[obj.object_id] for obj in batch.objects
            )
            merged = merge_units(f"batch{batch.batch_id}", units)
            if len(batch.objects) > 1:
                # Texture-sorted submission needs fewer state changes.
                merged = replace(
                    merged, draw_count=max(1.0, merged.draw_count * discount)
                )
            out.append((batch, merged))
        return out


@register_framework("oo-app")
class OOAppFramework(RenderingFramework):
    """OO_APP: programming model + middleware, software distribution."""

    placement_policy = PlacementPolicy.FIRST_TOUCH
    root: int = 0

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        super().__init__(config)
        self._builder = _BatchBuilder(self)

    def warm_plan(self, frame: Frame) -> None:
        """Compile the TSL grouping (and its characterisation)."""
        self._builder.build(frame)

    def render_frame_on(
        self, system: MultiGPUSystem, frame: Frame, workload: str
    ) -> FrameResult:
        num_gpms = system.num_gpms
        rendered_pixels = [0.0] * num_gpms
        # Software distribution extends object-level SFR: each batch's
        # working set is staged to its GPM.  SMP and TSL grouping make
        # the staged bytes far smaller than per-eye object staging, but
        # the copies still stall the render (no PA units here).
        staging = StagingManager(
            system,
            factor=self.config.cost.batch_stage_factor,
            parallelism=self.config.cost.stage_parallelism,
        )
        staging.begin_frame()
        for batch, unit in self._builder.build(frame):
            # Master-slave software distribution: the next batch goes to
            # whichever worker reported done first.  No prediction, no
            # pre-allocation — big batches still strand stragglers.
            gpm = system.engine.next_idle()
            staging.stage_unit(unit, gpm)
            system.execute_unit(
                unit, gpm, fb_targets={gpm: 1.0}, command_source=self.root
            )
            rendered_pixels[gpm] += unit.pixels_out
        compose_master(system, rendered_pixels, root=self.root)
        return system.frame_result(self.name, workload)


@register_framework("oo-vr")
class OOVRFramework(RenderingFramework):
    """The full OO-VR software/hardware co-design."""

    placement_policy = PlacementPolicy.FIRST_TOUCH

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        super().__init__(config)
        self._builder = _BatchBuilder(self)
        #: The last frame's dispatch records, for diagnostics/tests.
        self.last_engine: Optional[DistributionEngine] = None

    def warm_plan(self, frame: Frame) -> None:
        """Compile the TSL grouping (and its characterisation)."""
        self._builder.build(frame)

    def render_frame_on(
        self, system: MultiGPUSystem, frame: Frame, workload: str
    ) -> FrameResult:
        engine = DistributionEngine(system, RenderingTimePredictor())
        self.last_engine = engine
        rendered_pixels = engine.dispatch(self._builder.build(frame))
        compose_distributed(system, rendered_pixels)
        return system.frame_result(self.name, workload)
