"""The OO-VR rendering frameworks (Fig. 11's full stack).

Two registered schemes, matching the paper's evaluation design points:

- ``oo-app`` — **OO_APP**: the object-oriented programming model alone.
  Objects become SMP multi-view draws, the middleware groups them into
  TSL batches, but distribution stays software-level: batches round-
  robin across GPMs in programmer order (master-slave), and the final
  frame composes on the master's ROPs.  This isolates the software
  contribution: texture sharing between eyes and across batched
  objects, with the load imbalance left in.
- ``oo-vr`` — the full co-design: OO_APP plus the object-aware runtime
  distribution engine (Eq. 3 prediction, PA pre-allocation, straggler
  splitting) and the distributed hardware composition unit (DHC).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.core.distribution import DistributionEngine
from repro.core.middleware import Batch, OOMiddleware
from repro.core.predictor import RenderingTimePredictor
from repro.frameworks.base import RenderingFramework, register_framework
from repro.gpu.composition import compose_distributed, compose_master
from repro.gpu.staging import StagingManager
from repro.gpu.system import MultiGPUSystem
from repro.memory.placement import PlacementPolicy
from repro.pipeline.smp import SMPMode
from repro.pipeline.workunit import WorkUnit, merge_units
from repro.reuse import get_cache
from repro.scene.scene import Frame
from repro.stats.metrics import FrameResult


class _BatchBuilder:
    """Shared OO_APP front end: frame -> (batch, merged work unit)."""

    def __init__(self, framework: RenderingFramework) -> None:
        self._framework = framework
        self._middleware = OOMiddleware()

    def build(self, frame: Frame) -> List[Tuple[Batch, WorkUnit]]:
        """``frame`` -> ``[(batch, merged unit), ...]`` in draw order.

        The pairs depend only on the frame's objects, the middleware's
        grouping knobs and the (frozen) cost model, so the built list
        is memoised per process anchored on the frame object — cells
        sharing a workload skip Fig. 12 grouping and the batch merges.
        Batches and units are frozen; a fresh list is returned per call
        so no consumer can alias another cell's container.
        """
        return list(
            get_cache().memoize(
                "batch_builder",
                frame,
                (
                    self._framework.config.cost,
                    self._middleware.triangle_limit,
                    self._middleware.tsl_threshold,
                ),
                lambda: tuple(self._build(frame)),
            )
        )

    def _build(self, frame: Frame) -> List[Tuple[Batch, WorkUnit]]:
        characterizer = self._framework.characterizer
        discount = self._framework.config.cost.batch_draw_discount
        batches = self._middleware.build_batches(frame.objects)
        # One vectorized pass prices every object's multi-view draw
        # (frame.object_batch order == frame.objects order); each batch
        # then just gathers its members' units in draw order, so the
        # merge sees the exact units the per-draw loop built.
        units_by_object = dict(
            zip(
                (obj.object_id for obj in frame.objects),
                characterizer.characterize_frame(
                    frame, mode=SMPMode.SIMULTANEOUS, expansion="multiview"
                ),
            )
        )
        out: List[Tuple[Batch, WorkUnit]] = []
        for batch in batches:
            units = tuple(
                units_by_object[obj.object_id] for obj in batch.objects
            )
            merged = merge_units(f"batch{batch.batch_id}", units)
            if len(batch.objects) > 1:
                # Texture-sorted submission needs fewer state changes.
                merged = replace(
                    merged, draw_count=max(1.0, merged.draw_count * discount)
                )
            out.append((batch, merged))
        return out


@register_framework("oo-app")
class OOAppFramework(RenderingFramework):
    """OO_APP: programming model + middleware, software distribution."""

    placement_policy = PlacementPolicy.FIRST_TOUCH
    root: int = 0

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        super().__init__(config)
        self._builder = _BatchBuilder(self)

    def render_frame_on(
        self, system: MultiGPUSystem, frame: Frame, workload: str
    ) -> FrameResult:
        num_gpms = system.num_gpms
        rendered_pixels = [0.0] * num_gpms
        # Software distribution extends object-level SFR: each batch's
        # working set is staged to its GPM.  SMP and TSL grouping make
        # the staged bytes far smaller than per-eye object staging, but
        # the copies still stall the render (no PA units here).
        staging = StagingManager(
            system,
            factor=self.config.cost.batch_stage_factor,
            parallelism=self.config.cost.stage_parallelism,
        )
        staging.begin_frame()
        for batch, unit in self._builder.build(frame):
            # Master-slave software distribution: the next batch goes to
            # whichever worker reported done first.  No prediction, no
            # pre-allocation — big batches still strand stragglers.
            gpm = system.engine.next_idle()
            staging.stage_unit(unit, gpm)
            system.execute_unit(
                unit, gpm, fb_targets={gpm: 1.0}, command_source=self.root
            )
            rendered_pixels[gpm] += unit.pixels_out
        compose_master(system, rendered_pixels, root=self.root)
        return system.frame_result(self.name, workload)


@register_framework("oo-vr")
class OOVRFramework(RenderingFramework):
    """The full OO-VR software/hardware co-design."""

    placement_policy = PlacementPolicy.FIRST_TOUCH

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        super().__init__(config)
        self._builder = _BatchBuilder(self)
        #: The last frame's dispatch records, for diagnostics/tests.
        self.last_engine: Optional[DistributionEngine] = None

    def render_frame_on(
        self, system: MultiGPUSystem, frame: Frame, workload: str
    ) -> FrameResult:
        engine = DistributionEngine(system, RenderingTimePredictor())
        self.last_engine = engine
        rendered_pixels = engine.dispatch(self._builder.build(frame))
        compose_distributed(system, rendered_pixels)
        return system.frame_result(self.name, workload)
