"""Command-line interface: ``oovr``.

Every experiment command is a thin wrapper over the Session/Sweep API
(:mod:`repro.session`).  Examples::

    oovr fig 15                 # reproduce Figure 15 (full workloads)
    oovr fig 4 --fast --jobs 4  # quick pass, grid fanned over 4 processes
    oovr table 3                # print Table 3
    oovr overhead               # Section 5.4 overhead analysis
    oovr run oo-vr HL2-1280     # run one framework on one workload
    oovr run oo-vr HL2-1280 --json    # ... as a JSON document
    oovr sweep --frameworks oo-vr,afr --workloads HL2-1280,WE \\
        --fast --jobs 4 --csv out.csv # grid -> tidy CSV records
    oovr run oo-vr HL2-1280 --engine event  # contention-aware timing
    oovr sweep --fast --engine event  # whole grid on the event engine
    oovr sweep --fast --cache .oovr-cache  # memoise cells on disk
    oovr sweep --fast --scene-store .oovr-scenes  # mmap compiled scenes
    oovr scene warm .oovr-scenes --fast   # pre-compile the suite
    oovr scene info .oovr-scenes          # store inventory
    oovr sweep --fast --plan-store .oovr-plans  # mmap compiled work plans
    oovr plan warm .oovr-plans --fast     # pre-characterize the suite
    oovr plan info .oovr-plans            # plan-store inventory
    oovr sweep --fast --progress      # one line per completed cell
    oovr sweep --fast --shard 0/2 --cache shard0  # this host's slice
    oovr cache merge merged shard0 shard1  # gather scattered shards
    oovr cache manifest merged   # audit shard coverage of a cache
    oovr cache info .oovr-cache  # entry count and footprint
    oovr cache info .oovr-cache --json  # ... machine-readable, with
                                        # per-grid manifest coverage
    oovr cache clear .oovr-cache # drop every cached result
    oovr serve --cache farm --port 8765   # sweep-service daemon
    oovr worker http://farmhost:8765 --jobs 4  # lease-executing agent
    oovr sweep --fast --server http://farmhost:8765  # remote executor
    oovr list                   # list frameworks and workloads
    oovr trace record WE we.json.gz   # capture a workload as a trace
    oovr trace info we.json.gz        # profile a captured trace
    oovr trace replay we.json.gz oo-vr  # render a trace with a framework
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence, Tuple

from repro.engine import ENGINE_NAMES
from repro.experiments import figures, tables
from repro.frameworks.base import build_framework, framework_names
from repro.scene.benchmarks import WORKLOADS
from repro.session import (
    EXECUTOR_NAMES,
    FAST,
    FULL,
    CacheMergeError,
    ExecutorError,
    ResultCache,
    Session,
    SessionError,
    SpecError,
    Sweep,
    spec_key,
)
from repro.service.client import ServiceError
from repro.trace import load_scene, profile_scene, save_scene


def _experiment(args: argparse.Namespace):
    return FAST if getattr(args, "fast", False) else FULL


def _progress_line(spec, result, cached) -> None:
    """One ``--progress`` line per completed cell (stderr, grid order)."""
    status = "hit " if cached else "miss"
    print(
        f"[{spec_key(spec)[:12]}] {status} {spec.framework} "
        f"{spec.workload} ({spec.config_label})",
        file=sys.stderr,
    )


def _on_result(args: argparse.Namespace):
    return _progress_line if getattr(args, "progress", False) else None


def _cmd_fig(args: argparse.Namespace) -> int:
    key = args.number
    if key not in figures.FIGURES:
        print(
            f"unknown figure {key!r}; have {sorted(figures.FIGURES)}",
            file=sys.stderr,
        )
        return 2
    result = figures.FIGURES[key](
        _experiment(args), jobs=args.jobs, on_result=_on_result(args)
    )
    print(result.to_text())
    if args.chart:
        print()
        print(result.to_chart())
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    experiment = _experiment(args)
    if args.number == "1":
        print(tables.table1_requirements())
    elif args.number == "2":
        print(tables.table2_configuration())
    elif args.number == "3":
        print(tables.table3_benchmarks(experiment))
    else:
        print(f"unknown table {args.number!r}; have 1/2/3", file=sys.stderr)
        return 2
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    print(tables.overhead_analysis(num_gpms=args.gpms))
    return 0


def _resolve_run_names(args: argparse.Namespace) -> Tuple[str, str]:
    """The run's (framework, workload) from positionals and/or aliases.

    ``oovr run oo-vr HL2-1280``, ``oovr run --framework oo-vr
    --workload HL2-1280`` and mixed forms like ``oovr run oo-vr
    --workload HL2-1280`` all resolve; naming a slot both positionally
    and via its option is a conflict (exit 2), never a silent override.
    """
    positionals = list(args.names)
    given = (
        len(positionals)
        + (args.framework_opt is not None)
        + (args.workload_opt is not None)
    )
    if given > 2:
        raise SessionError(
            "too many framework/workload names: each slot may be "
            "given once, positionally or via --framework/--workload, "
            "not both"
        )
    framework = args.framework_opt
    workload = args.workload_opt
    if framework is None and positionals:
        framework = positionals.pop(0)
    if workload is None and positionals:
        workload = positionals.pop(0)
    if framework is None or workload is None:
        raise SessionError(
            "run needs a framework and a workload: "
            "`oovr run FRAMEWORK WORKLOAD` or "
            "`oovr run --framework NAME --workload NAME`"
        )
    return framework, workload


def _cmd_run(args: argparse.Namespace) -> int:
    framework, workload = _resolve_run_names(args)
    session = (
        Session()
        .framework(framework)
        .workload(workload)
        .preset(_experiment(args))
    )
    if args.engine is not None:
        session.engine(args.engine)
    result = session.run(
        profile=args.profile,
        reuse=not args.no_reuse,
        scene_store=args.scene_store,
        plan_store=args.plan_store,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        if session.last_profile is not None:
            print(session.last_profile.table(), file=sys.stderr)
        return 0
    frame = result.frames[0]
    print(f"framework       : {result.framework}")
    print(f"workload        : {result.workload}")
    print(f"single frame    : {frame.cycles / 1e6:.3f} Mcycles "
          f"({frame.latency_ms():.3f} ms @1GHz)")
    print(f"frame interval  : {result.frame_interval_cycles / 1e6:.3f} Mcycles")
    print(f"throughput      : {result.throughput_fps:.1f} FPS @1GHz")
    print(f"inter-GPM bytes : {frame.inter_gpm_bytes / (1024 * 1024):.2f} MB/frame")
    print(f"load balance    : {frame.load_balance_ratio:.3f} (worst/best GPM)")
    print(f"composition     : {frame.composition_cycles / 1e3:.1f} Kcycles")
    print("traffic by type :")
    for traffic, nbytes in sorted(
        frame.traffic.by_type.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {traffic.value:<12} {nbytes / (1024 * 1024):8.2f} MB")
    system = getattr(session.last_framework, "last_system", None)
    trace = getattr(system, "last_trace", None)
    if trace is not None and trace.engine != "analytic" and trace.intervals:
        from repro.stats.timeline import trace_timeline

        print(f"frame trace (last frame, {trace.engine} engine):")
        print(trace_timeline(trace))
    engine = getattr(session.last_framework, "last_engine", None)
    if engine is not None and engine.records:
        from repro.stats.timeline import dispatch_timeline

        print("dispatch timeline (last frame):")
        print(
            dispatch_timeline(
                engine.records, session.last_framework.config.num_gpms
            )
        )
    if session.last_profile is not None:
        print(session.last_profile.table())
    return 0


def _csv_list(text: str) -> Sequence[str]:
    return tuple(item.strip() for item in text.split(",") if item.strip())


def _cmd_sweep(args: argparse.Namespace) -> int:
    sweep = Sweep().preset(_experiment(args))
    if args.engine is not None:
        sweep.engine(args.engine)
    if args.frameworks is None:
        sweep.frameworks(*framework_names())
    else:
        names = _csv_list(args.frameworks)
        if not names:
            raise SessionError("--frameworks was given but names no frameworks")
        sweep.frameworks(*names)
    if args.workloads is not None:
        names = _csv_list(args.workloads)
        if not names:
            raise SessionError("--workloads was given but names no workloads")
        sweep.workloads(*names)
    if args.frames is not None:
        sweep.frames(args.frames)
    if args.seed is not None:
        sweep.seed(args.seed)
    cache = ResultCache(args.cache) if args.cache else None
    scene_store = None
    if args.scene_store:
        from repro.scene.store import SceneStore

        # Built here (not inside Sweep.run) so the hit/miss stats of
        # this invocation can be reported below.
        scene_store = SceneStore(args.scene_store)
    plan_store = None
    if args.plan_store:
        from repro.plan.store import PlanStore

        plan_store = PlanStore(args.plan_store)
    if args.shard and not args.cache:
        print(
            "note: --shard without --cache computes this slice but "
            "persists nothing; pass --cache DIR to scatter across hosts",
            file=sys.stderr,
        )
    executor = args.executor
    if args.server:
        if executor not in (None, "remote"):
            raise ExecutorError(
                f"--server selects the remote executor; it cannot be "
                f"combined with --executor {executor}"
            )
        from repro.service import RemoteExecutor, ServiceError

        try:
            executor = RemoteExecutor(args.server)
        except ServiceError as error:
            # A URL that cannot even be parsed is a usage error (exit
            # 2), not a runtime service failure (exit 1).
            raise ExecutorError(str(error)) from None
    if args.profile and (
        args.jobs != 1 or args.shard or args.server or executor is not None
    ):
        raise ExecutorError(
            "--profile runs serially; drop --jobs/--executor/--shard/--server"
        )
    results = sweep.run(
        jobs=args.jobs,
        cache=cache,
        executor=executor,
        shard=args.shard,
        on_result=_on_result(args),
        profile=args.profile,
        reuse=not args.no_reuse,
        scene_store=scene_store,
        plan_store=plan_store,
    )

    from repro.stats.reporting import format_table

    rows = [
        (
            record["framework"],
            record["workload"],
            record["config_label"],
            float(record["single_frame_cycles"]) / 1e6,
            float(record["throughput_fps"]),
            float(record["mean_inter_gpm_bytes_per_frame"]) / (1024 * 1024),
            float(record["mean_load_balance_ratio"]),
        )
        for record in results.to_records()
    ]
    title = f"sweep: {len(results)} runs ({args.jobs} jobs)"
    if args.shard:
        title += f", shard {args.shard}"
    print(
        format_table(
            ("framework", "workload", "config", "Mcycles",
             "FPS@1GHz", "MB/frame", "imbalance"),
            rows,
            title=title,
        )
    )
    if results.profiles is not None:
        for (spec, _), prof in zip(results, results.profiles):
            print(
                prof.table(
                    f"{spec.framework} {spec.workload} "
                    f"({spec.config_label})"
                )
            )
    if cache is not None:
        print(f"cache: {cache.stats.summary()} -> {args.cache}")
    if scene_store is not None:
        stats = scene_store.stats
        print(
            f"scene store: {stats.hits} hits, {stats.misses} misses "
            f"-> {args.scene_store}"
        )
    if plan_store is not None:
        stats = plan_store.stats
        print(
            f"plan store: {stats.hits} hits, {stats.misses} misses "
            f"-> {args.plan_store}"
        )
    if args.csv:
        results.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        results.to_json(args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import os

    if not os.path.isdir(args.dir):
        # Inspection/maintenance must not create the directory a typo
        # names (ResultCache.__init__ would mkdir it).
        print(f"error: no cache directory at {args.dir}", file=sys.stderr)
        return 2
    cache = ResultCache(args.dir)
    if args.cache_command == "info":
        if getattr(args, "json", False):
            # The same document the sweep service's GET /cache serves
            # (one code path: ResultCache.status), so scripts and the
            # daemon read identical numbers.
            print(json.dumps(cache.status(), indent=2))
            return 0
        info = cache.status()
        print(f"cache at {info['root']}:")
        print(f"  entries     : {info['entries']}")
        print(f"  total bytes : {info['total_bytes']}")
        for grid in info["grids"]:
            print(
                f"  grid {grid['grid'][:12]}: {grid['present']}/"
                f"{grid['cells']} cells present across {grid['shards']} "
                f"shard manifest(s)"
                + ("" if grid["complete"] else " [incomplete]")
            )
        return 0
    removed = cache.clear()
    print(f"cleared {removed} cached result(s) from {args.dir}")
    return 0


def _cmd_cache_merge(args: argparse.Namespace) -> int:
    import os

    for source in args.sources:
        if not os.path.isdir(source):
            print(f"error: no cache directory at {source}", file=sys.stderr)
            return 2
    destination = ResultCache(args.dst)
    for source in args.sources:
        try:
            stats = destination.merge(source, on_conflict=args.on_conflict)
        except CacheMergeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(f"merged {source} -> {args.dst}: {stats.summary()}")
    print(f"{args.dst}: {len(destination)} entr(y/ies) total")
    return 0


def _cmd_cache_manifest(args: argparse.Namespace) -> int:
    import os

    from repro.session.executor import ShardManifest, shard_manifest_paths

    if not os.path.isdir(args.dir):
        print(f"error: no cache directory at {args.dir}", file=sys.stderr)
        return 2
    cache = ResultCache(args.dir)
    present = set(cache.keys())
    print(f"cache at {args.dir}: {len(present)} entr(y/ies)")
    manifests = []
    complete = True
    for path in shard_manifest_paths(args.dir):
        try:
            manifests.append(ShardManifest.load(path))
        except (OSError, ValueError, KeyError, TypeError) as error:
            # A torn or version-skewed manifest is an audit failure,
            # not a crash.
            print(f"  unreadable shard manifest {path.name}: {error}")
            complete = False
    if not manifests:
        if complete:
            print(
                "no shard manifests (cache was not written by --shard runs)"
            )
            return 0
        return 1
    manifests.sort(
        key=lambda m: (m.grid_key, m.shard_count, m.shard_index)
    )
    grid: set = set()
    claimed: dict = {}
    for manifest in manifests:
        owned = manifest.owned_keys
        missing = [key for key in owned if key not in present]
        grid.update(owned)
        grid.update(manifest.skipped_keys)
        label = (
            f"grid {manifest.grid_key[:12]} shard "
            f"{manifest.shard_index}/{manifest.shard_count}"
        )
        print(
            f"  {label}: owns {len(owned)}, present "
            f"{len(owned) - len(missing)}, missing {len(missing)}, "
            f"skipped {len(manifest.skipped_keys)}"
        )
        if missing:
            complete = False
            for key in missing:
                print(f"    missing {key[:12]}…")
        for key in owned:
            # Ownership is disjoint only within one (grid, N-way)
            # scatter: two different grids legitimately share cells.
            owner = (
                manifest.grid_key,
                manifest.shard_count,
                manifest.shard_index,
            )
            scatter = owner[:2]
            if claimed.get((scatter, key), owner) != owner:
                complete = False
                other = claimed[(scatter, key)]
                print(
                    f"    overlap: {key[:12]}… owned by shard "
                    f"{other[2]}/{other[1]} and {label}"
                )
            claimed[(scatter, key)] = owner
    covered = len(grid & present)
    print(
        f"coverage: {covered}/{len(grid)} grid cells present across "
        f"{len(manifests)} shard manifest(s)"
    )
    if covered < len(grid):
        complete = False
    return 0 if complete else 1


def _resolve_store_dir(given: Optional[str], env_var: str, kind: str) -> str:
    """The store directory of an info/clear subcommand.

    The positional wins; without one the environment default the
    run/sweep paths already honor (``$OOVR_SCENE_STORE`` /
    ``$OOVR_PLAN_STORE``) applies, so ``oovr scene info`` inspects the
    same store ``oovr sweep`` just used.  Neither given is a usage
    error (exit 2 via :class:`SessionError`).
    """
    if given:
        return given
    from_env = os.environ.get(env_var)
    if from_env:
        return from_env
    raise SessionError(
        f"no {kind} store directory given and ${env_var} is not set"
    )


def _cmd_scene(args: argparse.Namespace) -> int:
    from repro.scene.store import SceneStore

    if args.scene_command == "warm":
        store = SceneStore(args.dir)
        experiment = _experiment(args)
        names = (
            _csv_list(args.workloads) if args.workloads else tuple(WORKLOADS)
        )
        num_frames = args.frames if args.frames is not None else experiment.num_frames
        seed = args.seed if args.seed is not None else experiment.seed
        for workload in names:
            before = store.stats.stores
            try:
                scene = store.get_or_build(
                    workload, num_frames, seed, experiment.draw_scale
                )
            except KeyError as error:
                # Unknown workload names are usage errors (exit 2),
                # not tracebacks.
                raise SessionError(error.args[0]) from None
            status = "compiled" if store.stats.stores > before else "present"
            print(
                f"  {workload:<12} {status}  "
                f"({scene.num_draws} objects/frame, {len(scene)} frames)"
            )
        print(
            f"scene store {args.dir}: {store.stats.misses} compiled, "
            f"{store.stats.hits} already present"
        )
        return 0
    directory = _resolve_store_dir(args.dir, "OOVR_SCENE_STORE", "scene")
    if not os.path.isdir(directory):
        # Inspection/maintenance must not create the directory a typo
        # names (SceneStore.__init__ would mkdir it).
        print(f"error: no scene store at {directory}", file=sys.stderr)
        return 2
    store = SceneStore(directory)
    if args.scene_command == "info":
        info = store.info()
        if getattr(args, "json", False):
            print(json.dumps(info, indent=2))
            return 0
        print(f"scene store at {info['root']}:")
        print(f"  entries     : {info['entries']}")
        print(f"  corrupt     : {info['corrupt']}")
        print(f"  total bytes : {info['total_bytes']}")
        for scene in info["scenes"]:
            if scene.get("corrupt"):
                print(f"  {scene['file']}: corrupt ({scene['bytes']} bytes)")
                continue
            print(
                f"  {scene['key'][:12]} {scene['workload']:<12} "
                f"frames={scene['num_frames']} seed={scene['seed']} "
                f"scale={scene['draw_scale']:g} "
                f"objects={scene['num_objects']} ({scene['bytes']} bytes)"
            )
        return 0
    removed = store.clear()
    print(f"cleared {removed} compiled scene(s) from {directory}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.plan.store import PlanStore, plan_store_scope

    if args.plan_command == "warm":
        from repro.session.spec import cached_scene

        store = PlanStore(args.dir)
        experiment = _experiment(args)
        workloads = (
            _csv_list(args.workloads) if args.workloads else tuple(WORKLOADS)
        )
        frameworks = (
            _csv_list(args.frameworks)
            if args.frameworks
            else tuple(framework_names())
        )
        num_frames = (
            args.frames if args.frames is not None else experiment.num_frames
        )
        seed = args.seed if args.seed is not None else experiment.seed
        with plan_store_scope(store):
            for workload in workloads:
                before = store.stats.stores
                # cached_scene stamps the frames with their scene
                # content key; warm_plan then runs the exact
                # characterisation each framework's render path would,
                # so every store entry is written by its consumer's own
                # code path.
                try:
                    scene = cached_scene(
                        workload, num_frames, seed, experiment.draw_scale
                    )
                    for name in frameworks:
                        framework = build_framework(name)
                        for frame in scene.frames:
                            framework.warm_plan(frame)
                except KeyError as error:
                    # Unknown workload/framework names are usage
                    # errors (exit 2), not tracebacks.
                    raise SessionError(error.args[0]) from None
                compiled = store.stats.stores - before
                status = (
                    f"compiled {compiled} plan(s)" if compiled else "present"
                )
                print(f"  {workload:<12} {status}")
        print(
            f"plan store {args.dir}: {store.stats.stores} compiled, "
            f"{store.stats.hits} already present"
        )
        return 0
    directory = _resolve_store_dir(args.dir, "OOVR_PLAN_STORE", "plan")
    if not os.path.isdir(directory):
        # Inspection/maintenance must not create the directory a typo
        # names (PlanStore.__init__ would mkdir it).
        print(f"error: no plan store at {directory}", file=sys.stderr)
        return 2
    store = PlanStore(directory)
    if args.plan_command == "info":
        info = store.info()
        if getattr(args, "json", False):
            print(json.dumps(info, indent=2))
            return 0
        print(f"plan store at {info['root']}:")
        print(f"  entries     : {info['entries']}")
        print(f"  corrupt     : {info['corrupt']}")
        print(f"  total bytes : {info['total_bytes']}")
        for plan in info["plans"]:
            if plan.get("corrupt"):
                print(f"  {plan['file']}: corrupt ({plan['bytes']} bytes)")
                continue
            if plan["kind"] == "frame":
                detail = (
                    f"mode={plan['mode']} expansion={plan['expansion']} "
                    f"draws={plan['num_draws']}"
                )
            else:
                detail = (
                    f"cap={plan['triangle_limit']} "
                    f"tsl={plan['tsl_threshold']:g} "
                    f"batches={plan['num_batches']}"
                )
            print(
                f"  {plan['key'][:12]} {plan['kind']:<6} "
                f"scene={plan['scene'][:12]} cost={plan['cost'][:12]} "
                f"{detail} ({plan['bytes']} bytes)"
            )
        return 0
    removed = store.clear()
    print(f"cleared {removed} compiled plan(s) from {directory}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    try:
        server = serve(
            cache=args.cache,
            host=args.host,
            port=args.port,
            lease_timeout=args.lease_timeout,
            verbose=args.verbose,
        )
    except ValueError as error:
        raise SessionError(str(error)) from None
    print(
        f"oovr serve: cache {args.cache}, listening on {server.url} "
        f"(lease timeout {args.lease_timeout:g}s)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.service import SweepWorker

    try:
        worker = SweepWorker(
            args.server,
            jobs=args.jobs,
            name=args.name,
            poll_interval=args.poll_interval,
            lease_limit=args.lease_limit,
            max_idle=args.max_idle,
            scene_store=args.scene_store,
            plan_store=args.plan_store,
        )
    except ValueError as error:
        raise SessionError(str(error)) from None
    print(
        f"oovr worker: {worker.name} pulling from {args.server} "
        f"({args.jobs} job(s))",
        flush=True,
    )
    stats = worker.run_forever()
    print(
        f"worker {stats['name']} exiting: {stats['cells_done']} cell(s) "
        f"over {stats['leases_served']} lease(s)"
    )
    return 0


def _cmd_trace_record(args: argparse.Namespace) -> int:
    scene = Session().preset(_experiment(args)).workload(args.workload).scene()
    path = save_scene(scene, args.path)
    profile = profile_scene(scene).representative
    print(
        f"captured {args.workload} -> {path} "
        f"({profile.num_objects} objects/frame, {len(scene)} frames)"
    )
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    scene = load_scene(args.path)
    print(profile_scene(scene).table())
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    scene = load_scene(args.path)
    framework = build_framework(args.framework)
    result = framework.render_scene(scene)
    frame = result.frames[0]
    print(f"replayed {scene.name} under {result.framework}")
    print(f"single frame    : {frame.cycles / 1e6:.3f} Mcycles "
          f"({frame.latency_ms():.3f} ms @1GHz)")
    print(f"inter-GPM bytes : {frame.inter_gpm_bytes / (1024 * 1024):.2f} MB/frame")
    print(f"load balance    : {frame.load_balance_ratio:.3f} (worst/best GPM)")
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    from repro.energy import (
        EnergyConstants,
        EnergyModel,
        IntegrationPoint,
        scene_energy,
    )

    experiment = _experiment(args)
    point = (
        IntegrationPoint.CROSS_NODE if args.nodes else IntegrationPoint.ON_BOARD
    )
    model = EnergyModel(EnergyConstants.for_integration(point))
    print(
        f"energy per frame on {args.workload} "
        f"({point.value}, {point.picojoules_per_bit:.0f} pJ/bit):"
    )
    print(f"{'scheme':<12}{'link mJ':>9}{'dram mJ':>9}{'sm mJ':>9}"
          f"{'engine mJ':>11}{'total mJ':>10}")
    for scheme in ("baseline", "object", "oo-vr"):
        result = (
            Session()
            .preset(experiment)
            .framework(scheme)
            .workload(args.workload)
            .run()
        )
        e = scene_energy(result, model).per_frame
        print(
            f"{scheme:<12}{e.link_joules * 1e3:>9.2f}"
            f"{e.dram_joules * 1e3:>9.2f}{e.compute_joules * 1e3:>9.2f}"
            f"{e.engine_joules * 1e3:>11.4f}{e.millijoules:>10.2f}"
        )
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    import pathlib

    from repro.render import (
        Camera,
        SceneObject3D,
        StereoCamera,
        StereoRenderer,
        StereoRenderMode,
        make_box,
        make_checker_ground,
        make_cylinder,
        make_icosphere,
        rotate_y,
        translate,
    )

    camera = StereoCamera(
        Camera(position=(0.0, 1.6, 4.2), target=(0.0, 1.0, 0.0), aspect=1.0),
        ipd=0.12,
    )
    objects = [
        SceneObject3D("ground", make_checker_ground(12.0, 8), translate(0, 0, 0)),
        SceneObject3D(
            "pillar1", make_cylinder(0.32, 2.4, 20), translate(-1.4, 0, -0.4)
        ),
        SceneObject3D(
            "pillar2", make_cylinder(0.32, 2.4, 20), translate(1.4, 0, -0.4)
        ),
        SceneObject3D("orb", make_icosphere(0.45, 2), translate(0, 1.35, -0.8)),
        SceneObject3D(
            "crate", make_box(0.9, 0.9, 0.9),
            translate(0.3, 0.45, 1.1) @ rotate_y(0.6),
        ),
    ]
    renderer = StereoRenderer(camera, args.size, args.size)
    packed, stats = renderer.render(objects, StereoRenderMode.SMP)
    out = pathlib.Path(args.out)
    packed.write_ppm(out / "stereo.ppm")
    packed.write_png(out / "stereo.png")
    print(stats.summary())
    print(f"wrote {out}/stereo.ppm and {out}/stereo.png")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("frameworks:")
    for name in framework_names():
        print(f"  {name}")
    print("workloads:")
    for name in WORKLOADS:
        print(f"  {name}")
    print("figures:", ", ".join(sorted(figures.FIGURES)))
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="oovr",
        description="OO-VR (ISCA 2019) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("fig", help="reproduce a figure")
    fig.add_argument("number", help="figure id (4, 7, 8, 9, 10, 15-18, smp)")
    fig.add_argument("--fast", action="store_true", help="scaled-down scenes")
    fig.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the figure's sweep",
    )
    fig.add_argument(
        "--chart", action="store_true", help="also draw a terminal bar chart"
    )
    fig.add_argument(
        "--progress", action="store_true",
        help="print one line per completed grid cell to stderr",
    )
    fig.set_defaults(func=_cmd_fig)

    table = sub.add_parser("table", help="reproduce a table")
    table.add_argument("number", help="table id (1, 2, 3)")
    table.add_argument("--fast", action="store_true")
    table.set_defaults(func=_cmd_table)

    overhead = sub.add_parser("overhead", help="Section 5.4 overheads")
    overhead.add_argument("--gpms", type=int, default=4)
    overhead.set_defaults(func=_cmd_overhead)

    run = sub.add_parser("run", help="run one framework on one workload")
    run.add_argument(
        "names", nargs="*", metavar="NAME",
        help="framework then workload, positionally; either slot may "
        "instead be named via --framework/--workload",
    )
    run.add_argument(
        "--framework", dest="framework_opt", metavar="NAME", default=None,
        help="alias for the framework positional (conflicts if both "
        "name the slot)",
    )
    run.add_argument(
        "--workload", dest="workload_opt", metavar="NAME", default=None,
        help="alias for the workload positional (conflicts if both "
        "name the slot)",
    )
    run.add_argument("--fast", action="store_true")
    run.add_argument(
        "--json", action="store_true",
        help="print the scene result as a JSON document",
    )
    run.add_argument(
        "--engine", metavar="NAME", default=None,
        help="execution engine "
        f"({'/'.join(ENGINE_NAMES)}): the paper's analytic roofline or "
        "discrete-event contention-aware timing (default: whatever "
        "the framework variant/config selects, i.e. analytic)",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="time the run phase by phase (scene build, bind, price, "
        "execute) and print the wall-time breakdown (with the event "
        "engine: plus window-loop counters)",
    )
    run.add_argument(
        "--no-reuse", action="store_true",
        help="disable the per-process reuse cache (memoised scene "
        "batches and frame characterisation); results are byte-"
        "identical either way",
    )
    run.add_argument(
        "--scene-store", metavar="DIR",
        default=os.environ.get("OOVR_SCENE_STORE"),
        help="persistent compiled-scene store: mmap-load the scene "
        "when already compiled, build-and-store otherwise (default: "
        "$OOVR_SCENE_STORE); results are byte-identical either way",
    )
    run.add_argument(
        "--plan-store", metavar="DIR",
        default=os.environ.get("OOVR_PLAN_STORE"),
        help="persistent compiled work-plan store: mmap-load frame "
        "characterisation and batch grouping when already compiled, "
        "build-and-store otherwise (default: $OOVR_PLAN_STORE); "
        "results are byte-identical either way",
    )
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="run a (framework x workload) grid to tidy records"
    )
    sweep.add_argument(
        "--frameworks",
        help="comma-separated framework names (default: all registered)",
    )
    sweep.add_argument(
        "--workloads",
        help="comma-separated workload names (default: the full suite)",
    )
    sweep.add_argument("--fast", action="store_true", help="scaled-down scenes")
    sweep.add_argument("--frames", type=int, help="frames per scene")
    sweep.add_argument("--seed", type=int, help="scene-generation seed")
    sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the grid"
    )
    sweep.add_argument("--csv", metavar="PATH", help="write records as CSV")
    sweep.add_argument("--json", metavar="PATH", help="write records as JSON")
    sweep.add_argument(
        "--cache", metavar="DIR",
        help="memoise results on disk, keyed by RunSpec; repeated grids "
        "skip already-executed cells",
    )
    sweep.add_argument(
        "--engine", metavar="NAME", default=None,
        help=f"execution engine ({'/'.join(ENGINE_NAMES)}) for every "
        "cell, overriding variant/config selections (part of the "
        "cache key when not 'analytic')",
    )
    sweep.add_argument(
        "--executor", metavar="NAME", default=None,
        help=f"execution backend ({'/'.join(EXECUTOR_NAMES)}; default: "
        "serial, or process when --jobs > 1; remote reads $OOVR_SERVER "
        "unless --server is given)",
    )
    sweep.add_argument(
        "--server", metavar="URL", default=None,
        help="submit the grid to an `oovr serve` daemon (selects the "
        "remote executor) and block for results; records stay "
        "byte-identical to a serial run",
    )
    sweep.add_argument(
        "--shard", metavar="I/N", default=None,
        help="execute only shard I of an N-way deterministic partition "
        "of the grid (0-based; cells are assigned by spec_key, so the "
        "same grid shards identically on every host); with --cache, "
        "records a shard manifest next to the entries",
    )
    sweep.add_argument(
        "--progress", action="store_true",
        help="print one line per completed cell (key prefix, hit/miss, "
        "framework, workload) to stderr",
    )
    sweep.add_argument(
        "--profile", action="store_true",
        help="time every cell phase by phase (scene build, bind, price, "
        "execute, cache I/O), print per-cell breakdowns and export "
        "profile_*_s record columns (serial execution only)",
    )
    sweep.add_argument(
        "--no-reuse", action="store_true",
        help="disable the per-process reuse cache (memoised scene "
        "batches and frame characterisation shared by cells with the "
        "same workload); records are byte-identical either way",
    )
    sweep.add_argument(
        "--scene-store", metavar="DIR",
        default=os.environ.get("OOVR_SCENE_STORE"),
        help="persistent compiled-scene store shared by every process "
        "of the sweep: each workload point is compiled once and "
        "mmap-loaded everywhere else (default: $OOVR_SCENE_STORE); "
        "records are byte-identical either way",
    )
    sweep.add_argument(
        "--plan-store", metavar="DIR",
        default=os.environ.get("OOVR_PLAN_STORE"),
        help="persistent compiled work-plan store shared by every "
        "process of the sweep: each (workload, cost config) point is "
        "characterised once and mmap-loaded everywhere else (default: "
        "$OOVR_PLAN_STORE); records are byte-identical either way",
    )
    sweep.set_defaults(func=_cmd_sweep)

    cache = sub.add_parser(
        "cache", help="inspect/clear/merge result caches"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_info = cache_sub.add_parser("info", help="entry count and bytes")
    cache_info.add_argument("dir", help="cache directory")
    cache_info.add_argument(
        "--json", action="store_true",
        help="machine-readable status (entries, bytes, per-grid shard-"
        "manifest coverage) — the same document the sweep service's "
        "GET /cache endpoint serves",
    )
    cache_info.set_defaults(func=_cmd_cache)
    cache_clear = cache_sub.add_parser("clear", help="drop every entry")
    cache_clear.add_argument("dir", help="cache directory")
    cache_clear.set_defaults(func=_cmd_cache)
    cache_merge = cache_sub.add_parser(
        "merge",
        help="fold per-shard cache directories into one (atomic per "
        "entry, conflicts detected)",
    )
    cache_merge.add_argument("dst", help="destination cache directory")
    cache_merge.add_argument(
        "sources", nargs="+", metavar="src",
        help="source cache directories (merged in order)",
    )
    cache_merge.add_argument(
        "--on-conflict", choices=("error", "keep", "replace"),
        default="error",
        help="what to do when both sides hold different results for "
        "one key (default: error)",
    )
    cache_merge.set_defaults(func=_cmd_cache_merge)
    cache_manifest = cache_sub.add_parser(
        "manifest",
        help="audit shard manifests: per-shard ownership, missing "
        "entries, grid coverage (exit 1 when incomplete)",
    )
    cache_manifest.add_argument("dir", help="cache directory")
    cache_manifest.set_defaults(func=_cmd_cache_manifest)

    scene = sub.add_parser(
        "scene", help="warm/inspect/clear compiled-scene stores"
    )
    scene_sub = scene.add_subparsers(dest="scene_command", required=True)
    scene_warm = scene_sub.add_parser(
        "warm",
        help="pre-compile workload points into a store so later runs "
        "and worker fleets mmap-load instead of building",
    )
    scene_warm.add_argument("dir", help="scene store directory (created)")
    scene_warm.add_argument(
        "--workloads",
        help="comma-separated workload names (default: the full suite)",
    )
    scene_warm.add_argument(
        "--fast", action="store_true", help="scaled-down scenes"
    )
    scene_warm.add_argument("--frames", type=int, help="frames per scene")
    scene_warm.add_argument("--seed", type=int, help="scene-generation seed")
    scene_warm.set_defaults(func=_cmd_scene)
    scene_info = scene_sub.add_parser(
        "info", help="store inventory (entries, workload points, bytes)"
    )
    scene_info.add_argument(
        "dir", nargs="?", default=None,
        help="scene store directory (default: $OOVR_SCENE_STORE)",
    )
    scene_info.add_argument(
        "--json", action="store_true",
        help="machine-readable inventory (SceneStore.info document)",
    )
    scene_info.set_defaults(func=_cmd_scene)
    scene_clear = scene_sub.add_parser(
        "clear", help="drop every compiled scene"
    )
    scene_clear.add_argument(
        "dir", nargs="?", default=None,
        help="scene store directory (default: $OOVR_SCENE_STORE)",
    )
    scene_clear.set_defaults(func=_cmd_scene)

    plan = sub.add_parser(
        "plan", help="warm/inspect/clear compiled work-plan stores"
    )
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)
    plan_warm = plan_sub.add_parser(
        "warm",
        help="pre-characterise workload points into a store so later "
        "runs and worker fleets mmap-load work plans instead of "
        "re-running Eq. 3 and the batch grouping",
    )
    plan_warm.add_argument("dir", help="plan store directory (created)")
    plan_warm.add_argument(
        "--workloads",
        help="comma-separated workload names (default: the full suite)",
    )
    plan_warm.add_argument(
        "--frameworks",
        help="comma-separated framework names whose plans to compile "
        "(default: all registered)",
    )
    plan_warm.add_argument(
        "--fast", action="store_true", help="scaled-down scenes"
    )
    plan_warm.add_argument("--frames", type=int, help="frames per scene")
    plan_warm.add_argument("--seed", type=int, help="scene-generation seed")
    plan_warm.set_defaults(func=_cmd_plan)
    plan_info = plan_sub.add_parser(
        "info", help="store inventory (entries, plan kinds, bytes)"
    )
    plan_info.add_argument(
        "dir", nargs="?", default=None,
        help="plan store directory (default: $OOVR_PLAN_STORE)",
    )
    plan_info.add_argument(
        "--json", action="store_true",
        help="machine-readable inventory (PlanStore.info document)",
    )
    plan_info.set_defaults(func=_cmd_plan)
    plan_clear = plan_sub.add_parser(
        "clear", help="drop every compiled plan"
    )
    plan_clear.add_argument(
        "dir", nargs="?", default=None,
        help="plan store directory (default: $OOVR_PLAN_STORE)",
    )
    plan_clear.set_defaults(func=_cmd_plan)

    trace = sub.add_parser("trace", help="capture/inspect/replay traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    record = trace_sub.add_parser("record", help="capture a workload")
    record.add_argument("workload")
    record.add_argument("path", help="output .json or .json.gz")
    record.add_argument("--fast", action="store_true")
    record.set_defaults(func=_cmd_trace_record)

    info = trace_sub.add_parser("info", help="profile a trace file")
    info.add_argument("path")
    info.set_defaults(func=_cmd_trace_info)

    replay = trace_sub.add_parser("replay", help="render a trace")
    replay.add_argument("path")
    replay.add_argument("framework")
    replay.set_defaults(func=_cmd_trace_replay)

    serve = sub.add_parser(
        "serve",
        help="run the sweep-service daemon: accepts RunSpec grids over "
        "HTTP/JSON, dispatches cells to registered workers, answers "
        "repeats straight from its result cache",
    )
    serve.add_argument(
        "--cache", metavar="DIR", required=True,
        help="content-addressed result cache directory the daemon owns "
        "(the shared result store; repeated grids are pure cache reads)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: OS-assigned, printed at startup)",
    )
    serve.add_argument(
        "--lease-timeout", type=float, default=60.0, metavar="SECONDS",
        help="seconds a worker may hold leased cells before they are "
        "re-dispatched (a dead worker degrades to a re-run, not a "
        "wedged job)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.set_defaults(func=_cmd_serve)

    worker = sub.add_parser(
        "worker",
        help="run a worker agent: registers with an `oovr serve` "
        "daemon, leases pending sweep cells, executes them with the "
        "standard in-process executors and uploads the results",
    )
    worker.add_argument("server", help="daemon URL (http://host:port)")
    worker.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for leased cells (process executor "
        "when > 1)",
    )
    worker.add_argument(
        "--name", default=None, help="worker name (default: host-pid)"
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="SECONDS",
        help="sleep between empty lease polls",
    )
    worker.add_argument(
        "--lease-limit", type=int, default=None, metavar="N",
        help="cells per lease (default: --jobs)",
    )
    worker.add_argument(
        "--max-idle", type=float, default=None, metavar="SECONDS",
        help="exit after this long without work (default: wait forever)",
    )
    worker.add_argument(
        "--scene-store", metavar="DIR",
        default=os.environ.get("OOVR_SCENE_STORE"),
        help="persistent compiled-scene store for leased cells — a "
        "fleet sharing one directory compiles each workload point "
        "once (default: $OOVR_SCENE_STORE)",
    )
    worker.add_argument(
        "--plan-store", metavar="DIR",
        default=os.environ.get("OOVR_PLAN_STORE"),
        help="persistent compiled work-plan store for leased cells — "
        "a fleet sharing one directory characterises each (workload, "
        "cost config) point once (default: $OOVR_PLAN_STORE)",
    )
    worker.set_defaults(func=_cmd_worker)

    energy = sub.add_parser("energy", help="Section 6.2 energy accounting")
    energy.add_argument("workload")
    energy.add_argument("--fast", action="store_true")
    energy.add_argument(
        "--nodes", action="store_true",
        help="price links at 250 pJ/bit (cross-node) instead of 10 (board)",
    )
    energy.set_defaults(func=_cmd_energy)

    render = sub.add_parser(
        "render", help="render a real stereo frame (Fig. 5) to PPM/PNG"
    )
    render.add_argument("out", help="output directory")
    render.add_argument("--size", type=int, default=320, help="pixels per eye")
    render.set_defaults(func=_cmd_render)

    lst = sub.add_parser("list", help="list frameworks/workloads/figures")
    lst.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (SessionError, SpecError, ExecutorError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except CacheMergeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
