"""The framework interface shared by all parallel rendering schemes.

A framework turns a :class:`~repro.scene.scene.Scene` into a
:class:`~repro.stats.metrics.SceneResult` by deciding, per frame, how
draws become work units, which GPM runs each unit, where resources and
framebuffer pages live, and how the final frame is composed.  Everything
mechanical (NUMA resolution, timing, traffic accounting) is delegated to
:class:`~repro.gpu.system.MultiGPUSystem`.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import SystemConfig, baseline_system
from repro.gpu.system import MultiGPUSystem
from repro.memory.placement import PlacementPolicy
from repro.pipeline.characterize import DrawCharacterizer
from repro.scene.scene import Frame, Scene
from repro.stats.metrics import FrameResult, SceneResult


class RenderingFramework(abc.ABC):
    """Base class for parallel rendering schemes."""

    #: Stable identifier used in results and experiment tables.
    name: str = "abstract"
    #: Page placement policy the framework's memory image starts from.
    placement_policy: PlacementPolicy = PlacementPolicy.FIRST_TOUCH

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        self.config = config or baseline_system()
        self.characterizer = DrawCharacterizer(self.config)
        #: The machine of the most recent :meth:`render_scene` /
        #: :meth:`render_frame` call (trace inspection, diagnostics).
        self.last_system: Optional[MultiGPUSystem] = None

    # -- system construction ------------------------------------------------

    def make_system(self) -> MultiGPUSystem:
        """A fresh machine with this framework's placement policy."""
        return MultiGPUSystem(self.config, self.placement_policy)

    # -- per-frame behaviour (framework-specific) -----------------------------

    @abc.abstractmethod
    def render_frame_on(
        self, system: MultiGPUSystem, frame: Frame, workload: str
    ) -> FrameResult:
        """Render one frame on ``system`` (already ``begin_frame``-ed)."""

    # -- scene orchestration ---------------------------------------------------

    def frame_interval_cycles(
        self, frame_results: Sequence[FrameResult]
    ) -> float:
        """Steady-state cycles between frame completions.

        Default: frames render back to back on the whole machine, so the
        interval is the mean steady-state single-frame latency.  AFR
        overrides this with its pipelined schedule.
        """
        if not frame_results:
            raise ValueError("scene has no frames")
        steady = frame_results[1:] if len(frame_results) > 1 else frame_results
        return sum(f.cycles for f in steady) / len(steady)

    def render_scene(self, scene: Scene) -> SceneResult:
        """Render every frame of ``scene`` on one persistent machine.

        Page placement persists across frames (assets stay where the
        first frame placed them), matching steady-state hardware
        behaviour; caches and counters reset per frame.  An empty scene
        is rejected up front — there is nothing to render, and every
        downstream metric divides by the frame count.
        """
        if len(scene) == 0:
            raise ValueError("scene has no frames")
        system = self.make_system()
        self.last_system = system
        results: List[FrameResult] = []
        for frame in scene:
            system.begin_frame(keep_placement=True)
            results.append(self.render_frame_on(system, frame, scene.name))
        return SceneResult(
            framework=self.name,
            workload=scene.name,
            frames=results,
            frame_interval_cycles=self.frame_interval_cycles(results),
        )

    def render_frame(self, frame: Frame, workload: str = "adhoc") -> FrameResult:
        """Convenience: render a single frame on a fresh machine."""
        system = self.make_system()
        self.last_system = system
        system.begin_frame()
        return self.render_frame_on(system, frame, workload)

    def warm_plan(self, frame: Frame) -> None:
        """Compile ``frame``'s work plan without rendering anything.

        The ``oovr plan warm`` hook: runs exactly the characterisation
        this framework's render path would, so an active compiled-plan
        store (:mod:`repro.plan.store`) is populated by the same code
        that consumes it.  The default covers the per-eye-sequential
        schemes (baseline, AFR, object-level SFR); frameworks with a
        different front end override it, and schemes that only price
        per-draw (tile-level SFR) make it a no-op.
        """
        from repro.pipeline.smp import SMPMode

        self.characterizer.characterize_frame(
            frame, mode=SMPMode.SEQUENTIAL, expansion="stereo"
        )


#: Registry of framework constructors, keyed by the names the paper uses.
_REGISTRY: Dict[str, Callable[[Optional[SystemConfig]], RenderingFramework]] = {}


def register_framework(
    name: str,
) -> Callable[[type], type]:
    """Class decorator adding a framework to the registry.

    Re-decorating the same class is an idempotent no-op (modules may be
    re-executed under some import schemes); registering a *different*
    class under a taken name is rejected.
    """

    def decorate(cls: type) -> type:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"framework name {name!r} already registered by "
                f"{existing.__module__}.{existing.__qualname__}"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def _ensure_registered() -> None:
    """Import every framework implementation exactly once.

    The registry is populated by ``@register_framework`` decorators at
    import time; pulling the implementation modules in here makes the
    registry complete regardless of which module the caller imported
    first.
    """
    from repro.frameworks import afr, object_sfr, single, tile_sfr  # noqa: F401
    from repro.core import oovr  # noqa: F401
    from repro.extensions import migration  # noqa: F401


def build_framework(
    name: str, config: Optional[SystemConfig] = None
) -> RenderingFramework:
    """Instantiate a registered framework by name.

    Known names: ``baseline``, ``1tbs-bw``, ``afr``, ``tile-v``,
    ``tile-h``, ``object``, ``oo-app``, ``oo-vr``.  Names containing
    ``:`` resolve through the parameterised variant grammar
    (:mod:`repro.frameworks.variants`), e.g. ``oo-vr:no-dhc`` or
    ``baseline:topo=ring``.
    """
    _ensure_registered()
    if name in _REGISTRY:
        return _REGISTRY[name](config)
    from repro.frameworks import variants

    if variants.is_variant_name(name):
        return variants.build_variant(name, config)
    raise KeyError(f"unknown framework {name!r}; have {sorted(_REGISTRY)}")


def validate_framework_name(name: str) -> None:
    """Raise :class:`KeyError` unless ``name`` would build.

    Accepts registered names and parameterised variants without
    constructing anything — the cheap check
    :meth:`RunSpec.validate <repro.session.spec.RunSpec.validate>`
    runs per grid cell.
    """
    _ensure_registered()
    if name in _REGISTRY:
        return
    from repro.frameworks import variants

    if variants.is_variant_name(name):
        variants.validate_variant(name)
        return
    raise KeyError(f"unknown framework {name!r}; have {sorted(_REGISTRY)}")


def framework_names() -> List[str]:
    """All registered framework names (after importing implementations).

    Parameterised variants (``oo-vr:no-dhc``, ``baseline:topo=ring``,
    ...) are intentionally not enumerated here — the grammar is open.
    """
    _ensure_registered()
    return sorted(_REGISTRY)
