"""Object-level Split Frame Rendering / sort-last (Section 4.3).

Objects are the distribution unit: a root node issues whole draws to
worker GPMs in round-robin order, one object per GPM at a time, and each
worker renders into a private local colour/depth buffer.  When all
objects finish, every worker ships its output to the root, whose ROPs
alone composite the final frame (Fig. 6d).

What the paper measures on this scheme:

- ~40 % less inter-GPM traffic than the baseline, because each object's
  vertex buffer and first-touched textures live where it renders;
- but the left/right views of an object are *separate draws* landing on
  different GPMs, so the multi-view texture redundancy is still paid
  over the links, and textures shared between objects follow the first
  toucher;
- round-robin distribution of heterogeneous objects leaves the GPMs
  badly imbalanced (Fig. 10's best-to-worst ratios), and master-node
  composition serialises on one GPM's ROPs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import SystemConfig
from repro.frameworks.base import RenderingFramework, register_framework
from repro.gpu.composition import compose_master
from repro.gpu.staging import StagingManager
from repro.gpu.system import MultiGPUSystem
from repro.memory.placement import PlacementPolicy
from repro.pipeline.smp import SMPMode
from repro.scene.scene import Frame
from repro.stats.metrics import FrameResult


@register_framework("object")
class ObjectLevelSFR(RenderingFramework):
    """Sort-last object distribution with master composition."""

    placement_policy = PlacementPolicy.FIRST_TOUCH
    #: GPM that distributes work and composites the final frame.
    root: int = 0

    def render_frame_on(
        self, system: MultiGPUSystem, frame: Frame, workload: str
    ) -> FrameResult:
        num_gpms = system.num_gpms
        rendered_pixels = [0.0] * num_gpms
        # "Distributes the rendering object along with its required
        # data per GPM": the object's working set is staged into the
        # renderer's DRAM before the draw runs.
        staging = StagingManager(
            system,
            factor=self.config.cost.object_stage_factor,
            parallelism=self.config.cost.stage_parallelism,
        )
        staging.begin_frame()
        next_gpm = 0
        assigned_gpm_of_object: Dict[int, int] = {}
        units = self.characterizer.characterize_frame(
            frame, mode=SMPMode.SEQUENTIAL, expansion="stereo"
        )
        for draw, unit in zip(frame.stereo_draws(), units):
            # Profiling pass assigns draws round-robin in programmer
            # order; objects with dependencies follow their parent so
            # the programmer-defined order holds on one GPM.
            parent = draw.obj.depends_on
            if parent is not None and parent in assigned_gpm_of_object:
                gpm = assigned_gpm_of_object[parent]
            else:
                gpm = next_gpm
                next_gpm = (next_gpm + 1) % num_gpms
            assigned_gpm_of_object[draw.obj.object_id] = gpm
            staging.stage_unit(unit, gpm)
            system.execute_unit(
                unit, gpm, fb_targets={gpm: 1.0}, command_source=self.root
            )
            rendered_pixels[gpm] += unit.pixels_out
        # The master-node assembly is handed to the execution engine as
        # a composition schedule; its barrier price lands on the
        # frame's composition phase, not on any GPM's render clock.
        compose_master(system, rendered_pixels, root=self.root)
        return system.frame_result(self.name, workload)
