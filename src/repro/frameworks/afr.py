"""Alternate Frame Rendering (frame-level parallelism, Section 4.1).

Each frame renders entirely on one GPM, frames round-robin across GPMs
(Fig. 6a).  To make the concurrent frames independent, the scheme
reserves a segmented memory space per GPM and **replicates** every
resource a frame needs into its GPM's segment — AFR "near-linearly
increases the memory bandwidth and capacity requirement".

Consequences the experiments measure:

- inter-GPM traffic collapses to (almost) nothing — Fig. 16's
  "near-zero inter-GPM traffic" note;
- overall frame rate improves because frames pipeline across GPMs,
  bounded by the serial driver work per frame (Amdahl);
- single-frame latency *degrades*: one frame only ever uses one GPM's
  compute — Fig. 7's +59 % latency and Fig. 15's sub-1x bar.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.frameworks.base import RenderingFramework, register_framework
from repro.gpu.system import MultiGPUSystem
from repro.memory.placement import PlacementPolicy
from repro.pipeline.smp import SMPMode
from repro.scene.scene import Frame
from repro.stats.metrics import FrameResult


@register_framework("afr")
class AlternateFrameRendering(RenderingFramework):
    """Frame-level parallel rendering."""

    placement_policy = PlacementPolicy.FIRST_TOUCH

    def _frame_gpm(self, frame: Frame) -> int:
        return frame.frame_id % self.config.num_gpms

    def render_frame_on(
        self, system: MultiGPUSystem, frame: Frame, workload: str
    ) -> FrameResult:
        gpm = self._frame_gpm(frame)
        units = self.characterizer.characterize_frame(
            frame, mode=SMPMode.SEQUENTIAL, expansion="stereo"
        )
        for unit in units:
            # Segmented memory: replicate this frame's resources into the
            # rendering GPM's segment so every access is local.
            for touch in unit.texture_touches + unit.vertex_touches:
                system.placement.replicate(touch.resource, [gpm])
            system.execute_unit(unit, gpm, fb_targets={gpm: 1.0}, command_source=gpm)
        # One GPM owns the whole frame: no staging flows, no
        # composition schedule — the engine's other phases stay empty.
        return system.frame_result(self.name, workload)

    def frame_interval_cycles(
        self, frame_results: Sequence[FrameResult]
    ) -> float:
        """Pipelined completion interval across GPMs.

        With ``G`` frames in flight the interval would be latency/G,
        but the driver serialises a fraction ``s`` of each frame's work
        (command generation, app logic), so effective concurrency is
        the Amdahl bound ``1 / (s + (1-s)/G)``.
        """
        if not frame_results:
            raise ValueError("scene has no frames")
        steady = frame_results[1:] if len(frame_results) > 1 else frame_results
        latency = sum(f.cycles for f in steady) / len(steady)
        g = self.config.num_gpms
        s = self.config.cost.driver_serial_fraction
        concurrency = 1.0 / (s + (1.0 - s) / g)
        return latency / concurrency
