"""Parallel rendering frameworks (the paper's baselines, Section 4).

- :mod:`repro.frameworks.base` — the shared framework interface and
  scene-level orchestration;
- :mod:`repro.frameworks.single` — the naive single-programming-model
  baseline (the whole multi-GPU system pretends to be one GPU);
- :mod:`repro.frameworks.afr` — Alternate Frame Rendering (frame-level
  parallelism, Fig. 6a);
- :mod:`repro.frameworks.tile_sfr` — tile-level Split Frame Rendering
  with vertical or horizontal strips (Figs. 6b/6c);
- :mod:`repro.frameworks.object_sfr` — object-level SFR / sort-last
  with round-robin distribution and master composition (Fig. 6d).

The paper's contribution (OO_APP and the full OO-VR) lives in
:mod:`repro.core` and implements the same interface.
"""

from repro.frameworks.base import RenderingFramework, build_framework, framework_names
from repro.frameworks.single import BandwidthScaledBaseline, SingleKernelBaseline
from repro.frameworks.afr import AlternateFrameRendering
from repro.frameworks.tile_sfr import TileSplitFrameRendering, TileOrientation
from repro.frameworks.object_sfr import ObjectLevelSFR

__all__ = [
    "RenderingFramework",
    "build_framework",
    "framework_names",
    "SingleKernelBaseline",
    "BandwidthScaledBaseline",
    "AlternateFrameRendering",
    "TileSplitFrameRendering",
    "TileOrientation",
    "ObjectLevelSFR",
]
