"""Parameterised framework variants: ``"<base>:<modifier>[:...]"``.

The registry (:mod:`repro.frameworks.base`) holds the paper's concrete
design points.  The extension studies need *parameterised* points —
OO-VR with one mechanism ablated, a middleware knob moved off the
paper's setting, a scheme on a cheaper link fabric, a scheme fed
foveated scenes.  Spelling those as structured names keeps every study
a declarative :class:`~repro.session.Sweep` grid: a
:class:`~repro.session.spec.RunSpec` stays a frozen picklable string
tuple, workers rebuild the variant from the name, and the result cache
keys it like any other framework.

Grammar — a base name followed by ``:``-separated modifiers:

=====================  ====================================================
``oo-vr:no-dhc``       OO-VR with one mechanism disabled (any key of
                       :data:`~repro.core.ablation.ABLATION_VARIANTS`)
``oo-vr:tsl=0.3``      middleware TSL threshold moved off the paper's 0.5
``oo-vr:cap=8192``     middleware triangle cap moved off the paper's 4096
``<base>:topo=ring``   run on a routed fabric (``fully-connected`` /
                       ``ring`` / ``switch``), any registered base
``<base>:fov``         render foveated scenes (default three-ring profile),
                       any registered base
``<base>:engine=...``  price frames with a different execution engine
                       (``analytic`` / ``event``, see :mod:`repro.engine`),
                       any registered base
=====================  ====================================================

Constructor modifiers (ablation / ``tsl`` / ``cap``) build the OO-VR
instance and may not be combined with an ablation key; wrapper
modifiers (``topo`` / ``fov``) stack on any base, including one already
shaped by a constructor modifier.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig

#: Modifier spellings handled by :func:`_classify`.
_TSL_PREFIX = "tsl="
_CAP_PREFIX = "cap="
_TOPO_PREFIX = "topo="
_ENGINE_PREFIX = "engine="
_FOV = "fov"


def is_variant_name(name: str) -> bool:
    """Whether ``name`` uses the variant grammar at all."""
    return ":" in name


def engine_modifier(name: str) -> Optional[str]:
    """The engine an ``engine=`` modifier in ``name`` selects, if any.

    Mirrors :func:`build_variant`'s application order (the last
    ``engine=`` modifier wins) without validating the rest of the
    grammar — the cheap check :attr:`RunSpec.effective_engine
    <repro.session.spec.RunSpec.effective_engine>` runs per record.
    """
    chosen: Optional[str] = None
    for modifier in name.split(":")[1:]:
        if modifier.startswith(_ENGINE_PREFIX):
            chosen = modifier[len(_ENGINE_PREFIX):]
    return chosen


def _split(name: str) -> Tuple[str, List[str]]:
    base, *modifiers = name.split(":")
    return base, modifiers


def _topology(value: str):
    from repro.extensions.topology import Topology

    try:
        return Topology(value)
    except ValueError:
        raise KeyError(
            f"unknown topology {value!r}; have "
            f"{[t.value for t in Topology]}"
        ) from None


def _parse(name: str) -> Dict[str, object]:
    """Validate the grammar and return the parsed modifier plan.

    Raises :class:`KeyError` with an actionable message on any problem;
    does not construct frameworks (cheap enough for spec validation).
    """
    from repro.core.ablation import ABLATION_VARIANTS
    from repro.frameworks.base import framework_names

    base, modifiers = _split(name)
    if not modifiers or not all(modifiers):
        raise KeyError(f"malformed framework variant {name!r}")
    plan: Dict[str, object] = {
        "base": base,
        "features": None,
        "middleware": {},
        "topology": None,
        "foveate": False,
        "engine": None,
    }
    for modifier in modifiers:
        if modifier in ABLATION_VARIANTS:
            if base != "oo-vr":
                raise KeyError(
                    f"ablation variant {modifier!r} applies to 'oo-vr', "
                    f"not {base!r}"
                )
            if plan["features"] is not None or plan["middleware"]:
                raise KeyError(
                    f"variant {name!r} combines incompatible constructor "
                    "modifiers"
                )
            plan["features"] = ABLATION_VARIANTS[modifier]
        elif modifier.startswith((_TSL_PREFIX, _CAP_PREFIX)):
            if base != "oo-vr":
                raise KeyError(
                    f"middleware modifier {modifier!r} applies to 'oo-vr', "
                    f"not {base!r}"
                )
            if plan["features"] is not None:
                raise KeyError(
                    f"variant {name!r} combines incompatible constructor "
                    "modifiers"
                )
            key, _, raw = modifier.partition("=")
            try:
                if key == "tsl":
                    plan["middleware"]["tsl_threshold"] = float(raw)
                else:
                    plan["middleware"]["triangle_limit"] = int(raw)
            except ValueError:
                raise KeyError(
                    f"malformed {key} value {raw!r} in variant {name!r}"
                ) from None
        elif modifier.startswith(_TOPO_PREFIX):
            plan["topology"] = _topology(modifier[len(_TOPO_PREFIX):])
        elif modifier.startswith(_ENGINE_PREFIX):
            from repro.engine import EngineError, validate_engine_name

            engine = modifier[len(_ENGINE_PREFIX):]
            try:
                validate_engine_name(engine)
            except EngineError as error:
                raise KeyError(str(error)) from None
            plan["engine"] = engine
        elif modifier == _FOV:
            plan["foveate"] = True
        else:
            raise KeyError(
                f"unknown framework variant modifier {modifier!r} in "
                f"{name!r}"
            )
    known = framework_names()
    if base not in known:
        raise KeyError(f"unknown framework {base!r}; have {known}")
    return plan


def validate_variant(name: str) -> None:
    """Raise :class:`KeyError` unless ``name`` is a buildable variant."""
    _parse(name)


def build_variant(name: str, config: Optional[SystemConfig] = None):
    """Instantiate the variant ``name`` describes.

    The returned framework's ``name`` is the full variant string, so
    :class:`~repro.stats.metrics.SceneResult` rows and tidy records
    agree with the spec that produced them.
    """
    from repro.frameworks.base import build_framework

    plan = _parse(name)
    if plan["features"] is not None:
        from repro.core.ablation import AblatedOOVR

        framework = AblatedOOVR(config, plan["features"])
    elif plan["middleware"]:
        from repro.core.middleware import OOMiddleware
        from repro.core.oovr import OOVRFramework

        framework = OOVRFramework(config)
        framework._builder._middleware = OOMiddleware(**plan["middleware"])
    else:
        framework = build_framework(plan["base"], config)

    if plan["topology"] is not None:
        from repro.extensions.topology import install_topology

        topology = plan["topology"]
        original_make = framework.make_system

        def make_system():
            system = original_make()
            install_topology(system, topology)
            return system

        framework.make_system = make_system  # type: ignore[method-assign]
    if plan["foveate"]:
        from repro.extensions.foveated import foveate_scene

        original_render = framework.render_scene
        framework.render_scene = (  # type: ignore[method-assign]
            lambda scene: original_render(foveate_scene(scene))
        )
    if plan["engine"] is not None:
        # ``make_system`` reads ``framework.config`` at call time, so a
        # re-engined copy reaches every system the framework builds.
        framework.config = framework.config.with_engine(plan["engine"])
    framework.name = name
    return framework
