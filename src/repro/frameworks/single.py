"""The naive single-programming-model baseline (Section 2.3).

The whole multi-GPU system pretends to be one big GPU: VR draws are
launched sequentially (left pass then right pass per object, no
cross-view merging) and the GigaThread engine spreads each draw's work
across *every* GPM with no locality awareness.  Pages are interleaved
across the four DRAM stacks (plus the MCM-GPU first-touch/remote-cache
optimisations the paper grants the baseline), so roughly ``(n-1)/n`` of
each GPM's accesses are remote — the bandwidth asymmetry between the
1 TB/s local DRAM and the 64 GB/s links makes those remote streams the
bottleneck (Fig. 4).

Two registered variants:

- ``baseline`` — Table 2's 64 GB/s links;
- ``1tbs-bw`` — identical but with 1 TB/s links (the "1TB/s-BW" design
  point of Fig. 15).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import SystemConfig, baseline_system
from repro.frameworks.base import RenderingFramework, register_framework
from repro.gpu.system import FramebufferTargets, MultiGPUSystem
from repro.memory.placement import PlacementPolicy
from repro.pipeline.smp import SMPMode
from repro.scene.scene import Frame
from repro.stats.metrics import FrameResult


#: The GPM holding application uploads under the single-GPU illusion.
UPLOAD_GPM = 0


@register_framework("baseline")
class SingleKernelBaseline(RenderingFramework):
    """The single-programming-model multi-GPU baseline."""

    placement_policy = PlacementPolicy.INTERLEAVED

    def _place_uploads(self, system: MultiGPUSystem, units) -> None:
        """Application uploads land on one GPM (Fig. 3's story).

        Under the single-GPU illusion the app's texture and vertex
        uploads stream through one copy engine into pages near it —
        "if the basic texture data used to describe the rabbit is
        stored in the local memory of GPM_0, other GPMs need to issue
        remote memory accesses".  The framebuffer stays interleaved
        (the placement policy) so ROP writes spread out.
        """
        for unit in units:
            for touch in unit.texture_touches + unit.vertex_touches:
                if not system.placement.is_placed(touch.resource):
                    system.placement.place_fixed(touch.resource, UPLOAD_GPM)

    def render_frame_on(
        self, system: MultiGPUSystem, frame: Frame, workload: str
    ) -> FrameResult:
        num_gpms = system.num_gpms
        cost = self.config.cost
        even_share = 1.0 / num_gpms
        fb_targets: FramebufferTargets = {
            gpm: even_share for gpm in range(num_gpms)
        }
        # One vectorized pass over the frame's SoA batch prices the
        # whole sequential-stereo draw stream (stereo_draws order).
        units = self.characterizer.characterize_frame(
            frame, mode=SMPMode.SEQUENTIAL, expansion="stereo"
        )
        self._place_uploads(system, units)
        for unit in units:
            if num_gpms == 1:
                system.execute_unit(unit, 0, fb_targets=fb_targets)
                continue
            for gpm in range(num_gpms):
                slice_unit = unit.with_screen_share(
                    pixel_share=even_share,
                    geometry_share=even_share,
                    unique_inflation=cost.interleave_unique_inflation,
                    label_suffix=f"gpm{gpm}",
                    stream_inflation=cost.interleave_stream_inflation,
                )
                system.execute_unit(
                    slice_unit, gpm, fb_targets=fb_targets, command_source=0
                )
        # No composition phase: ROPs write the interleaved framebuffer
        # directly during rendering, so no CompositionSchedule is
        # handed to the engine and the trace's composition lane is
        # empty.
        return system.frame_result(self.name, workload)


@register_framework("1tbs-bw")
class BandwidthScaledBaseline(SingleKernelBaseline):
    """The baseline with 1 TB/s inter-GPM links (Fig. 15's 1TB/s-BW).

    Everything else — scheduling, placement, draw stream — matches the
    ``baseline`` scheme; only the link bandwidth differs, isolating the
    NUMA penalty from the programming-model penalty.
    """

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        base = config or baseline_system()
        super().__init__(base.with_link_bandwidth(1000.0))
