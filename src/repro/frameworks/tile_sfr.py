"""Tile-level Split Frame Rendering (Section 4.2).

The stereo framebuffer is split into one strip per GPM and every GPM
renders whatever falls in its strip (sort-first).  Two orientations,
matching Figs. 6b and 6c:

- **Vertical (V)**: equal-width columns of the side-by-side stereo
  frame.  The left and right views of an object land on *different*
  GPMs, so SMP cannot merge them: every object renders as two full
  per-eye passes, and the shared texture data is re-staged per eye —
  "the large texture data have to be moved frequently across the GPMs".
- **Horizontal (H)**: full-width rows.  Each row spans both eyes, so
  SMP stays effective (geometry once per overlapping strip), but
  content is vertically skewed (grounds and walls are denser than
  skies), so the strips are badly load-balanced, and wide objects
  (the paper's bridge example) span many strips redundantly.

Both orientations pay the sort-first geometry broadcast: a strip that an
object overlaps must transform the *whole* object to discover its
pixels.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.frameworks.base import RenderingFramework, register_framework
from repro.gpu.system import MultiGPUSystem
from repro.gpu.staging import StagingManager
from repro.memory.placement import PlacementPolicy
from repro.pipeline.raster import StripShare, normalize_pixel_shares, strip_shares
from repro.pipeline.smp import SMPMode
from repro.pipeline.workunit import WorkUnit
from repro.scene.geometry import (
    Viewport,
    horizontal_strips,
    vertical_strips,
)
from repro.scene.objects import Eye, StereoDraw
from repro.scene.scene import Frame
from repro.stats.metrics import FrameResult


class TileOrientation(enum.Enum):
    """Strip orientation of the tile-level SFR."""

    VERTICAL = "vertical"
    HORIZONTAL = "horizontal"


class TileSplitFrameRendering(RenderingFramework):
    """Sort-first tile-level SFR over the stereo framebuffer."""

    placement_policy = PlacementPolicy.FIRST_TOUCH
    orientation: TileOrientation = TileOrientation.VERTICAL

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        orientation: Optional[TileOrientation] = None,
    ) -> None:
        super().__init__(config)
        if orientation is not None:
            self.orientation = orientation

    # -- geometry of the decomposition ------------------------------------

    def strips(self, frame: Frame) -> List[Viewport]:
        """One strip per GPM over the side-by-side stereo frame."""
        stereo = frame.stereo_viewport
        if self.orientation is TileOrientation.VERTICAL:
            return vertical_strips(stereo, self.config.num_gpms)
        return horizontal_strips(stereo, self.config.num_gpms)

    @staticmethod
    def stereo_space_viewports(draw: StereoDraw, eye_width: int) -> Tuple[Viewport, ...]:
        """The draw's rectangles in stereo-frame coordinates.

        The right eye's image occupies ``[W, 2W)`` of the side-by-side
        frame, so right-view rectangles shift by the eye width.
        """
        out: List[Viewport] = []
        if draw.eye in (Eye.LEFT, Eye.BOTH) and draw.obj.viewport_left is not None:
            out.append(draw.obj.viewport_left)
        if draw.eye in (Eye.RIGHT, Eye.BOTH) and draw.obj.viewport_right is not None:
            out.append(draw.obj.viewport_right.shifted(float(eye_width)))
        return tuple(out)

    # -- rendering -----------------------------------------------------------

    def warm_plan(self, frame: Frame) -> None:
        """No-op: tile SFR prices per draw and keeps no frame plan."""

    def _draw_stream(self, frame: Frame) -> List[Tuple[StereoDraw, SMPMode]]:
        if self.orientation is TileOrientation.VERTICAL:
            # SMP cannot span strips: two sequential per-eye passes.
            return [(d, SMPMode.SEQUENTIAL) for d in frame.stereo_draws()]
        # Horizontal strips contain both eyes: SMP multi-view draws.
        return [(d, SMPMode.SIMULTANEOUS) for d in frame.multiview_draws()]

    def render_frame_on(
        self, system: MultiGPUSystem, frame: Frame, workload: str
    ) -> FrameResult:
        strips = self.strips(frame)
        cost = self.config.cost
        # Cluster-heritage SFR stages each strip's working set into its
        # GPM's memory segment every frame ("the large texture data
        # have to be moved frequently across the GPMs", Section 4.2);
        # strips re-copy borders and mip chains, hence the larger
        # staging factor.
        staging = StagingManager(
            system,
            factor=cost.tile_stage_factor,
            parallelism=cost.tile_stage_parallelism,
        )
        staging.begin_frame()
        for draw, mode in self._draw_stream(frame):
            unit = self.characterizer.characterize(draw, mode=mode)
            shares = normalize_pixel_shares(
                strip_shares(
                    self.stereo_space_viewports(draw, frame.width), strips
                )
            )
            if not shares:
                continue
            for share in shares:
                if share.pixel_share <= 0.0:
                    # Geometry-only discovery work: the strip transforms
                    # the object and finds no pixels.
                    slice_unit = unit.with_screen_share(
                        pixel_share=1e-9,
                        geometry_share=share.geometry_share,
                        unique_inflation=1.0,
                        label_suffix=f"strip{share.strip_index}",
                    )
                else:
                    slice_unit = unit.with_screen_share(
                        pixel_share=min(1.0, share.pixel_share),
                        geometry_share=share.geometry_share,
                        unique_inflation=cost.tile_unique_inflation,
                        label_suffix=f"strip{share.strip_index}",
                    )
                gpm = share.strip_index
                # Multi-view slices stage most of each eye's region
                # separately; caches, not the copies, share the rest.
                staging.stage_unit(
                    slice_unit, gpm,
                    factor_scale=1.0 + 0.6 * (slice_unit.views - 1),
                )
                # Strips own their framebuffer region: writes are local.
                system.execute_unit(
                    slice_unit, gpm, fb_targets={gpm: 1.0}, command_source=0
                )
        # Sort-first needs no composition pass (strips tile the frame),
        # so nothing is scheduled on the engine's composition phase;
        # the staging copies above were already priced by its
        # stage_flow (a stall here, since tile-SFR has no PA units).
        return system.frame_result(self.name, workload)


@register_framework("tile-v")
class VerticalTileSFR(TileSplitFrameRendering):
    """Tile-level SFR (V): vertical pixel stripping (Fig. 6b)."""

    orientation = TileOrientation.VERTICAL


@register_framework("tile-h")
class HorizontalTileSFR(TileSplitFrameRendering):
    """Tile-level SFR (H): horizontal culling, SMP-compatible (Fig. 6c)."""

    orientation = TileOrientation.HORIZONTAL
