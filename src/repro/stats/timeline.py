"""ASCII dispatch timelines (per-GPM Gantt charts).

The distribution engine keeps an audit record per batch dispatch
(:class:`~repro.core.distribution.DispatchRecord`).  This module draws
those records as a per-GPM timeline so load balance — the thing
Figs. 10 and 15 are about — can be *seen*:

.. code-block:: text

    GPM0 |■■■■■■■□□□□□■■■■■■■■■■■·····|  71% busy
    GPM1 |■■■■■■■■■■■■■■■■■■■■■■■■■■■■|  99% busy

``■`` cells are calibration/prediction batches, ``□`` marks the batch
currently rendering when the cell starts, ``·`` is idle tail.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.distribution import DispatchRecord

__all__ = ["dispatch_timeline"]


def dispatch_timeline(
    records: Sequence[DispatchRecord],
    num_gpms: int,
    width: int = 60,
) -> str:
    """Render dispatch records as one timeline row per GPM.

    Batches are laid end to end per GPM in dispatch order (the engine
    dispatches in order, so cumulative actual cycles approximate each
    GPM's busy interval).  Calibration batches render as ``▒``,
    predicted batches as ``█``.
    """
    if num_gpms <= 0:
        raise ValueError("need at least one GPM")
    if width < 10:
        raise ValueError("width must be at least 10 columns")
    if not records:
        raise ValueError("no dispatch records to draw")

    ends: List[float] = [0.0] * num_gpms
    spans: List[List[tuple]] = [[] for _ in range(num_gpms)]
    for record in records:
        if not 0 <= record.gpm < num_gpms:
            raise ValueError(f"record names GPM {record.gpm} of {num_gpms}")
        start = ends[record.gpm]
        end = start + record.actual_cycles
        spans[record.gpm].append((start, end, record.calibration))
        ends[record.gpm] = end

    horizon = max(ends) or 1.0
    scale = width / horizon
    lines = []
    for gpm in range(num_gpms):
        cells = ["·"] * width
        for start, end, calibration in spans[gpm]:
            lo = int(start * scale)
            hi = max(lo + 1, int(end * scale))
            glyph = "▒" if calibration else "█"
            for cell in range(lo, min(hi, width)):
                cells[cell] = glyph
        busy = 100.0 * ends[gpm] / horizon
        lines.append(f"GPM{gpm} |{''.join(cells)}| {busy:3.0f}% busy")
    lines.append(
        f"{'':5} ▒ calibration batch   █ predicted batch   · idle"
    )
    return "\n".join(lines)
