"""ASCII timelines (per-GPM Gantt charts).

Two renderers:

- :func:`trace_timeline` draws a real
  :class:`~repro.engine.trace.FrameTrace` — the intervals an execution
  engine actually produced, including the idle gaps and the
  contention-stretched spans the event engine simulates;
- :func:`dispatch_timeline` draws the distribution engine's audit
  records (:class:`~repro.core.distribution.DispatchRecord`), laying
  batches end to end in dispatch order — an approximation that predates
  real traces, still useful for eyeballing dispatch decisions.

Both make load balance — the thing Figs. 10 and 15 are about —
*visible*:

.. code-block:: text

    GPM0 |■■■■■■■□□□□□■■■■■■■■■■■·····|  71% busy
    GPM1 |■■■■■■■■■■■■■■■■■■■■■■■■■■■■|  99% busy
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from repro.core.distribution import DispatchRecord

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.engine.trace import FrameTrace

__all__ = ["dispatch_timeline", "trace_timeline"]

#: Glyph per trace-interval kind: render unit / staging stall / steal
#: slice / composition barrier (main lane) and background staging
#: copies (the per-GPM ``dma`` lane).
_KIND_GLYPHS = {
    "render": "█",
    "stall": "▒",
    "steal": "◆",
    "compose": "▣",
    "stage": "═",
}


def _paint(cells, start: float, end: float, scale: float, glyph: str) -> None:
    lo = int(start * scale)
    hi = max(lo + 1, int(end * scale))
    for cell in range(lo, min(hi, len(cells))):
        cells[cell] = glyph


def trace_timeline(trace: "FrameTrace", width: int = 60) -> str:
    """Render a :class:`~repro.engine.trace.FrameTrace` as GPM rows.

    Every interval lands where the engine timed it, so idle bubbles
    show up in place (unlike :func:`dispatch_timeline`'s end-to-end
    packing).  Each GPM gets its render lane (units, staging stalls,
    steal slices, then the composition barrier after the render ends);
    GPMs whose copy engines streamed background staging/PA flows get an
    extra ``dma`` lane underneath, since those copies overlap rendering
    rather than occupying the GPM.  Busy percentages are render-lane
    cycles over the render critical path; the horizon spans the whole
    frame, composition included.
    """
    if width < 10:
        raise ValueError("width must be at least 10 columns")
    if not trace.intervals:
        raise ValueError("trace has no intervals to draw")
    horizon = trace.frame_cycles or 1.0
    scale = width / horizon
    lines = []
    kinds_present = set()
    for gpm in range(trace.num_gpms):
        cells = ["·"] * width
        dma_cells = ["·"] * width
        has_dma = False
        for span in trace.intervals_for(gpm):
            kinds_present.add(span.kind)
            glyph = _KIND_GLYPHS.get(span.kind, "█")
            if span.kind == "stage":
                _paint(dma_cells, span.start, span.end, scale, glyph)
                has_dma = True
            else:
                _paint(cells, span.start, span.end, scale, glyph)
        busy = 100.0 * trace.utilisation(gpm)
        lines.append(f"GPM{gpm} |{''.join(cells)}| {busy:3.0f}% busy")
        if has_dma:
            lines.append(f"dma{gpm} |{''.join(dma_cells)}|")
    legend = ["█ render", "▒ staging stall"]
    if "stage" in kinds_present:
        legend.append("═ staging copy")
    legend.append("◆ stolen slice")
    if "compose" in kinds_present:
        legend.append("▣ compose")
    legend.append("· idle")
    lines.append(
        f"{'':5} " + "   ".join(legend) + f"   ({trace.engine} engine)"
    )
    return "\n".join(lines)


def dispatch_timeline(
    records: Sequence[DispatchRecord],
    num_gpms: int,
    width: int = 60,
) -> str:
    """Render dispatch records as one timeline row per GPM.

    Batches are laid end to end per GPM in dispatch order (the engine
    dispatches in order, so cumulative actual cycles approximate each
    GPM's busy interval).  Calibration batches render as ``▒``,
    predicted batches as ``█``.
    """
    if num_gpms <= 0:
        raise ValueError("need at least one GPM")
    if width < 10:
        raise ValueError("width must be at least 10 columns")
    if not records:
        raise ValueError("no dispatch records to draw")

    ends: List[float] = [0.0] * num_gpms
    spans: List[List[tuple]] = [[] for _ in range(num_gpms)]
    for record in records:
        if not 0 <= record.gpm < num_gpms:
            raise ValueError(f"record names GPM {record.gpm} of {num_gpms}")
        start = ends[record.gpm]
        end = start + record.actual_cycles
        spans[record.gpm].append((start, end, record.calibration))
        ends[record.gpm] = end

    horizon = max(ends) or 1.0
    scale = width / horizon
    lines = []
    for gpm in range(num_gpms):
        cells = ["·"] * width
        for start, end, calibration in spans[gpm]:
            lo = int(start * scale)
            hi = max(lo + 1, int(end * scale))
            glyph = "▒" if calibration else "█"
            for cell in range(lo, min(hi, width)):
                cells[cell] = glyph
        busy = 100.0 * ends[gpm] / horizon
        lines.append(f"GPM{gpm} |{''.join(cells)}| {busy:3.0f}% busy")
    lines.append(
        f"{'':5} ▒ calibration batch   █ predicted batch   · idle"
    )
    return "\n".join(lines)
