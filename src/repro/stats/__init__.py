"""Metrics, results, and reporting."""

from repro.stats.metrics import (
    FrameResult,
    SceneResult,
    TrafficBreakdown,
    UnitExecution,
    geomean,
    normalize,
)
from repro.stats.reporting import format_table, series_table

__all__ = [
    "FrameResult",
    "SceneResult",
    "TrafficBreakdown",
    "UnitExecution",
    "geomean",
    "normalize",
    "format_table",
    "series_table",
]
