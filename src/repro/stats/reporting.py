"""Plain-text tables for experiment output.

The benchmark harness prints each figure as an aligned text table (the
same rows/series the paper plots); these helpers keep the formatting in
one place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned monospace table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def series_table(
    series: Mapping[str, Mapping[str, float]],
    row_order: Sequence[str],
    title: str | None = None,
    row_header: str = "workload",
    float_format: str = "{:.3f}",
) -> str:
    """A table with one row per workload and one column per series.

    ``series`` maps column name -> {row name -> value}; missing cells
    render as ``-``.
    """
    headers = [row_header, *series.keys()]
    rows: List[List[object]] = []
    for row_name in row_order:
        row: List[object] = [row_name]
        for column in series.values():
            value = column.get(row_name)
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)
