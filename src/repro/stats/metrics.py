"""Result records for frames, scenes, and work units.

Everything the figures need is collected here: cycles (single-frame
latency and scene throughput), per-GPM busy times (load balance,
Fig. 10), and inter-GPM byte counts by traffic type (Figs. 9 and 16).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.memory.link import TrafficType


@dataclass(frozen=True)
class UnitExecution:
    """Outcome of one work unit on one GPM.

    ``bottleneck`` names the resource that bounded the unit, with a
    deterministic precedence on exact ties (see
    :func:`repro.engine.base.classify_bottleneck`):

    1. ``"link"`` when the unit time equals the link time and the links
       are slower than compute — equal DRAM/link cycles resolve to
       ``"link"``, the scarcer resource;
    2. ``"dram"`` when the unit time equals the local DRAM time and
       DRAM is slower than compute;
    3. otherwise the slowest *compute* stage (``"vertex"``, ``"setup"``,
       ``"raster"``, ``"fragment"``, ``"texture"`` or ``"rop"``) —
       including when memory time exactly ties compute time.
    """

    gpm: int
    compute_cycles: float
    local_dram_cycles: float
    link_cycles: float
    cycles: float
    remote_bytes: float
    bottleneck: str

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("negative execution time")


@dataclass(frozen=True)
class TrafficBreakdown:
    """Inter-GPM bytes by traffic type for one frame."""

    by_type: Mapping[TrafficType, float]

    @property
    def total_bytes(self) -> float:
        return sum(self.by_type.values())

    def bytes_of(self, traffic: TrafficType) -> float:
        return self.by_type.get(traffic, 0.0)

    def merged_with(self, other: "TrafficBreakdown") -> "TrafficBreakdown":
        merged: Dict[TrafficType, float] = dict(self.by_type)
        for key, value in other.by_type.items():
            merged[key] = merged.get(key, 0.0) + value
        return TrafficBreakdown(merged)

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "TrafficBreakdown":
        """Inverse of the ``{type.value: bytes}`` serialisation."""
        return cls({TrafficType(key): value for key, value in data.items()})


@dataclass(frozen=True)
class FrameResult:
    """Timing and traffic of one rendered frame."""

    framework: str
    workload: str
    #: End-to-end single-frame latency in cycles (render + composition).
    cycles: float
    #: Render-phase busy cycles per GPM (before composition).
    gpm_busy_cycles: Sequence[float]
    #: Composition-phase critical path in cycles.
    composition_cycles: float
    traffic: TrafficBreakdown
    #: Local DRAM bytes actually moved, per GPM.
    dram_bytes: Sequence[float]
    #: Total memory footprint placed (replicas included).
    resident_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError("frame must take positive time")

    @property
    def inter_gpm_bytes(self) -> float:
        return self.traffic.total_bytes

    @property
    def busiest_gpm_cycles(self) -> float:
        return max(self.gpm_busy_cycles) if self.gpm_busy_cycles else 0.0

    @property
    def load_balance_ratio(self) -> float:
        """Best-to-worst GPM ratio (Fig. 10): worst busy / best busy.

        GPMs with zero work are excluded (a GPM that never rendered is
        not a "best performer", it just never participated).
        """
        active = [c for c in self.gpm_busy_cycles if c > 0]
        if len(active) < 2:
            return 1.0
        return max(active) / min(active)

    def latency_ms(self, clock_hz: float = 1e9) -> float:
        return self.cycles / clock_hz * 1e3

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the frame (traffic keyed by type name).

        The single serialisation path shared by ``oovr run --json`` and
        :meth:`ResultSet.to_records <repro.session.result.ResultSet.to_records>`.
        """
        return {
            "framework": self.framework,
            "workload": self.workload,
            "cycles": self.cycles,
            "gpm_busy_cycles": list(self.gpm_busy_cycles),
            "composition_cycles": self.composition_cycles,
            "traffic": {t.value: b for t, b in self.traffic.by_type.items()},
            "dram_bytes": list(self.dram_bytes),
            "resident_bytes": self.resident_bytes,
            "inter_gpm_bytes": self.inter_gpm_bytes,
            "load_balance_ratio": self.load_balance_ratio,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FrameResult":
        """Inverse of :meth:`to_dict`.

        Only the primary fields are read; derived entries
        (``inter_gpm_bytes``, ``load_balance_ratio``) are recomputed,
        so a round trip is exact and tamper-evident.
        """
        return cls(
            framework=str(data["framework"]),
            workload=str(data["workload"]),
            cycles=data["cycles"],
            gpm_busy_cycles=list(data["gpm_busy_cycles"]),
            composition_cycles=data["composition_cycles"],
            traffic=TrafficBreakdown.from_dict(data["traffic"]),
            dram_bytes=list(data["dram_bytes"]),
            resident_bytes=data.get("resident_bytes", 0.0),
        )


@dataclass(frozen=True)
class SceneResult:
    """Multi-frame outcome: throughput vs. single-frame latency.

    ``frame_interval_cycles`` is the steady-state cycles between frame
    completions (for pipelined schemes like AFR it is smaller than the
    single-frame latency); overall performance (frame rate) is its
    inverse.
    """

    framework: str
    workload: str
    frames: Sequence[FrameResult]
    frame_interval_cycles: float

    def __post_init__(self) -> None:
        if not self.frames:
            raise ValueError("scene result needs at least one frame")
        if self.frame_interval_cycles <= 0:
            raise ValueError("frame interval must be positive")

    @property
    def steady_frames(self) -> Sequence[FrameResult]:
        """Frames past the cold start.

        Frame 0 pays first-touch placement, cold pre-allocation copies
        and empty caches; the paper's measurements are steady state
        ("we let all the workloads run to completion ... and gather the
        average frame latency"), so metrics skip it when possible.
        """
        return self.frames[1:] if len(self.frames) > 1 else self.frames

    @property
    def single_frame_cycles(self) -> float:
        """Steady-state single-frame latency."""
        frames = self.steady_frames
        return sum(f.cycles for f in frames) / len(frames)

    @property
    def throughput_fps(self) -> float:
        """Frames per second at the 1 GHz baseline clock."""
        return 1e9 / self.frame_interval_cycles

    @property
    def single_frame_render_cycles(self) -> float:
        """Steady-state pre-barrier latency (frame minus composition).

        Covers the render window — work units, staging stalls and (for
        the event engine) the time background PA/staging flows steal
        from render traffic; the phase-resolved engine-contention
        study compares this across engines.
        """
        frames = self.steady_frames
        return sum(f.cycles - f.composition_cycles for f in frames) / len(frames)

    @property
    def single_frame_composition_cycles(self) -> float:
        """Steady-state composition-barrier latency (0.0 when none)."""
        frames = self.steady_frames
        return sum(f.composition_cycles for f in frames) / len(frames)

    @property
    def traffic(self) -> TrafficBreakdown:
        out = TrafficBreakdown({})
        for frame in self.frames:
            out = out.merged_with(frame.traffic)
        return out

    @property
    def mean_inter_gpm_bytes_per_frame(self) -> float:
        """Steady-state inter-GPM traffic per frame."""
        frames = self.steady_frames
        return sum(f.inter_gpm_bytes for f in frames) / len(frames)

    @property
    def mean_load_balance_ratio(self) -> float:
        frames = self.steady_frames
        return sum(f.load_balance_ratio for f in frames) / len(frames)

    def to_dict(self, include_frames: bool = True) -> Dict[str, object]:
        """JSON-ready view of the scene outcome.

        Summary metrics always; per-frame detail (via
        :meth:`FrameResult.to_dict`) unless ``include_frames`` is off —
        result-set records only keep the summary.
        """
        out: Dict[str, object] = {
            "framework": self.framework,
            "workload": self.workload,
            "num_frames": len(self.frames),
            "frame_interval_cycles": self.frame_interval_cycles,
            "single_frame_cycles": self.single_frame_cycles,
            "throughput_fps": self.throughput_fps,
            "mean_inter_gpm_bytes_per_frame": self.mean_inter_gpm_bytes_per_frame,
            "mean_load_balance_ratio": self.mean_load_balance_ratio,
            "traffic": {t.value: b for t, b in self.traffic.by_type.items()},
        }
        if include_frames:
            out["frames"] = [frame.to_dict() for frame in self.frames]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SceneResult":
        """Inverse of :meth:`to_dict` (requires per-frame detail).

        Summary metrics (``single_frame_cycles`` etc.) are properties
        recomputed from the frames, so a serialised result re-reads to
        a value-identical :class:`SceneResult` — the round trip the
        :mod:`repro.session.cache` store relies on.
        """
        frames = data.get("frames")
        if not frames:
            raise ValueError(
                "SceneResult.from_dict needs per-frame detail; serialise "
                "with to_dict(include_frames=True)"
            )
        return cls(
            framework=str(data["framework"]),
            workload=str(data["workload"]),
            frames=[FrameResult.from_dict(frame) for frame in frames],
            frame_interval_cycles=data["frame_interval_cycles"],
        )


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; the conventional average for speedup series.

    Negative inputs are rejected outright (a geometric mean of mixed
    signs is meaningless); zeros are dropped, so zero-heavy series
    average their positive entries.  An all-zero (or empty) input
    raises — callers that want 0.0 for "no traffic anywhere" handle it
    explicitly (see :meth:`ResultSet.geomean_by
    <repro.session.result.ResultSet.geomean_by>`).
    """
    if any(v < 0 for v in values):
        raise ValueError("geomean needs non-negative values")
    vals = [v for v in values if v > 0]
    if not vals:
        raise ValueError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalize(
    values: Mapping[str, float], baseline_key: str
) -> Dict[str, float]:
    """Each entry divided by the baseline entry (paper-style bars)."""
    if baseline_key not in values:
        raise KeyError(f"baseline {baseline_key!r} missing from {sorted(values)}")
    base = values[baseline_key]
    if base == 0:
        raise ValueError("baseline value is zero")
    return {key: value / base for key, value in values.items()}
