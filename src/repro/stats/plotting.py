"""Terminal bar charts for figure results.

The paper's figures are grouped bar charts; this module renders the
same data as Unicode bar rows so `oovr fig <n>` output can be *read*
like the figure instead of only as a numeric table.  Pure string
formatting — no plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

__all__ = ["bar_chart", "grouped_bar_chart"]

#: Eighth-block characters for sub-cell bar resolution.
_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, scale: float, width: int) -> str:
    """A left-aligned bar of ``value`` at ``scale`` units per ``width``."""
    if value <= 0 or scale <= 0:
        return ""
    cells = value / scale * width
    full = int(cells)
    remainder = cells - full
    bar = "█" * min(full, width)
    if full < width:
        eighth = int(remainder * 8)
        if eighth:
            bar += _BLOCKS[eighth]
    return bar


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    reference: Optional[float] = None,
) -> str:
    """One bar per entry, labelled and annotated with its value.

    ``reference`` draws a marker column (e.g. the 1.0 normalisation
    line) so above/below-baseline reads at a glance.
    """
    if not values:
        raise ValueError("nothing to plot")
    if width < 8:
        raise ValueError("width must be at least 8 columns")
    peak = max(max(values.values()), reference or 0.0)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(k)) for k in values)
    lines = []
    if title:
        lines.append(title)
    marker_col = None
    if reference is not None and reference > 0:
        marker_col = int(reference / peak * width)
    for key, value in values.items():
        bar = _bar(value, peak, width)
        if marker_col is not None and marker_col < width:
            padded = bar.ljust(width)
            glyph = "┆" if len(bar) <= marker_col else "┼"
            padded = padded[:marker_col] + glyph + padded[marker_col + 1 :]
            bar = padded.rstrip()
        lines.append(f"{key:<{label_width}}  {bar} {value:.3g}")
    return "\n".join(lines)


def grouped_bar_chart(
    series: Mapping[str, Mapping[str, float]],
    row_order: Optional[Sequence[str]] = None,
    title: str = "",
    width: int = 36,
    reference: Optional[float] = 1.0,
) -> str:
    """Paper-style grouped bars: one group per row key, one bar per series.

    ``series`` maps series name -> {row: value} (the shape
    :class:`repro.experiments.figures.FigureResult` stores).
    """
    if not series:
        raise ValueError("nothing to plot")
    rows = list(row_order) if row_order else sorted(
        {row for values in series.values() for row in values}
    )
    peak = max(
        (values.get(row, 0.0) for values in series.values() for row in rows),
        default=1.0,
    )
    peak = max(peak, reference or 0.0) or 1.0
    name_width = max(len(name) for name in series)
    lines = []
    if title:
        lines.append(title)
    for row in rows:
        lines.append(f"{row}:")
        for name, values in series.items():
            if row not in values:
                continue
            value = values[row]
            lines.append(
                f"  {name:<{name_width}}  {_bar(value, peak, width)} {value:.3g}"
            )
    return "\n".join(lines)
