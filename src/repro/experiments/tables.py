"""Reproductions of the paper's tables and the Section 5.4 overheads."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config import SystemConfig, baseline_system
from repro.core.overhead import OverheadModel
from repro.experiments.runner import FULL, ExperimentConfig
from repro.scene.benchmarks import BENCHMARKS
from repro.scene.vr import requirements_table
from repro.session import Session
from repro.stats.reporting import format_table


def table1_requirements() -> str:
    """Table 1: PC gaming vs. stereo VR."""
    rows = requirements_table()
    return format_table(
        headers=("", "Gaming PC", "Stereo VR"),
        rows=rows,
        title="Table 1: differences between PC gaming and VR",
    )


def table2_configuration(config: SystemConfig | None = None) -> str:
    """Table 2: the baseline simulated configuration."""
    cfg = config or baseline_system()
    gpm = cfg.gpm
    rows: List[Tuple[str, str]] = [
        ("GPU frequency", f"{cfg.clock_hz / 1e9:.0f}GHz"),
        ("Number of GPMs", str(cfg.num_gpms)),
        (
            "Number of SMs",
            f"{cfg.total_sms}, {gpm.num_sms} per GPM",
        ),
        (
            "SM configuration",
            f"{gpm.sm.shader_cores} shader cores, "
            f"{gpm.sm.l1_bytes // 1024}KB unified L1, "
            f"{gpm.sm.texture_units} texture units",
        ),
        ("Raster engine", "16x16 tiled rasterization"),
        (
            "Number of ROPs",
            f"{cfg.total_rops}, {gpm.num_rops} per GPM "
            f"({gpm.rop_pixels_per_cycle} pixel/cycle each)",
        ),
        (
            "L2 cache",
            f"{cfg.total_l2_bytes // (1024 * 1024)}MB total, {gpm.l2_ways}-way",
        ),
        (
            "Inter-GPU interconnect",
            f"{cfg.link.bytes_per_cycle:.0f}GB/s NVLink uni-directional",
        ),
        (
            "Local DRAM bandwidth",
            f"{gpm.dram_bytes_per_cycle / 1000:.0f}TB/s",
        ),
    ]
    return format_table(
        headers=("parameter", "value"),
        rows=rows,
        title="Table 2: baseline configuration",
    )


def table3_benchmarks(experiment: ExperimentConfig = FULL) -> str:
    """Table 3: the benchmark suite, with measured scene statistics.

    The #Draw column reproduces the paper; the triangle/texture columns
    report what the synthetic generator actually produced, so the bench
    output doubles as a workload audit.
    """
    rows = []
    for abbr, spec in BENCHMARKS.items():
        scene = Session().preset(experiment).workload(abbr).scene()
        frame = scene.representative_frame
        resolutions = ", ".join(f"{w}x{h}" for w, h in spec.resolutions)
        rows.append(
            (
                abbr,
                spec.title,
                spec.library,
                resolutions,
                spec.num_draws,
                frame.total_triangles,
                f"{frame.texture_bytes / (1024 * 1024):.0f}MB",
                f"{frame.texture_sharing_ratio():.2f}x",
            )
        )
    return format_table(
        headers=(
            "abbr",
            "name",
            "library",
            "resolutions",
            "#draw",
            "triangles",
            "textures",
            "sharing",
        ),
        rows=rows,
        title="Table 3: benchmarks",
    )


def overhead_analysis(num_gpms: int = 4) -> str:
    """Section 5.4: distribution-engine storage/area/power."""
    model = OverheadModel(num_gpms=num_gpms)
    return model.report()
