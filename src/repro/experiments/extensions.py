"""Extension experiments beyond the paper's figures.

- :func:`oovr_ablation` — per-component contribution of OO-VR's
  hardware mechanisms (the paper reports only the aggregate);
- :func:`batching_sensitivity` — sweep of the middleware's TSL
  threshold and triangle cap (Section 5.1's fixed 0.5 / 4096 choices);
- :func:`energy_report` — link-traffic energy at the paper's quoted
  pJ/bit figures (Section 6.2's energy-saving argument).

Each experiment is one declarative :class:`~repro.session.Sweep` grid —
the ablated and parameter-shifted design points are spelled as
framework variants (:mod:`repro.frameworks.variants`), so every cell
is an ordinary :class:`~repro.session.spec.RunSpec` that fans out over
worker processes (``jobs``) and memoises through a
:class:`~repro.session.ResultCache` (``cache``) like any paper figure;
``executor``/``on_result`` forward to :meth:`Sweep.run
<repro.session.session.Sweep.run>` so the studies run on any
:mod:`repro.session.executor` backend (including a shard slice).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.ablation import ABLATION_VARIANTS
from repro.experiments.figures import FigureResult
from repro.experiments.runner import (
    FULL,
    ExperimentConfig,
    single_frame_speedups,
    with_average,
)
from repro.session import Sweep
from repro.session.cache import ResultCache

#: The middleware operating points swept by :func:`batching_sensitivity`
#: (the paper fixes TSL > 0.5 and a 4096-triangle cap).
BATCHING_TSL_THRESHOLDS = (0.1, 0.3, 0.5, 0.7, 0.9)
BATCHING_TRIANGLE_CAPS = (1024, 2048, 4096, 8192, 16384)


def oovr_ablation(
    experiment: ExperimentConfig = FULL,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor=None,
    on_result=None,
) -> FigureResult:
    """Speedup over baseline with each OO-VR mechanism disabled."""
    variants = list(ABLATION_VARIANTS)
    results = (
        Sweep()
        .preset(experiment)
        .frameworks("baseline", *(f"oo-vr:{key}" for key in variants))
        .run(jobs=jobs, cache=cache, executor=executor, on_result=on_result)
    )
    baseline = results.by_workload(framework="baseline")
    series: Dict[str, Mapping[str, float]] = {
        key: with_average(
            single_frame_speedups(
                results.by_workload(framework=f"oo-vr:{key}"), baseline
            )
        )
        for key in variants
    }
    return FigureResult(
        figure="Ablation A1",
        title="OO-VR speedup over baseline with components disabled",
        series=series,
        row_order=[*experiment.workloads, "Avg."],
    )


def batching_sensitivity(
    experiment: ExperimentConfig = FULL,
    workload: str = "HL2-1280",
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor=None,
    on_result=None,
) -> FigureResult:
    """Middleware parameter sweep: TSL threshold and triangle cap.

    The paper fixes TSL > 0.5 and a 4096-triangle cap; this sweep shows
    both sit on a plateau — smaller caps fragment batches (more
    overhead, less locality), larger caps recreate object-SFR's
    stragglers.
    """
    points = {
        f"tsl>{threshold}": f"oo-vr:tsl={threshold}"
        for threshold in BATCHING_TSL_THRESHOLDS
    }
    points.update(
        {f"cap={cap}": f"oo-vr:cap={cap}" for cap in BATCHING_TRIANGLE_CAPS}
    )
    results = (
        Sweep()
        .preset(experiment)
        .workloads(workload)
        .frameworks("baseline", *points.values())
        .run(jobs=jobs, cache=cache, executor=executor, on_result=on_result)
    )
    base = results.get(framework="baseline")
    series = {
        label: base.single_frame_cycles
        / results.get(framework=name).single_frame_cycles
        for label, name in points.items()
    }
    return FigureResult(
        figure="Ablation A2",
        title=f"OO-VR speedup vs. middleware parameters on {workload} "
        "(paper uses TSL>0.5, cap=4096)",
        series={"speedup": series},
        row_order=list(series),
    )


def energy_report(
    experiment: ExperimentConfig = FULL,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor=None,
    on_result=None,
) -> FigureResult:
    """Per-frame link energy under the paper's integration assumptions.

    Section 6.2: inter-GPM transfers cost ~10 pJ/bit on-board (250
    pJ/bit across nodes); traffic reduction is therefore direct energy
    saving.  Reports millijoules per frame for the three Fig. 16
    schemes at both integration points.
    """
    schemes = ("baseline", "object", "oo-vr")
    results = (
        Sweep()
        .preset(experiment)
        .frameworks(*schemes)
        .run(jobs=jobs, cache=cache, executor=executor, on_result=on_result)
    )
    bytes_per_frame = results.geomean_by(
        "mean_inter_gpm_bytes_per_frame", by="framework"
    )
    on_board: Dict[str, float] = {}
    off_board: Dict[str, float] = {}
    for scheme in schemes:
        bits = bytes_per_frame[scheme] * 8.0
        on_board[scheme] = bits * 10.0 * 1e-9  # pJ -> mJ
        off_board[scheme] = bits * 250.0 * 1e-9
    return FigureResult(
        figure="Extension E1",
        title="inter-GPM link energy per frame (mJ, geomean of workloads)",
        series={"10 pJ/bit (board)": on_board, "250 pJ/bit (nodes)": off_board},
        row_order=list(schemes),
    )
