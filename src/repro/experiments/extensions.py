"""Extension experiments beyond the paper's figures.

- :func:`oovr_ablation` — per-component contribution of OO-VR's
  hardware mechanisms (the paper reports only the aggregate);
- :func:`batching_sensitivity` — sweep of the middleware's TSL
  threshold and triangle cap (Section 5.1's fixed 0.5 / 4096 choices);
- :func:`energy_report` — link-traffic energy at the paper's quoted
  pJ/bit figures (Section 6.2's energy-saving argument).
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.config import baseline_system
from repro.core.ablation import ablation_suite
from repro.core.middleware import OOMiddleware
from repro.core.oovr import OOVRFramework
from repro.experiments.figures import FigureResult
from repro.experiments.runner import (
    FULL,
    ExperimentConfig,
    run_framework_suite,
    scene_for,
    single_frame_speedups,
    with_average,
)
from repro.stats.metrics import geomean


def oovr_ablation(experiment: ExperimentConfig = FULL) -> FigureResult:
    """Speedup over baseline with each OO-VR mechanism disabled."""
    baseline = run_framework_suite("baseline", experiment)
    series: Dict[str, Mapping[str, float]] = {}
    for key, framework_proto in ablation_suite().items():
        results = {}
        for workload in experiment.workloads:
            framework = type(framework_proto)(
                framework_proto.config, framework_proto.features
            )
            results[workload] = framework.render_scene(
                scene_for(workload, experiment)
            )
        series[key] = with_average(single_frame_speedups(results, baseline))
    return FigureResult(
        figure="Ablation A1",
        title="OO-VR speedup over baseline with components disabled",
        series=series,
        row_order=[*experiment.workloads, "Avg."],
    )


def batching_sensitivity(
    experiment: ExperimentConfig = FULL,
    workload: str = "HL2-1280",
) -> FigureResult:
    """Middleware parameter sweep: TSL threshold and triangle cap.

    The paper fixes TSL > 0.5 and a 4096-triangle cap; this sweep shows
    both sit on a plateau — smaller caps fragment batches (more
    overhead, less locality), larger caps recreate object-SFR's
    stragglers.
    """
    scene = scene_for(workload, experiment)
    base = run_framework_suite(
        "baseline",
        ExperimentConfig(
            draw_scale=experiment.draw_scale,
            num_frames=experiment.num_frames,
            seed=experiment.seed,
            workloads=(workload,),
        ),
    )[workload]

    thresholds = (0.1, 0.3, 0.5, 0.7, 0.9)
    caps = (1024, 2048, 4096, 8192, 16384)

    threshold_series: Dict[str, float] = {}
    for threshold in thresholds:
        framework = OOVRFramework()
        framework._builder._middleware = OOMiddleware(tsl_threshold=threshold)
        result = framework.render_scene(scene)
        threshold_series[f"tsl>{threshold}"] = (
            base.single_frame_cycles / result.single_frame_cycles
        )

    cap_series: Dict[str, float] = {}
    for cap in caps:
        framework = OOVRFramework()
        framework._builder._middleware = OOMiddleware(triangle_limit=cap)
        result = framework.render_scene(scene)
        cap_series[f"cap={cap}"] = (
            base.single_frame_cycles / result.single_frame_cycles
        )

    rows = [*threshold_series.keys(), *cap_series.keys()]
    merged = {**threshold_series, **cap_series}
    return FigureResult(
        figure="Ablation A2",
        title=f"OO-VR speedup vs. middleware parameters on {workload} "
        "(paper uses TSL>0.5, cap=4096)",
        series={"speedup": merged},
        row_order=rows,
    )


def energy_report(experiment: ExperimentConfig = FULL) -> FigureResult:
    """Per-frame link energy under the paper's integration assumptions.

    Section 6.2: inter-GPM transfers cost ~10 pJ/bit on-board (250
    pJ/bit across nodes); traffic reduction is therefore direct energy
    saving.  Reports millijoules per frame for the three Fig. 16
    schemes at both integration points.
    """
    config = baseline_system()
    schemes = ("baseline", "object", "oo-vr")
    on_board: Dict[str, float] = {}
    off_board: Dict[str, float] = {}
    for scheme in schemes:
        results = run_framework_suite(scheme, experiment)
        bytes_per_frame = geomean(
            [r.mean_inter_gpm_bytes_per_frame for r in results.values()]
        )
        bits = bytes_per_frame * 8.0
        on_board[scheme] = bits * 10.0 * 1e-9  # pJ -> mJ
        off_board[scheme] = bits * 250.0 * 1e-9
    return FigureResult(
        figure="Extension E1",
        title="inter-GPM link energy per frame (mJ, geomean of workloads)",
        series={"10 pJ/bit (board)": on_board, "250 pJ/bit (nodes)": off_board},
        row_order=list(schemes),
    )
