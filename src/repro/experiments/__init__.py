"""Experiment harness: one entry point per paper table/figure.

Everything here is a declarative grid on top of the Session/Sweep API
(:mod:`repro.session`): :mod:`repro.experiments.figures` implements
Figs. 4-18 as Sweeps plus formatting;
:mod:`repro.experiments.tables` implements Tables 1-3 and the Section
5.4 overhead analysis; :mod:`repro.experiments.runner` keeps the
backwards-compatible helpers (``run_framework_suite``, ``scene_for``)
and the figure arithmetic (speedups, ratios, geometric-mean rows).
``oovr`` (see :mod:`repro.cli`) prints any of them from the command
line; ``oovr sweep`` exposes raw grids.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    run_framework_suite,
    scene_for,
)
from repro.experiments import engines, figures, tables

__all__ = [
    "ExperimentConfig",
    "run_framework_suite",
    "scene_for",
    "engines",
    "figures",
    "tables",
]
