"""Experiment harness: one entry point per paper table/figure.

:mod:`repro.experiments.runner` provides the shared machinery (run a
framework over the workload suite, cache scene generation, normalise);
:mod:`repro.experiments.figures` implements Figs. 4-18;
:mod:`repro.experiments.tables` implements Tables 1-3 and the Section
5.4 overhead analysis.  ``oovr`` (see :mod:`repro.cli`) prints any of
them from the command line.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    run_framework_suite,
    scene_for,
)
from repro.experiments import figures, tables

__all__ = [
    "ExperimentConfig",
    "run_framework_suite",
    "scene_for",
    "figures",
    "tables",
]
