"""Reproductions of the paper's figures (Sections 2-6).

Every function returns a :class:`FigureResult`: named series over the
nine workload points (or a parameter sweep), plus the paper's reported
values where the text states them, so benches can print paper-vs-
measured side by side.  Nothing here re-tunes the model — all runs share
the Table 2 configuration (modulo the parameter being swept).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.config import baseline_system
from repro.experiments.runner import (
    FULL,
    ExperimentConfig,
    run_framework_suite,
    scene_for,
    single_frame_speedups,
    throughput_speedups,
    traffic_ratios,
    with_average,
)
from repro.frameworks.base import build_framework
from repro.stats.metrics import SceneResult, geomean
from repro.stats.reporting import series_table


@dataclass(frozen=True)
class FigureResult:
    """One reproduced figure: series keyed by design point."""

    figure: str
    title: str
    #: column -> {row -> value}
    series: Mapping[str, Mapping[str, float]]
    row_order: Sequence[str]
    #: The paper's headline numbers for the same quantity, if stated.
    paper_reference: Mapping[str, float] = field(default_factory=dict)

    def to_text(self) -> str:
        body = series_table(
            self.series, self.row_order, title=f"{self.figure}: {self.title}"
        )
        if not self.paper_reference:
            return body
        ref_lines = ["", "paper reference:"]
        for key, value in self.paper_reference.items():
            ref_lines.append(f"  {key}: {value:.3f}")
        return body + "\n" + "\n".join(ref_lines)

    def to_chart(self, width: int = 36) -> str:
        """The figure as a terminal bar chart (paper-style grouped bars).

        Averages-only when every series has an ``Avg.`` row (the usual
        per-workload figures collapse to their headline bars); full
        grouped chart otherwise.
        """
        from repro.stats.plotting import bar_chart, grouped_bar_chart

        title = f"{self.figure}: {self.title}"
        if all("Avg." in values for values in self.series.values()):
            avgs = {name: values["Avg."] for name, values in self.series.items()}
            return bar_chart(avgs, title=title, width=width, reference=1.0)
        return grouped_bar_chart(
            self.series, self.row_order, title=title, width=width
        )

    def average(self, column: str) -> float:
        values = self.series[column]
        if "Avg." in values:
            return values["Avg."]
        return geomean(list(values.values()))


def _rows(experiment: ExperimentConfig) -> List[str]:
    return [*experiment.workloads, "Avg."]


# ---------------------------------------------------------------------------
# Figure 4 — baseline sensitivity to inter-GPM link bandwidth
# ---------------------------------------------------------------------------

FIG4_BANDWIDTHS_GB = (1000.0, 256.0, 128.0, 64.0, 32.0)


def fig04_bandwidth_sensitivity(
    experiment: ExperimentConfig = FULL,
) -> FigureResult:
    """Normalised baseline performance as the links shrink (Fig. 4).

    Performance is single-frame rate, normalised to the 1 TB/s links;
    the paper reports average degradations of 22 % / 42 % / 65 % at
    128 / 64 / 32 GB/s.
    """
    per_bw: Dict[str, Dict[str, float]] = {}
    reference: Dict[str, SceneResult] = {}
    for bandwidth in FIG4_BANDWIDTHS_GB:
        config = baseline_system().with_link_bandwidth(bandwidth)
        results = run_framework_suite("baseline", experiment, config)
        if bandwidth == FIG4_BANDWIDTHS_GB[0]:
            reference = results
        label = "1TB/s" if bandwidth >= 1000 else f"{bandwidth:.0f}GB/s"
        per_bw[label] = with_average(
            single_frame_speedups(results, reference)
        )
    return FigureResult(
        figure="Figure 4",
        title="baseline performance vs. inter-GPM link bandwidth "
        "(normalised to 1TB/s links)",
        series=per_bw,
        row_order=_rows(experiment),
        paper_reference={
            "128GB/s avg": 0.78,
            "64GB/s avg": 0.58,
            "32GB/s avg": 0.35,
        },
    )


# ---------------------------------------------------------------------------
# Figure 7 — AFR throughput and single-frame latency
# ---------------------------------------------------------------------------


def fig07_afr(experiment: ExperimentConfig = FULL) -> FigureResult:
    """AFR vs. baseline: overall performance and frame latency (Fig. 7)."""
    baseline = run_framework_suite("baseline", experiment)
    afr = run_framework_suite("afr", experiment)
    overall = with_average(throughput_speedups(afr, baseline))
    latency = with_average(
        {
            w: afr[w].single_frame_cycles / baseline[w].single_frame_cycles
            for w in afr
        }
    )
    return FigureResult(
        figure="Figure 7",
        title="AFR normalised overall performance (left) and single-frame "
        "latency (right)",
        series={"overall perf": overall, "frame latency": latency},
        row_order=_rows(experiment),
        paper_reference={"overall perf avg": 1.67, "frame latency avg": 1.59},
    )


# ---------------------------------------------------------------------------
# Figures 8 and 9 — tile/object SFR performance and traffic
# ---------------------------------------------------------------------------

SFR_SCHEMES = ("tile-v", "tile-h", "object")
_SFR_LABELS = {
    "tile-v": "Tile-Level (V)",
    "tile-h": "Tile-Level (H)",
    "object": "Object-Level",
}


def fig08_sfr_performance(
    experiment: ExperimentConfig = FULL,
) -> FigureResult:
    """SFR schemes' frame-rate speedup over the baseline (Fig. 8)."""
    baseline = run_framework_suite("baseline", experiment)
    series = {}
    for scheme in SFR_SCHEMES:
        results = run_framework_suite(scheme, experiment)
        series[_SFR_LABELS[scheme]] = with_average(
            throughput_speedups(results, baseline)
        )
    return FigureResult(
        figure="Figure 8",
        title="normalised performance of SFR schemes",
        series=series,
        row_order=_rows(experiment),
        paper_reference={
            "Tile-Level (V) avg": 1.28,
            "Tile-Level (H) avg": 1.03,
            "Object-Level avg": 1.60,
        },
    )


def fig09_sfr_traffic(experiment: ExperimentConfig = FULL) -> FigureResult:
    """SFR schemes' inter-GPM traffic vs. the baseline (Fig. 9)."""
    baseline = run_framework_suite("baseline", experiment)
    series = {}
    for scheme in SFR_SCHEMES:
        results = run_framework_suite(scheme, experiment)
        series[_SFR_LABELS[scheme]] = with_average(
            traffic_ratios(results, baseline)
        )
    return FigureResult(
        figure="Figure 9",
        title="normalised inter-GPM memory traffic of SFR schemes",
        series=series,
        row_order=_rows(experiment),
        paper_reference={
            "Tile-Level (V) avg": 1.50,
            "Tile-Level (H) avg": 1.44,
            "Object-Level avg": 0.60,
        },
    )


# ---------------------------------------------------------------------------
# Figure 10 — object-level SFR load imbalance
# ---------------------------------------------------------------------------


def fig10_load_balance(experiment: ExperimentConfig = FULL) -> FigureResult:
    """Best-to-worst GPM busy-time ratio under object-level SFR."""
    results = run_framework_suite("object", experiment)
    ratios = with_average(
        {w: r.mean_load_balance_ratio for w, r in results.items()}
    )
    return FigureResult(
        figure="Figure 10",
        title="object-level SFR best-to-worst performance ratio among GPMs",
        series={"best-to-worst": ratios},
        row_order=_rows(experiment),
        paper_reference={"max reported": 2.2, "typical": 1.4},
    )


# ---------------------------------------------------------------------------
# Figures 15 and 16 — the OO-VR headline results
# ---------------------------------------------------------------------------

FIG15_SCHEMES = ("object", "afr", "1tbs-bw", "oo-app", "oo-vr")
_FIG15_LABELS = {
    "object": "Object-Level",
    "afr": "Frame-Level",
    "1tbs-bw": "1TB/s-BW",
    "oo-app": "OO_APP",
    "oo-vr": "OOVR",
}


def fig15_oovr_speedup(experiment: ExperimentConfig = FULL) -> FigureResult:
    """Single-frame speedup of all design points vs. baseline (Fig. 15)."""
    baseline = run_framework_suite("baseline", experiment)
    series = {}
    for scheme in FIG15_SCHEMES:
        results = run_framework_suite(scheme, experiment)
        series[_FIG15_LABELS[scheme]] = with_average(
            single_frame_speedups(results, baseline)
        )
    return FigureResult(
        figure="Figure 15",
        title="normalised single-frame speedup of the design scenarios",
        series=series,
        row_order=_rows(experiment),
        paper_reference={
            "OO_APP avg": 1.99,
            "OOVR avg vs object-level": 1.99,
            "OOVR avg vs OO_APP": 1.59,
        },
    )


def fig16_oovr_traffic(experiment: ExperimentConfig = FULL) -> FigureResult:
    """Inter-GPM traffic: baseline vs. object-level vs. OO-VR (Fig. 16)."""
    baseline = run_framework_suite("baseline", experiment)
    series: Dict[str, Mapping[str, float]] = {
        "Baseline": with_average({w: 1.0 for w in baseline})
    }
    for scheme, label in (("object", "Object-Level"), ("oo-vr", "OOVR")):
        results = run_framework_suite(scheme, experiment)
        series[label] = with_average(traffic_ratios(results, baseline))
    return FigureResult(
        figure="Figure 16",
        title="normalised inter-GPM memory traffic",
        series=series,
        row_order=_rows(experiment),
        paper_reference={"Object-Level avg": 0.60, "OOVR avg": 0.24},
    )


# ---------------------------------------------------------------------------
# Figure 17 — sensitivity of the design points to link bandwidth
# ---------------------------------------------------------------------------

FIG17_BANDWIDTHS_GB = (32.0, 64.0, 128.0, 256.0)
FIG17_SCHEMES = ("baseline", "object", "oo-vr")
_FIG17_LABELS = {
    "baseline": "Baseline",
    "object": "Object-level",
    "oo-vr": "OOVR",
}


def fig17_link_bandwidth(experiment: ExperimentConfig = FULL) -> FigureResult:
    """Speedup vs. link bandwidth, normalised to baseline@64GB/s."""
    reference: Optional[Dict[str, SceneResult]] = None
    series: Dict[str, Dict[str, float]] = {
        label: {} for label in _FIG17_LABELS.values()
    }
    base_config = baseline_system()
    reference = run_framework_suite("baseline", experiment, base_config)
    reference_mean = geomean(
        [r.single_frame_cycles for r in reference.values()]
    )
    for bandwidth in FIG17_BANDWIDTHS_GB:
        config = baseline_system().with_link_bandwidth(bandwidth)
        row = f"{bandwidth:.0f}GB/s"
        for scheme in FIG17_SCHEMES:
            results = run_framework_suite(scheme, experiment, config)
            mean_cycles = geomean(
                [r.single_frame_cycles for r in results.values()]
            )
            series[_FIG17_LABELS[scheme]][row] = reference_mean / mean_cycles
    return FigureResult(
        figure="Figure 17",
        title="speedup vs. inter-GPM link bandwidth "
        "(normalised to Baseline @ 64GB/s)",
        series=series,
        row_order=[f"{bw:.0f}GB/s" for bw in FIG17_BANDWIDTHS_GB],
        paper_reference={
            "OOVR insensitivity (256/32 ratio)": 1.15,
        },
    )


# ---------------------------------------------------------------------------
# Figure 18 — scalability with the number of GPMs
# ---------------------------------------------------------------------------

FIG18_GPM_COUNTS = (1, 2, 4, 8)
FIG18_SCHEMES = ("baseline", "object", "oo-vr")


def fig18_scalability(experiment: ExperimentConfig = FULL) -> FigureResult:
    """Speedup over a single GPM as the module count grows (Fig. 18)."""
    series: Dict[str, Dict[str, float]] = {
        _FIG17_LABELS[s]: {} for s in FIG18_SCHEMES
    }
    single = run_framework_suite(
        "baseline", experiment, baseline_system(num_gpms=1)
    )
    single_mean = geomean([r.single_frame_cycles for r in single.values()])
    for count in FIG18_GPM_COUNTS:
        config = baseline_system(num_gpms=count)
        row = f"{count} GPM"
        for scheme in FIG18_SCHEMES:
            results = run_framework_suite(scheme, experiment, config)
            mean_cycles = geomean(
                [r.single_frame_cycles for r in results.values()]
            )
            series[_FIG17_LABELS[scheme]][row] = single_mean / mean_cycles
    return FigureResult(
        figure="Figure 18",
        title="speedup over single GPM vs. number of GPMs",
        series=series,
        row_order=[f"{c} GPM" for c in FIG18_GPM_COUNTS],
        paper_reference={
            "Baseline @8": 2.08,
            "Object-level @8": 3.47,
            "OOVR @4": 3.64,
            "OOVR @8": 6.27,
        },
    )


# ---------------------------------------------------------------------------
# Section 3 — SMP validation (Fig. 5 context)
# ---------------------------------------------------------------------------


def smp_validation(experiment: ExperimentConfig = FULL) -> FigureResult:
    """SMP multi-view vs. sequential stereo on one GPM (~27 % gain).

    Mirrors the paper's validation of the ATTILA SMP engine: the same
    frames rendered as two sequential per-eye passes and as SMP
    multi-view draws on a single-GPM system.
    """
    from repro.gpu.system import MultiGPUSystem
    from repro.pipeline.smp import SMPMode

    config = baseline_system(num_gpms=1)
    speedups: Dict[str, float] = {}
    for workload in experiment.workloads:
        scene = scene_for(workload, experiment)
        frame = scene.representative_frame
        framework = build_framework("baseline", config)

        def frame_cycles(mode: SMPMode) -> float:
            system = MultiGPUSystem(config)
            system.begin_frame()
            draws = (
                frame.stereo_draws()
                if mode is SMPMode.SEQUENTIAL
                else frame.multiview_draws()
            )
            for draw in draws:
                unit = framework.characterizer.characterize(draw, mode=mode)
                system.execute_unit(unit, 0, fb_targets={0: 1.0})
            return system.frame_result("smp-check", workload).cycles

        sequential = frame_cycles(SMPMode.SEQUENTIAL)
        simultaneous = frame_cycles(SMPMode.SIMULTANEOUS)
        speedups[workload] = sequential / simultaneous
    return FigureResult(
        figure="Section 3",
        title="SMP multi-view speedup over sequential stereo (single GPM)",
        series={"SMP speedup": with_average(speedups)},
        row_order=_rows(experiment),
        paper_reference={"paper": 1.27},
    )


#: Registry used by the CLI and the benches.
FIGURES = {
    "4": fig04_bandwidth_sensitivity,
    "7": fig07_afr,
    "8": fig08_sfr_performance,
    "9": fig09_sfr_traffic,
    "10": fig10_load_balance,
    "15": fig15_oovr_speedup,
    "16": fig16_oovr_traffic,
    "17": fig17_link_bandwidth,
    "18": fig18_scalability,
    "smp": smp_validation,
}
