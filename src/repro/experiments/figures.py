"""Reproductions of the paper's figures (Sections 2-6).

Every figure is a declarative :class:`~repro.session.Sweep` — the grid
of (framework x workload x config) cells the paper plots — plus a small
formatting step that pivots the resulting
:class:`~repro.session.ResultSet` into paper-style series.  All
functions accept ``jobs`` (worker processes), ``executor`` (a
:mod:`repro.session.executor` backend name or instance) and
``on_result`` (per-cell progress callback), forwarded verbatim to
:meth:`Sweep.run <repro.session.session.Sweep.run>` — no figure
constructs a pool of its own.

Every function returns a :class:`FigureResult`: named series over the
nine workload points (or a parameter sweep), plus the paper's reported
values where the text states them, so benches can print paper-vs-
measured side by side.  Nothing here re-tunes the model — all runs share
the Table 2 configuration (modulo the parameter being swept).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.config import baseline_system
from repro.experiments.runner import FULL, ExperimentConfig, with_average
from repro.frameworks.base import build_framework
from repro.session import ResultCallback, ResultSet, Sweep, SweepExecutor
from repro.stats.metrics import geomean
from repro.stats.reporting import series_table


@dataclass(frozen=True)
class FigureResult:
    """One reproduced figure: series keyed by design point."""

    figure: str
    title: str
    #: column -> {row -> value}
    series: Mapping[str, Mapping[str, float]]
    row_order: Sequence[str]
    #: The paper's headline numbers for the same quantity, if stated.
    paper_reference: Mapping[str, float] = field(default_factory=dict)

    def to_text(self) -> str:
        body = series_table(
            self.series, self.row_order, title=f"{self.figure}: {self.title}"
        )
        if not self.paper_reference:
            return body
        ref_lines = ["", "paper reference:"]
        for key, value in self.paper_reference.items():
            ref_lines.append(f"  {key}: {value:.3f}")
        return body + "\n" + "\n".join(ref_lines)

    def to_chart(self, width: int = 36) -> str:
        """The figure as a terminal bar chart (paper-style grouped bars).

        Averages-only when every series has an ``Avg.`` row (the usual
        per-workload figures collapse to their headline bars); full
        grouped chart otherwise.
        """
        from repro.stats.plotting import bar_chart, grouped_bar_chart

        title = f"{self.figure}: {self.title}"
        if all("Avg." in values for values in self.series.values()):
            avgs = {name: values["Avg."] for name, values in self.series.items()}
            return bar_chart(avgs, title=title, width=width, reference=1.0)
        return grouped_bar_chart(
            self.series, self.row_order, title=title, width=width
        )

    def average(self, column: str) -> float:
        values = self.series[column]
        if "Avg." in values:
            return values["Avg."]
        return geomean(list(values.values()))


def _rows(experiment: ExperimentConfig) -> List[str]:
    return [*experiment.workloads, "Avg."]


def _suite(experiment: ExperimentConfig, *frameworks: str) -> Sweep:
    """The common grid: given frameworks over the experiment's workloads."""
    return Sweep().preset(experiment).frameworks(*frameworks)


def _speedups(
    results: ResultSet, metric: str = "single_frame_cycles"
) -> Dict[str, Dict[str, float]]:
    """Per-framework speedup series vs. the ``baseline`` framework."""
    return results.normalize_to("baseline", metric, invert=True)


# ---------------------------------------------------------------------------
# Figure 4 — baseline sensitivity to inter-GPM link bandwidth
# ---------------------------------------------------------------------------

FIG4_BANDWIDTHS_GB = (1000.0, 256.0, 128.0, 64.0, 32.0)


def _bandwidth_label(bandwidth: float) -> str:
    return "1TB/s" if bandwidth >= 1000 else f"{bandwidth:.0f}GB/s"


def fig04_bandwidth_sensitivity(
    experiment: ExperimentConfig = FULL,
    jobs: int = 1,
    executor: Optional[Union[str, SweepExecutor]] = None,
    on_result: Optional[ResultCallback] = None,
) -> FigureResult:
    """Normalised baseline performance as the links shrink (Fig. 4).

    Performance is single-frame rate, normalised to the 1 TB/s links;
    the paper reports average degradations of 22 % / 42 % / 65 % at
    128 / 64 / 32 GB/s.
    """
    sweep = _suite(experiment, "baseline")
    for bandwidth in FIG4_BANDWIDTHS_GB:
        sweep.config(
            baseline_system().with_link_bandwidth(bandwidth),
            label=_bandwidth_label(bandwidth),
        )
    results = sweep.run(jobs=jobs, executor=executor, on_result=on_result)
    speedups = results.normalize_to(
        _bandwidth_label(FIG4_BANDWIDTHS_GB[0]),
        "single_frame_cycles",
        cols="config_label",
        invert=True,
    )
    per_bw = {label: with_average(values) for label, values in speedups.items()}
    return FigureResult(
        figure="Figure 4",
        title="baseline performance vs. inter-GPM link bandwidth "
        "(normalised to 1TB/s links)",
        series=per_bw,
        row_order=_rows(experiment),
        paper_reference={
            "128GB/s avg": 0.78,
            "64GB/s avg": 0.58,
            "32GB/s avg": 0.35,
        },
    )


# ---------------------------------------------------------------------------
# Figure 7 — AFR throughput and single-frame latency
# ---------------------------------------------------------------------------


def fig07_afr(
    experiment: ExperimentConfig = FULL,
    jobs: int = 1,
    executor: Optional[Union[str, SweepExecutor]] = None,
    on_result: Optional[ResultCallback] = None,
) -> FigureResult:
    """AFR vs. baseline: overall performance and frame latency (Fig. 7)."""
    results = _suite(experiment, "baseline", "afr").run(
        jobs=jobs, executor=executor, on_result=on_result
    )
    overall = with_average(
        _speedups(results, "frame_interval_cycles")["afr"]
    )
    latency = with_average(
        results.normalize_to("baseline", "single_frame_cycles")["afr"]
    )
    return FigureResult(
        figure="Figure 7",
        title="AFR normalised overall performance (left) and single-frame "
        "latency (right)",
        series={"overall perf": overall, "frame latency": latency},
        row_order=_rows(experiment),
        paper_reference={"overall perf avg": 1.67, "frame latency avg": 1.59},
    )


# ---------------------------------------------------------------------------
# Figures 8 and 9 — tile/object SFR performance and traffic
# ---------------------------------------------------------------------------

SFR_SCHEMES = ("tile-v", "tile-h", "object")
_SFR_LABELS = {
    "tile-v": "Tile-Level (V)",
    "tile-h": "Tile-Level (H)",
    "object": "Object-Level",
}


def fig08_sfr_performance(
    experiment: ExperimentConfig = FULL,
    jobs: int = 1,
    executor: Optional[Union[str, SweepExecutor]] = None,
    on_result: Optional[ResultCallback] = None,
) -> FigureResult:
    """SFR schemes' frame-rate speedup over the baseline (Fig. 8)."""
    results = _suite(experiment, "baseline", *SFR_SCHEMES).run(
        jobs=jobs, executor=executor, on_result=on_result
    )
    speedups = _speedups(results, "frame_interval_cycles")
    series = {
        _SFR_LABELS[scheme]: with_average(speedups[scheme])
        for scheme in SFR_SCHEMES
    }
    return FigureResult(
        figure="Figure 8",
        title="normalised performance of SFR schemes",
        series=series,
        row_order=_rows(experiment),
        paper_reference={
            "Tile-Level (V) avg": 1.28,
            "Tile-Level (H) avg": 1.03,
            "Object-Level avg": 1.60,
        },
    )


def fig09_sfr_traffic(
    experiment: ExperimentConfig = FULL,
    jobs: int = 1,
    executor: Optional[Union[str, SweepExecutor]] = None,
    on_result: Optional[ResultCallback] = None,
) -> FigureResult:
    """SFR schemes' inter-GPM traffic vs. the baseline (Fig. 9)."""
    results = _suite(experiment, "baseline", *SFR_SCHEMES).run(
        jobs=jobs, executor=executor, on_result=on_result
    )
    ratios = results.normalize_to(
        "baseline", "mean_inter_gpm_bytes_per_frame"
    )
    series = {
        _SFR_LABELS[scheme]: with_average(ratios[scheme])
        for scheme in SFR_SCHEMES
    }
    return FigureResult(
        figure="Figure 9",
        title="normalised inter-GPM memory traffic of SFR schemes",
        series=series,
        row_order=_rows(experiment),
        paper_reference={
            "Tile-Level (V) avg": 1.50,
            "Tile-Level (H) avg": 1.44,
            "Object-Level avg": 0.60,
        },
    )


# ---------------------------------------------------------------------------
# Figure 10 — object-level SFR load imbalance
# ---------------------------------------------------------------------------


def fig10_load_balance(
    experiment: ExperimentConfig = FULL,
    jobs: int = 1,
    executor: Optional[Union[str, SweepExecutor]] = None,
    on_result: Optional[ResultCallback] = None,
) -> FigureResult:
    """Best-to-worst GPM busy-time ratio under object-level SFR."""
    results = _suite(experiment, "object").run(
        jobs=jobs, executor=executor, on_result=on_result
    )
    ratios = with_average(
        results.pivot("mean_load_balance_ratio")["object"]
    )
    return FigureResult(
        figure="Figure 10",
        title="object-level SFR best-to-worst performance ratio among GPMs",
        series={"best-to-worst": ratios},
        row_order=_rows(experiment),
        paper_reference={"max reported": 2.2, "typical": 1.4},
    )


# ---------------------------------------------------------------------------
# Figures 15 and 16 — the OO-VR headline results
# ---------------------------------------------------------------------------

FIG15_SCHEMES = ("object", "afr", "1tbs-bw", "oo-app", "oo-vr")
_FIG15_LABELS = {
    "object": "Object-Level",
    "afr": "Frame-Level",
    "1tbs-bw": "1TB/s-BW",
    "oo-app": "OO_APP",
    "oo-vr": "OOVR",
}


def fig15_oovr_speedup(
    experiment: ExperimentConfig = FULL,
    jobs: int = 1,
    executor: Optional[Union[str, SweepExecutor]] = None,
    on_result: Optional[ResultCallback] = None,
) -> FigureResult:
    """Single-frame speedup of all design points vs. baseline (Fig. 15)."""
    results = _suite(experiment, "baseline", *FIG15_SCHEMES).run(
        jobs=jobs, executor=executor, on_result=on_result
    )
    speedups = _speedups(results)
    series = {
        _FIG15_LABELS[scheme]: with_average(speedups[scheme])
        for scheme in FIG15_SCHEMES
    }
    return FigureResult(
        figure="Figure 15",
        title="normalised single-frame speedup of the design scenarios",
        series=series,
        row_order=_rows(experiment),
        paper_reference={
            "OO_APP avg": 1.99,
            "OOVR avg vs object-level": 1.99,
            "OOVR avg vs OO_APP": 1.59,
        },
    )


def fig16_oovr_traffic(
    experiment: ExperimentConfig = FULL,
    jobs: int = 1,
    executor: Optional[Union[str, SweepExecutor]] = None,
    on_result: Optional[ResultCallback] = None,
) -> FigureResult:
    """Inter-GPM traffic: baseline vs. object-level vs. OO-VR (Fig. 16)."""
    results = _suite(experiment, "baseline", "object", "oo-vr").run(
        jobs=jobs, executor=executor, on_result=on_result
    )
    ratios = results.normalize_to(
        "baseline", "mean_inter_gpm_bytes_per_frame"
    )
    series: Dict[str, Mapping[str, float]] = {
        "Baseline": with_average(
            {workload: 1.0 for workload in experiment.workloads}
        ),
        "Object-Level": with_average(ratios["object"]),
        "OOVR": with_average(ratios["oo-vr"]),
    }
    return FigureResult(
        figure="Figure 16",
        title="normalised inter-GPM memory traffic",
        series=series,
        row_order=_rows(experiment),
        paper_reference={"Object-Level avg": 0.60, "OOVR avg": 0.24},
    )


# ---------------------------------------------------------------------------
# Figure 17 — sensitivity of the design points to link bandwidth
# ---------------------------------------------------------------------------

FIG17_BANDWIDTHS_GB = (32.0, 64.0, 128.0, 256.0)
FIG17_SCHEMES = ("baseline", "object", "oo-vr")
_FIG17_LABELS = {
    "baseline": "Baseline",
    "object": "Object-level",
    "oo-vr": "OOVR",
}


def fig17_link_bandwidth(
    experiment: ExperimentConfig = FULL,
    jobs: int = 1,
    executor: Optional[Union[str, SweepExecutor]] = None,
    on_result: Optional[ResultCallback] = None,
) -> FigureResult:
    """Speedup vs. link bandwidth, normalised to baseline@64GB/s.

    The 64 GB/s grid column doubles as the normalisation reference:
    ``with_link_bandwidth(64)`` reproduces the Table 2 baseline config,
    so no separate reference run is needed.
    """
    sweep = _suite(experiment, *FIG17_SCHEMES)
    for bandwidth in FIG17_BANDWIDTHS_GB:
        sweep.config(
            baseline_system().with_link_bandwidth(bandwidth),
            label=f"{bandwidth:.0f}GB/s",
        )
    results = sweep.run(jobs=jobs, executor=executor, on_result=on_result)
    means = results.geomean_by(
        "single_frame_cycles", by=("framework", "config_label")
    )
    reference_mean = means[("baseline", "64GB/s")]
    series: Dict[str, Dict[str, float]] = {
        label: {} for label in _FIG17_LABELS.values()
    }
    for (scheme, row), mean_cycles in means.items():
        series[_FIG17_LABELS[scheme]][row] = reference_mean / mean_cycles
    return FigureResult(
        figure="Figure 17",
        title="speedup vs. inter-GPM link bandwidth "
        "(normalised to Baseline @ 64GB/s)",
        series=series,
        row_order=[f"{bw:.0f}GB/s" for bw in FIG17_BANDWIDTHS_GB],
        paper_reference={
            "OOVR insensitivity (256/32 ratio)": 1.15,
        },
    )


# ---------------------------------------------------------------------------
# Figure 18 — scalability with the number of GPMs
# ---------------------------------------------------------------------------

FIG18_GPM_COUNTS = (1, 2, 4, 8)
FIG18_SCHEMES = ("baseline", "object", "oo-vr")


def fig18_scalability(
    experiment: ExperimentConfig = FULL,
    jobs: int = 1,
    executor: Optional[Union[str, SweepExecutor]] = None,
    on_result: Optional[ResultCallback] = None,
) -> FigureResult:
    """Speedup over a single GPM as the module count grows (Fig. 18)."""
    sweep = _suite(experiment, *FIG18_SCHEMES)
    for count in FIG18_GPM_COUNTS:
        sweep.config(baseline_system(num_gpms=count), label=f"{count} GPM")
    results = sweep.run(jobs=jobs, executor=executor, on_result=on_result)
    means = results.geomean_by(
        "single_frame_cycles", by=("framework", "config_label")
    )
    single_mean = means[("baseline", f"{FIG18_GPM_COUNTS[0]} GPM")]
    series: Dict[str, Dict[str, float]] = {
        _FIG17_LABELS[s]: {} for s in FIG18_SCHEMES
    }
    for (scheme, row), mean_cycles in means.items():
        series[_FIG17_LABELS[scheme]][row] = single_mean / mean_cycles
    return FigureResult(
        figure="Figure 18",
        title="speedup over single GPM vs. number of GPMs",
        series=series,
        row_order=[f"{c} GPM" for c in FIG18_GPM_COUNTS],
        paper_reference={
            "Baseline @8": 2.08,
            "Object-level @8": 3.47,
            "OOVR @4": 3.64,
            "OOVR @8": 6.27,
        },
    )


# ---------------------------------------------------------------------------
# Section 3 — SMP validation (Fig. 5 context)
# ---------------------------------------------------------------------------


def smp_validation(
    experiment: ExperimentConfig = FULL,
    jobs: int = 1,
    executor: Optional[Union[str, SweepExecutor]] = None,
    on_result: Optional[ResultCallback] = None,
) -> FigureResult:
    """SMP multi-view vs. sequential stereo on one GPM (~27 % gain).

    Mirrors the paper's validation of the ATTILA SMP engine: the same
    frames rendered as two sequential per-eye passes and as SMP
    multi-view draws on a single-GPM system.  The comparison drives the
    pipeline below the framework layer, so it runs serially (and
    in-process) regardless of ``jobs``/``executor``/``on_result`` —
    the parameters exist only for registry-call uniformity.
    """
    from repro.gpu.system import MultiGPUSystem
    from repro.pipeline.smp import SMPMode
    from repro.session import Session

    config = baseline_system(num_gpms=1)
    speedups: Dict[str, float] = {}
    for workload in experiment.workloads:
        scene = Session().preset(experiment).workload(workload).scene()
        frame = scene.representative_frame
        framework = build_framework("baseline", config)

        def frame_cycles(mode: SMPMode) -> float:
            system = MultiGPUSystem(config)
            system.begin_frame()
            draws = (
                frame.stereo_draws()
                if mode is SMPMode.SEQUENTIAL
                else frame.multiview_draws()
            )
            for draw in draws:
                unit = framework.characterizer.characterize(draw, mode=mode)
                system.execute_unit(unit, 0, fb_targets={0: 1.0})
            return system.frame_result("smp-check", workload).cycles

        sequential = frame_cycles(SMPMode.SEQUENTIAL)
        simultaneous = frame_cycles(SMPMode.SIMULTANEOUS)
        speedups[workload] = sequential / simultaneous
    return FigureResult(
        figure="Section 3",
        title="SMP multi-view speedup over sequential stereo (single GPM)",
        series={"SMP speedup": with_average(speedups)},
        row_order=_rows(experiment),
        paper_reference={"paper": 1.27},
    )


#: Registry used by the CLI and the benches.
FIGURES = {
    "4": fig04_bandwidth_sensitivity,
    "7": fig07_afr,
    "8": fig08_sfr_performance,
    "9": fig09_sfr_traffic,
    "10": fig10_load_balance,
    "15": fig15_oovr_speedup,
    "16": fig16_oovr_traffic,
    "17": fig17_link_bandwidth,
    "18": fig18_scalability,
    "smp": smp_validation,
}
