"""Shared experiment machinery.

Scenes are deterministic per (workload, seed, scale) and cached within a
process, so sweeps that revisit the same workload under different
hardware configurations (Figs. 4, 17, 18) compare identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.config import SystemConfig, baseline_system
from repro.frameworks.base import build_framework
from repro.scene.benchmarks import WORKLOADS, make_benchmark_scene
from repro.scene.scene import Scene
from repro.stats.metrics import SceneResult, geomean


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment run.

    ``draw_scale`` shrinks workloads uniformly (the fast test suite uses
    ~0.15); benchmarks run at 1.0.  ``num_frames`` is the scene length;
    AFR needs at least ``num_gpms`` frames to show pipelining.
    """

    draw_scale: float = 1.0
    num_frames: int = 3
    seed: int = 2019
    workloads: Sequence[str] = WORKLOADS

    def __post_init__(self) -> None:
        if self.draw_scale <= 0:
            raise ValueError("draw_scale must be positive")
        if self.num_frames < 1:
            raise ValueError("need at least one frame")


#: The experiment configuration used by the benchmark harness.
FULL = ExperimentConfig()
#: A reduced configuration for quick runs and the test suite.
FAST = ExperimentConfig(draw_scale=0.15, num_frames=2)


@lru_cache(maxsize=128)
def _cached_scene(
    workload: str, num_frames: int, seed: int, draw_scale: float
) -> Scene:
    return make_benchmark_scene(
        workload, num_frames=num_frames, seed=seed, draw_scale=draw_scale
    )


def scene_for(workload: str, experiment: ExperimentConfig = FULL) -> Scene:
    """The (cached) scene for one workload point."""
    return _cached_scene(
        workload, experiment.num_frames, experiment.seed, experiment.draw_scale
    )


def run_framework_suite(
    framework_name: str,
    experiment: ExperimentConfig = FULL,
    config: Optional[SystemConfig] = None,
) -> Dict[str, SceneResult]:
    """Run one framework over every workload of the experiment."""
    results: Dict[str, SceneResult] = {}
    for workload in experiment.workloads:
        framework = build_framework(framework_name, config)
        results[workload] = framework.render_scene(scene_for(workload, experiment))
    return results


def single_frame_speedups(
    results: Mapping[str, SceneResult],
    baseline: Mapping[str, SceneResult],
) -> Dict[str, float]:
    """Per-workload single-frame speedup vs. the baseline results."""
    return {
        workload: baseline[workload].single_frame_cycles
        / results[workload].single_frame_cycles
        for workload in results
    }


def throughput_speedups(
    results: Mapping[str, SceneResult],
    baseline: Mapping[str, SceneResult],
) -> Dict[str, float]:
    """Per-workload frame-rate speedup vs. the baseline results."""
    return {
        workload: baseline[workload].frame_interval_cycles
        / results[workload].frame_interval_cycles
        for workload in results
    }


def traffic_ratios(
    results: Mapping[str, SceneResult],
    baseline: Mapping[str, SceneResult],
) -> Dict[str, float]:
    """Per-workload inter-GPM traffic normalised to the baseline."""
    out: Dict[str, float] = {}
    for workload in results:
        base = baseline[workload].mean_inter_gpm_bytes_per_frame
        mine = results[workload].mean_inter_gpm_bytes_per_frame
        out[workload] = mine / base if base > 0 else 0.0
    return out


def with_average(values: Mapping[str, float]) -> Dict[str, float]:
    """Append the geometric-mean 'Avg.' entry the paper's figures show."""
    out = dict(values)
    out["Avg."] = geomean(list(values.values()))
    return out
