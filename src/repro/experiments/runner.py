"""Shared experiment machinery, re-platformed on :mod:`repro.session`.

The canonical experiment surface is now the Session/Sweep API; this
module keeps the thin helpers the figures' arithmetic is written in
(speedups, traffic ratios, geometric-mean rows) plus backwards-
compatible aliases: :class:`ExperimentConfig`, the :data:`FAST` /
:data:`FULL` presets, :func:`scene_for`, and :func:`run_framework_suite`
(a one-framework :class:`~repro.session.Sweep`).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.config import SystemConfig
from repro.scene.scene import Scene
from repro.session import FAST, FULL, ExperimentConfig, Sweep
from repro.session.spec import cached_scene
from repro.stats.metrics import SceneResult, geomean

__all__ = [
    "ExperimentConfig",
    "FAST",
    "FULL",
    "scene_for",
    "run_framework_suite",
    "single_frame_speedups",
    "throughput_speedups",
    "traffic_ratios",
    "with_average",
]


def scene_for(workload: str, experiment: ExperimentConfig = FULL) -> Scene:
    """The (cached) scene for one workload point."""
    return cached_scene(
        workload, experiment.num_frames, experiment.seed, experiment.draw_scale
    )


def run_framework_suite(
    framework_name: str,
    experiment: ExperimentConfig = FULL,
    config: Optional[SystemConfig] = None,
    jobs: int = 1,
    cache=None,
    executor=None,
    on_result=None,
) -> Dict[str, SceneResult]:
    """Run one framework over every workload of the experiment.

    ``cache`` is an optional :class:`~repro.session.ResultCache` (or
    directory path) memoising the suite's cells across calls;
    ``executor``/``on_result`` select the
    :mod:`repro.session.executor` backend and per-cell progress
    callback, like any sweep.
    """
    sweep = Sweep().preset(experiment).frameworks(framework_name)
    if config is not None:
        sweep.config(config)
    return sweep.run(
        jobs=jobs, cache=cache, executor=executor, on_result=on_result
    ).by_workload()


def single_frame_speedups(
    results: Mapping[str, SceneResult],
    baseline: Mapping[str, SceneResult],
) -> Dict[str, float]:
    """Per-workload single-frame speedup vs. the baseline results."""
    return {
        workload: baseline[workload].single_frame_cycles
        / results[workload].single_frame_cycles
        for workload in results
    }


def throughput_speedups(
    results: Mapping[str, SceneResult],
    baseline: Mapping[str, SceneResult],
) -> Dict[str, float]:
    """Per-workload frame-rate speedup vs. the baseline results."""
    return {
        workload: baseline[workload].frame_interval_cycles
        / results[workload].frame_interval_cycles
        for workload in results
    }


def traffic_ratios(
    results: Mapping[str, SceneResult],
    baseline: Mapping[str, SceneResult],
) -> Dict[str, float]:
    """Per-workload inter-GPM traffic normalised to the baseline."""
    out: Dict[str, float] = {}
    for workload in results:
        base = baseline[workload].mean_inter_gpm_bytes_per_frame
        mine = results[workload].mean_inter_gpm_bytes_per_frame
        out[workload] = mine / base if base > 0 else 0.0
    return out


def with_average(values: Mapping[str, float]) -> Dict[str, float]:
    """Append the geometric-mean 'Avg.' entry the paper's figures show."""
    out = dict(values)
    out["Avg."] = geomean(list(values.values()))
    return out
