"""Engine-contention study: what the analytic roofline cannot see.

The analytic engine prices every work unit in isolation, so two flows
sharing a wire (or a DRAM stack) in the same window each get the full
bandwidth — concurrent congestion is *under-priced*, and reported
speedups are over-credited wherever schedules overlap on a shared
resource.  :func:`engine_contention_study` quantifies the gap: it runs
the same (framework x link-bandwidth x workload) grid under both the
``analytic`` and ``event`` engines (the latter spelled through the
framework-variant grammar, ``<scheme>:engine=event``) and reports the
**over-credit factor** — event-engine cycles over analytic cycles,
geomean across workloads.  A factor of 1.0 means the analytic model was
exact; 1.5 means congestion makes frames 50 % slower than it claims.
Factors a fraction of a percent *below* 1.0 are the one modelling
divergence documented in :mod:`repro.engine.event`: bidirectional
traffic to a peer drains in parallel on the full-duplex wires where
the analytic per-peer roll-up serialises it.

On the paper's dedicated pairwise fabric the factor stays ~1 by
construction ("the intercommunication between two GPMs will not be
interfered"); on the routed fabrics larger systems actually ship
(``<scheme>:topo=ring`` / ``:topo=switch``) the baseline's remote
streams pile onto shared wires while OO-VR, having removed most of the
bytes, is nearly immune — the NUMA-locality argument, sharpened.

With the engine layer covering every frame phase (staging flows and
the composition barrier included), :func:`engine_contention_phases`
resolves the same factor per phase: how much the render window slows
once PA/staging copies fight render flows for wires, and how much the
composition barrier itself stretches — the two mechanisms (Section 5.2
PA overlap, Section 5.3 DHC) the aggregate number conflates.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.config import baseline_system
from repro.experiments.figures import FigureResult
from repro.experiments.runner import FULL, ExperimentConfig
from repro.session import Sweep
from repro.session.cache import ResultCache
from repro.stats.metrics import geomean

__all__ = [
    "CONTENTION_BANDWIDTHS_GB",
    "CONTENTION_FRAMEWORKS",
    "CONTENTION_PHASES",
    "engine_contention_grid",
    "engine_contention_phases",
    "engine_contention_study",
]

#: Link bandwidths swept by default (the paper's 64 GB/s and the
#: cheaper points where congestion bites hardest).
CONTENTION_BANDWIDTHS_GB = (64.0, 32.0, 16.0)

#: Default design points: the naive baseline and full OO-VR, each on
#: the paper's dedicated fabric and on a shared central switch.
CONTENTION_FRAMEWORKS = (
    "baseline",
    "oo-vr",
    "baseline:topo=switch",
    "oo-vr:topo=switch",
)


#: The frame phases the per-phase breakdown resolves.  ``render``
#: covers everything before the barrier (units, staging stalls and —
#: under the event engine — the wire time PA/staging flows steal from
#: render traffic); ``composition`` is the post-render barrier.
CONTENTION_PHASES = ("render", "composition")


def _event_name(framework: str) -> str:
    return f"{framework}:engine=event"


def _bandwidth_label(bandwidth: float) -> str:
    return "1TB/s" if bandwidth >= 1000 else f"{bandwidth:.0f}GB/s"


def engine_contention_grid(
    experiment: ExperimentConfig = FULL,
    frameworks: Sequence[str] = CONTENTION_FRAMEWORKS,
    link_bandwidths: Sequence[float] = CONTENTION_BANDWIDTHS_GB,
    workloads: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor=None,
    on_result=None,
):
    """Execute the (framework x engine x bandwidth x workload) grid.

    The single sweep both study views read.  Run it once and pass the
    returned :class:`~repro.session.ResultSet` to
    :func:`engine_contention_study` *and*
    :func:`engine_contention_phases` as ``results=`` so every cell
    executes (or hits the cache) exactly once.
    """
    chosen = tuple(workloads) if workloads is not None else tuple(
        experiment.workloads
    )
    sweep = (
        Sweep()
        .preset(experiment)
        .workloads(*chosen)
        .frameworks(
            *frameworks, *(_event_name(name) for name in frameworks)
        )
    )
    for bandwidth in link_bandwidths:
        sweep.config(
            baseline_system().with_link_bandwidth(bandwidth),
            label=_bandwidth_label(bandwidth),
        )
    return sweep.run(
        jobs=jobs, cache=cache, executor=executor, on_result=on_result
    )


def _run_grid(
    experiment: ExperimentConfig,
    frameworks: Sequence[str],
    link_bandwidths: Sequence[float],
    workloads: Optional[Sequence[str]],
    jobs: int,
    cache: Optional[ResultCache],
    results,
    executor=None,
    on_result=None,
):
    """Resolve the grid a study view reads: reuse or execute."""
    chosen = tuple(workloads) if workloads is not None else tuple(
        experiment.workloads
    )
    if results is None:
        results = engine_contention_grid(
            experiment, frameworks, link_bandwidths, workloads, jobs, cache,
            executor=executor, on_result=on_result,
        )
    return results, chosen


def engine_contention_study(
    experiment: ExperimentConfig = FULL,
    frameworks: Sequence[str] = CONTENTION_FRAMEWORKS,
    link_bandwidths: Sequence[float] = CONTENTION_BANDWIDTHS_GB,
    workloads: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    results=None,
    executor=None,
    on_result=None,
) -> FigureResult:
    """Analytic over-credit factor per (framework, link bandwidth).

    One declarative :class:`~repro.session.Sweep`: every framework runs
    twice per cell — as named (analytic) and as its
    ``:engine=event`` variant — across the bandwidth axis, fanned over
    ``jobs`` worker processes and memoised through ``cache`` like any
    figure.  Returns a :class:`~repro.experiments.figures.FigureResult`
    whose series map each framework to ``{bandwidth: event/analytic}``
    (geomean over workloads, on single-frame cycles).  Pass ``results``
    (from :func:`engine_contention_grid`) to read an already-executed
    grid instead of running one.
    """
    results, chosen = _run_grid(
        experiment, frameworks, link_bandwidths, workloads, jobs, cache,
        results, executor=executor, on_result=on_result,
    )

    def cycles(framework: str, label: str) -> Dict[str, float]:
        subset = results.select(framework=framework, config_label=label)
        return {
            workload: subset.get(workload=workload).single_frame_cycles
            for workload in chosen
        }

    series: Dict[str, Dict[str, float]] = {}
    row_order = [_bandwidth_label(bandwidth) for bandwidth in link_bandwidths]
    for framework in frameworks:
        row: Dict[str, float] = {}
        for label in row_order:
            analytic = cycles(framework, label)
            event = cycles(_event_name(framework), label)
            row[label] = geomean(
                [event[w] / analytic[w] for w in chosen]
            )
        series[framework] = row
    return FigureResult(
        figure="Engine contention",
        title="analytic over-credit factor (event / analytic cycles)",
        series=series,
        row_order=row_order,
    )


def engine_contention_phases(
    experiment: ExperimentConfig = FULL,
    frameworks: Sequence[str] = CONTENTION_FRAMEWORKS,
    link_bandwidths: Sequence[float] = CONTENTION_BANDWIDTHS_GB,
    workloads: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    results=None,
    executor=None,
    on_result=None,
) -> FigureResult:
    """Phase-resolved over-credit: where congestion actually bites.

    Reads the same grid as :func:`engine_contention_study` — run it
    once with :func:`engine_contention_grid` and pass it as
    ``results``, or share a ``cache`` so the second pass is pure hits —
    and splits the over-credit factor by frame phase — one ``<framework> [render]`` and one
    ``<framework> [composition]`` column per design point:

    - the **render** factor isolates what PA/staging flows and remote
      render streams cost each other on contended wires — with full
      engine coverage the event engine replays pre-allocation copies
      as background flows, so this column shows how much of the
      "free" PA overlap congestion claws back;
    - the **composition** factor prices the barrier itself — DHC's
      all-pairs scatter holds up on the dedicated fabric but queues on
      a shared switch, which is exactly the Equalizer-style
      compositing-bound regime the paper's Section 5.3 argues about.

    Frameworks with no composition pass (the interleaved baseline,
    sort-first tiling) report 1.0 there.
    """
    results, chosen = _run_grid(
        experiment, frameworks, link_bandwidths, workloads, jobs, cache,
        results, executor=executor, on_result=on_result,
    )

    def phase_cycles(framework: str, label: str, phase: str) -> Dict[str, float]:
        subset = results.select(framework=framework, config_label=label)
        out: Dict[str, float] = {}
        for workload in chosen:
            scene = subset.get(workload=workload)
            if phase == "composition":
                out[workload] = scene.single_frame_composition_cycles
            else:
                out[workload] = scene.single_frame_render_cycles
        return out

    def factor(analytic: float, event: float) -> float:
        if analytic <= 0.0:
            # No such phase in this framework (e.g. baseline has no
            # composition barrier): the analytic model is trivially
            # exact about it.
            return 1.0
        return event / analytic

    series: Dict[str, Dict[str, float]] = {}
    row_order = [_bandwidth_label(bandwidth) for bandwidth in link_bandwidths]
    for framework in frameworks:
        for phase in CONTENTION_PHASES:
            row: Dict[str, float] = {}
            for label in row_order:
                analytic = phase_cycles(framework, label, phase)
                event = phase_cycles(_event_name(framework), label, phase)
                row[label] = geomean(
                    [factor(analytic[w], event[w]) for w in chosen]
                )
            series[f"{framework} [{phase}]"] = row
    return FigureResult(
        figure="Engine contention by phase",
        title="per-phase over-credit factor (event / analytic cycles)",
        series=series,
        row_order=row_order,
    )
