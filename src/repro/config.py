"""Hardware configuration for the simulated NUMA-based multi-GPU system.

The defaults reproduce Table 2 of the paper (baseline configuration):

====================================  =======================================
GPU frequency                         1 GHz
Number of GPMs                        4
Number of SMs                         32 total, 8 per GPM
SM configuration                      64 shader cores, 128 KB unified L1,
                                      4 texture units
Texture filtering                     16x anisotropic
Raster engine                         16x16 tiled rasterisation
Number of ROPs                        32 total, 8 per GPM
L2 cache                              4 MB total, 16-way
Inter-GPU interconnect                64 GB/s NVLink (uni-directional)
Local DRAM bandwidth                  1 TB/s
====================================  =======================================

All bandwidths are expressed internally in **bytes per cycle**.  At the
1 GHz baseline clock, ``N GB/s`` is numerically ``N`` bytes/cycle, which
keeps the arithmetic easy to audit against the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Cycles per second at the baseline 1 GHz clock.
BASE_CLOCK_HZ = 1_000_000_000


class ConfigError(ValueError):
    """Raised when a configuration is internally inconsistent."""


@dataclass(frozen=True)
class SMConfig:
    """A single streaming multiprocessor (SM).

    Mirrors the per-SM row of Table 2: 64 shader cores, a 128 KB unified
    texture/L1 cache, and 4 texture units.
    """

    shader_cores: int = 64
    l1_bytes: int = 128 * KB
    l1_ways: int = 8
    l1_line_bytes: int = 128
    texture_units: int = 4

    def validate(self) -> None:
        if self.shader_cores <= 0:
            raise ConfigError("SM needs at least one shader core")
        if self.l1_bytes <= 0 or self.l1_line_bytes <= 0:
            raise ConfigError("L1 sizes must be positive")
        if self.l1_bytes % (self.l1_ways * self.l1_line_bytes) != 0:
            raise ConfigError(
                "L1 size must be divisible by ways*line "
                f"({self.l1_bytes} % {self.l1_ways * self.l1_line_bytes})"
            )
        if self.texture_units <= 0:
            raise ConfigError("SM needs at least one texture unit")


@dataclass(frozen=True)
class GPMConfig:
    """One GPU module (GPM) of the multi-chip package.

    Each GPM resembles a scaled-down Pascal-class GPU: ``num_sms`` SMs, a
    slice of the shared L2, its own DRAM stack, and ``num_rops`` render
    output units that each write ``rop_pixels_per_cycle`` pixels/cycle.
    """

    num_sms: int = 8
    sm: SMConfig = field(default_factory=SMConfig)
    num_rops: int = 8
    rop_pixels_per_cycle: int = 4
    l2_bytes: int = 1 * MB  # 4 MB total / 4 GPMs
    l2_ways: int = 16
    l2_line_bytes: int = 128
    dram_bytes_per_cycle: float = 1000.0  # 1 TB/s at 1 GHz
    #: Polymorph engines; each hosts one SMP unit (Fig. 2(c)).
    num_pmes: int = 2

    def validate(self) -> None:
        self.sm.validate()
        if self.num_sms <= 0:
            raise ConfigError("GPM needs at least one SM")
        if self.num_rops <= 0 or self.rop_pixels_per_cycle <= 0:
            raise ConfigError("ROP configuration must be positive")
        if self.l2_bytes <= 0:
            raise ConfigError("L2 size must be positive")
        if self.l2_bytes % (self.l2_ways * self.l2_line_bytes) != 0:
            raise ConfigError("L2 size must be divisible by ways*line")
        if self.dram_bytes_per_cycle <= 0:
            raise ConfigError("DRAM bandwidth must be positive")
        if self.num_pmes <= 0:
            raise ConfigError("GPM needs at least one PME")

    @property
    def shader_cores(self) -> int:
        """Total shader cores across the GPM's SMs."""
        return self.num_sms * self.sm.shader_cores

    @property
    def texture_units(self) -> int:
        """Total texture units across the GPM's SMs."""
        return self.num_sms * self.sm.texture_units

    @property
    def rop_throughput(self) -> int:
        """Pixels written per cycle with every ROP busy."""
        return self.num_rops * self.rop_pixels_per_cycle


@dataclass(frozen=True)
class LinkConfig:
    """Point-to-point inter-GPM interconnect (NVLink-style).

    The paper assumes 6 ports per GPM paired so that every GPM pair has a
    dedicated link: traffic between two GPMs never contends with a third.
    ``bytes_per_cycle`` is the *uni-directional* bandwidth of one link.
    """

    bytes_per_cycle: float = 64.0  # 64 GB/s at 1 GHz
    ports_per_gpm: int = 6
    latency_cycles: int = 120
    #: Energy per transferred bit, used in the traffic/energy report
    #: (the paper quotes 10 pJ/bit on-board integration).
    picojoules_per_bit: float = 10.0

    def validate(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise ConfigError("link bandwidth must be positive")
        if self.ports_per_gpm <= 0:
            raise ConfigError("link ports must be positive")
        if self.latency_cycles < 0:
            raise ConfigError("link latency cannot be negative")


@dataclass(frozen=True)
class CostModel:
    """Per-stage cycle and byte costs for the rendering pipeline.

    These are the knobs of the stage-throughput timing model.  They are
    calibrated once (see ``tests/test_calibration.py``) so that the
    single-GPM pipeline matches the throughput ratios the paper's
    baseline exhibits, and then **held fixed for every experiment**.
    """

    #: Average shader cycles to transform one vertex (vertex + geometry
    #: shaders), per shader core.
    vertex_shader_cycles: float = 96.0
    #: Triangles set up per cycle per PME (input assembly + attribute setup).
    triangles_per_cycle_per_pme: float = 0.5
    #: Fragments emitted per cycle by the raster engine.
    raster_fragments_per_cycle: float = 16.0
    #: Average shader cycles per fragment for a unit-complexity shader.
    fragment_shader_cycles: float = 48.0
    #: Texture samples issued per fragment (multi-texturing: diffuse +
    #: normal + lightmap amortised).
    samples_per_fragment: float = 2.0
    #: Memory-side texel reads per sample under 16x anisotropic
    #: filtering (taps averaged over surface anisotropy).  Affects
    #: memory demand; the TXUs pipeline the taps of one sample.
    anisotropic_texels_per_sample: float = 6.0
    #: Bytes fetched from memory per texel miss (compressed block amortised).
    bytes_per_texel: float = 4.0
    #: Fraction of raw texel demand that leaks past the per-SM texture
    #: L1s (1 - hit rate).  Calibrated; anisotropic taps and small
    #: ATTILA-era L1s keep this relatively high.
    l1_texture_leak: float = 0.50
    #: Bytes staged (copied into the strip GPM's memory segment) per
    #: unique texture byte under software tile-SFR: the distributed-
    #: memory heritage of those frameworks duplicates page-granular
    #: working sets per GPM (Section 2.3 / 4.2).  Strips re-copy shared
    #: borders, full mip chains, and both eye passes re-stage, so the
    #: factor is well above the object-level one.
    tile_stage_factor: float = 6.0
    #: Bytes staged per unique touched byte when a whole object's data
    #: is distributed with it (object-level SFR): page granularity and
    #: separate per-eye passes overfetch.
    object_stage_factor: float = 1.8
    #: Bytes staged per unique touched byte for a TSL batch: one copy
    #: serves every object of the batch and both eye views.
    batch_stage_factor: float = 0.65
    #: Effective copy parallelism while staging objects/batches
    #: (incoming links x overlap); stall = bytes / (link_bw x this).
    stage_parallelism: float = 14.0
    #: Tile-SFR staging parallelism: sort-first binning must finish
    #: before the strip rasterises, so the copy barely overlaps.
    tile_stage_parallelism: float = 4.5
    #: Post-L1 stream inflation when one draw's fragments interleave
    #: across GPMs (the naive baseline): tile-boundary texels are
    #: fetched by several GPMs' L1s and filtered mip footprints repeat.
    interleave_stream_inflation: float = 1.80
    #: Bytes of attributes per vertex fetched by the input assembler.
    bytes_per_vertex: float = 32.0
    #: Bytes written per output pixel (colour + coverage).
    bytes_per_pixel_out: float = 4.0
    #: Bytes of depth traffic per fragment tested (read+write amortised).
    bytes_per_ztest: float = 4.0
    #: Fraction of triangles surviving clipping/back-face culling.
    cull_survival: float = 0.55
    #: SMP projection cost per extra view, as a fraction of triangle setup.
    smp_projection_overhead: float = 0.15
    #: Fixed per-draw driver/command-processor cycles (state changes).
    draw_overhead_cycles: float = 600.0
    #: Per-draw command bytes broadcast to a rendering GPM.
    command_bytes_per_draw: float = 2048.0
    #: Unique-footprint inflation when a draw's fragments are
    #: interleaved across GPMs (the naive baseline): neighbouring tiles
    #: on different GPMs re-touch border texels, mip levels and repeated
    #: materials, so per-GPM unique bytes exceed an even split.
    interleave_unique_inflation: float = 1.8
    #: Unique-footprint inflation for tile-SFR strips: the software
    #: distribution stages each strip's working set into its GPM's
    #: memory segment, re-copying shared borders and mip chains.
    tile_unique_inflation: float = 2.4
    #: Draw-overhead multiplier inside a TSL batch: objects grouped by
    #: texture sharing need fewer state changes between draws.
    batch_draw_discount: float = 0.6
    #: Serial driver fraction per frame for AFR (command generation and
    #: app-side work that cannot overlap across frames in flight).
    driver_serial_fraction: float = 0.15

    def validate(self) -> None:
        positive = (
            ("vertex_shader_cycles", self.vertex_shader_cycles),
            ("triangles_per_cycle_per_pme", self.triangles_per_cycle_per_pme),
            ("raster_fragments_per_cycle", self.raster_fragments_per_cycle),
            ("fragment_shader_cycles", self.fragment_shader_cycles),
            ("samples_per_fragment", self.samples_per_fragment),
            ("anisotropic_texels_per_sample", self.anisotropic_texels_per_sample),
            ("bytes_per_texel", self.bytes_per_texel),
            ("bytes_per_vertex", self.bytes_per_vertex),
            ("bytes_per_pixel_out", self.bytes_per_pixel_out),
        )
        for name, value in positive:
            if value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")
        if not 0.0 < self.l1_texture_leak <= 1.0:
            raise ConfigError("l1_texture_leak must be in (0, 1]")
        if self.interleave_unique_inflation < 1.0:
            raise ConfigError("interleave_unique_inflation is at least 1")
        if self.tile_stage_factor < 0.0:
            raise ConfigError("tile_stage_factor cannot be negative")
        if self.object_stage_factor < 0.0:
            raise ConfigError("object_stage_factor cannot be negative")
        if self.batch_stage_factor < 0.0:
            raise ConfigError("batch_stage_factor cannot be negative")
        if self.stage_parallelism <= 0.0:
            raise ConfigError("stage_parallelism must be positive")
        if self.tile_stage_parallelism <= 0.0:
            raise ConfigError("tile_stage_parallelism must be positive")
        if self.interleave_stream_inflation < 1.0:
            raise ConfigError("interleave_stream_inflation is at least 1")
        if self.tile_unique_inflation < 1.0:
            raise ConfigError("tile_unique_inflation is at least 1")
        if not 0.0 < self.batch_draw_discount <= 1.0:
            raise ConfigError("batch_draw_discount must be in (0, 1]")
        if not 0.0 <= self.driver_serial_fraction < 1.0:
            raise ConfigError("driver_serial_fraction must be in [0, 1)")
        if not 0.0 < self.cull_survival <= 1.0:
            raise ConfigError("cull_survival must be in (0, 1]")
        if self.smp_projection_overhead < 0:
            raise ConfigError("smp_projection_overhead cannot be negative")


@dataclass(frozen=True)
class SystemConfig:
    """The whole NUMA-based multi-GPU system (Table 2 defaults)."""

    num_gpms: int = 4
    gpm: GPMConfig = field(default_factory=GPMConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    cost: CostModel = field(default_factory=CostModel)
    clock_hz: int = BASE_CLOCK_HZ
    page_bytes: int = 64 * KB
    #: Remote cache (MCM-GPU style) capacity per GPM, carved from L2.
    remote_cache_bytes: int = 512 * KB
    #: Whether the MCM-GPU first-touch + remote-cache baseline is on.
    numa_optimizations: bool = True
    #: Execution engine pricing the frame: ``"analytic"`` (the paper's
    #: per-unit roofline, the default every figure is calibrated under)
    #: or ``"event"`` (discrete-event, contention-aware timing — see
    #: :mod:`repro.engine`).
    engine: str = "analytic"

    def validate(self) -> None:
        if self.num_gpms <= 0:
            raise ConfigError("system needs at least one GPM")
        from repro.engine import EngineError, validate_engine_name

        try:
            validate_engine_name(self.engine)
        except EngineError as error:
            raise ConfigError(str(error)) from error
        self.gpm.validate()
        self.link.validate()
        self.cost.validate()
        if self.clock_hz <= 0:
            raise ConfigError("clock must be positive")
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise ConfigError("page size must be a positive power of two")
        if self.remote_cache_bytes < 0:
            raise ConfigError("remote cache size cannot be negative")
        max_pairs = self.num_gpms - 1
        if self.num_gpms > 1 and self.link.ports_per_gpm < max_pairs:
            raise ConfigError(
                f"{self.link.ports_per_gpm} ports cannot give each of "
                f"{max_pairs} peers a dedicated link"
            )

    # -- convenience constructors -------------------------------------

    def with_link_bandwidth(self, gb_per_s: float) -> "SystemConfig":
        """A copy of this config with a different inter-GPM bandwidth."""
        return replace(self, link=replace(self.link, bytes_per_cycle=float(gb_per_s)))

    def with_engine(self, engine: str) -> "SystemConfig":
        """A copy of this config priced by the named execution engine."""
        return replace(self, engine=engine)

    def with_num_gpms(self, num_gpms: int) -> "SystemConfig":
        """A copy of this config scaled to ``num_gpms`` modules.

        Following the paper's scalability study (Fig. 18), per-GPM
        resources stay fixed while the module count changes; at 8 GPMs
        the port budget still provides pairwise links.
        """
        cfg = replace(self, num_gpms=num_gpms)
        if num_gpms > 1 and cfg.link.ports_per_gpm < num_gpms - 1:
            cfg = replace(cfg, link=replace(cfg.link, ports_per_gpm=num_gpms - 1))
        return cfg

    @property
    def total_sms(self) -> int:
        return self.num_gpms * self.gpm.num_sms

    @property
    def total_rops(self) -> int:
        return self.num_gpms * self.gpm.num_rops

    @property
    def total_l2_bytes(self) -> int:
        return self.num_gpms * self.gpm.l2_bytes


def baseline_system(num_gpms: int = 4) -> SystemConfig:
    """The paper's Table 2 baseline configuration.

    4 GPMs, 8 SMs per GPM (64 cores each), 8 ROPs per GPM, 1 MB L2 slice
    per GPM, 64 GB/s pairwise NVLinks and 1 TB/s local DRAM.
    """
    cfg = SystemConfig().with_num_gpms(num_gpms)
    cfg.validate()
    return cfg


def single_gpu_system() -> SystemConfig:
    """A single-GPM system used as the Fig. 18 normalisation base."""
    return baseline_system(num_gpms=1)
