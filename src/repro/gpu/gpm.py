"""One GPU module (GPM).

Holds the per-module execution state the system layer schedules around:
when the module becomes free, how busy it has been this frame, and the
runtime counters the OO-VR distribution engine reads (transformed
vertices and rendered pixels — Eq. 3's ``#tv`` and ``#pixel``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.config import GPMConfig


@dataclass
class GPM:
    """Execution state of one GPU module."""

    gpm_id: int
    config: GPMConfig
    #: Simulation time at which the module finishes its current queue.
    ready_at: float = 0.0
    #: Cycles spent executing render work this frame.
    busy_cycles: float = 0.0
    #: Runtime counters exposed to the distribution engine.
    transformed_vertices: float = 0.0
    rendered_pixels: float = 0.0
    rendered_triangles: float = 0.0
    #: Labels of units executed, for debugging and tests.
    executed: List[str] = field(default_factory=list)

    def begin_frame(self) -> None:
        """Reset per-frame state (counters persist across the frame)."""
        self.ready_at = 0.0
        self.busy_cycles = 0.0
        self.transformed_vertices = 0.0
        self.rendered_pixels = 0.0
        self.rendered_triangles = 0.0
        self.executed.clear()

    def run(self, label: str, cycles: float, start_at: float | None = None) -> float:
        """Execute ``cycles`` of work; returns the completion time.

        Work starts when the module is free (or at ``start_at`` if that
        is later — e.g. waiting for a dependency or a PA copy).
        """
        if cycles < 0:
            raise ValueError("negative work")
        start = self.ready_at if start_at is None else max(self.ready_at, start_at)
        self.ready_at = start + cycles
        self.busy_cycles += cycles
        self.executed.append(label)
        return self.ready_at

    def record_progress(self, vertices: float, pixels: float, triangles: float) -> None:
        """Advance the runtime counters (the hardware does this per unit)."""
        self.transformed_vertices += vertices
        self.rendered_pixels += pixels
        self.rendered_triangles += triangles
