"""Software data staging: distributing data along with the work.

Every object-level scheme in the paper moves *data to the renderer*
rather than reading it through the links during shading:

- classic **object-level SFR** "distributes the rendering object along
  with its required data per GPM" (Section 1);
- **tile-level SFR** inherits the distributed-memory habit of cluster
  frameworks: each strip's working set is (re-)staged into its GPM's
  memory segment every frame;
- **OO_APP** stages per batch, which is cheaper because TSL grouping
  co-locates sharers and SMP halves the per-object footprint;
- **OO-VR**'s PA units stage the same bytes but *ahead of time*, so the
  copy latency hides behind the previous batch (Section 5.2).

The :class:`StagingManager` accounts those copies: per frame and per
(resource, GPM) pair it tracks how much has been staged, transfers the
shortfall over the fabric, replicates the pages locally (so render-time
reads hit local DRAM), and optionally stalls the GPM for the
non-overlapped part of the copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.gpu.system import MultiGPUSystem
from repro.memory.address import Touch
from repro.memory.link import TrafficType
from repro.pipeline.workunit import WorkUnit


@dataclass
class StagingManager:
    """Per-frame staging bookkeeping for one rendering framework."""

    system: MultiGPUSystem
    #: Staged bytes per unique touched byte (page/mip overfetch).
    factor: float = 1.0
    #: Effective parallelism of the copy (incoming links x overlap with
    #: rendering); the stall a GPM sees is ``bytes / (link_bw x this)``.
    parallelism: float = 6.0
    #: When True the copy is fully prefetched (OO-VR's PA units): the
    #: traffic is accounted but no stall is charged.
    prefetched: bool = False
    traffic_type: TrafficType = TrafficType.TEXTURE
    _staged: Dict[Tuple[Tuple[str, int], int], float] = field(default_factory=dict)
    #: Total bytes copied this frame (tests and reports read this).
    staged_bytes: float = 0.0

    def begin_frame(self) -> None:
        """Segmented memories refill each frame: forget what was staged."""
        self._staged.clear()
        self.staged_bytes = 0.0

    def _stage_touch(self, touch: Touch, gpm: int, scale: float = 1.0) -> float:
        resource = touch.resource
        placement = self.system.placement
        if not placement.is_placed(resource):
            # First toucher: pages land local for free (first touch by
            # the staging copy itself).
            placement.place_fixed(resource, gpm)
            self._staged[(resource.resource_id, gpm)] = float(resource.size_bytes)
            return 0.0
        if placement.is_home(resource, gpm):
            # The resource's home DRAM: nothing to move, ever.
            return 0.0
        # Replicate immediately so render-time reads go to local DRAM;
        # the copy bytes accumulate with use, capped at the footprint.
        placement.replicate(resource, [gpm])
        key = (resource.resource_id, gpm)
        factor = self.factor * scale
        wanted = min(
            float(resource.size_bytes) * max(factor, 1.0),
            self._staged.get(key, 0.0) + touch.unique_bytes * factor,
        )
        shortfall = wanted - self._staged.get(key, 0.0)
        if shortfall <= 0:
            return 0.0
        self._staged[key] = wanted
        src = (gpm + 1) % self.system.num_gpms
        self.system.fabric.transfer(src, gpm, shortfall, self.traffic_type)
        self.system.drams[gpm].write(shortfall)
        return shortfall

    def stage_unit(
        self, unit: WorkUnit, gpm: int, factor_scale: float = 1.0
    ) -> float:
        """Stage everything ``unit`` needs on ``gpm``; returns the stall.

        Render-time texture reads are redirected to local DRAM by
        recording the staged copy; vertex buffers are tiny and stage
        along with the command stream.  ``factor_scale`` lets callers
        stage per view (tile-SFR copies each eye region's data even
        though SMP shares the cached footprint).  Returns the stall
        cycles the caller should charge (zero when prefetched).
        """
        copied = 0.0
        for touch in unit.texture_touches:
            copied += self._stage_touch(touch, gpm, factor_scale)
        for touch in unit.vertex_touches:
            copied += self._stage_touch(touch, gpm, factor_scale)
        self.staged_bytes += copied
        if copied <= 0 or self.prefetched:
            return 0.0
        stall = copied / (
            self.system.config.link.bytes_per_cycle * self.parallelism
        )
        self.system.engine.stall(gpm, "stage", stall)
        return stall
