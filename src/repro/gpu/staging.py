"""Software data staging: distributing data along with the work.

Every object-level scheme in the paper moves *data to the renderer*
rather than reading it through the links during shading:

- classic **object-level SFR** "distributes the rendering object along
  with its required data per GPM" (Section 1);
- **tile-level SFR** inherits the distributed-memory habit of cluster
  frameworks: each strip's working set is (re-)staged into its GPM's
  memory segment every frame;
- **OO_APP** stages per batch, which is cheaper because TSL grouping
  co-locates sharers and SMP halves the per-object footprint;
- **OO-VR**'s PA units stage the same bytes but *ahead of time*, so the
  copy latency hides behind the previous batch (Section 5.2).

The :class:`StagingManager` resolves those copies: per frame and per
(resource, GPM) pair it tracks how much has been staged, replicates the
pages locally (so render-time reads hit local DRAM) and computes the
shortfall each touch still has to move.  The copy itself — byte
accounting *and* pricing — is the execution engine's job: the manager
emits the shortfalls as a staging flow
(:meth:`~repro.engine.base.ExecutionEngine.stage_flow`), and the engine
decides what the copy costs (the analytic overlap stall, or a
contention-replayed wire flow under the event engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.base import StageCopy, StageOutcome
from repro.gpu.system import MultiGPUSystem
from repro.memory.address import Touch
from repro.memory.link import TrafficType
from repro.pipeline.workunit import WorkUnit


@dataclass
class StagingManager:
    """Per-frame staging bookkeeping for one rendering framework."""

    system: MultiGPUSystem
    #: Staged bytes per unique touched byte (page/mip overfetch).
    factor: float = 1.0
    #: Effective parallelism of the copy (incoming links x overlap with
    #: rendering); the stall a GPM sees is ``bytes / (link_bw x this)``.
    parallelism: float = 6.0
    #: When True the copy is fully prefetched (OO-VR's PA units): the
    #: traffic is accounted but no stall is charged.
    prefetched: bool = False
    traffic_type: TrafficType = TrafficType.TEXTURE
    _staged: Dict[Tuple[Tuple[str, int], int], float] = field(default_factory=dict)
    #: Total bytes copied this frame (tests and reports read this).
    staged_bytes: float = 0.0

    def begin_frame(self) -> None:
        """Segmented memories refill each frame: forget what was staged."""
        self._staged.clear()
        self.staged_bytes = 0.0

    def _stage_touch(self, touch: Touch, gpm: int, scale: float = 1.0) -> float:
        """Resolve one touch's placement; returns the copy shortfall.

        Pure placement bookkeeping — the returned bytes still have to
        be moved, which the engine does when :meth:`stage_unit` emits
        the collected shortfalls as one staging flow.
        """
        resource = touch.resource
        placement = self.system.placement
        if not placement.is_placed(resource):
            # First toucher: pages land local for free (first touch by
            # the staging copy itself).
            placement.place_fixed(resource, gpm)
            self._staged[(resource.resource_id, gpm)] = float(resource.size_bytes)
            return 0.0
        if placement.is_home(resource, gpm):
            # The resource's home DRAM: nothing to move, ever.
            return 0.0
        # Replicate immediately so render-time reads go to local DRAM;
        # the copy bytes accumulate with use, capped at the footprint.
        placement.replicate(resource, [gpm])
        key = (resource.resource_id, gpm)
        factor = self.factor * scale
        wanted = min(
            float(resource.size_bytes) * max(factor, 1.0),
            self._staged.get(key, 0.0) + touch.unique_bytes * factor,
        )
        shortfall = wanted - self._staged.get(key, 0.0)
        if shortfall <= 0:
            return 0.0
        self._staged[key] = wanted
        return shortfall

    def stage_unit(
        self,
        unit: WorkUnit,
        gpm: int,
        factor_scale: float = 1.0,
        overlap_from: Optional[float] = None,
    ) -> StageOutcome:
        """Stage everything ``unit`` needs on ``gpm``.

        Render-time texture reads are redirected to local DRAM by
        recording the staged copy; vertex buffers are tiny and stage
        along with the command stream.  ``factor_scale`` lets callers
        stage per view (tile-SFR copies each eye region's data even
        though SMP shares the cached footprint).  ``overlap_from`` is
        the PA path: the copy streams from that point in time and the
        returned outcome carries when it lands.  All pricing — the
        stall charged on a software copy, the overlapped arrival of a
        prefetched one — is the engine's
        (:meth:`~repro.engine.base.ExecutionEngine.stage_flow`).
        """
        src = (gpm + 1) % self.system.num_gpms
        copies: List[StageCopy] = []
        for touch in unit.texture_touches:
            copies.append(
                StageCopy(
                    src, gpm, self._stage_touch(touch, gpm, factor_scale),
                    self.traffic_type,
                )
            )
        for touch in unit.vertex_touches:
            copies.append(
                StageCopy(
                    src, gpm, self._stage_touch(touch, gpm, factor_scale),
                    self.traffic_type,
                )
            )
        outcome = self.system.engine.stage_flow(
            gpm,
            copies,
            parallelism=self.parallelism,
            prefetched=self.prefetched,
            overlap_from=overlap_from,
            staged_before=self.staged_bytes,
        )
        self.staged_bytes += outcome.copied_bytes
        return outcome
