"""The multi-GPU execution substrate.

- :mod:`repro.gpu.gpm` — one GPU module's execution state and runtime
  counters (the #tv / #pixel counters the distribution engine reads);
- :mod:`repro.gpu.system` — the NUMA-aware multi-GPU machine: binds
  work units to GPMs, resolves memory touches through page placement,
  the remote caches and the link fabric, and runs static queues or
  dynamic dispatchers to a frame result;
- :mod:`repro.gpu.composition` — master-node vs. distributed frame
  composition passes.
"""

from repro.gpu.gpm import GPM
from repro.gpu.system import FramebufferTargets, MultiGPUSystem

__all__ = ["GPM", "MultiGPUSystem", "FramebufferTargets"]
