"""The NUMA-based multi-GPU machine.

:class:`MultiGPUSystem` owns the GPMs, the page placement map, the
per-GPM DRAM trackers and remote caches, and the link fabric.  Its job
is the part every framework shares:

- **binding**: given a work unit and a GPM, resolve each memory touch
  through the placement map into local DRAM bytes (filtered by the
  memory-side L2) and remote link bytes (filtered only by the small
  remote cache — the local L2 cannot cache peer addresses), then price
  the unit as ``max(compute, local DRAM time, per-link time)``;
- **framebuffer routing**: colour/depth bytes go wherever the active
  framebuffer layout says (interleaved for the naive baseline, private
  for sort-last workers, strip-owned for tile-SFR and DHC);
- **frame orchestration**: static per-GPM queues (the software schemes)
  or a dynamic dispatcher callback (the OO-VR distribution engine),
  plus an optional composition pass, rolled up into a
  :class:`~repro.stats.metrics.FrameResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.memory.address import Resource, ResourceKind, Touch
from repro.memory.cache import miss_bytes
from repro.memory.dram import DramTracker, make_trackers
from repro.memory.link import LinkFabric, TrafficType
from repro.memory.placement import PagePlacement, PlacementPolicy
from repro.memory.remote_cache import RemoteCache
from repro.pipeline.timing import price_work_unit
from repro.pipeline.workunit import WorkUnit
from repro.gpu.gpm import GPM
from repro.stats.metrics import FrameResult, TrafficBreakdown, UnitExecution

#: Maps a work unit's framebuffer bytes to owner GPMs: {gpm: fraction}.
FramebufferTargets = Mapping[int, float]

_KIND_TO_TRAFFIC = {
    ResourceKind.TEXTURE: TrafficType.TEXTURE,
    ResourceKind.VERTEX: TrafficType.VERTEX,
    ResourceKind.FRAMEBUFFER: TrafficType.FRAMEBUFFER,
    ResourceKind.DEPTH: TrafficType.ZTEST,
    ResourceKind.COMMAND: TrafficType.COMMAND,
}


@dataclass
class _FrameAccounting:
    """Mutable per-frame bookkeeping."""

    composition_cycles: float = 0.0


class MultiGPUSystem:
    """The simulated machine all rendering frameworks run on."""

    def __init__(
        self,
        config: SystemConfig,
        placement_policy: PlacementPolicy = PlacementPolicy.FIRST_TOUCH,
    ) -> None:
        config.validate()
        self.config = config
        self.gpms: List[GPM] = [
            GPM(gpm_id=i, config=config.gpm) for i in range(config.num_gpms)
        ]
        self.placement = PagePlacement(
            config.num_gpms, config.page_bytes, placement_policy
        )
        self.fabric = LinkFabric(
            config.num_gpms,
            config.link.bytes_per_cycle,
            config.link.latency_cycles,
        )
        self.drams: List[DramTracker] = make_trackers(
            config.num_gpms, config.gpm.dram_bytes_per_cycle
        )
        self.remote_caches: List[RemoteCache] = [
            RemoteCache(float(config.remote_cache_bytes if config.numa_optimizations else 0))
            for _ in range(config.num_gpms)
        ]
        #: Optional hook called as ``(resource, toucher_gpm, bytes)`` for
        #: every remote slice a touch resolves to (page-migration studies).
        self.remote_observer: Optional[Callable[[Resource, int, float], None]] = None
        self._accounting = _FrameAccounting()

    # -- lifecycle ---------------------------------------------------------

    @property
    def num_gpms(self) -> int:
        return self.config.num_gpms

    def begin_frame(self, keep_placement: bool = True) -> None:
        """Reset per-frame state.

        ``keep_placement=True`` keeps page ownership across frames
        (resources stay where earlier frames placed them, as on real
        hardware); experiments reset placement between *configurations*
        by building a fresh system.
        """
        for gpm in self.gpms:
            gpm.begin_frame()
        for dram in self.drams:
            dram.reset()
        for cache in self.remote_caches:
            cache.reset()
        self.fabric.reset()
        if not keep_placement:
            self.placement.reset()
        self._accounting = _FrameAccounting()

    # -- memory resolution ---------------------------------------------------

    def _resolve_touch(
        self, touch: Touch, gpm_id: int
    ) -> Tuple[float, Dict[int, float]]:
        """Split one touch into (local DRAM bytes, {peer: link bytes}).

        Local slices are filtered by the memory-side L2 (stream collapses
        towards the unique footprint); remote slices are filtered only by
        the remote cache and consume both the link and the owner's DRAM.
        """
        fractions = self.placement.owner_fractions(touch.resource, gpm_id)
        traffic = _KIND_TO_TRAFFIC[touch.resource.kind]
        local_bytes = 0.0
        remote: Dict[int, float] = {}
        for owner, fraction in fractions.items():
            stream = touch.stream_bytes * fraction
            unique = touch.unique_bytes * fraction
            writes = touch.write_bytes * fraction
            if owner == gpm_id:
                local_bytes += miss_bytes(
                    stream, unique, float(self.config.gpm.l2_bytes)
                ) + writes
                continue
            crossing = self.remote_caches[gpm_id].filter(stream, unique) + writes
            if crossing > 0:
                self.fabric.transfer(owner, gpm_id, crossing, traffic)
                self.drams[owner].serve_remote(crossing)
                remote[owner] = remote.get(owner, 0.0) + crossing
                if self.remote_observer is not None:
                    self.remote_observer(touch.resource, gpm_id, crossing)
        if local_bytes > 0:
            self.drams[gpm_id].read(local_bytes)
        return local_bytes, remote

    def _resolve_framebuffer(
        self,
        unit: WorkUnit,
        gpm_id: int,
        fb_targets: Optional[FramebufferTargets],
    ) -> Tuple[float, Dict[int, float]]:
        """Depth-test and colour-write traffic for ``unit``.

        ``fb_targets`` maps owner GPMs to the fraction of this unit's
        framebuffer region they hold; ``None`` means the render target
        is private and local (sort-last worker buffers).
        """
        targets: FramebufferTargets = fb_targets or {gpm_id: 1.0}
        local_bytes = 0.0
        remote: Dict[int, float] = {}
        z_write = unit.pixels_out * self.config.cost.bytes_per_ztest
        for owner, fraction in targets.items():
            z_stream = unit.z_stream_bytes * fraction
            z_unique = unit.z_unique_bytes * fraction
            color = unit.fb_write_bytes * fraction
            z_w = z_write * fraction
            if owner == gpm_id:
                local_bytes += (
                    miss_bytes(z_stream, z_unique, float(self.config.gpm.l2_bytes))
                    + color
                    + z_w
                )
                continue
            crossing_z = self.remote_caches[gpm_id].filter(z_stream, z_unique)
            if crossing_z > 0:
                self.fabric.transfer(owner, gpm_id, crossing_z, TrafficType.ZTEST)
                self.drams[owner].serve_remote(crossing_z)
            writes = color + z_w
            if writes > 0:
                self.fabric.transfer(gpm_id, owner, writes, TrafficType.FRAMEBUFFER)
                self.drams[owner].serve_remote(writes)
            total = crossing_z + writes
            if total > 0:
                remote[owner] = remote.get(owner, 0.0) + total
        if local_bytes > 0:
            self.drams[gpm_id].write(local_bytes)
        return local_bytes, remote

    # -- unit execution ------------------------------------------------------

    def execute_unit(
        self,
        unit: WorkUnit,
        gpm_id: int,
        fb_targets: Optional[FramebufferTargets] = None,
        command_source: int = 0,
        start_at: Optional[float] = None,
    ) -> UnitExecution:
        """Bind ``unit`` to GPM ``gpm_id`` and advance that GPM's clock."""
        if not 0 <= gpm_id < self.num_gpms:
            raise ValueError(f"GPM {gpm_id} out of range")
        gpm = self.gpms[gpm_id]
        breakdown = price_work_unit(unit, self.config.gpm, self.config.cost)

        local_bytes = 0.0
        link_bytes: Dict[int, float] = {}

        def absorb(pair: Tuple[float, Dict[int, float]]) -> None:
            nonlocal local_bytes
            local_part, remote_part = pair
            local_bytes += local_part
            for peer, nbytes in remote_part.items():
                link_bytes[peer] = link_bytes.get(peer, 0.0) + nbytes

        for touch in unit.texture_touches:
            absorb(self._resolve_touch(touch, gpm_id))
        for touch in unit.vertex_touches:
            absorb(self._resolve_touch(touch, gpm_id))
        absorb(self._resolve_framebuffer(unit, gpm_id, fb_targets))

        if unit.command_bytes > 0 and command_source != gpm_id:
            self.fabric.transfer(
                command_source, gpm_id, unit.command_bytes, TrafficType.COMMAND
            )
            link_bytes[command_source] = (
                link_bytes.get(command_source, 0.0) + unit.command_bytes
            )

        dram_cycles = local_bytes / self.config.gpm.dram_bytes_per_cycle
        link_cycles = 0.0
        if link_bytes:
            # Hop count is 1 on the paper's dedicated pairwise fabric.
            # On routed fabrics (ring/switch) a transfer loads every
            # link on its route; bytes x hops is the standard proxy for
            # the bandwidth that wire load steals from concurrent flows,
            # and per-hop latency stacks.
            link_cycles = max(
                nbytes
                * self.fabric.hops(peer, gpm_id)
                / self.config.link.bytes_per_cycle
                + self.config.link.latency_cycles
                * self.fabric.hops(peer, gpm_id)
                for peer, nbytes in link_bytes.items()
            )
        compute = breakdown.compute_cycles
        cycles = max(compute, dram_cycles, link_cycles)
        gpm.run(unit.label, cycles, start_at=start_at)
        gpm.record_progress(unit.vertices, unit.pixels_out, unit.triangles_raster)
        return UnitExecution(
            gpm=gpm_id,
            compute_cycles=compute,
            local_dram_cycles=dram_cycles,
            link_cycles=link_cycles,
            cycles=cycles,
            remote_bytes=sum(link_bytes.values()),
            bottleneck=(
                "link"
                if cycles == link_cycles and link_cycles > compute
                else ("dram" if cycles == dram_cycles and dram_cycles > compute
                      else breakdown.bottleneck)
            ),
        )

    # -- frame orchestration ---------------------------------------------------

    def run_queues(
        self,
        queues: Sequence[Sequence[WorkUnit]],
        fb_targets_for: Optional[
            Callable[[WorkUnit, int], Optional[FramebufferTargets]]
        ] = None,
        command_source: int = 0,
    ) -> List[UnitExecution]:
        """Execute one pre-built queue per GPM (static schedules)."""
        if len(queues) != self.num_gpms:
            raise ValueError(
                f"need {self.num_gpms} queues, got {len(queues)}"
            )
        executions: List[UnitExecution] = []
        for gpm_id, queue in enumerate(queues):
            for unit in queue:
                targets = fb_targets_for(unit, gpm_id) if fb_targets_for else None
                executions.append(
                    self.execute_unit(
                        unit, gpm_id, fb_targets=targets,
                        command_source=command_source,
                    )
                )
        return executions

    def add_composition_cycles(self, cycles: float) -> None:
        """Record the composition-phase critical path for this frame."""
        if cycles < 0:
            raise ValueError("negative composition time")
        self._accounting.composition_cycles += cycles

    def frame_result(self, framework: str, workload: str) -> FrameResult:
        """Roll the current frame's state into a result record."""
        busy = [gpm.busy_cycles for gpm in self.gpms]
        render_critical_path = max(gpm.ready_at for gpm in self.gpms)
        cycles = render_critical_path + self._accounting.composition_cycles
        return FrameResult(
            framework=framework,
            workload=workload,
            cycles=max(cycles, 1.0),
            gpm_busy_cycles=busy,
            composition_cycles=self._accounting.composition_cycles,
            traffic=TrafficBreakdown(self.fabric.bytes_by_type()),
            dram_bytes=[d.total_bytes for d in self.drams],
            resident_bytes=self.placement.total_resident_bytes,
        )
