"""The NUMA-based multi-GPU machine.

:class:`MultiGPUSystem` owns the *machine*: the GPMs, the page
placement map, the per-GPM DRAM trackers and remote caches, and the
link fabric.  *Timing* — how a bound unit's demands turn into cycles,
and how concurrent flows share links and DRAM — is delegated to a
pluggable :class:`~repro.engine.base.ExecutionEngine`
(:mod:`repro.engine`), selected by ``SystemConfig.engine``:

- **binding** (engine-independent): a work unit's memory touches
  resolve through the placement map into local DRAM bytes (filtered by
  the memory-side L2) and remote link bytes (filtered only by the small
  remote cache — the local L2 cannot cache peer addresses);
- **pricing** (engine-specific): the default ``analytic`` engine
  charges ``max(compute, local DRAM time, per-link time)`` per unit in
  isolation; the ``event`` engine replays the schedule through a
  discrete-event simulation that time-shares bandwidth across
  concurrently active flows;
- **framebuffer routing**: colour/depth bytes go wherever the active
  framebuffer layout says (interleaved for the naive baseline, private
  for sort-last workers, strip-owned for tile-SFR and DHC);
- **frame orchestration**: static per-GPM queues (the software schemes)
  or a dynamic dispatcher callback (the OO-VR distribution engine),
  rolled up into a :class:`~repro.stats.metrics.FrameResult` via the
  engine's :class:`~repro.engine.trace.FrameTrace`.  Staging copies and
  the composition barrier are engine-priced phases too
  (:meth:`~repro.engine.base.ExecutionEngine.stage_flow` /
  :meth:`~repro.engine.base.ExecutionEngine.composition_phase`) — the
  system keeps no frame-timing state of its own.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.engine import FrameTrace, build_engine
from repro.engine.base import KIND_TO_TRAFFIC
from repro.memory.address import Resource, ResourceKind, Touch
from repro.memory.dram import DramTracker, make_trackers
from repro.memory.link import LinkFabric, TrafficType
from repro.memory.placement import PagePlacement, PlacementPolicy
from repro.memory.remote_cache import RemoteCache
from repro.pipeline.workunit import WorkUnit
from repro.gpu.gpm import GPM
from repro.stats.metrics import FrameResult, TrafficBreakdown, UnitExecution

#: Maps a work unit's framebuffer bytes to owner GPMs: {gpm: fraction}.
FramebufferTargets = Mapping[int, float]

#: Backwards-compatible alias; the mapping lives with the binder now.
_KIND_TO_TRAFFIC = KIND_TO_TRAFFIC


class MultiGPUSystem:
    """The simulated machine all rendering frameworks run on."""

    def __init__(
        self,
        config: SystemConfig,
        placement_policy: PlacementPolicy = PlacementPolicy.FIRST_TOUCH,
    ) -> None:
        config.validate()
        self.config = config
        self.gpms: List[GPM] = [
            GPM(gpm_id=i, config=config.gpm) for i in range(config.num_gpms)
        ]
        self.placement = PagePlacement(
            config.num_gpms, config.page_bytes, placement_policy
        )
        self.fabric = LinkFabric(
            config.num_gpms,
            config.link.bytes_per_cycle,
            config.link.latency_cycles,
        )
        self.drams: List[DramTracker] = make_trackers(
            config.num_gpms, config.gpm.dram_bytes_per_cycle
        )
        self.remote_caches: List[RemoteCache] = [
            RemoteCache(float(config.remote_cache_bytes if config.numa_optimizations else 0))
            for _ in range(config.num_gpms)
        ]
        #: Optional hook called as ``(resource, toucher_gpm, bytes)`` for
        #: every remote slice a touch resolves to (page-migration studies).
        self.remote_observer: Optional[Callable[[Resource, int, float], None]] = None
        #: The timing/orchestration strategy (see :mod:`repro.engine`).
        self.engine = build_engine(config.engine, self)
        #: Trace of the most recently rolled-up frame (diagnostics/CLI).
        self.last_trace: Optional[FrameTrace] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def num_gpms(self) -> int:
        return self.config.num_gpms

    def begin_frame(self, keep_placement: bool = True) -> None:
        """Reset per-frame state.

        ``keep_placement=True`` keeps page ownership across frames
        (resources stay where earlier frames placed them, as on real
        hardware); experiments reset placement between *configurations*
        by building a fresh system.
        """
        for gpm in self.gpms:
            gpm.begin_frame()
        for dram in self.drams:
            dram.reset()
        for cache in self.remote_caches:
            cache.reset()
        self.fabric.reset()
        if not keep_placement:
            self.placement.reset()
        self.engine.begin_frame()

    # -- unit execution ------------------------------------------------------

    def execute_unit(
        self,
        unit: WorkUnit,
        gpm_id: int,
        fb_targets: Optional[FramebufferTargets] = None,
        command_source: int = 0,
        start_at: Optional[float] = None,
    ) -> UnitExecution:
        """Bind ``unit`` to GPM ``gpm_id`` and schedule it on the engine."""
        resolved = self.engine.bind(
            unit, gpm_id, fb_targets=fb_targets, command_source=command_source
        )
        return self.engine.execute(resolved, start_at=start_at)

    # -- frame orchestration ---------------------------------------------------

    def run_queues(
        self,
        queues: Sequence[Sequence[WorkUnit]],
        fb_targets_for: Optional[
            Callable[[WorkUnit, int], Optional[FramebufferTargets]]
        ] = None,
        command_source: int = 0,
    ) -> List[UnitExecution]:
        """Execute one pre-built queue per GPM (static schedules)."""
        if len(queues) != self.num_gpms:
            raise ValueError(
                f"need {self.num_gpms} queues, got {len(queues)}"
            )
        executions: List[UnitExecution] = []
        for gpm_id, queue in enumerate(queues):
            for unit in queue:
                targets = fb_targets_for(unit, gpm_id) if fb_targets_for else None
                executions.append(
                    self.execute_unit(
                        unit, gpm_id, fb_targets=targets,
                        command_source=command_source,
                    )
                )
        return executions

    def frame_result(self, framework: str, workload: str) -> FrameResult:
        """Roll the current frame's state into a result record.

        The engine finalises the frame into a
        :class:`~repro.engine.trace.FrameTrace` (kept on
        :attr:`last_trace`) covering every phase — render lanes,
        staging copies and the composition barrier: the analytic
        engine reports its scheduling clock verbatim, the event engine
        replays the schedule (staging and composition flows included)
        through its contention-aware simulation.  Frame latency is the
        trace's render critical path plus its composition barrier;
        byte counters (traffic, DRAM, residency) come straight from
        the machine and are identical under every engine.
        """
        trace = self.engine.finish_frame()
        self.last_trace = trace
        busy = list(trace.gpm_busy)
        render_critical_path = trace.render_critical_path
        cycles = render_critical_path + trace.composition_cycles
        return FrameResult(
            framework=framework,
            workload=workload,
            cycles=max(cycles, 1.0),
            gpm_busy_cycles=busy,
            composition_cycles=trace.composition_cycles,
            traffic=TrafficBreakdown(self.fabric.bytes_by_type()),
            dram_bytes=[d.total_bytes for d in self.drams],
            resident_bytes=self.placement.total_resident_bytes,
        )
