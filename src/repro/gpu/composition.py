"""Frame composition passes.

Sort-last schemes render into private per-GPM buffers and must assemble
the final frame.  Two hardware paths:

- :func:`compose_master` — the conventional object-level SFR path: every
  worker ships its rendered pixels (colour + depth for the compare) to
  the root GPM, whose ROPs alone write the final frame (Section 4.3's
  "bad composition scalability");
- :func:`compose_distributed` — the paper's DHC (Section 5.3): the
  framebuffer is striped vertically across all GPMs (Fig. 14), every
  GPM's ROPs write their own stripe, and only pixels rendered on a
  different GPM than their stripe owner cross a link.

Both builders translate the pass into a
:class:`~repro.engine.base.CompositionSchedule` — per-GPM ROP work from
:mod:`repro.pipeline.rop` plus the pixel transfers — and hand it to the
system's execution engine
(:meth:`~repro.engine.base.ExecutionEngine.composition_phase`), which
performs the byte accounting and prices the barrier: the analytic
engine as ``max(ROP time, slowest transfer)``, the event engine by
simulating the barrier's flows against each other.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.engine.base import CompositionSchedule, CompositionTransfer
from repro.gpu.system import MultiGPUSystem
from repro.pipeline import rop


def compose_master(
    system: MultiGPUSystem,
    rendered_pixels_per_gpm: Sequence[float],
    root: int = 0,
    bytes_per_pixel: float = 4.0,
    depth_bytes_per_pixel: float = 4.0,
) -> float:
    """Master-node composition; returns its scheduling-clock price."""
    if len(rendered_pixels_per_gpm) != system.num_gpms:
        raise ValueError("need one pixel count per GPM")
    total_pixels = float(sum(rendered_pixels_per_gpm))
    cost = rop.master_composition(
        total_pixels, system.config.gpm, bytes_per_pixel, depth_bytes_per_pixel
    )
    per_pixel = bytes_per_pixel + depth_bytes_per_pixel
    transfers: List[CompositionTransfer] = []
    for gpm_id, pixels in enumerate(rendered_pixels_per_gpm):
        if gpm_id == root or pixels <= 0:
            continue
        transfers.append(
            CompositionTransfer(gpm_id, root, pixels * per_pixel)
        )
    return system.engine.composition_phase(
        CompositionSchedule(
            label="compose-master",
            rop_cycles={root: cost.rop_cycles},
            transfers=tuple(transfers),
            dram_writes=((root, total_pixels * bytes_per_pixel),),
        )
    )


def compose_distributed(
    system: MultiGPUSystem,
    rendered_pixels_per_gpm: Sequence[float],
    bytes_per_pixel: float = 4.0,
    depth_bytes_per_pixel: float = 4.0,
) -> float:
    """DHC composition; returns its scheduling-clock price.

    Each GPM scatters its rendered pixels to the stripe owners: with
    ``n`` GPMs, ``(n-1)/n`` of each worker's pixels cross a link, but
    the transfers use *all* pairwise links concurrently and all GPMs'
    ROPs write in parallel — this is the 4x output-bandwidth claim.
    """
    if len(rendered_pixels_per_gpm) != system.num_gpms:
        raise ValueError("need one pixel count per GPM")
    n = system.num_gpms
    total_pixels = float(sum(rendered_pixels_per_gpm))
    cost = rop.distributed_composition(
        total_pixels, system.config.gpm, n, bytes_per_pixel, depth_bytes_per_pixel
    )
    per_pixel = bytes_per_pixel + depth_bytes_per_pixel
    transfers: List[CompositionTransfer] = []
    for src, pixels in enumerate(rendered_pixels_per_gpm):
        if pixels <= 0:
            continue
        share = pixels * per_pixel / n
        for dst in range(n):
            if dst == src:
                continue
            transfers.append(CompositionTransfer(src, dst, share))
    return system.engine.composition_phase(
        CompositionSchedule(
            label="compose-dhc",
            rop_cycles={gpm_id: cost.rop_cycles for gpm_id in range(n)},
            transfers=tuple(transfers),
            dram_writes=tuple(
                (gpm_id, total_pixels * bytes_per_pixel / n)
                for gpm_id in range(n)
            ),
        )
    )
