"""Frame composition passes.

Sort-last schemes render into private per-GPM buffers and must assemble
the final frame.  Two hardware paths:

- :func:`compose_master` — the conventional object-level SFR path: every
  worker ships its rendered pixels (colour + depth for the compare) to
  the root GPM, whose ROPs alone write the final frame (Section 4.3's
  "bad composition scalability");
- :func:`compose_distributed` — the paper's DHC (Section 5.3): the
  framebuffer is striped vertically across all GPMs (Fig. 14), every
  GPM's ROPs write their own stripe, and only pixels rendered on a
  different GPM than their stripe owner cross a link.
"""

from __future__ import annotations

from typing import Sequence

from repro.gpu.system import MultiGPUSystem
from repro.memory.link import TrafficType
from repro.pipeline import rop


def compose_master(
    system: MultiGPUSystem,
    rendered_pixels_per_gpm: Sequence[float],
    root: int = 0,
    bytes_per_pixel: float = 4.0,
    depth_bytes_per_pixel: float = 4.0,
) -> float:
    """Master-node composition; returns and records its critical path."""
    if len(rendered_pixels_per_gpm) != system.num_gpms:
        raise ValueError("need one pixel count per GPM")
    total_pixels = float(sum(rendered_pixels_per_gpm))
    cost = rop.master_composition(
        total_pixels, system.config.gpm, bytes_per_pixel, depth_bytes_per_pixel
    )
    per_pixel = bytes_per_pixel + depth_bytes_per_pixel
    worst_link_cycles = 0.0
    for gpm_id, pixels in enumerate(rendered_pixels_per_gpm):
        if gpm_id == root or pixels <= 0:
            continue
        nbytes = pixels * per_pixel
        cycles = system.fabric.transfer(
            gpm_id, root, nbytes, TrafficType.COMPOSITION
        )
        system.drams[root].serve_remote(nbytes)
        worst_link_cycles = max(worst_link_cycles, cycles)
    system.drams[root].write(total_pixels * bytes_per_pixel)
    critical_path = max(cost.rop_cycles, worst_link_cycles)
    system.add_composition_cycles(critical_path)
    return critical_path


def compose_distributed(
    system: MultiGPUSystem,
    rendered_pixels_per_gpm: Sequence[float],
    bytes_per_pixel: float = 4.0,
    depth_bytes_per_pixel: float = 4.0,
) -> float:
    """DHC composition; returns and records its critical path.

    Each GPM scatters its rendered pixels to the stripe owners: with
    ``n`` GPMs, ``(n-1)/n`` of each worker's pixels cross a link, but
    the transfers use *all* pairwise links concurrently and all GPMs'
    ROPs write in parallel — this is the 4x output-bandwidth claim.
    """
    if len(rendered_pixels_per_gpm) != system.num_gpms:
        raise ValueError("need one pixel count per GPM")
    n = system.num_gpms
    total_pixels = float(sum(rendered_pixels_per_gpm))
    cost = rop.distributed_composition(
        total_pixels, system.config.gpm, n, bytes_per_pixel, depth_bytes_per_pixel
    )
    per_pixel = bytes_per_pixel + depth_bytes_per_pixel
    worst_link_cycles = 0.0
    for src, pixels in enumerate(rendered_pixels_per_gpm):
        if pixels <= 0:
            continue
        share = pixels * per_pixel / n
        for dst in range(n):
            if dst == src:
                continue
            cycles = system.fabric.transfer(
                src, dst, share, TrafficType.COMPOSITION
            )
            system.drams[dst].serve_remote(share)
            worst_link_cycles = max(worst_link_cycles, cycles)
    for gpm_id in range(n):
        system.drams[gpm_id].write(total_pixels * bytes_per_pixel / n)
    critical_path = max(cost.rop_cycles, worst_link_cycles)
    system.add_composition_cycles(critical_path)
    return critical_path
