"""Per-GPM DRAM bandwidth accounting.

The local DRAM stack serves three request streams: the GPM's own reads
and writes, and *incoming* remote requests from peer GPMs (a remote read
consumes the owner's DRAM bandwidth too, then crosses the link).  The
tracker records bytes per stream; service time for a byte count is a
straight bandwidth division — at 1 TB/s the DRAM is rarely the binding
constraint, but the accounting keeps it honest (and the Fig. 17 HBM
discussion relies on the asymmetry being explicit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class DramTracker:
    """Byte counters and timing for one GPM's DRAM."""

    bytes_per_cycle: float
    local_read_bytes: float = 0.0
    local_write_bytes: float = 0.0
    remote_served_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise ValueError("DRAM bandwidth must be positive")

    def read(self, nbytes: float) -> float:
        """Record a local read; returns its service cycles."""
        if nbytes < 0:
            raise ValueError("negative read")
        self.local_read_bytes += nbytes
        return nbytes / self.bytes_per_cycle

    def write(self, nbytes: float) -> float:
        """Record a local write; returns its service cycles."""
        if nbytes < 0:
            raise ValueError("negative write")
        self.local_write_bytes += nbytes
        return nbytes / self.bytes_per_cycle

    def serve_remote(self, nbytes: float) -> float:
        """Record bytes served to a peer GPM; returns service cycles."""
        if nbytes < 0:
            raise ValueError("negative remote service")
        self.remote_served_bytes += nbytes
        return nbytes / self.bytes_per_cycle

    @property
    def total_bytes(self) -> float:
        return self.local_read_bytes + self.local_write_bytes + self.remote_served_bytes

    def busy_cycles(self) -> float:
        """Cycles this DRAM spent transferring data."""
        return self.total_bytes / self.bytes_per_cycle

    def reset(self) -> None:
        self.local_read_bytes = 0.0
        self.local_write_bytes = 0.0
        self.remote_served_bytes = 0.0


def make_trackers(num_gpms: int, bytes_per_cycle: float) -> List[DramTracker]:
    """One tracker per GPM."""
    return [DramTracker(bytes_per_cycle) for _ in range(num_gpms)]
