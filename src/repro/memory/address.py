"""Resources, pages, and access descriptors.

The simulator does not track byte addresses; it tracks *resources*
(a texture, a vertex buffer, a framebuffer partition) broken into
fixed-size pages.  Page granularity is what the paper's first-touch
policy and PA-unit pre-allocation operate on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class ResourceKind(enum.Enum):
    """What a resource holds; used for the traffic taxonomy."""

    TEXTURE = "texture"
    VERTEX = "vertex"
    FRAMEBUFFER = "framebuffer"
    DEPTH = "depth"
    COMMAND = "command"


@dataclass(frozen=True)
class Resource:
    """A paged memory object.

    Identity: resources created from the same scene object (e.g. the
    same :class:`~repro.scene.texture.Texture`) must carry the same
    ``resource_id`` so that page placement and sharing are consistent.
    The convention is ``("tex", texture_id)``, ``("vb", object_id)``,
    ``("fb", eye/partition)`` etc., hashed into the id by the caller.
    """

    resource_id: Tuple[str, int]
    kind: ResourceKind
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"resource {self.resource_id} must have positive size")

    def num_pages(self, page_bytes: int) -> int:
        """Pages needed to hold this resource."""
        return max(1, -(-self.size_bytes // page_bytes))


def texture_resource(texture_id: int, size_bytes: int) -> Resource:
    return Resource(("tex", texture_id), ResourceKind.TEXTURE, size_bytes)


def vertex_resource(object_id: int, size_bytes: int) -> Resource:
    return Resource(("vb", object_id), ResourceKind.VERTEX, size_bytes)


def framebuffer_resource(partition: int, size_bytes: int) -> Resource:
    return Resource(("fb", partition), ResourceKind.FRAMEBUFFER, size_bytes)


def depth_resource(partition: int, size_bytes: int) -> Resource:
    return Resource(("zb", partition), ResourceKind.DEPTH, size_bytes)


@dataclass(frozen=True)
class Touch:
    """One work unit's use of a resource.

    Parameters
    ----------
    resource:
        The resource touched.
    unique_bytes:
        Compulsory bytes: the footprint actually needed from DRAM when
        the data is local and cacheable (post-L2 filtering).
    stream_bytes:
        Request bytes leaving the SM cluster (post-L1).  When the pages
        are *remote*, this is what must cross the link, because the
        local memory-side L2 cannot cache another GPM's address range;
        only the small remote cache filters it (MCM-GPU, Section 3).
    write_bytes:
        Bytes written (ROP colour/depth output).  Writes stream to the
        owning GPM's DRAM, crossing a link when remote.
    """

    resource: Resource
    unique_bytes: float = 0.0
    stream_bytes: float = 0.0
    write_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.unique_bytes < 0 or self.stream_bytes < 0 or self.write_bytes < 0:
            raise ValueError("touch byte counts cannot be negative")
        if self.stream_bytes < self.unique_bytes:
            # The request stream can never be smaller than the unique
            # footprint it has to pull in at least once.
            object.__setattr__(self, "stream_bytes", self.unique_bytes)

    def scaled(self, factor: float) -> "Touch":
        """This touch scaled by ``factor`` (for fractional work splits)."""
        if factor < 0:
            raise ValueError("scale factor cannot be negative")
        return Touch(
            resource=self.resource,
            unique_bytes=self.unique_bytes * factor,
            stream_bytes=self.stream_bytes * factor,
            write_bytes=self.write_bytes * factor,
        )
