"""NUMA memory-system substrate.

Models the paper's memory organisation (Section 2.3): each GPM owns a
local DRAM stack (1 TB/s) and a memory-side L2 slice; GPMs exchange data
over dedicated pairwise NVLinks (64 GB/s per direction).  The address
space is shared and paged; page placement decides which accesses are
local and which cross a link — the asymmetry the whole paper is about.

- :mod:`repro.memory.address` — resources, pages, touch descriptors;
- :mod:`repro.memory.placement` — first-touch / fixed / interleaved /
  replicated page placement, PA-unit copies (pre-allocation);
- :mod:`repro.memory.cache` — a real set-associative cache model plus
  the analytic working-set hit-rate used by the fast timing path;
- :mod:`repro.memory.dram` — per-GPM DRAM bandwidth accounting;
- :mod:`repro.memory.link` — the pairwise link fabric with per-type
  traffic taxonomy;
- :mod:`repro.memory.remote_cache` — the MCM-GPU style remote cache that
  filters repeated remote reads.
"""

from repro.memory.address import Resource, ResourceKind, Touch
from repro.memory.placement import PagePlacement, PlacementPolicy
from repro.memory.cache import SetAssociativeCache, working_set_hit_rate
from repro.memory.dram import DramTracker
from repro.memory.link import LinkFabric, TrafficType
from repro.memory.remote_cache import RemoteCache

__all__ = [
    "Resource",
    "ResourceKind",
    "Touch",
    "PagePlacement",
    "PlacementPolicy",
    "SetAssociativeCache",
    "working_set_hit_rate",
    "DramTracker",
    "LinkFabric",
    "TrafficType",
    "RemoteCache",
]
