"""The inter-GPM link fabric.

Each GPM pair has a dedicated point-to-point NVLink (the paper assumes 6
ports per GPM so pairs never contend).  The fabric records bytes per
direction per pair, tagged by *traffic type* so the figures can break
down where inter-GPM traffic comes from (texture reads vs. composition
vs. commands vs. PA copies — the decomposition Section 6.2 discusses).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple


class TrafficType(enum.Enum):
    """Why bytes crossed a link."""

    TEXTURE = "texture"
    VERTEX = "vertex"
    ZTEST = "ztest"
    FRAMEBUFFER = "framebuffer"
    COMPOSITION = "composition"
    COMMAND = "command"
    PREALLOC = "prealloc"
    STEAL = "steal"


@dataclass
class LinkStats:
    """Per-direction byte counter of one (src, dst) link."""

    src: int
    dst: int
    bytes_total: float = 0.0
    by_type: Dict[TrafficType, float] = field(default_factory=dict)

    def add(self, nbytes: float, traffic: TrafficType) -> None:
        if nbytes < 0:
            raise ValueError("negative link transfer")
        self.bytes_total += nbytes
        self.by_type[traffic] = self.by_type.get(traffic, 0.0) + nbytes


class LinkFabric:
    """All pairwise links of the system."""

    def __init__(self, num_gpms: int, bytes_per_cycle: float, latency_cycles: int = 0):
        if num_gpms <= 0:
            raise ValueError("need at least one GPM")
        if bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        self.num_gpms = num_gpms
        self.bytes_per_cycle = bytes_per_cycle
        self.latency_cycles = latency_cycles
        self._links: Dict[Tuple[int, int], LinkStats] = {}
        #: Lazily built (src, dst) -> hop-count table; topology is fixed
        #: at construction, so routes never change after the first use.
        self._hop_matrix: Tuple[Tuple[int, ...], ...] = ()

    def _check(self, gpm: int) -> None:
        if not 0 <= gpm < self.num_gpms:
            raise ValueError(f"GPM {gpm} out of range 0..{self.num_gpms - 1}")

    def transfer(
        self, src: int, dst: int, nbytes: float, traffic: TrafficType
    ) -> float:
        """Record ``nbytes`` moving ``src -> dst``; returns transfer cycles.

        Transfers within one GPM are free (the XBAR, not a link).
        """
        self._check(src)
        self._check(dst)
        if src == dst or nbytes <= 0:
            return 0.0
        stats = self._links.get((src, dst))
        if stats is None:
            stats = LinkStats(src, dst)
            self._links[(src, dst)] = stats
        stats.add(nbytes, traffic)
        return nbytes / self.bytes_per_cycle + self.latency_cycles

    # -- queries ------------------------------------------------------------

    @property
    def total_bytes(self) -> float:
        """All inter-GPM traffic, both directions, all pairs."""
        return sum(s.bytes_total for s in self._links.values())

    def bytes_by_type(self) -> Dict[TrafficType, float]:
        out: Dict[TrafficType, float] = {}
        for stats in self._links.values():
            for traffic, nbytes in stats.by_type.items():
                out[traffic] = out.get(traffic, 0.0) + nbytes
        return out

    def bytes_between(self, src: int, dst: int) -> float:
        """Directional bytes recorded ``src -> dst``."""
        stats = self._links.get((src, dst))
        return stats.bytes_total if stats else 0.0

    def incoming_bytes(self, gpm: int) -> float:
        return sum(
            s.bytes_total for (src, dst), s in self._links.items() if dst == gpm
        )

    def outgoing_bytes(self, gpm: int) -> float:
        return sum(
            s.bytes_total for (src, dst), s in self._links.items() if src == gpm
        )

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """The physical hop list a ``src -> dst`` transfer crosses.

        The base fabric is fully connected (dedicated pairwise links),
        so every remote transfer is the single direct hop; routed
        topologies (:class:`~repro.extensions.topology.RoutedLinkFabric`)
        override this with multi-hop walks.
        """
        return [] if src == dst else [(src, dst)]

    def hops(self, src: int, dst: int) -> int:
        """Physical links a ``src -> dst`` transfer crosses.

        Unit pricing multiplies link time by this in its hottest inner
        loop, so hop counts come from a precomputed matrix rather than
        re-walking :meth:`route` (which costs a topology walk per call
        on routed fabrics) for every (unit, peer) pair.
        """
        if not self._hop_matrix:
            self._hop_matrix = tuple(
                tuple(
                    len(self.route(s, d)) for d in range(self.num_gpms)
                )
                for s in range(self.num_gpms)
            )
        return self._hop_matrix[src][dst]

    def busiest_pair_cycles(self) -> float:
        """Cycles the most-loaded directional link spent transferring."""
        if not self._links:
            return 0.0
        return max(s.bytes_total for s in self._links.values()) / self.bytes_per_cycle

    def energy_picojoules(self, picojoules_per_bit: float) -> float:
        """Link transfer energy (the paper quotes 10 pJ/bit on-board)."""
        return self.total_bytes * 8.0 * picojoules_per_bit

    def reset(self) -> None:
        self._links.clear()

    def __iter__(self) -> Iterator[LinkStats]:
        return iter(self._links.values())
