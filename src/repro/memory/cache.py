"""Cache models.

Two fidelity levels:

- :class:`SetAssociativeCache` — a real LRU set-associative cache,
  simulated access by access.  Used by the unit/property tests and by
  anyone who wants to study small traces exactly.
- :func:`working_set_hit_rate` — the analytic model the fast timing path
  uses: given a draw's unique footprint and a cache capacity, estimate
  the hit rate of the (re-)request stream.  The tests in
  ``tests/test_cache.py`` cross-validate the analytic curve against the
  exact simulator on synthetic streams.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class SetAssociativeCache:
    """An LRU set-associative cache simulated exactly.

    Addresses are plain integers (byte addresses).  The cache records
    hits/misses and evictions; it is deliberately simple and correct
    rather than fast — the timing path never calls it.
    """

    def __init__(self, size_bytes: int, ways: int, line_bytes: int) -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a power of two")
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError("size must be divisible by ways * line")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        self._sets: List[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.line_bytes
        return line % self.num_sets, line

    def access(self, address: int) -> bool:
        """Access one byte address; returns ``True`` on a hit."""
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways[tag] = None
        if len(ways) > self.ways:
            ways.popitem(last=False)
            self.evictions += 1
        return False

    def access_range(self, start: int, length: int) -> int:
        """Access every line in ``[start, start+length)``; returns misses."""
        if length <= 0:
            return 0
        before = self.misses
        line = start - (start % self.line_bytes)
        while line < start + length:
            self.access(line)
            line += self.line_bytes
        return self.misses - before

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def flush(self) -> None:
        for s in self._sets:
            s.clear()


def working_set_hit_rate(
    unique_bytes: float,
    cache_bytes: float,
    reuse_factor: float = 4.0,
) -> float:
    """Analytic hit rate of a request stream over a working set.

    A stream that touches ``unique_bytes`` of distinct data
    ``reuse_factor`` times each through a ``cache_bytes`` cache:

    - if the working set fits, only compulsory misses remain:
      ``hit = 1 - 1/reuse``;
    - if it does not fit, the resident fraction still hits, the rest
      thrashes: the hit rate decays with the capacity ratio.

    The curve is the standard smooth working-set approximation; the
    exact-vs-analytic comparison lives in ``tests/test_cache.py``.
    """
    if unique_bytes <= 0:
        return 1.0
    if cache_bytes <= 0:
        return 0.0
    if reuse_factor < 1.0:
        raise ValueError("reuse_factor must be >= 1 (each byte touched once)")
    compulsory_hit = 1.0 - 1.0 / reuse_factor
    capacity_ratio = min(1.0, cache_bytes / unique_bytes)
    return compulsory_hit * capacity_ratio


def miss_bytes(
    stream_bytes: float,
    unique_bytes: float,
    cache_bytes: float,
) -> float:
    """Bytes leaving a cache for a ``stream_bytes`` request stream.

    ``stream_bytes / unique_bytes`` defines the reuse factor; the result
    is never below the compulsory ``unique_bytes`` (if the stream is at
    least that long) and never above the stream itself.
    """
    if stream_bytes <= 0:
        return 0.0
    if unique_bytes <= 0:
        return 0.0
    reuse = max(1.0, stream_bytes / unique_bytes)
    hit = working_set_hit_rate(unique_bytes, cache_bytes, reuse)
    out = stream_bytes * (1.0 - hit)
    return min(stream_bytes, max(out, min(unique_bytes, stream_bytes)))


@dataclass
class CacheStats:
    """Aggregated hit/miss bookkeeping for reports."""

    hits: float = 0.0
    misses: float = 0.0

    def record(self, requests: float, hit_rate: float) -> None:
        if requests < 0 or not 0.0 <= hit_rate <= 1.0:
            raise ValueError("invalid cache record")
        self.hits += requests * hit_rate
        self.misses += requests * (1.0 - hit_rate)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
